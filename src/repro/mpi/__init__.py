"""Virtual MPI: a threaded, traffic-measuring MPI look-alike.

This subpackage is the substrate substituting for a real MPI cluster
(see DESIGN.md §2).  Public surface:

* :func:`run_spmd` — the ``mpiexec`` equivalent,
* :class:`Comm` — communicators with mpi4py-style p2p and collectives,
* :class:`Cart2D` — cartesian grid helper,
* wildcard/op constants (:data:`ANY_SOURCE`, :data:`ANY_TAG`,
  :data:`SUM`, :data:`MAX`, :data:`MIN`, :data:`PROD`),
* :class:`SpmdResult` / :class:`RankTrace` — measured traffic and
  simulated time, the raw material of the reproduction's measurements,
* :class:`FaultPlan` / :class:`LinkFault` / :class:`RankFault` /
  :class:`RetryPolicy` — deterministic fault injection
  (:mod:`repro.mpi.faults`), passed to :func:`run_spmd` via ``faults=``.
"""

from .comm import Comm
from .datatypes import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Op, Status
from .errors import (
    AbortError,
    BufferError_,
    CommError,
    CommRevokedError,
    DeadlockError,
    InjectedAbortError,
    RankError,
    RankFailedError,
    RankKilledError,
    RecvTimeoutError,
    TagError,
    VMpiError,
)
from .faults import ANY_RANK, FaultPlan, LinkFault, RankFault, RetryPolicy
from .request import CollRequest, Request, wait_all, wait_any
from .runtime import BACKEND_ENV, BACKENDS, SpmdResult, run_spmd
from .topology import Cart2D, Cart3D
from .transport import PhaseStats, RankTrace, Transport

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Op",
    "Status",
    "Comm",
    "Cart2D",
    "Cart3D",
    "Transport",
    "PhaseStats",
    "RankTrace",
    "CollRequest",
    "Request",
    "wait_all",
    "wait_any",
    "run_spmd",
    "SpmdResult",
    "BACKENDS",
    "BACKEND_ENV",
    "VMpiError",
    "RankError",
    "TagError",
    "BufferError_",
    "CommError",
    "DeadlockError",
    "AbortError",
    "RecvTimeoutError",
    "InjectedAbortError",
    "RankKilledError",
    "RankFailedError",
    "CommRevokedError",
    "ANY_RANK",
    "FaultPlan",
    "LinkFault",
    "RankFault",
    "RetryPolicy",
]
