"""Communicators for the virtual MPI runtime.

A :class:`Comm` is a view of a subset of world ranks with its own context
id (so traffic in different communicators can never match) and local rank
numbering.  The API intentionally mirrors mpi4py's lowercase, object-mode
methods — ``send``/``recv`` move numpy arrays or arbitrary picklable
objects — because that is the idiom the algorithms in this package are
written in.

SPMD discipline: collective calls (including :meth:`split` and
:meth:`dup`) must be invoked by every member rank in the same order.
The runtime does not police call ordering; a violation typically shows
up as a watchdog :class:`~repro.mpi.errors.DeadlockError`.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Sequence

import numpy as np

from . import collectives as _coll
from .datatypes import ANY_SOURCE, ANY_TAG, Op, SUM, Status, payload_pack
from .errors import CommError, RankError, TagError
from .request import RecvRequest, Request, SendRequest
from .transport import Transport


class Comm:
    """A communicator over a subset of the world's ranks."""

    def __init__(self, transport: Transport, ctx: int, group: Sequence[int], world_rank: int):
        self._transport = transport
        self._ctx = ctx
        self._group = tuple(group)
        self._world_rank = world_rank
        try:
            self._rank = self._group.index(world_rank)
        except ValueError:  # pragma: no cover - constructor misuse
            raise CommError(f"world rank {world_rank} not in group {group}")
        self._w2l = {w: l for l, w in enumerate(self._group)}
        self._split_seq = 0
        self._agree_seq = 0
        self._shrink_seq = 0

    # ------------------------------------------------------------ basics -- #
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._group)

    @property
    def world_rank(self) -> int:
        """This process's rank in the world communicator."""
        return self._world_rank

    @property
    def group(self) -> tuple[int, ...]:
        """World ranks of the members, indexed by local rank."""
        return self._group

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def machine(self):
        return self._transport.machine

    def _to_world(self, local: int) -> int:
        if local == ANY_SOURCE:
            return ANY_SOURCE
        if not 0 <= local < self.size:
            raise RankError(f"rank {local} out of range for size {self.size}")
        return self._group[local]

    def _to_local(self, world: int) -> int:
        return self._w2l[world]

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag != ANY_TAG and tag < 0:
            raise TagError(f"invalid tag {tag}")

    # --------------------------------------------------------------- p2p -- #
    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        """Blocking eager send of an array or picklable object."""
        self._check_tag(tag)
        if tag == ANY_TAG:
            raise TagError("cannot send with ANY_TAG")
        stored, nbytes, is_array = payload_pack(value)
        self._transport.post_send(
            self._ctx,
            self._world_rank,
            self._to_world(dest),
            tag,
            stored,
            nbytes,
            is_array,
            advance_sender=True,
        )

    def isend(self, value: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the buffer is copied, reusable immediately."""
        self._check_tag(tag)
        if tag == ANY_TAG:
            raise TagError("cannot send with ANY_TAG")
        stored, nbytes, is_array = payload_pack(value)
        dest_world = self._to_world(dest)
        arrival, seq = self._transport.post_send(
            self._ctx,
            self._world_rank,
            dest_world,
            tag,
            stored,
            nbytes,
            is_array,
            advance_sender=False,
        )
        return SendRequest(
            self._transport, self._world_rank, arrival,
            nbytes=nbytes, peer=dest_world, seq=seq,
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        buf: np.ndarray | None = None,
    ) -> Any:
        """Blocking receive; returns the payload.

        If ``buf`` is given, array payloads are copied into it (shape is
        ignored; sizes must match) and ``buf`` is returned.

        Under a fault plan (:mod:`repro.mpi.faults`) a receive whose
        matching message was dropped retries per the plan's
        :class:`~repro.mpi.faults.RetryPolicy` (simulated timeout +
        geometric backoff, counted on the rank's trace) and raises
        :class:`~repro.mpi.errors.RecvTimeoutError` when the budget is
        exhausted.  Collectives and :meth:`sendrecv` inherit the same
        semantics — every blocking receive goes through the transport's
        ``match_recv``.
        """
        self._check_tag(tag)
        msg, st = self._transport.match_recv(
            self._ctx, self._world_rank, self._to_world(source), tag
        )
        value = msg.unpack()
        if status is not None:
            status.source = self._to_local(st.source)
            status.tag = st.tag
            status.nbytes = st.nbytes
        if buf is not None:
            arr = np.asarray(value)
            if buf.size != arr.size:
                from .errors import BufferError_

                raise BufferError_(
                    f"recv buffer size {buf.size} != message size {arr.size}"
                )
            buf.reshape(-1)[:] = arr.reshape(-1)
            return buf
        return value

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, buf: np.ndarray | None = None
    ) -> RecvRequest:
        """Nonblocking receive; matching happens at ``wait`` time."""
        self._check_tag(tag)
        return RecvRequest(
            self._transport,
            self._ctx,
            self._world_rank,
            self._to_world(source),
            tag,
            buf,
            self._to_local,
        )

    def sendrecv(
        self,
        sendvalue: Any,
        dest: int,
        recvsource: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Full-duplex exchange: send and receive concurrently.

        Simulated time: the outgoing transfer and the incoming transfer
        overlap; the call completes at the later of the two.
        """
        self._check_tag(sendtag)
        self._check_tag(recvtag)
        t0 = self._transport.now(self._world_rank)
        stored, nbytes, is_array = payload_pack(sendvalue)
        arrival_out, seq_out = self._transport.post_send(
            self._ctx,
            self._world_rank,
            self._to_world(dest),
            sendtag,
            stored,
            nbytes,
            is_array,
            advance_sender=False,
        )
        msg, _st = self._transport.match_recv(
            self._ctx, self._world_rank, self._to_world(recvsource), recvtag
        )
        # Outgoing side also occupies this rank until arrival_out.
        self._transport.raise_clock(
            self._world_rank, arrival_out,
            event_kind="send", nbytes=nbytes, peer=self._to_world(dest), seq=seq_out,
        )
        del t0
        return msg.unpack()

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Nonblocking probe; Status (with local source) or None."""
        st = self._transport.probe(
            self._ctx, self._world_rank, self._to_world(source), tag
        )
        if st is None:
            return None
        return Status(source=self._to_local(st.source), tag=st.tag, nbytes=st.nbytes)

    # ------------------------------------------------------- collectives -- #
    def barrier(self) -> None:
        _coll.barrier(self)

    def bcast(self, value: Any, root: int = 0) -> Any:
        return _coll.bcast(self, value, root)

    def reduce(self, value: Any, op: Op = SUM, root: int = 0) -> Any:
        return _coll.reduce(self, value, op, root)

    def allreduce(self, value: Any, op: Op = SUM) -> Any:
        return _coll.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return _coll.gather(self, value, root)

    def allgather(self, value: Any) -> list[Any]:
        return _coll.allgather(self, value)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        return _coll.scatter(self, values, root)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        return _coll.alltoall(self, values)

    def reduce_scatter(self, blocks: Sequence[np.ndarray], op: Op = SUM) -> np.ndarray:
        return _coll.reduce_scatter(self, blocks, op)

    # ------------------------------------------- nonblocking collectives -- #
    def ibcast(self, value: Any, root: int = 0) -> Request:
        """Nonblocking broadcast; ``wait()`` returns the value.

        Progresses on the rank's async comm engine: with
        ``machine.overlap != "none"`` the transfer time can hide under
        compute issued between post and wait; with ``"none"`` it behaves
        exactly like :meth:`bcast` followed by a free wait.
        """
        return _coll.ibcast(self, value, root)

    def iallgather(self, value: Any) -> Request:
        """Nonblocking allgather; ``wait()`` returns the gathered list."""
        return _coll.iallgather(self, value)

    def ireduce_scatter(self, blocks: Sequence[np.ndarray], op: Op = SUM) -> Request:
        """Nonblocking reduce-scatter; ``wait()`` returns this rank's block."""
        return _coll.ireduce_scatter(self, blocks, op)

    # --------------------------------------------- communicator management -- #
    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by color; order members by key.

        ``color=None`` (MPI's ``MPI_UNDEFINED``) yields ``None``.
        Collective over the communicator.
        """
        self._split_seq += 1
        triples = _coll.allgather(self, (color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )
        group = tuple(self._group[r] for (_k, r) in members)
        ctx = self._transport.context_for_key(
            (self._ctx, "split", self._split_seq, color)
        )
        return Comm(self._transport, ctx, group, self._world_rank)

    def dup(self) -> "Comm":
        """Duplicate: same group, fresh context."""
        self._split_seq += 1
        _coll.barrier(self)
        ctx = self._transport.context_for_key((self._ctx, "dup", self._split_seq))
        return Comm(self._transport, ctx, self._group, self._world_rank)

    def create_sub(self, local_ranks: Sequence[int]) -> "Comm | None":
        """Create a subcommunicator from an explicit local-rank list.

        Collective over the parent.  Ranks not listed get ``None``.
        Every rank must pass the same list.
        """
        ranks = tuple(local_ranks)
        if len(set(ranks)) != len(ranks):
            raise CommError("duplicate ranks in create_sub")
        color = 0 if self._rank in ranks else None
        key = ranks.index(self._rank) if self._rank in ranks else 0
        return self.split(color, key)

    # ------------------------------------- ULFM-style failure mitigation -- #
    def failed_ranks(self) -> tuple[int, ...]:
        """Local ranks of members the transport knows are dead.

        The ULFM ``MPIX_Comm_failure_ack``/``get_acked`` analog: purely
        local, no communication.
        """
        dead = self._transport.dead_ranks()
        return tuple(l for l, w in enumerate(self._group) if w in dead)

    def revoke(self) -> None:
        """Revoke communication (``MPIX_Comm_revoke`` analog): wake every
        rank blocked in a p2p call with
        :class:`~repro.mpi.errors.CommRevokedError` so all survivors can
        converge on :meth:`agree`.  Purely local; never blocks."""
        self._transport.revoke()

    def agree(self, flag: bool = True) -> tuple[bool, tuple[int, ...]]:
        """Fault-tolerant agreement (``MPIX_Comm_agree`` analog).

        Collective over the *surviving* members.  Returns the same
        ``(all_ok, survivors)`` on every survivor: ``all_ok`` is true
        only when every member is alive and voted ``flag=True``;
        ``survivors`` is a consistent snapshot of the live members'
        *world* ranks, suitable for :meth:`shrink`.  Works while the
        world is revoked, and completing it lifts the revocation.
        """
        self._agree_seq += 1
        key = (self._ctx, "agree", self._agree_seq)
        return self._transport.agree(key, self._group, self._world_rank, flag)

    def shrink(self, survivors: Sequence[int] | None = None) -> "Comm":
        """A new communicator over the surviving members
        (``MPIX_Comm_shrink`` analog), preserving relative rank order.

        ``survivors`` (world ranks, e.g. straight from :meth:`agree`)
        pins the member snapshot so every caller builds the identical
        communicator even if more ranks die meanwhile; omitted, the
        transport's current dead set is consulted.  Must be called by
        every survivor; the caller must be one of them.
        """
        if survivors is not None:
            group = tuple(survivors)
        else:
            dead = self._transport.dead_ranks()
            group = tuple(w for w in self._group if w not in dead)
        if self._world_rank not in group:
            raise CommError(
                f"world rank {self._world_rank} not among survivors {group}"
            )
        self._shrink_seq += 1
        ctx = self._transport.context_for_key(
            (self._ctx, "shrink", self._shrink_seq, group)
        )
        return Comm(self._transport, ctx, group, self._world_rank)

    # ------------------------------------------------- simulated compute -- #
    def compute(self, flops: float) -> None:
        """Advance this rank's simulated clock by a compute interval."""
        self._transport.advance(
            self._world_rank, self._transport.machine.compute_time(flops), "compute"
        )

    def gemm_tick(self, m: int, n: int, k: int, itemsize: int = 8) -> None:
        """Charge simulated time for a local ``m x k @ k x n`` GEMM.

        In GPU mode this includes PCIe staging of the operands/result.
        """
        stage = (m * k + k * n + m * n) * itemsize
        dt = self._transport.machine.gemm_time(m, n, k, stage_bytes=stage)
        self._transport.advance(self._world_rank, dt, "compute")

    @contextlib.contextmanager
    def phase(self, name: str, **attrs) -> Iterator[None]:
        """Attribute enclosed traffic/time to a named phase (for breakdowns).

        When tracing is on (``record_events=True``) the phase also opens
        a :class:`~repro.obs.tracer.Span` carrying ``attrs`` plus the
        byte/message deltas measured over the region.
        """
        self._transport.push_phase(self._world_rank, name, attrs=attrs or None)
        try:
            yield
        finally:
            self._transport.pop_phase(self._world_rank)

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "user", **attrs) -> Iterator[None]:
        """Open a tracer span (no phase-stat redirection) over the region.

        A no-op unless the run was started with ``record_events=True``.
        Unlike :meth:`phase`, traffic counters keep charging the current
        phase; the span only records the interval and its deltas.
        """
        sid = self._transport.begin_span(self._world_rank, name, cat=cat, attrs=attrs or None)
        try:
            yield
        finally:
            self._transport.end_span(self._world_rank, sid)

    def note_live_bytes(self, nbytes: int) -> None:
        """Report current live matrix bytes for peak-memory tracking.

        Self-reported (analytic) estimate; measured footprint goes
        through the memtrace API (:meth:`mem` / :meth:`mem_alloc` /
        :meth:`mem_free`).
        """
        self._transport.note_live_bytes(self._world_rank, nbytes)

    # ---------------------------------------------------------- memtrace -- #
    def mem_alloc(self, purpose: str, nbytes: int) -> None:
        """Charge tracked resident bytes to a tagged allocation span.

        ``purpose`` labels what the bytes are (``tile.a``,
        ``replicate.buf``, ``cannon.dblbuf``, ``abft.checksum``,
        ``ckpt.staging``, ...).  Every charge must be matched by a
        :meth:`mem_free` of the same purpose before the rank exits, or
        deliberately left live (output tiles) — the balance shows up in
        the rank trace's ``mem_live``.
        """
        self._transport.mem_alloc(self._world_rank, purpose, nbytes)

    def mem_free(self, purpose: str, nbytes: int) -> None:
        """Release tracked resident bytes charged with :meth:`mem_alloc`."""
        self._transport.mem_free(self._world_rank, purpose, nbytes)

    @contextlib.contextmanager
    def mem(self, purpose: str, nbytes: int) -> Iterator[None]:
        """Tagged allocation span: alloc on entry, free on exit.

        The bracketed bytes count toward this rank's resident watermark
        and the ``purpose``/phase high-water marks for the duration of
        the block (use for scratch whose lifetime is the block; use the
        explicit pair for buffers with non-lexical lifetimes).
        """
        self._transport.mem_alloc(self._world_rank, purpose, nbytes)
        try:
            yield
        finally:
            self._transport.mem_free(self._world_rank, purpose, nbytes)

    def now(self) -> float:
        """This rank's simulated clock, in seconds."""
        return self._transport.now(self._world_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comm(rank={self._rank}, size={self.size}, ctx={self._ctx})"
