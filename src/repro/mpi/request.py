"""Nonblocking request handles.

The virtual runtime copies payloads eagerly, so an ``isend`` buffer is
reusable the moment the call returns; what :meth:`Request.wait` models is
the *simulated* completion time.  A send request completes at
``issue_clock + α + β·n`` (overlappable with compute: if the rank's clock
has already passed that point, waiting is free).  A receive request
completes at the matched message's arrival time.  A collective request
(:class:`CollRequest`, returned by ``ibcast``/``iallgather``/
``ireduce_scatter``) completes when the rank's async comm engine drains
the collective's transfers; its ``wait`` charges only the uncovered
remainder ``max(0, t_complete - clock)``.

Matching for ``irecv`` happens at :meth:`wait` time (or at
:meth:`RecvRequest.resolve`, which :func:`wait_all`/:func:`wait_any` use
to learn completion times before charging any clock).  That is a
simplification relative to MPI (where posted receives participate in
matching immediately), but it is indistinguishable for the
deterministic, loss-free algorithms in this package and keeps the
transport simple.

Draining discipline: :func:`wait_all` first *resolves* every request in
list order (matching receives without touching the receiver's clock,
so per-pair FIFO order is preserved deterministically) and then charges
completions in ascending ``(completion_time, list index)`` order.  The
final clock is the max completion time either way, but arrival-ordered
charging never credits an early arrival with a later one's wait — the
historical list-order drain charged the whole wait to whichever request
happened to be first.  :func:`wait_any` returns the earliest-completing
request, leaving the rest matched but uncharged.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .datatypes import Status
from .errors import BufferError_


class Request:
    """Base request; concrete behaviour provided by subclasses."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check; ``(done, value_or_None)``.

        Never advances the caller's clock: a poll answers "done at the
        current virtual time?" and returns ``(False, None)`` otherwise.
        """
        raise NotImplementedError

    # -- draining protocol (wait_all / wait_any) ----------------------- #
    def resolve(self) -> None:
        """Learn the completion time without advancing any clock."""
        raise NotImplementedError

    @property
    def completion_time(self) -> float:
        """Simulated completion time; valid after :meth:`resolve`."""
        raise NotImplementedError

    def charge(self) -> Any:
        """Apply the completion to the owner's clock; returns the value."""
        raise NotImplementedError


class SendRequest(Request):
    def __init__(
        self,
        transport,
        world_rank: int,
        t_complete: float,
        nbytes: int = 0,
        peer: int = -1,
        seq: int = -1,
    ):
        self._transport = transport
        self._world_rank = world_rank
        self._t_complete = t_complete
        self._nbytes = nbytes
        self._peer = peer
        self._seq = seq
        self._done = False

    def resolve(self) -> None:
        pass  # the completion time was fixed at post

    @property
    def completion_time(self) -> float:
        return self._t_complete

    def charge(self) -> None:
        if not self._done:
            self._transport.raise_clock(
                self._world_rank, self._t_complete,
                event_kind="send", nbytes=self._nbytes, peer=self._peer,
                seq=self._seq,
            )
            self._done = True
        return None

    def wait(self) -> None:
        self.charge()

    def test(self) -> tuple[bool, Any]:
        # Eager copies make the buffer immediately reusable, but the
        # *simulated* transfer is done only once the rank's clock has
        # passed t_complete.  Polling must not jump time forward.
        if self._done:
            return True, None
        if self._transport.now(self._world_rank) >= self._t_complete:
            # Fully covered already: completing charges nothing.
            self.charge()
            return True, None
        return False, None


class RecvRequest(Request):
    def __init__(
        self,
        transport,
        ctx: int,
        dst_world: int,
        src_world: int,
        tag: int,
        buf: np.ndarray | None,
        to_local: Callable[[int], int],
    ):
        self._transport = transport
        self._ctx = ctx
        self._dst_world = dst_world
        self._src_world = src_world
        self._tag = tag
        self._buf = buf
        self._to_local = to_local
        self._done = False
        self._value: Any = None
        self._msg = None
        self._mstatus = None
        self.status = Status()

    def _finish(self, msg, status) -> Any:
        value = msg.unpack()
        self.status = Status(
            source=self._to_local(status.source), tag=status.tag, nbytes=status.nbytes
        )
        if self._buf is not None:
            arr = np.asarray(value)
            if self._buf.size != arr.size:
                raise BufferError_(
                    f"irecv buffer size {self._buf.size} != message size {arr.size}"
                )
            self._buf.reshape(-1)[:] = arr.reshape(-1)
            value = self._buf
        self._done = True
        self._value = value
        return value

    def resolve(self) -> None:
        """Match the message (blocking in real time, not virtual time)
        without raising the receiver's clock."""
        if self._done or self._msg is not None:
            return
        self._msg, self._mstatus = self._transport.match_recv(
            self._ctx, self._dst_world, self._src_world, self._tag,
            advance_receiver=False,
        )

    @property
    def completion_time(self) -> float:
        if self._msg is None:
            raise RuntimeError("completion_time before resolve()")
        return self._msg.arrival

    def charge(self) -> Any:
        if self._done:
            return self._value
        if self._msg is None:
            raise RuntimeError("charge() before resolve()")
        self._transport.raise_clock(
            self._dst_world, self._msg.arrival,
            event_kind="recv", nbytes=self._mstatus.nbytes,
            peer=self._msg.src_world, seq=self._msg.seq,
        )
        return self._finish(self._msg, self._mstatus)

    def wait(self) -> Any:
        if self._done:
            return self._value
        if self._msg is not None:
            return self.charge()
        msg, status = self._transport.match_recv(
            self._ctx, self._dst_world, self._src_world, self._tag
        )
        return self._finish(msg, status)

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        st = self._transport.probe(self._ctx, self._dst_world, self._src_world, self._tag)
        if st is None:
            return False, None
        return True, self.wait()


class CollRequest(Request):
    """A nonblocking collective in flight on the async comm engine.

    The collective's data movement already happened at post time (the
    whole algorithm ran on the rank's comm timeline); what remains is
    the time accounting: :meth:`wait` charges the uncovered remainder
    ``max(0, t_complete - clock)`` to the rank and books the covered
    part as hidden communication (``PhaseStats.comm_covered_time``).
    """

    def __init__(self, transport, world_rank: int, t_start: float,
                 t_complete: float, value: Any):
        self._transport = transport
        self._world_rank = world_rank
        self._t_start = t_start
        self._t_complete = t_complete
        self._value = value
        self._done = False

    def resolve(self) -> None:
        pass  # completion time fixed when the engine drained the algorithm

    @property
    def completion_time(self) -> float:
        return self._t_complete

    def charge(self) -> Any:
        if not self._done:
            self._transport.async_wait(
                self._world_rank, self._t_start, self._t_complete
            )
            self._done = True
        return self._value

    def wait(self) -> Any:
        return self.charge()

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        if self._transport.now(self._world_rank) >= self._t_complete:
            return True, self.charge()
        return False, None


def wait_all(requests: list[Request]) -> list[Any]:
    """Wait on every request; values returned in request order.

    Resolves every request first (matching receives in list order,
    without clock movement), then charges completions in ascending
    ``(completion_time, index)`` order so an early arrival is never
    billed a later arrival's wait.  Deterministic in virtual time on
    both backends.
    """
    for r in requests:
        r.resolve()
    order = sorted(
        range(len(requests)), key=lambda i: (requests[i].completion_time, i)
    )
    out: list[Any] = [None] * len(requests)
    for i in order:
        out[i] = requests[i].charge()
    return out


def wait_any(requests: list[Request]) -> tuple[int, Any]:
    """Complete the earliest-finishing request; ``(index, value)``.

    The other requests stay matched but uncharged — their ``wait()``
    (or a later :func:`wait_all`) settles them.
    """
    if not requests:
        raise ValueError("wait_any on an empty request list")
    for r in requests:
        r.resolve()
    idx = min(
        range(len(requests)), key=lambda i: (requests[i].completion_time, i)
    )
    return idx, requests[idx].charge()
