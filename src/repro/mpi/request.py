"""Nonblocking request handles.

The virtual runtime copies payloads eagerly, so an ``isend`` buffer is
reusable the moment the call returns; what :meth:`Request.wait` models is
the *simulated* completion time.  A send request completes at
``issue_clock + α + β·n`` (overlappable with compute: if the rank's clock
has already passed that point, waiting is free).  A receive request
completes at the matched message's arrival time.

Matching for ``irecv`` happens at :meth:`wait` time.  That is a
simplification relative to MPI (where posted receives participate in
matching immediately), but it is indistinguishable for the deterministic,
loss-free algorithms in this package and keeps the transport simple.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .datatypes import Status
from .errors import BufferError_


class Request:
    """Base request; concrete behaviour provided by subclasses."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check; ``(done, value_or_None)``."""
        raise NotImplementedError


class SendRequest(Request):
    def __init__(
        self,
        transport,
        world_rank: int,
        t_complete: float,
        nbytes: int = 0,
        peer: int = -1,
        seq: int = -1,
    ):
        self._transport = transport
        self._world_rank = world_rank
        self._t_complete = t_complete
        self._nbytes = nbytes
        self._peer = peer
        self._seq = seq
        self._done = False

    def wait(self) -> None:
        if not self._done:
            self._transport.raise_clock(
                self._world_rank, self._t_complete,
                event_kind="send", nbytes=self._nbytes, peer=self._peer,
                seq=self._seq,
            )
            self._done = True

    def test(self) -> tuple[bool, Any]:
        # Eager copies make the buffer immediately reusable; the only
        # effect of completion is the clock raise, applied on first call.
        self.wait()
        return True, None


class RecvRequest(Request):
    def __init__(
        self,
        transport,
        ctx: int,
        dst_world: int,
        src_world: int,
        tag: int,
        buf: np.ndarray | None,
        to_local: Callable[[int], int],
    ):
        self._transport = transport
        self._ctx = ctx
        self._dst_world = dst_world
        self._src_world = src_world
        self._tag = tag
        self._buf = buf
        self._to_local = to_local
        self._done = False
        self._value: Any = None
        self.status = Status()

    def _finish(self, msg, status) -> Any:
        value = msg.unpack()
        self.status = Status(
            source=self._to_local(status.source), tag=status.tag, nbytes=status.nbytes
        )
        if self._buf is not None:
            arr = np.asarray(value)
            if self._buf.size != arr.size:
                raise BufferError_(
                    f"irecv buffer size {self._buf.size} != message size {arr.size}"
                )
            self._buf.reshape(-1)[:] = arr.reshape(-1)
            value = self._buf
        self._done = True
        self._value = value
        return value

    def wait(self) -> Any:
        if self._done:
            return self._value
        msg, status = self._transport.match_recv(
            self._ctx, self._dst_world, self._src_world, self._tag
        )
        return self._finish(msg, status)

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        st = self._transport.probe(self._ctx, self._dst_world, self._src_world, self._tag)
        if st is None:
            return False, None
        return True, self.wait()


def wait_all(requests: list[Request]) -> list[Any]:
    """Wait on every request, returning their values in order."""
    return [r.wait() for r in requests]
