"""Deterministic fault injection for the virtual transport.

The simulator's network is perfect by default: every ``recv`` eventually
matches, no message is delayed, dropped, or reordered, and a stuck rank
hangs the whole run until the watchdog fires.  Real distributed GEMM
stacks must survive jitter, stragglers, and failed transfers; this
module lets an experiment *inject* those conditions deterministically,
so the critical-path profiler (:mod:`repro.obs.critpath`) can measure
exactly how a CA3DMM schedule degrades under each one.

A :class:`FaultPlan` is a seeded, JSON-serializable description of what
goes wrong:

* :class:`LinkFault` rules perturb messages on matching ``src -> dst``
  links (optionally only while the sender is inside a named phase):
  latency inflation (``latency_factor``), seeded jitter (``jitter_s``),
  bounded wire-level reordering (``reorder_window`` — arrival times may
  invert by up to ``window`` flight times; MPI matching order is
  preserved, as on a real reliable transport), drop-with-resend
  (``drop_at`` / ``drop_every`` / ``drop_prob``, each lost
  ``drop_repeat`` times before a retransmit gets through), and silent
  payload corruption (``corrupt_at`` / ``corrupt_prob`` — seeded
  element flips on matching in-flight *array* payloads, the fault model
  the ABFT checksums of :mod:`repro.ft.abft` exist to catch).
* :class:`RankFault` rules perturb ranks: a stall window injected at
  the Nth entry to a named phase (``stall_s``), a compute slowdown
  factor while inside a phase (``slowdown`` — a straggler), a fatal
  scripted abort (``abort=True``), or a *permanent death*
  (``kill=True`` — the rank is marked dead instead of aborting the
  world, enabling ULFM-style survivor recovery; see
  ``docs/RECOVERY.md``).
* a :class:`RetryPolicy` giving the receive-side timeout/retry/backoff
  semantics: a receiver blocked on a *dropped* message times out after
  ``timeout_s`` simulated seconds, requests a retransmit (counted on
  :class:`~repro.mpi.transport.RankTrace` and in
  ``SpmdResult.metrics``), and backs off geometrically; when
  ``max_retries`` is exhausted the receiver raises a typed
  :class:`~repro.mpi.errors.RecvTimeoutError` and the runtime aborts
  every live rank with :class:`~repro.mpi.errors.AbortError` instead
  of hanging.

Determinism: every decision is a pure function of ``(plan.seed, rule
index, src, dst, per-link match counter)``.  Messages on one link are
posted by a single sender thread in program order, so the per-link
counters — and therefore every injected fault — are identical on every
run regardless of thread scheduling.  Timeouts are *simulated-time*
constructs: they fire when the transport can prove the awaited message
was dropped, never from wall-clock racing, so faulted runs stay exactly
reproducible.  (A message that was simply never sent is still a
deadlock, not a timeout — the watchdog keeps that job.)

Plans round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`, schema :data:`FAULTPLAN_JSON_SCHEMA`) so
the same fault scenario can be replayed from the ``repro faults`` CLI,
``python -m repro.bench --fault-plan``, and CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Wildcard rank for link-fault endpoints.
ANY_RANK: int = -1


def _mix(*parts: int) -> float:
    """Deterministic splitmix64-style hash of integers onto [0, 1).

    Independent of ``PYTHONHASHSEED`` and thread scheduling — the whole
    fault layer's reproducibility rests on this.
    """
    h = 0x9E3779B97F4A7C15
    for p in parts:
        h ^= (p & 0xFFFFFFFFFFFFFFFF) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        h = (h ^ (h >> 30)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
    return (h >> 11) / float(1 << 53)


@dataclass(frozen=True)
class LinkDecision:
    """The combined perturbation applied to one posted message."""

    extra_s: float = 0.0  #: additive delay (jitter + reorder slots)
    latency_factor: float = 1.0  #: multiplier on the nominal flight time
    drops: int = 0  #: transmissions lost before a retransmit succeeds
    corrupt_elems: int = 0  #: array elements to flip in the payload (ABFT)

    @property
    def perturbed(self) -> bool:
        return (
            self.extra_s > 0.0
            or self.latency_factor != 1.0
            or self.drops > 0
            or self.corrupt_elems > 0
        )


@dataclass(frozen=True)
class LinkFault:
    """One per-link perturbation rule.

    ``src``/``dst`` are world ranks (:data:`ANY_RANK` matches all);
    ``phase`` restricts the rule to messages posted while the sender is
    inside that phase.  Drop selectors index the rule's *matched*
    messages per link, 0-based, in post order (deterministic: one
    sender thread per link).

    ``corrupt_phase`` restricts *corruption only* to messages posted
    inside that phase: latency/jitter/drop effects keep following
    ``phase``, while the corrupt selectors are evaluated against a
    separate per-link hit counter that counts only ``corrupt_phase``
    messages.  That makes ``corrupt_at=(0,)`` mean "the first message
    this link sends in that stage", regardless of how much earlier
    traffic the link carried.
    """

    src: int = ANY_RANK
    dst: int = ANY_RANK
    phase: str | None = None
    latency_factor: float = 1.0
    jitter_s: float = 0.0
    reorder_window: int = 0
    drop_at: tuple[int, ...] = ()
    drop_every: int = 0
    drop_prob: float = 0.0
    drop_repeat: int = 1
    corrupt_at: tuple[int, ...] = ()
    corrupt_prob: float = 0.0
    corrupt_elems: int = 1
    corrupt_phase: str | None = None

    def __post_init__(self) -> None:
        if self.latency_factor < 0:
            raise ValueError("latency_factor must be >= 0")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        if self.reorder_window < 0:
            raise ValueError("reorder_window must be >= 0")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if self.drop_repeat < 1:
            raise ValueError("drop_repeat must be >= 1")
        if any(i < 0 for i in self.drop_at):
            raise ValueError("drop_at indices must be >= 0")
        if any(i < 0 for i in self.corrupt_at):
            raise ValueError("corrupt_at indices must be >= 0")
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("corrupt_prob must be in [0, 1]")
        if self.corrupt_elems < 1:
            raise ValueError("corrupt_elems must be >= 1")
        if (
            self.corrupt_phase is not None
            and self.phase is not None
            and self.phase != self.corrupt_phase
        ):
            raise ValueError(
                "corrupt_phase must equal phase (or leave phase unset): "
                f"phase={self.phase!r} corrupt_phase={self.corrupt_phase!r}"
            )
        object.__setattr__(self, "drop_at", tuple(self.drop_at))
        object.__setattr__(self, "corrupt_at", tuple(self.corrupt_at))

    def matches(self, src: int, dst: int, phase: str) -> bool:
        if self.src != ANY_RANK and self.src != src:
            return False
        if self.dst != ANY_RANK and self.dst != dst:
            return False
        return self.phase is None or self.phase == phase

    def decide(
        self, seed: int, salt: int, src: int, dst: int, hit: int, flight_s: float
    ) -> LinkDecision:
        """The perturbation for the ``hit``-th matched message on a link."""
        extra = 0.0
        if self.jitter_s > 0.0:
            extra += self.jitter_s * _mix(seed, salt, 1, src, dst, hit)
        if self.reorder_window > 0:
            # Up to `window` extra flights of delay: a later message on
            # the link can arrive first (bounded arrival inversion).
            slot = int(
                _mix(seed, salt, 2, src, dst, hit) * (self.reorder_window + 1)
            )
            extra += slot * max(flight_s, 0.0)
        dropped = hit in self.drop_at
        if not dropped and self.drop_every > 0:
            dropped = hit % self.drop_every == self.drop_every - 1
        if not dropped and self.drop_prob > 0.0:
            dropped = _mix(seed, salt, 3, src, dst, hit) < self.drop_prob
        if self.corrupt_phase is not None:
            # Phase-targeted corruption runs off its own hit counter:
            # the transport calls :meth:`corrupt_elems_for` with hits
            # counted only inside ``corrupt_phase``.
            elems = 0
        else:
            elems = self.corrupt_elems_for(seed, salt, src, dst, hit)
        return LinkDecision(
            extra_s=extra,
            latency_factor=self.latency_factor,
            drops=self.drop_repeat if dropped else 0,
            corrupt_elems=elems,
        )

    def corrupt_elems_for(
        self, seed: int, salt: int, src: int, dst: int, hit: int
    ) -> int:
        """Elements to flip for the ``hit``-th corruption-eligible message."""
        corrupted = hit in self.corrupt_at
        if not corrupted and self.corrupt_prob > 0.0:
            corrupted = _mix(seed, salt, 4, src, dst, hit) < self.corrupt_prob
        return self.corrupt_elems if corrupted else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "phase": self.phase,
            "latency_factor": self.latency_factor,
            "jitter_s": self.jitter_s,
            "reorder_window": self.reorder_window,
            "drop_at": list(self.drop_at),
            "drop_every": self.drop_every,
            "drop_prob": self.drop_prob,
            "drop_repeat": self.drop_repeat,
            "corrupt_at": list(self.corrupt_at),
            "corrupt_prob": self.corrupt_prob,
            "corrupt_elems": self.corrupt_elems,
            "corrupt_phase": self.corrupt_phase,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "LinkFault":
        return cls(
            src=int(doc.get("src", ANY_RANK)),
            dst=int(doc.get("dst", ANY_RANK)),
            phase=doc.get("phase"),
            latency_factor=float(doc.get("latency_factor", 1.0)),
            jitter_s=float(doc.get("jitter_s", 0.0)),
            reorder_window=int(doc.get("reorder_window", 0)),
            drop_at=tuple(int(i) for i in doc.get("drop_at", ())),
            drop_every=int(doc.get("drop_every", 0)),
            drop_prob=float(doc.get("drop_prob", 0.0)),
            drop_repeat=int(doc.get("drop_repeat", 1)),
            corrupt_at=tuple(int(i) for i in doc.get("corrupt_at", ())),
            corrupt_prob=float(doc.get("corrupt_prob", 0.0)),
            corrupt_elems=int(doc.get("corrupt_elems", 1)),
            corrupt_phase=doc.get("corrupt_phase"),
        )


@dataclass(frozen=True)
class RankFault:
    """One per-rank perturbation rule.

    Stalls and aborts trigger when ``rank`` enters a phase matching
    ``phase`` (``None`` matches every phase) for the ``occurrence``-th
    time (1-based; 0 triggers on every matching entry).  ``slowdown``
    multiplies the rank's compute time while inside a matching phase.
    """

    rank: int
    phase: str | None = None
    occurrence: int = 1
    stall_s: float = 0.0
    slowdown: float = 1.0
    abort: bool = False
    kill: bool = False

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank faults need an explicit rank")
        if self.occurrence < 0:
            raise ValueError("occurrence must be >= 0")
        if self.stall_s < 0:
            raise ValueError("stall_s must be >= 0")
        if self.slowdown < 0:
            raise ValueError("slowdown must be >= 0")
        if self.abort and self.kill:
            raise ValueError("abort and kill are mutually exclusive")

    def matches_phase(self, rank: int, phase: str) -> bool:
        return rank == self.rank and (self.phase is None or self.phase == phase)

    def triggers(self, rank: int, phase: str, entry_count: int) -> bool:
        """Whether entering ``phase`` for the ``entry_count``-th time fires."""
        if not self.matches_phase(rank, phase):
            return False
        return self.occurrence == 0 or entry_count == self.occurrence

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "phase": self.phase,
            "occurrence": self.occurrence,
            "stall_s": self.stall_s,
            "slowdown": self.slowdown,
            "abort": self.abort,
            "kill": self.kill,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "RankFault":
        return cls(
            rank=int(doc["rank"]),
            phase=doc.get("phase"),
            occurrence=int(doc.get("occurrence", 1)),
            stall_s=float(doc.get("stall_s", 0.0)),
            slowdown=float(doc.get("slowdown", 1.0)),
            abort=bool(doc.get("abort", False)),
            kill=bool(doc.get("kill", False)),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Receive-side timeout/retry/backoff semantics under a fault plan.

    A receiver blocked on a message the transport knows was dropped
    waits ``timeout_s`` simulated seconds, then requests a retransmit;
    the ``n``-th timeout waits ``timeout_s * backoff**(n-1)``.  After
    ``max_retries`` timeouts the next one raises
    :class:`~repro.mpi.errors.RecvTimeoutError` (``max_retries=0``
    disables retries: the first timeout is fatal).
    """

    timeout_s: float = 1e-3
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    def nth_timeout_s(self, attempt: int) -> float:
        """Simulated wait before retransmit request ``attempt`` (1-based)."""
        return self.timeout_s * self.backoff ** (attempt - 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "RetryPolicy":
        return cls(
            timeout_s=float(doc.get("timeout_s", 1e-3)),
            max_retries=int(doc.get("max_retries", 3)),
            backoff=float(doc.get("backoff", 2.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable description of everything that goes wrong."""

    seed: int = 0
    links: tuple[LinkFault, ...] = ()
    ranks: tuple[RankFault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "ranks", tuple(self.ranks))

    # -------------------------------------------------------- decisions -- #
    def link_rules(self, src: int, dst: int, phase: str):
        """Indexed rules matching one posted message (salt, rule) pairs."""
        return [
            (i, r) for i, r in enumerate(self.links) if r.matches(src, dst, phase)
        ]

    def compute_factor(self, rank: int, phase: str) -> float:
        """Combined compute-slowdown multiplier for ``rank`` in ``phase``."""
        f = 1.0
        for r in self.ranks:
            if r.slowdown != 1.0 and r.matches_phase(rank, phase):
                f *= r.slowdown
        return f

    @property
    def has_compute_faults(self) -> bool:
        return any(r.slowdown != 1.0 for r in self.ranks)

    # ---------------------------------------------------- serialization -- #
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": 1,
            "seed": self.seed,
            "links": [r.to_dict() for r in self.links],
            "ranks": [r.to_dict() for r in self.ranks],
            "retry": self.retry.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        validate_fault_plan(doc)
        return cls(
            seed=int(doc.get("seed", 0)),
            links=tuple(LinkFault.from_dict(d) for d in doc.get("links", ())),
            ranks=tuple(RankFault.from_dict(d) for d in doc.get("ranks", ())),
            retry=RetryPolicy.from_dict(doc.get("retry", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


FAULTPLAN_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "fault-injection plan",
    "type": "object",
    "required": ["schema_version", "seed"],
    "properties": {
        "schema_version": {"const": 1},
        "seed": {"type": "integer"},
        "links": {
            "type": "array",
            "items": {
                "type": "object",
                "properties": {
                    "src": {"type": "integer", "minimum": -1},
                    "dst": {"type": "integer", "minimum": -1},
                    "phase": {"type": ["string", "null"]},
                    "latency_factor": {"type": "number", "minimum": 0},
                    "jitter_s": {"type": "number", "minimum": 0},
                    "reorder_window": {"type": "integer", "minimum": 0},
                    "drop_at": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                    },
                    "drop_every": {"type": "integer", "minimum": 0},
                    "drop_prob": {"type": "number", "minimum": 0, "maximum": 1},
                    "drop_repeat": {"type": "integer", "minimum": 1},
                    "corrupt_at": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                    },
                    "corrupt_prob": {"type": "number", "minimum": 0, "maximum": 1},
                    "corrupt_elems": {"type": "integer", "minimum": 1},
                    "corrupt_phase": {"type": ["string", "null"]},
                },
            },
        },
        "ranks": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rank"],
                "properties": {
                    "rank": {"type": "integer", "minimum": 0},
                    "phase": {"type": ["string", "null"]},
                    "occurrence": {"type": "integer", "minimum": 0},
                    "stall_s": {"type": "number", "minimum": 0},
                    "slowdown": {"type": "number", "minimum": 0},
                    "abort": {"type": "boolean"},
                    "kill": {"type": "boolean"},
                },
            },
        },
        "retry": {
            "type": "object",
            "properties": {
                "timeout_s": {"type": "number", "exclusiveMinimum": 0},
                "max_retries": {"type": "integer", "minimum": 0},
                "backoff": {"type": "number", "minimum": 1},
            },
        },
    },
}


def validate_fault_plan(doc: Any) -> None:
    """Raise ``TraceSchemaError`` unless ``doc`` is a valid plan document."""
    from ..obs.export import _validate

    _validate(doc, FAULTPLAN_JSON_SCHEMA)
