"""SPMD launcher for the virtual MPI world.

:func:`run_spmd` plays the role of ``mpiexec``: it hands every rank a
world :class:`~repro.mpi.comm.Comm`, runs the user's rank function, and
collects per-rank return values plus the transport's traffic traces.

Two interchangeable backends execute the ranks:

``"threads"`` (default)
    One free-running OS thread per rank, serialised by the transport's
    coarse lock.  A watchdog samples the transport's progress counter
    and raises :class:`~repro.mpi.errors.DeadlockError` when every live
    rank has been blocked with no progress for the timeout.

``"des"``
    The discrete-event scheduler (:mod:`repro.mpi.des`): at most one
    rank runs at a time, chosen by virtual clock, with deadlocks
    detected structurally.  Scales to thousands of ranks and is
    replay-deterministic by construction.  Also selectable with the
    ``REPRO_MPI_BACKEND`` environment variable.

Failure handling mirrors a batch MPI job on both backends: the first
rank to raise aborts the world (all blocked ranks are woken with
:class:`~repro.mpi.errors.AbortError`) and the original exception is
re-raised on the driver thread.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..machine.model import MachineModel
from .comm import Comm
from .des import run_des
from .errors import AbortError, DeadlockError, RankKilledError
from .faults import FaultPlan
from .transport import RankTrace, Transport

#: Context id of the world communicator.
WORLD_CTX = 0

#: Recognised values for ``run_spmd(backend=...)``.
BACKENDS = ("threads", "des")

#: Environment variable overriding the default backend (CI runs the
#: whole suite under ``REPRO_MPI_BACKEND=des``).
BACKEND_ENV = "REPRO_MPI_BACKEND"


@dataclass
class SpmdResult:
    """Everything the driver gets back from an SPMD run."""

    results: list[Any]  #: per-rank return values of the rank function
    traces: list[RankTrace]  #: per-rank traffic/clock traces
    transport: Transport  #: the (now idle) transport, for inspection

    @property
    def time(self) -> float:
        """Simulated makespan: the maximum rank clock."""
        return max((t.time for t in self.traces), default=0.0)

    @property
    def spans(self):
        """Tracer spans recorded during the run (requires record_events)."""
        return self.transport.tracer.spans

    @property
    def metrics(self):
        """Lazily-built :class:`~repro.obs.metrics.RunMetrics` snapshot."""
        cached = getattr(self, "_metrics_cache", None)
        if cached is None:
            from ..obs.metrics import snapshot_run

            cached = self._metrics_cache = snapshot_run(self)
        return cached

    @property
    def failed_ranks(self) -> list[int]:
        """World ranks killed by injected permanent failures, sorted."""
        return sorted(self.transport.dead_ranks())

    @property
    def live_traces(self) -> list[RankTrace]:
        """Traces of surviving ranks only (dead ranks' clocks stopped at
        the kill point and would skew overlap/imbalance gauges)."""
        dead = self.transport.dead_ranks()
        if not dead:
            return self.traces
        return [t for t in self.traces if t.rank not in dead]

    @property
    def max_bytes_sent(self) -> int:
        """The paper's Q metric (in bytes): max over ranks of bytes sent."""
        return max((t.bytes_sent for t in self.traces), default=0)

    @property
    def max_msgs_sent(self) -> int:
        """The paper's L metric: max over ranks of messages sent."""
        return max((t.msgs_sent for t in self.traces), default=0)

    @property
    def total_bytes(self) -> int:
        return sum(t.bytes_sent for t in self.traces)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    machine: MachineModel | None = None,
    deadlock_timeout: float = 30.0,
    record_events: bool = False,
    faults: FaultPlan | None = None,
    backend: str | None = None,
) -> SpmdResult:
    """Run ``fn(comm, *args)`` on ``nprocs`` virtual ranks.

    Parameters
    ----------
    nprocs:
        World size.
    backend:
        ``"threads"`` (default) or ``"des"`` — see the module docstring.
        ``None`` consults the ``REPRO_MPI_BACKEND`` environment variable
        and falls back to ``"threads"``.
    fn:
        The per-rank entry point; called as ``fn(comm, *args)`` on every
        rank.  Its return value is collected into ``results[rank]``.
    args:
        Extra positional arguments, identical on every rank.
    machine:
        Cost model; defaults to :class:`~repro.machine.model.MachineModel`.
    deadlock_timeout:
        Wall-clock seconds of global no-progress after which the run is
        aborted as deadlocked.
    record_events:
        Record per-rank simulated-time :class:`~repro.mpi.transport.Event`
        intervals (send/recv/wait/compute) on ``result.transport.events``
        for timeline rendering (:mod:`repro.analysis.timeline`).
    faults:
        Optional deterministic :class:`~repro.mpi.faults.FaultPlan` the
        transport consults to perturb messages and ranks
        (:mod:`repro.mpi.faults`).  A rank that exhausts its retry
        budget (:class:`~repro.mpi.errors.RecvTimeoutError`) or hits a
        scripted abort (:class:`~repro.mpi.errors.InjectedAbortError`)
        fails the job exactly like an organic rank error: every live
        rank is woken with :class:`~repro.mpi.errors.AbortError` and the
        typed original is re-raised (chained) on the driver thread.

        A permanent kill (``RankFault(kill=True)``) is different: the
        killed rank's thread just ends (its result stays ``None``) and
        the world keeps running.  Survivors that touch the dead rank see
        :class:`~repro.mpi.errors.RankFailedError`, which — absent a
        recovery driver (:func:`repro.ft.resilient_multiply`) — aborts
        the world like any other rank error.
    """
    backend = backend or os.environ.get(BACKEND_ENV) or "threads"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    transport = Transport(nprocs, machine, record_events=record_events, faults=faults)
    results: list[Any] = [None] * nprocs
    errors: list[tuple[int, BaseException, str]] = []
    err_lock = threading.Lock()

    def rank_body(rank: int) -> None:
        comm = Comm(transport, WORLD_CTX, range(nprocs), rank)
        try:
            results[rank] = fn(comm, *args)
        except AbortError:
            # Secondary casualty of another rank's failure: its spans
            # died with it, so reclaim them from the leak table.
            transport.release_rank_memory(rank)
        except RankKilledError:
            # Injected permanent death: the rank ends, the world keeps
            # going, and whatever it held allocated is gone with it.
            transport.release_rank_memory(rank)
        except BaseException as exc:  # noqa: BLE001 - must not die silently
            with err_lock:
                errors.append((rank, exc, traceback.format_exc()))
            transport.release_rank_memory(rank)
            transport.abort(AbortError(rank, exc))
        finally:
            # Tell the transport this rank can never post again, so the
            # revocation quiescence check stops waiting on it.
            transport.mark_finished(rank)

    if backend == "des":
        run_des(transport, nprocs, rank_body, deadlock_timeout=deadlock_timeout)
    else:
        _run_threaded(transport, nprocs, rank_body, deadlock_timeout)

    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc, tb = errors[0]
        raise RuntimeError(
            f"rank {rank} failed in SPMD run:\n{tb}"
        ) from exc

    return SpmdResult(results=results, traces=transport.traces(), transport=transport)


def _run_threaded(
    transport: Transport,
    nprocs: int,
    rank_body: Callable[[int], None],
    deadlock_timeout: float,
) -> None:
    """Thread backend: free-running rank threads + a watchdog driver."""
    done = threading.Event()
    count_lock = threading.Lock()
    finished = [0]

    def rank_main(rank: int) -> None:
        try:
            rank_body(rank)
        finally:
            with count_lock:
                finished[0] += 1
                if finished[0] == nprocs:
                    done.set()

    threads = [
        threading.Thread(target=rank_main, args=(r,), name=f"vmpi-rank-{r}", daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()

    # Watchdog loop on the driver thread.
    stall = 0.0
    poll = 0.25
    last_progress = -1
    while not done.wait(timeout=poll):
        progress = transport.progress
        blocked = transport.blocked_ranks()
        with count_lock:
            n_done = finished[0]
        if progress == last_progress and len(blocked) + n_done == nprocs and blocked:
            stall += poll
            if stall >= deadlock_timeout:
                err = DeadlockError(blocked)
                transport.abort(AbortError(-1, err))
                done.wait(timeout=5.0)
                raise err
        else:
            stall = 0.0
        last_progress = progress

    for t in threads:
        t.join(timeout=5.0)
