"""Cartesian process-grid helpers used by the 2D/3D algorithms.

The paper organizes the ``pm x pn x pk`` grid column-major: ranks in the
same k-task group (and the same Cannon group within it) are contiguous.
:class:`Cart2D` gives 2D algorithms (Cannon, SUMMA) coordinates, row and
column subcommunicators, and circular-shift neighbours on an existing
communicator without reinventing index arithmetic at every call site.
"""

from __future__ import annotations

from dataclasses import dataclass

from .comm import Comm
from .errors import CommError


@dataclass(frozen=True)
class GridCoords2D:
    """Coordinates of a rank in a column-major 2D grid."""

    row: int
    col: int


class Cart2D:
    """A column-major ``nrows x ncols`` view of a communicator.

    Local rank ``r`` sits at ``(row, col) = (r % nrows, r // nrows)``,
    matching the column-major convention used throughout the paper's
    examples (Fig. 2).
    """

    def __init__(self, comm: Comm, nrows: int, ncols: int):
        if comm.size != nrows * ncols:
            raise CommError(
                f"Cart2D {nrows}x{ncols} needs {nrows * ncols} ranks, comm has {comm.size}"
            )
        self.comm = comm
        self.nrows = nrows
        self.ncols = ncols
        self.row = comm.rank % nrows
        self.col = comm.rank // nrows

    def rank_of(self, row: int, col: int) -> int:
        """Local rank of the process at ``(row, col)`` (wrapping)."""
        return (row % self.nrows) + (col % self.ncols) * self.nrows

    @property
    def coords(self) -> GridCoords2D:
        return GridCoords2D(self.row, self.col)

    # Circular-shift neighbours (used by Cannon's algorithm).
    def left(self, by: int = 1) -> int:
        return self.rank_of(self.row, self.col - by)

    def right(self, by: int = 1) -> int:
        return self.rank_of(self.row, self.col + by)

    def up(self, by: int = 1) -> int:
        return self.rank_of(self.row - by, self.col)

    def down(self, by: int = 1) -> int:
        return self.rank_of(self.row + by, self.col)

    def row_comm(self) -> Comm:
        """Subcommunicator of this rank's grid row (collective)."""
        sub = self.comm.split(color=self.row, key=self.col)
        assert sub is not None
        return sub

    def col_comm(self) -> Comm:
        """Subcommunicator of this rank's grid column (collective)."""
        sub = self.comm.split(color=self.col, key=self.row)
        assert sub is not None
        return sub


class Cart3D:
    """A column-major ``ni x nj x nl`` view of a communicator.

    Local rank ``r`` sits at ``(i, j, l)`` with ``i`` fastest:
    ``r = i + ni*j + ni*nj*l`` — the rank-order convention of the 3D and
    2.5D algorithms and of CA3DMM's grid (the l/k index outermost).
    Fiber subcommunicators vary one coordinate while fixing the others.
    """

    def __init__(self, comm: Comm, ni: int, nj: int, nl: int):
        if comm.size != ni * nj * nl:
            raise CommError(
                f"Cart3D {ni}x{nj}x{nl} needs {ni * nj * nl} ranks, comm has {comm.size}"
            )
        self.comm = comm
        self.ni, self.nj, self.nl = ni, nj, nl
        self.i = comm.rank % ni
        self.j = (comm.rank // ni) % nj
        self.l = comm.rank // (ni * nj)

    def rank_of(self, i: int, j: int, l: int) -> int:
        """Local rank at ``(i, j, l)`` (coordinates wrap)."""
        return (
            (i % self.ni)
            + (j % self.nj) * self.ni
            + (l % self.nl) * self.ni * self.nj
        )

    @property
    def coords(self) -> tuple[int, int, int]:
        return self.i, self.j, self.l

    def i_fiber(self) -> Comm:
        """Ranks sharing (j, l), ordered by i (collective)."""
        sub = self.comm.split(color=self.j + self.nj * self.l, key=self.i)
        assert sub is not None
        return sub

    def j_fiber(self) -> Comm:
        """Ranks sharing (i, l), ordered by j (collective)."""
        sub = self.comm.split(color=self.i + self.ni * self.l, key=self.j)
        assert sub is not None
        return sub

    def l_fiber(self) -> Comm:
        """Ranks sharing (i, j), ordered by l (collective)."""
        sub = self.comm.split(color=self.i + self.ni * self.j, key=self.l)
        assert sub is not None
        return sub

    def layer(self) -> Comm:
        """The (i, j) plane at this rank's l, ordered column-major."""
        sub = self.comm.split(color=self.l, key=self.i + self.ni * self.j)
        assert sub is not None
        return sub
