"""Discrete-event scheduler backend for the virtual MPI.

The default (thread) backend in :mod:`repro.mpi.runtime` runs every rank
as a free-running Python thread and serialises them with one coarse
lock + condition.  That is simple and faithful, but ``notify_all`` on
every send makes a P-rank world cost O(P) wakeups per message, the OS
scheduler decides who observes shared flags first, and practical world
sizes top out at a few dozen ranks.

This module keeps the rank *programs* exactly as they are — arbitrary
Python calling deep into the engines — but takes scheduling away from
the OS.  Each rank still owns a thread (its stack is where the program's
state lives), yet **at most one rank thread runs at any instant**: a
rank runs until it must block inside the transport, parks on its private
:class:`threading.Event`, and hands the world to the runnable rank with
the *lowest virtual clock*.  The result is a single-threaded
discrete-event simulation in all but mechanism:

* event ordering is a pure function of the virtual clocks and each
  rank's program order — replays are byte-identical by construction,
  with no quiescence gating or cross-thread ordering hacks;
* a blocked world is recognised *structurally* (nothing runnable, not
  everything finished) and reported as
  :class:`~repro.mpi.errors.DeadlockError` immediately, instead of
  after a wall-clock no-progress timeout;
* wakeups are precise — a send readies exactly its receiver — so a
  1024-rank ``pdgemm`` simulation completes in seconds.

Scheduling state machine (all transitions under the transport lock):

``new → ready → running → {blocked, polling, finished}``; ``blocked``
ranks are readied by the transport's wake hooks (message posted to
them, agree vote recorded, world aborted, rank killed), ``polling``
ranks (a probe that found nothing) sit in a FIFO that is drained only
when the ready heap is empty, so a spin-probing rank cannot starve
ranks that have real work.  The ready heap is keyed
``(virtual clock, push order, rank)`` — the min-clock rank runs next,
which is exactly the event-heap order of a classical DES.

The driver thread only acts when no rank is runnable: it either
unsticks a revoked-and-quiescent world (mirroring the thread backend's
revocation semantics), declares a structural deadlock, or — for pure
probe-polling livelocks, where ranks stay runnable but the world makes
no progress — applies the same wall-clock watchdog as the thread
backend.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import TYPE_CHECKING, Callable

from .errors import AbortError, DeadlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .transport import Transport

#: Scheduler states a rank strand moves through.
_NEW, _READY, _RUNNING, _BLOCKED, _POLLING, _FINISHED = (
    "new", "ready", "running", "blocked", "polling", "finished",
)


class DesScheduler:
    """Cooperative rank scheduler driving one transport's world.

    All methods ending in ``_locked`` require the transport lock; the
    transport calls the ``wake_*`` hooks and ``park_locked`` /
    ``poll_yield_locked`` from inside its own critical sections, so a
    park-then-wake can never be lost.
    """

    def __init__(self, transport: "Transport", nprocs: int):
        self.transport = transport
        self.nprocs = nprocs
        self._events = [threading.Event() for _ in range(nprocs)]
        self._state = [_NEW] * nprocs
        #: why a blocked rank is parked: ``"recv"`` or ``"agree"``.
        self._why: list[str | None] = [None] * nprocs
        #: min-heap of (virtual clock at push, push counter, rank).
        self._ready: list[tuple[float, int, int]] = []
        self._push_counter = 0
        #: probe-miss yields, drained only when the ready heap is empty.
        self._polling: deque[int] = deque()
        self._running: int | None = None
        self._running_from_poll = False
        self._poll_resumes = 0
        self._finished_count = 0
        #: set whenever no rank is runnable — the driver's turn to act.
        self.driver_evt = threading.Event()

    # ------------------------------------------------------- dispatching -- #
    def _pop_runnable_locked(self) -> int | None:
        """Next rank to run: min-clock ready rank, else the oldest poller."""
        while self._ready:
            _, _, r = heapq.heappop(self._ready)
            if self._state[r] == _READY:
                self._running_from_poll = False
                return r
        while self._polling:
            r = self._polling.popleft()
            if self._state[r] == _POLLING:
                self._poll_resumes += 1
                self._running_from_poll = True
                return r
        return None

    def _dispatch_locked(self) -> None:
        """Hand the world to the next runnable rank (or to the driver)."""
        r = self._pop_runnable_locked()
        if r is None:
            self.driver_evt.set()
        else:
            self._running = r
            self._state[r] = _RUNNING
            self._events[r].set()

    def dispatch_rank_locked(self, rank: int) -> None:
        """Driver-side: resume a specific runnable rank."""
        self._running = rank
        self._state[rank] = _RUNNING
        self._events[rank].set()

    def make_ready_locked(self, rank: int) -> None:
        if self._state[rank] in (_BLOCKED, _NEW):
            self._state[rank] = _READY
            self._why[rank] = None
            heapq.heappush(
                self._ready,
                (self.transport.ranks[rank].clock, self._push_counter, rank),
            )
            self._push_counter += 1

    # ------------------------------------------------------------ parking -- #
    def _handoff_locked(self, rank: int) -> None:
        """Give up the world and sleep until dispatched again.

        The transport lock is released only *after* the next rank (or
        the driver) has been chosen and signalled, so there is no window
        in which nobody owns the world.  ``Event`` semantics make the
        set-before-wait race benign: a rank re-dispatched before it
        reaches ``wait()`` just sails through.
        """
        self._running = None
        self._dispatch_locked()
        evt = self._events[rank]
        lock = self.transport._lock
        lock.release()
        try:
            evt.wait()
            evt.clear()
        finally:
            lock.acquire()

    def park_locked(self, rank: int, why: str) -> None:
        """Block ``rank`` until a wake hook readies it (recv/agree wait)."""
        self._state[rank] = _BLOCKED
        self._why[rank] = why
        self._handoff_locked(rank)

    def poll_yield_locked(self, rank: int) -> None:
        """Cooperative yield from a probe miss: stay runnable, go last."""
        self._state[rank] = _POLLING
        self._polling.append(rank)
        self._handoff_locked(rank)

    # --------------------------------------------------------- wake hooks -- #
    def wake_recv_locked(self, rank: int) -> None:
        """A message was posted (or dropped-and-held) for ``rank``."""
        if self._state[rank] == _BLOCKED and self._why[rank] == "recv":
            self.make_ready_locked(rank)

    def wake_agree_locked(self) -> None:
        """An agree vote/result or a finish changed the rendezvous state."""
        for r in range(self.nprocs):
            if self._state[r] == _BLOCKED and self._why[r] == "agree":
                self.make_ready_locked(r)

    def wake_all_locked(self) -> None:
        """World-changing event (abort, kill): every blocked rank re-checks."""
        for r in range(self.nprocs):
            if self._state[r] == _BLOCKED:
                self.make_ready_locked(r)

    # ------------------------------------------------------------ strands -- #
    def strand_main(self, rank: int, body: Callable[[int], None]) -> None:
        """Thread target for one rank strand."""
        evt = self._events[rank]
        evt.wait()
        evt.clear()
        try:
            body(rank)
        finally:
            with self.transport._lock:
                self._state[rank] = _FINISHED
                self._why[rank] = None
                self._finished_count += 1
                self._running = None
                self._dispatch_locked()


def run_des(
    transport: "Transport",
    nprocs: int,
    rank_body: Callable[[int], None],
    deadlock_timeout: float = 30.0,
) -> None:
    """Drive ``rank_body`` on every rank under the DES scheduler.

    Returns when every rank strand has finished; raises
    :class:`DeadlockError` (after aborting and draining the world) when
    the world blocks structurally or spins in a pure probe-poll loop
    with no virtual progress for ``deadlock_timeout`` wall seconds.
    """
    sched = DesScheduler(transport, nprocs)
    transport.scheduler = sched
    threads = [
        threading.Thread(
            target=sched.strand_main,
            args=(r, rank_body),
            name=f"vmpi-des-{r}",
            daemon=True,
        )
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    with transport._lock:
        for r in range(nprocs):
            sched.make_ready_locked(r)
        sched._dispatch_locked()

    poll = 0.05
    stall = 0.0
    last_progress = -1
    last_spins = -1
    deadlock: DeadlockError | None = None

    while True:
        if sched.driver_evt.wait(timeout=poll):
            sched.driver_evt.clear()
        pending_blocked: dict[int, str] | None = None
        with transport._lock:
            if sched._finished_count == nprocs:
                break
            if sched._running is None:
                r = sched._pop_runnable_locked()
                if r is not None:
                    # Benign race: a strand parked between our wait() and
                    # the lock; just resume the chosen rank.
                    sched.dispatch_rank_locked(r)
                    stall = 0.0
                    continue
                if (
                    transport.aborted is None
                    and transport.revoked
                    and transport._quiescent_locked()
                ):
                    # Revocation unstick: every parked receiver re-checks;
                    # a deliverable message still wins, the rest unwind
                    # with CommRevokedError at their park clocks — the
                    # same stable cut the thread backend converges to.
                    for rr in range(nprocs):
                        if sched._state[rr] == _BLOCKED and sched._why[rr] == "recv":
                            sched.make_ready_locked(rr)
                    r = sched._pop_runnable_locked()
                    if r is not None:
                        sched.dispatch_rank_locked(r)
                        stall = 0.0
                        continue
                if transport.aborted is not None:
                    # Post-abort the world must drain on its own; nothing
                    # runnable with unfinished strands is a scheduler bug.
                    raise RuntimeError(
                        "DES scheduler wedged after abort: "
                        f"states={sched._state!r}"
                    )
                if deadlock is None:
                    pending_blocked = {
                        rr: transport.ranks[rr].waiting_on or "blocked"
                        for rr in range(nprocs)
                        if sched._state[rr] == _BLOCKED
                    }
            else:
                # A rank is running: the only pathology reachable from
                # here is a probe-poll livelock (runnable pollers, no
                # virtual progress).  Long organic computes are exempt:
                # they are not poll resumes, so `spins` stays flat and
                # the stall counter resets.
                progress = transport.progress
                spins = sched._poll_resumes
                pure_polling = (
                    not sched._ready
                    and sched._running_from_poll
                    and all(
                        sched._state[rr] in (_POLLING, _BLOCKED, _FINISHED)
                        or rr == sched._running
                        for rr in range(nprocs)
                    )
                )
                if (
                    progress != last_progress
                    or spins == last_spins
                    or not pure_polling
                ):
                    stall = 0.0
                elif deadlock is None:
                    stall += poll
                    if stall >= deadlock_timeout:
                        pending_blocked = {
                            rr: (
                                transport.ranks[rr].waiting_on
                                or "polling (probe loop)"
                            )
                            for rr in range(nprocs)
                            if sched._state[rr] in (_POLLING, _BLOCKED)
                            or rr == sched._running
                        }
                last_progress = progress
                last_spins = spins
        if pending_blocked is not None:
            deadlock = DeadlockError(pending_blocked)
            # Abort exactly like the thread watchdog: wake everything,
            # let the strands unwind with AbortError, then re-raise the
            # typed deadlock on the driver once the world has drained.
            transport.abort(AbortError(-1, deadlock))

    for t in threads:
        t.join(timeout=5.0)
    if deadlock is not None:
        raise deadlock
