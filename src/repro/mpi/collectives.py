"""Collective operations, built on the point-to-point layer.

Each collective is implemented with a textbook algorithm whose message
count and volume match the α-β costs the CA3DMM paper assumes
(Thakur, Rabenseifner & Gropp, IJHPCA 2005):

=================  ============================  ===========================
collective         algorithm                     per-rank cost
=================  ============================  ===========================
barrier            dissemination                 α·⌈log2 P⌉
bcast              binomial (short) /            α·log2 P + β·n   (short)
                   scatter+allgather (long)      α(log2 P + P-1) + 2βn(P-1)/P
reduce             binomial tree                 α·log2 P + β·n
allreduce          recursive doubling (2^t) /    α·log2 P + β·n
                   reduce+bcast otherwise
gather/scatter     linear                        α(P-1) + βn(P-1)/P at root
allgather          Bruck                         α·⌈log2 P⌉ + βn(P-1)/P
alltoall           pairwise exchange             α(P-1) + βn(P-1)/P
reduce_scatter     pairwise exchange             α(P-1) + βn(P-1)/P
=================  ============================  ===========================

Because these run on the measured transport, executed traffic can be
checked against the paper's closed-form costs (see ``tests/analysis``).

All functions are collective: every rank of the communicator must call
them in the same order.  Message tags are drawn from a reserved internal
range; per-(source, tag) FIFO matching makes back-to-back collectives on
the same communicator safe without per-call tag salting.

Every collective is built on ``sendrecv``/``recv``, so under a fault
plan (:mod:`repro.mpi.faults`) they inherit the receive-side
timeout/retry/backoff semantics automatically: a dropped message inside
a collective shows up as injected retries on the affected rank, and an
exhausted retry budget aborts the job with a typed
:class:`~repro.mpi.errors.RecvTimeoutError` instead of hanging.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Sequence

import numpy as np

from ..obs.tracer import CAT_COLLECTIVE
from .datatypes import INTERNAL_TAG_BASE, Op, SUM
from .request import CollRequest


@contextlib.contextmanager
def _span(comm, name: str, algo: str | None = None) -> Iterator[None]:
    """Trace one collective call as a span and attribute its traffic.

    The tracer span is a fast no-op when tracing is off; the algorithm
    label (``algo``, defaulting to ``name``) is *always* pushed so the
    transport can attribute every message to its originating collective
    algorithm (``RankTrace.colls``).  Labels nest outermost-wins: the
    scatter+allgather inside a long broadcast accounts to the broadcast.
    """
    transport = comm.transport
    label = name if algo is None else algo  # algo="" defers to inner _algo
    if label:
        transport.push_coll(comm.world_rank, label)
    sid = None
    if transport.tracer.enabled:
        sid = transport.begin_span(
            comm.world_rank, name, cat=CAT_COLLECTIVE, attrs={"comm_size": comm.size}
        )
    try:
        yield
    finally:
        if sid is not None:
            transport.end_span(comm.world_rank, sid)
        if label:
            transport.pop_coll(comm.world_rank)


@contextlib.contextmanager
def _algo(comm, label: str) -> Iterator[None]:
    """Re-label traffic inside one branch of a collective (no span)."""
    transport = comm.transport
    transport.push_coll(comm.world_rank, label)
    try:
        yield
    finally:
        transport.pop_coll(comm.world_rank)

_TAG_BARRIER = INTERNAL_TAG_BASE + 1
_TAG_BCAST = INTERNAL_TAG_BASE + 2
_TAG_REDUCE = INTERNAL_TAG_BASE + 3
_TAG_ALLREDUCE = INTERNAL_TAG_BASE + 4
_TAG_GATHER = INTERNAL_TAG_BASE + 5
_TAG_SCATTER = INTERNAL_TAG_BASE + 6
_TAG_ALLGATHER = INTERNAL_TAG_BASE + 7
_TAG_ALLTOALL = INTERNAL_TAG_BASE + 8
_TAG_RSCAT = INTERNAL_TAG_BASE + 9

#: bcast switches from binomial to scatter+allgather above this many bytes.
BCAST_LONG_THRESHOLD = 64 * 1024


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


# ---------------------------------------------------------------- barrier -- #
def barrier(comm) -> None:
    """Dissemination barrier: ⌈log2 P⌉ rounds of paired exchanges."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    with _span(comm, "barrier", algo="barrier.dissemination"):
        step = 1
        while step < size:
            dest = (rank + step) % size
            src = (rank - step) % size
            comm.sendrecv(b"", dest, src, _TAG_BARRIER, _TAG_BARRIER)
            step <<= 1


# ------------------------------------------------------------------ bcast -- #
def _bcast_binomial(comm, value: Any, root: int, tag: int) -> Any:
    """Binomial-tree broadcast (the MPICH short-message algorithm)."""
    size = comm.size
    vrank = (comm.rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (comm.rank - mask) % size
            value = comm.recv(source=src, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            comm.send(value, (comm.rank + mask) % size, tag)
        mask >>= 1
    return value


def bcast(comm, value: Any, root: int = 0) -> Any:
    """Broadcast from ``root``; everyone returns the value.

    Long numpy arrays use van de Geijn scatter+allgather — the algorithm
    behind the paper's ``T_broadcast`` formula; everything else uses a
    binomial tree.  A small binomial header tells non-roots which path
    (and, for the long path, the shape/dtype) to expect.
    """
    if comm.size == 1:
        return value
    with _span(comm, "bcast", algo=""):
        if comm.rank == root:
            is_long = isinstance(value, np.ndarray) and value.nbytes >= BCAST_LONG_THRESHOLD
            header = (is_long, (value.shape, value.dtype) if is_long else None)
        else:
            header = None
        with _algo(comm, "bcast.binomial"):
            is_long, meta = _bcast_binomial(comm, header, root, _TAG_BCAST)
            if not is_long:
                return _bcast_binomial(comm, value, root, _TAG_BCAST)
        with _algo(comm, "bcast.scatter_allgather"):
            shape, dtype = meta
            if comm.rank == root:
                chunks = np.array_split(np.ascontiguousarray(value).reshape(-1), comm.size)
            else:
                chunks = None
            mine = scatter(comm, chunks, root)
            parts = allgather(comm, mine)
            return np.concatenate(parts).reshape(shape).astype(dtype, copy=False)


# ----------------------------------------------------------------- reduce -- #
def reduce(comm, value: Any, op: Op = SUM, root: int = 0) -> Any:
    """Binomial-tree reduction to ``root``; root returns the result.

    Operands are combined child-over-parent in a fixed order, so results
    are deterministic for a given communicator size.
    """
    size = comm.size
    if size == 1:
        return value
    with _span(comm, "reduce", algo="reduce.binomial"):
        vrank = (comm.rank - root) % size
        acc = value
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = vrank & ~mask
                comm.send(acc, (parent + root) % size, _TAG_REDUCE)
                return None
            child = vrank | mask
            if child < size:
                other = comm.recv(source=(child + root) % size, tag=_TAG_REDUCE)
                acc = op(acc, other)
            mask <<= 1
        return acc


# -------------------------------------------------------------- allreduce -- #
def allreduce(comm, value: Any, op: Op = SUM) -> Any:
    """Recursive doubling (power-of-two sizes) else reduce + bcast."""
    size = comm.size
    if size == 1:
        return value
    with _span(comm, "allreduce", algo=""):
        if _is_pow2(size):
            with _algo(comm, "allreduce.recursive_doubling"):
                acc = value
                mask = 1
                while mask < size:
                    partner = comm.rank ^ mask
                    other = comm.sendrecv(
                        acc, partner, partner, _TAG_ALLREDUCE, _TAG_ALLREDUCE
                    )
                    # Fixed operand order (lower rank's data first) keeps the
                    # result identical on every rank even for non-commutative ops.
                    acc = op(other, acc) if partner < comm.rank else op(acc, other)
                    mask <<= 1
                return acc
        with _algo(comm, "allreduce.reduce_bcast"):
            res = reduce(comm, value, op, 0)
            return bcast(comm, res, 0)


# ---------------------------------------------------------- gather/scatter -- #
def gather(comm, value: Any, root: int = 0) -> list[Any] | None:
    """Linear gather; root returns the list ordered by rank."""
    if comm.size == 1:
        return [value]
    with _span(comm, "gather", algo="gather.linear"):
        if comm.rank == root:
            out: list[Any] = [None] * comm.size
            out[root] = value
            for r in range(comm.size):
                if r != root:
                    out[r] = comm.recv(source=r, tag=_TAG_GATHER)
            return out
        comm.send(value, root, _TAG_GATHER)
        return None


def scatter(comm, values: Sequence[Any] | None, root: int = 0) -> Any:
    """Linear scatter; each rank returns its element of root's sequence."""
    with _span(comm, "scatter", algo="scatter.linear"):
        if comm.rank == root:
            assert values is not None and len(values) == comm.size, (
                "scatter needs one value per rank at the root"
            )
            for r in range(comm.size):
                if r != root:
                    comm.send(values[r], r, _TAG_SCATTER)
            return values[root]
        return comm.recv(source=root, tag=_TAG_SCATTER)


# -------------------------------------------------------------- allgather -- #
def allgather(comm, value: Any) -> list[Any]:
    """Bruck allgather: ⌈log2 P⌉ rounds, works for any P and any sizes.

    Returns the list of every rank's contribution, ordered by rank.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return [value]
    with _span(comm, "allgather", algo="allgather.bruck"):
        held: list[Any] = [value]  # blocks of ranks rank, rank+1, ... (mod P)
        h = 1
        while h < size:
            cnt = min(h, size - h)
            dest = (rank - h) % size
            src = (rank + h) % size
            incoming = comm.sendrecv(held[:cnt], dest, src, _TAG_ALLGATHER, _TAG_ALLGATHER)
            held.extend(incoming)
            h += cnt
        # held[i] is the block of rank (rank + i) % size; rotate to absolute.
        return [held[(r - rank) % size] for r in range(size)]


# --------------------------------------------------------------- alltoall -- #
def alltoall(comm, values: Sequence[Any]) -> list[Any]:
    """Pairwise-exchange alltoall; ``values[r]`` goes to rank ``r``."""
    size, rank = comm.size, comm.rank
    assert len(values) == size, "alltoall needs one value per rank"
    if size == 1:
        return [values[0]]
    with _span(comm, "alltoall", algo="alltoall.pairwise"):
        out: list[Any] = [None] * size
        out[rank] = values[rank]
        for i in range(1, size):
            dest = (rank + i) % size
            src = (rank - i) % size
            out[src] = comm.sendrecv(values[dest], dest, src, _TAG_ALLTOALL, _TAG_ALLTOALL)
        return out


# ------------------------------------------------ nonblocking collectives -- #
def _icoll(comm, fn, *args) -> CollRequest:
    """Run a blocking collective on the async comm engine; a request.

    With ``overlap="none"`` the collective runs exactly as its blocking
    form (same clock charges, same events) and the returned request is
    pre-completed — waiting on it charges nothing, keeping legacy runs
    bit-for-bit identical.  Otherwise the whole algorithm is drained
    eagerly on the rank's comm timeline (``begin_async``/``end_async``):
    its transfers progress concurrently with whatever compute follows
    the post, and the request's ``wait`` charges only the uncovered
    remainder.  Calls are collective and must stay SPMD-ordered exactly
    like their blocking forms (posting *is* the data movement).
    """
    transport = comm.transport
    rank = comm.world_rank
    if not transport.machine.overlap_enabled:
        value = fn(comm, *args)
        t = transport.now(rank)
        return CollRequest(transport, rank, t, t, value)
    t_start = transport.begin_async(rank)
    try:
        value = fn(comm, *args)
    finally:
        t_complete = transport.end_async(rank)
    return CollRequest(transport, rank, t_start, t_complete, value)


def ibcast(comm, value: Any, root: int = 0) -> CollRequest:
    """Nonblocking :func:`bcast`; completes on the async comm engine."""
    return _icoll(comm, bcast, value, root)


def iallgather(comm, value: Any) -> CollRequest:
    """Nonblocking :func:`allgather`; completes on the async comm engine."""
    return _icoll(comm, allgather, value)


def ireduce_scatter(comm, blocks: Sequence[np.ndarray], op: Op = SUM) -> CollRequest:
    """Nonblocking :func:`reduce_scatter`; completes on the async engine."""
    return _icoll(comm, reduce_scatter, blocks, op)


# ---------------------------------------------------------- reduce_scatter -- #
def reduce_scatter(comm, blocks: Sequence[np.ndarray], op: Op = SUM) -> np.ndarray:
    """Pairwise-exchange reduce-scatter.

    ``blocks[r]`` is this rank's contribution destined for rank ``r``
    (blocks may have different shapes across destinations but must agree
    across sources).  Returns the elementwise reduction of every rank's
    ``blocks[comm.rank]``, accumulated in a fixed source order.

    Per-rank cost α(P-1) + βn(P-1)/P — exactly the formula the paper
    uses for its reduce-scatter step.  The machine model's
    ``rs_degrade``) parameters are applied by pricing the traffic at the
    transport level; see :mod:`repro.machine.model`.
    """
    size, rank = comm.size, comm.rank
    assert len(blocks) == size, "reduce_scatter needs one block per rank"
    if size == 1:
        return np.array(np.asarray(blocks[0]), copy=True)
    with _span(comm, "reduce_scatter", algo="reduce_scatter.pairwise"):
        contributions: list[np.ndarray | None] = [None] * size
        contributions[rank] = np.asarray(blocks[rank])
        for i in range(1, size):
            dest = (rank + i) % size
            src = (rank - i) % size
            contributions[src] = comm.sendrecv(
                np.asarray(blocks[dest]), dest, src, _TAG_RSCAT, _TAG_RSCAT
            )
        acc = np.array(contributions[0], copy=True)
        for r in range(1, size):
            acc = op(acc, contributions[r])
        return acc
