"""The shared transport behind a virtual MPI world.

Every rank in a world is a Python thread; the transport is the single
shared object they communicate through.  It provides:

* eager point-to-point delivery with MPI matching semantics
  (``(source, tag)`` with wildcards, non-overtaking order per pair),
* per-rank simulated clocks driven by a :class:`~repro.machine.model.MachineModel`
  (a message arrives at ``sender_clock_at_send + α + β·nbytes``; a receive
  completes at ``max(receiver_clock, arrival)``),
* per-rank, per-phase traffic counters (bytes/messages sent and received,
  simulated time) used to reproduce the paper's communication-volume and
  runtime-breakdown results from *executed* traffic, plus per-phase,
  per-collective-algorithm counters (``RankTrace.colls``: binomial vs
  scatter+allgather bcast, Bruck allgather, pairwise reduce-scatter,
  raw Cannon/redistribution ``p2p``) that the communication audit
  (:mod:`repro.obs.audit`) reads bytes-on-the-wire from,
* the progress counter that the runtime watchdog uses for deadlock
  detection, and
* an optional deterministic fault-injection layer
  (:mod:`repro.mpi.faults`): a :class:`~repro.mpi.faults.FaultPlan`
  consulted at every ``post_send`` (latency inflation, jitter, bounded
  reordering, drop-with-resend), phase entry (stalls, scripted aborts),
  and compute advance (slowdown factors), with receive-side
  timeout/retry/backoff semantics so a dropped message surfaces as a
  typed retry — or, when the budget is exhausted, a
  :class:`~repro.mpi.errors.RecvTimeoutError` — instead of a silent
  hang.  Injected intervals are tagged ``injected=True`` on their
  events so the critical-path analyzer can tell injected waits from
  organic ones.

A single coarse lock protects all state; with the GIL and the heavy
lifting done inside numpy, finer locking buys nothing.

The transport itself is backend-neutral: under the default thread
backend ranks block on the shared condition variable, while under the
discrete-event backend (:mod:`repro.mpi.des`) the attached scheduler is
asked to park the calling rank and precise wake hooks ready exactly the
ranks an operation could unblock.  All matching, clock, counter, fault
and trace logic is shared, so both backends emit identical records.
"""

from __future__ import annotations

import dataclasses
import pickle
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..machine.model import MachineModel
from ..obs.tracer import CAT_PHASE, Tracer
from .datatypes import ANY_SOURCE, ANY_TAG, Message, Status
from .errors import (
    AbortError,
    CommRevokedError,
    InjectedAbortError,
    RankFailedError,
    RankKilledError,
    RecvTimeoutError,
)
from .faults import FaultPlan, _mix

#: Phase label used when no explicit phase is active.
DEFAULT_PHASE = "other"

#: Collective label used for raw point-to-point traffic (Cannon skew and
#: shift rounds, redistribution sends) posted outside any collective call.
DEFAULT_COLL = "p2p"

#: Memory-span purpose charged for transport packed-copy buffers: the
#: private payload copy a send hands the transport.  Charged transiently
#: sender-side inside ``post_send`` — the owning rank's program order —
#: so resident watermarks stay replay-deterministic (cross-thread
#: accounting would make peaks depend on real scheduling).  There is no
#: receiver-side charge: at receipt the payload becomes engine-owned and
#: the engine's own spans (``cannon.dblbuf``, ``redist.tiles``, ...)
#: account for it.
MEM_INFLIGHT = "transport.inflight"


@dataclass
class CollStats:
    """Traffic attributed to one collective algorithm within one phase.

    Unlike :class:`PhaseStats` there is no time here: simulated seconds
    belong to phases (collectives overlap and nest), while bytes and
    messages are owned by exactly one collective algorithm — the
    *outermost* collective call active at post time, so the scatter and
    allgather inside a long broadcast account to the broadcast.
    """

    bytes_sent: int = 0
    bytes_recv: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0

    def merged(self, other: "CollStats") -> "CollStats":
        return CollStats(
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_recv=self.bytes_recv + other.bytes_recv,
            msgs_sent=self.msgs_sent + other.msgs_sent,
            msgs_recv=self.msgs_recv + other.msgs_recv,
        )


@dataclass
class PhaseStats:
    """Traffic and simulated time attributed to one phase on one rank.

    ``comm_time`` is *exposed* communication: simulated seconds the rank
    clock actually spent blocked on transfers.  ``comm_covered_time`` is
    communication the async comm engine hid under concurrent compute —
    it is **not** part of ``time`` (the wall-clock identity
    ``time ≈ comm_time + compute_time`` still holds); it measures how
    much transfer time was paid on the comm timeline but never surfaced
    on the rank clock.  It stays exactly 0.0 under ``overlap="none"``.
    """

    time: float = 0.0
    comm_time: float = 0.0
    compute_time: float = 0.0
    comm_covered_time: float = 0.0
    bytes_sent: int = 0
    bytes_recv: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            time=self.time + other.time,
            comm_time=self.comm_time + other.comm_time,
            compute_time=self.compute_time + other.compute_time,
            comm_covered_time=self.comm_covered_time + other.comm_covered_time,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_recv=self.bytes_recv + other.bytes_recv,
            msgs_sent=self.msgs_sent + other.msgs_sent,
            msgs_recv=self.msgs_recv + other.msgs_recv,
        )


@dataclass
class RankState:
    """Mutable per-rank bookkeeping owned by the transport."""

    clock: float = 0.0
    bytes_sent: int = 0
    bytes_recv: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0
    peak_live_bytes: int = 0
    resident_bytes: int = 0  #: currently resident tracked bytes (memtrace)
    resident_peak_bytes: int = 0  #: high-water mark of resident_bytes
    #: live tracked bytes per purpose tag (``tile.a``, ``cannon.dblbuf``, ...)
    mem_live: dict[str, int] = field(default_factory=dict)
    #: per-purpose high-water marks of the purpose's own live bytes
    mem_peak: dict[str, int] = field(default_factory=dict)
    #: per-phase high-water marks of total resident bytes
    phase_mem_peak: dict[str, int] = field(default_factory=dict)
    phase_stack: list[str] = field(default_factory=list)
    phase_span_stack: list[int] = field(default_factory=list)  #: tracer span ids
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    coll_stack: list[str] = field(default_factory=list)  #: active collective calls
    #: per-phase, per-collective-algorithm traffic: phase -> label -> stats.
    colls: dict[str, dict[str, CollStats]] = field(default_factory=dict)
    waiting_on: str | None = None  #: populated while blocked (watchdog info)
    retries: int = 0  #: retransmits requested for dropped messages
    timeouts: int = 0  #: recv timeouts charged (== retries unless fatal)
    injected_wait_s: float = 0.0  #: simulated time added by injected faults
    corruptions_injected: int = 0  #: corrupt-rule firings on messages this rank sent
    corruptions_detected: int = 0  #: ABFT checksum mismatches this rank caught
    #: per-phase breakdown of ``corruptions_injected`` (sender's phase at post)
    corruptions_injected_by_phase: dict[str, int] = field(default_factory=dict)
    #: per-phase breakdown of ``corruptions_detected`` (detection site)
    corruptions_detected_by_phase: dict[str, int] = field(default_factory=dict)
    recomputed_flops: float = 0.0  #: flops re-executed for ABFT correction
    reused_flops: float = 0.0  #: flops avoided by reusing retained partials
    recoveries: int = 0  #: shrink-replan recovery rounds this rank survived
    #: structured wait state, consulted by the revocation quiescence
    #: check: ``(ctx, src, tag)`` while blocked in :meth:`Transport.match_recv`.
    recv_wait: tuple[int, int, int] | None = None
    agree_wait: bool = False  #: blocked in an agree rendezvous
    # -- async comm engine (overlap != "none") ------------------------- #
    async_depth: int = 0  #: nesting depth of open begin_async regions
    comm_clock: float = 0.0  #: comm-timeline clock while inside a region
    comm_engine_free: float = 0.0  #: when the engine last drained (partial)
    nic_free: float = 0.0  #: when this rank's NIC stream frees (partial)

    @property
    def phase(self) -> str:
        return self.phase_stack[-1] if self.phase_stack else DEFAULT_PHASE

    @property
    def coll(self) -> str:
        """The outermost active collective label (nested calls fold in)."""
        return self.coll_stack[0] if self.coll_stack else DEFAULT_COLL

    def phase_stats(self, name: str | None = None) -> PhaseStats:
        key = self.phase if name is None else name
        st = self.phases.get(key)
        if st is None:
            st = self.phases[key] = PhaseStats()
        return st

    def coll_stats(self) -> CollStats:
        by_coll = self.colls.setdefault(self.phase, {})
        cs = by_coll.get(self.coll)
        if cs is None:
            cs = by_coll[self.coll] = CollStats()
        return cs


@dataclass(frozen=True)
class Event:
    """One simulated-time interval on a rank (optional event recording).

    ``kind`` is one of ``"send"``, ``"recv"``, ``"wait"`` (clock raised
    to a message arrival or request completion), or ``"compute"``.
    ``peer`` is the world rank on the other side of a transfer (-1 for
    compute/wait).  ``seq`` is the transport sequence number of the
    message behind a send/recv interval (-1 otherwise); it keys into
    :attr:`Transport.msglog`, so the critical-path analyzer
    (:mod:`repro.obs.critpath`) can match every blocking receive to the
    exact send that released it.  Intervals use the simulated clock, in
    seconds.
    """

    rank: int
    kind: str
    phase: str
    t0: float
    t1: float
    nbytes: int = 0
    peer: int = -1
    seq: int = -1
    injected: bool = False  #: interval caused/extended by fault injection

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class MsgRecord:
    """One message's life on the wire (recorded with ``record_events``).

    ``t_post`` is the sender's simulated clock when the message was
    posted; ``arrival = t_post + msg_time`` is when it becomes
    receivable.  ``seq`` matches :attr:`Event.seq` on both the send- and
    recv-side events, giving the wait-for DAG its edges.
    """

    seq: int
    src: int
    dst: int
    t_post: float
    arrival: float
    nbytes: int
    tag: int
    ctx: int
    phase: str  #: the sender's active phase at post time
    injected: bool = False  #: flight perturbed (delayed/dropped) by a fault
    coll: str = DEFAULT_COLL  #: the sender's originating collective algorithm

    @property
    def flight(self) -> float:
        return self.arrival - self.t_post


@dataclass(frozen=True)
class MemEvent:
    """One tagged allocation or free on a rank's resident-memory timeline.

    ``kind`` is ``"alloc"`` or ``"free"``; ``purpose`` is the span tag
    (``tile.a``, ``replicate.buf``, ``cannon.dblbuf``, ``abft.checksum``,
    ``ckpt.staging``, ``transport.inflight``, ...); ``t`` is the rank's
    simulated clock at the event and ``resident_bytes`` the rank's total
    tracked resident bytes *after* applying it.  Events are appended in
    the owning rank's program order, so the per-rank timeline — and every
    watermark derived from it — replays byte-identically under a seeded
    :class:`~repro.mpi.faults.FaultPlan`.
    """

    rank: int
    kind: str
    purpose: str
    phase: str
    t: float
    nbytes: int
    resident_bytes: int


@dataclass
class RankTrace:
    """Immutable snapshot of a rank's counters, returned to the driver."""

    rank: int
    time: float
    bytes_sent: int
    bytes_recv: int
    msgs_sent: int
    msgs_recv: int
    peak_live_bytes: int
    phases: dict[str, PhaseStats]
    #: per-phase, per-collective-algorithm traffic: phase -> label -> stats.
    colls: dict[str, dict[str, CollStats]] = field(default_factory=dict)
    resident_peak_bytes: int = 0  #: measured resident watermark (memtrace)
    resident_bytes: int = 0  #: tracked bytes still live at snapshot time
    #: per-purpose high-water marks of that purpose's live bytes
    mem_peaks: dict[str, int] = field(default_factory=dict)
    #: purposes with bytes still live at snapshot time (leak detector)
    mem_live: dict[str, int] = field(default_factory=dict)
    #: per-phase high-water marks of total resident bytes
    phase_mem_peaks: dict[str, int] = field(default_factory=dict)
    retries: int = 0  #: fault-injection retransmits this rank requested
    timeouts: int = 0  #: fault-injection recv timeouts this rank charged
    injected_wait_s: float = 0.0  #: simulated seconds added by injected faults
    corruptions_injected: int = 0  #: corrupt-rule firings on this rank's sends
    corruptions_detected: int = 0  #: ABFT checksum mismatches this rank caught
    #: per-phase breakdown of ``corruptions_injected`` (sender's phase at post)
    corruptions_injected_by_phase: dict[str, int] = field(default_factory=dict)
    #: per-phase breakdown of ``corruptions_detected`` (detection site)
    corruptions_detected_by_phase: dict[str, int] = field(default_factory=dict)
    recomputed_flops: float = 0.0  #: flops re-executed for ABFT correction
    reused_flops: float = 0.0  #: flops avoided by reusing retained partials
    recoveries: int = 0  #: shrink-replan recovery rounds this rank survived


@dataclass
class _Dropped:
    """A message lost on the wire, awaiting receiver-driven retransmits."""

    msg: Message
    flight: float  #: perturbed one-transmission flight time
    drops: int  #: transmissions that must be lost before one succeeds
    t_post: float  #: sender's clock at the original post (causality floor)
    attempts: int = 0  #: retransmit requests made by the receiver so far


class Transport:
    """Mailboxes + clocks + counters for one virtual MPI world."""

    def __init__(
        self,
        nprocs: int,
        machine: MachineModel | None = None,
        record_events: bool = False,
        faults: FaultPlan | None = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.machine = machine or MachineModel()
        self.record_events = record_events
        self.faults = faults
        self.events: list[Event] = []
        #: per-message records (by list index == seq - 1) when recording.
        self.msglog: list[MsgRecord] = []
        #: tagged alloc/free timeline (populated only with record_events;
        #: the watermark counters themselves are always on).
        self.memlog: list[MemEvent] = []
        #: structured span tracer (repro.obs); enabled with record_events.
        self.tracer = Tracer(enabled=record_events)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # mailbox[(ctx, dst_world)] -> list of pending Message in seq order
        self._mail: dict[tuple[int, int], list[Message]] = defaultdict(list)
        # dropped[(ctx, dst_world)] -> messages lost on the wire (faults)
        self._dropped: dict[tuple[int, int], list[_Dropped]] = defaultdict(list)
        # per-(rule, src, dst) matched-message counters (fault decisions)
        self._fault_hits: dict[tuple[int, int, int], int] = {}
        # per-(rule,) phase-entry counters for rank faults
        self._rankfault_hits: dict[int, int] = {}
        self._seq = 0
        self.ranks = [RankState() for _ in range(nprocs)]
        #: bumped on every delivery/removal; the watchdog samples it.
        self.progress = 0
        self._context_keys: dict[Any, int] = {}
        self._next_ctx = 1
        self.aborted: AbortError | None = None
        #: world ranks permanently failed by ``RankFault(kill=True)``.
        self.dead: set[int] = set()
        #: world ranks whose program has returned (see :meth:`mark_finished`).
        self.finished: set[int] = set()
        #: ULFM-style revocation flag: set by :meth:`revoke` after a
        #: failure is detected, cleared when an :meth:`agree` completes.
        self.revoked = False
        # agreement rendezvous state, keyed by the comm's (ctx, seq) key
        self._agrees: dict[Any, dict[str, Any]] = {}
        #: attached DES scheduler (:class:`repro.mpi.des.DesScheduler`)
        #: when running under ``backend="des"``; ``None`` = thread backend.
        self.scheduler = None

    # ----------------------------------------------------- context ids -- #
    def context_for_key(self, key: Any) -> int:
        """Deterministically map a split/dup key to a fresh context id.

        All member ranks of a new communicator call this with the same
        key and receive the same id; the first caller allocates it.
        """
        with self._lock:
            ctx = self._context_keys.get(key)
            if ctx is None:
                ctx = self._next_ctx
                self._next_ctx += 1
                self._context_keys[key] = ctx
            return ctx

    # ---------------------------------------------------------- blocking -- #
    def _wait_locked(self, world_rank: int, why: str) -> None:
        """Block ``world_rank`` until the world may have changed.

        Thread backend: a timed wait on the shared condition (the
        timeout keeps the loop checking abort/revocation flags even if
        a wakeup is missed).  DES backend: park the rank's strand and
        hand the world to the next runnable rank; the matching wake
        hook (``why`` = ``"recv"`` or ``"agree"``) readies it again.
        """
        if self.scheduler is not None:
            self.scheduler.park_locked(world_rank, why)
        else:
            self._cond.wait(timeout=0.5)

    # --------------------------------------------------------- aborting -- #
    def abort(self, err: AbortError) -> None:
        """Record a fatal error and wake all blocked ranks."""
        with self._cond:
            if self.aborted is None:
                self.aborted = err
            self._cond.notify_all()
            if self.scheduler is not None:
                self.scheduler.wake_all_locked()

    def _check_abort(self) -> None:
        if self.aborted is not None:
            raise self.aborted

    # ------------------------------------------- ULFM-style fault tolerance -- #
    def dead_ranks(self) -> frozenset[int]:
        """World ranks permanently failed so far (``RankFault(kill=True)``)."""
        with self._lock:
            return frozenset(self.dead)

    def revoke(self) -> None:
        """Revoke communication world-wide (ULFM ``MPI_Comm_revoke`` analog).

        Revocation is *quiescence-gated* so that faulted runs stay
        replay-deterministic: receivers keep delivering messages that
        are already (or still about to be) produced, and a blocked
        receiver is unwound with
        :class:`~repro.mpi.errors.CommRevokedError` only once every
        live, unfinished rank is parked in a transport wait with
        nothing deliverable (see :meth:`_quiescent_locked`).  That
        stable cut of the computation is a property of the program, not
        of thread scheduling, so the virtual timestamp at which each
        survivor observes the revocation is the same on every replay.
        The flag is cleared when a subsequent :meth:`agree` completes.
        """
        with self._cond:
            self.revoked = True
            self.progress += 1
            self._cond.notify_all()

    def mark_finished(self, world_rank: int) -> None:
        """Record that a rank's program has returned (or died).

        Finished ranks can never post another message, so the
        revocation quiescence check skips them; without this, a world
        where some ranks already returned could never quiesce and a
        revoked receiver would block forever.
        """
        with self._cond:
            self.finished.add(world_rank)
            self.progress += 1
            self._cond.notify_all()
            if self.scheduler is not None:
                # A finish can complete an agree rendezvous (the voter
                # set shrinks to the ranks already voted).
                self.scheduler.wake_agree_locked()

    def agree(
        self, key: Any, group: Sequence[int], world_rank: int, flag: bool
    ) -> tuple[bool, tuple[int, ...]]:
        """Fault-tolerant agreement over ``group`` (ULFM ``MPIX_Comm_agree``).

        Collective over the *surviving* members of ``group`` (world
        ranks): blocks until every live member has voted, then returns
        the same ``(all_ok, survivors)`` on each of them, where
        ``all_ok`` is true only when every member is alive *and* voted
        ``True``.  Works while the world is revoked — this is the
        recovery rendezvous — and completing it clears the revocation.
        Members that die mid-agreement are dropped from the required
        voter set, so the agreement itself tolerates failures.
        """
        group = tuple(group)
        with self._cond:
            st = self._agrees.setdefault(key, {"votes": {}, "result": None})
            st["votes"][world_rank] = bool(flag)
            self.progress += 1
            self._cond.notify_all()
            if self.scheduler is not None:
                self.scheduler.wake_agree_locked()
            me = self.ranks[world_rank]
            me.waiting_on = f"agree(key={key})"
            me.agree_wait = True
            try:
                while st["result"] is None:
                    self._check_abort()
                    alive = [
                        r for r in group
                        if r not in self.dead and r not in self.finished
                    ]
                    if alive and all(r in st["votes"] for r in alive):
                        ok = len(alive) == len(group) and all(
                            st["votes"][r] for r in alive
                        )
                        t = max(self.ranks[r].clock for r in alive)
                        st["result"] = (ok, tuple(alive), t)
                        self.revoked = False
                        self.progress += 1
                        self._cond.notify_all()
                        if self.scheduler is not None:
                            self.scheduler.wake_agree_locked()
                        break
                    self._wait_locked(world_rank, "agree")
            finally:
                me.waiting_on = None
                me.agree_wait = False
            ok, survivors, t = st["result"]
            self._raise_clock_locked(world_rank, t, event_kind="wait")
            return ok, survivors

    def add_ft(
        self,
        world_rank: int,
        *,
        detected: int = 0,
        recomputed_flops: float = 0.0,
        reused_flops: float = 0.0,
        recoveries: int = 0,
        phase: str | None = None,
    ) -> None:
        """Charge fault-tolerance counters (ABFT detection, recovery rounds).

        ``phase`` attributes detections to the pipeline stage whose guard
        caught them (``replicate`` / ``cannon`` / ``reduce`` / ``redist``),
        feeding the ``corruptions_detected_by_phase`` breakdown.
        """
        with self._lock:
            st = self.ranks[world_rank]
            st.corruptions_detected += detected
            if detected and phase is not None:
                st.corruptions_detected_by_phase[phase] = (
                    st.corruptions_detected_by_phase.get(phase, 0) + detected
                )
            st.recomputed_flops += recomputed_flops
            st.reused_flops += reused_flops
            st.recoveries += recoveries

    # ------------------------------------------------------------ clocks -- #
    def now(self, world_rank: int) -> float:
        with self._lock:
            return self.ranks[world_rank].clock

    def advance(self, world_rank: int, dt: float, kind: str = "comm") -> None:
        """Advance a rank's clock by ``dt`` and attribute it to its phase."""
        if dt < 0:
            raise ValueError("negative time advance")
        with self._lock:
            self._advance_locked(world_rank, dt, kind)

    def _advance_locked(
        self,
        world_rank: int,
        dt: float,
        kind: str,
        event_kind: str | None = None,
        nbytes: int = 0,
        peer: int = -1,
        seq: int = -1,
        injected: bool = False,
    ) -> None:
        st = self.ranks[world_rank]
        if (
            kind == "compute"
            and self.faults is not None
            and self.faults.has_compute_faults
        ):
            factor = self.faults.compute_factor(world_rank, st.phase)
            if factor != 1.0:
                slowed = dt * factor
                st.injected_wait_s += slowed - dt
                dt = slowed
                injected = True
        if kind == "comm" and st.async_depth > 0:
            # Inside an async region the transfer progresses on the
            # rank's comm timeline, not its clock.  Time is attributed
            # (exposed vs covered) when the matching wait settles the
            # region; no phase charge and no event here.
            st.comm_clock += dt
            return
        t0 = st.clock
        st.clock += dt
        ps = st.phase_stats()
        ps.time += dt
        if kind == "comm":
            ps.comm_time += dt
        elif kind == "compute":
            ps.compute_time += dt
        if self.record_events and dt > 0:
            self.events.append(
                Event(
                    rank=world_rank,
                    kind=event_kind or ("compute" if kind == "compute" else "wait"),
                    phase=st.phase,
                    t0=t0,
                    t1=st.clock,
                    nbytes=nbytes,
                    peer=peer,
                    seq=seq,
                    injected=injected,
                )
            )

    def raise_clock(
        self,
        world_rank: int,
        t: float,
        event_kind: str = "wait",
        nbytes: int = 0,
        peer: int = -1,
        seq: int = -1,
    ) -> None:
        """Move a rank's clock up to ``t`` if it is behind (never back)."""
        with self._lock:
            self._raise_clock_locked(world_rank, t, event_kind, nbytes, peer, seq)

    def _raise_clock_locked(
        self,
        world_rank: int,
        t: float,
        event_kind: str = "wait",
        nbytes: int = 0,
        peer: int = -1,
        seq: int = -1,
        injected: bool = False,
    ) -> None:
        """Move a rank's clock up to ``t`` (waiting time counts as comm)."""
        st = self.ranks[world_rank]
        if st.async_depth > 0:
            # In-region completions (e.g. a blocking recv matched on the
            # comm timeline) advance the comm clock, never the rank clock.
            if t > st.comm_clock:
                st.comm_clock = t
            return
        if t > st.clock:
            dt = t - st.clock
            t0 = st.clock
            st.clock = t
            ps = st.phase_stats()
            ps.time += dt
            ps.comm_time += dt
            if self.record_events:
                self.events.append(
                    Event(
                        rank=world_rank,
                        kind=event_kind,
                        phase=st.phase,
                        t0=t0,
                        t1=t,
                        nbytes=nbytes,
                        peer=peer,
                        seq=seq,
                        injected=injected,
                    )
                )

    # ------------------------------------------------- async comm engine -- #
    def begin_async(self, world_rank: int) -> float:
        """Open an async region on a rank; returns the region's start time.

        While the region is open, every comm-side charge against this
        rank (``_advance_locked(kind="comm")``, ``_raise_clock_locked``)
        is redirected to the rank's *comm timeline* instead of its
        clock, and no events are recorded — the region's entire cost is
        settled later by :meth:`async_wait`.  Regions nest; only the
        outermost open/close interacts with the engine-availability
        point (``overlap="partial"`` serializes consecutive regions of
        one rank on its single comm engine).
        """
        with self._lock:
            st = self.ranks[world_rank]
            st.async_depth += 1
            if st.async_depth == 1:
                if self.machine.overlap == "partial":
                    st.comm_clock = max(st.clock, st.comm_engine_free)
                else:
                    st.comm_clock = st.clock
            return st.comm_clock

    def end_async(self, world_rank: int) -> float:
        """Close an async region; returns its completion time.

        The returned time is where the rank's comm timeline stands after
        the region's transfers drained.  Under ``overlap="partial"`` the
        outermost close also publishes it as the engine-free point so
        the next region queues behind this one.
        """
        with self._lock:
            st = self.ranks[world_rank]
            if st.async_depth <= 0:
                raise RuntimeError("end_async without begin_async")
            t = st.comm_clock
            st.async_depth -= 1
            if st.async_depth == 0 and self.machine.overlap == "partial":
                st.comm_engine_free = t
            return t

    def async_wait(self, world_rank: int, t_start: float, t_complete: float) -> None:
        """Settle an async region's cost at wait time.

        Charges the *uncovered* remainder ``max(0, t_complete - clock)``
        to the rank clock (a ``wait`` event, comm time) and books the
        rest of the region's span as hidden communication
        (``PhaseStats.comm_covered_time``).  With ``overlap="none"``
        regions are pre-completed at post time (``t_start ==
        t_complete == clock``), so this charges nothing and the
        covered-time counter is never touched — bit-exact legacy
        behaviour.
        """
        with self._lock:
            st = self.ranks[world_rank]
            exposed = max(0.0, t_complete - st.clock)
            covered = max(0.0, (t_complete - t_start) - exposed)
            if exposed > 0.0:
                self._raise_clock_locked(world_rank, t_complete, event_kind="wait")
            if covered > 0.0:
                st.phase_stats().comm_covered_time += covered

    # ------------------------------------------------------------ phases -- #
    def push_phase(self, world_rank: int, name: str, attrs: dict | None = None) -> None:
        with self._lock:
            self.ranks[world_rank].phase_stack.append(name)
            if self.faults is not None:
                self._apply_rank_faults_locked(world_rank, name)
        if self.tracer.enabled:
            sid = self.begin_span(world_rank, name, cat=CAT_PHASE, attrs=attrs)
            with self._lock:
                self.ranks[world_rank].phase_span_stack.append(sid)

    def _apply_rank_faults_locked(self, world_rank: int, name: str) -> None:
        """Fire matching :class:`~repro.mpi.faults.RankFault` rules on
        phase entry (stall windows and scripted aborts; slowdown factors
        are applied per compute advance in :meth:`_advance_locked`)."""
        for idx, rule in enumerate(self.faults.ranks):
            if not rule.matches_phase(world_rank, name):
                continue
            count = self._rankfault_hits.get(idx, 0) + 1
            self._rankfault_hits[idx] = count
            if not rule.triggers(world_rank, name, count):
                continue
            if rule.stall_s > 0.0:
                st = self.ranks[world_rank]
                st.injected_wait_s += rule.stall_s
                self._advance_locked(
                    world_rank, rule.stall_s, "comm",
                    event_kind="wait", injected=True,
                )
            if rule.abort:
                raise InjectedAbortError(world_rank, name, count)
            if rule.kill:
                # Permanent death, not a world abort: mark the rank dead,
                # wake every blocked peer (their next matching attempt on
                # this rank raises RankFailedError), and unwind this
                # rank's thread with the typed kill error.
                self.dead.add(world_rank)
                self.progress += 1
                self._cond.notify_all()
                if self.scheduler is not None:
                    self.scheduler.wake_all_locked()
                raise RankKilledError(world_rank, name, count)

    def push_coll(self, world_rank: int, label: str) -> None:
        """Enter a collective call: traffic posted while the stack is
        non-empty is attributed to the *outermost* label (always-on and
        cheap, unlike tracer spans)."""
        with self._lock:
            self.ranks[world_rank].coll_stack.append(label)

    def pop_coll(self, world_rank: int) -> str:
        with self._lock:
            return self.ranks[world_rank].coll_stack.pop()

    def pop_phase(self, world_rank: int) -> str:
        with self._lock:
            name = self.ranks[world_rank].phase_stack.pop()
            sid = (
                self.ranks[world_rank].phase_span_stack.pop()
                if self.ranks[world_rank].phase_span_stack
                else None
            )
        if sid is not None:
            self.end_span(world_rank, sid)
        return name

    # ------------------------------------------------------------- spans -- #
    def _counter_snapshot(self, world_rank: int) -> tuple[int, int, int, int]:
        st = self.ranks[world_rank]
        return (st.bytes_sent, st.bytes_recv, st.msgs_sent, st.msgs_recv)

    def begin_span(
        self,
        world_rank: int,
        name: str,
        cat: str = "user",
        attrs: dict | None = None,
    ) -> int | None:
        """Open a tracer span at the rank's current simulated clock.

        Returns the span id, or ``None`` when tracing is disabled (the
        fast path: one attribute read, no locking).  The rank's traffic
        counters are snapshotted so :meth:`end_span` can attach the
        bytes/messages attributed to the span.
        """
        if not self.tracer.enabled:
            return None
        with self._lock:
            t = self.ranks[world_rank].clock
            snap = self._counter_snapshot(world_rank)
        sid = self.tracer.begin(world_rank, name, t, cat=cat, attrs=attrs)
        self.tracer.annotate(sid, _snap=snap)
        return sid

    def end_span(self, world_rank: int, sid: int | None) -> None:
        """Close a span opened with :meth:`begin_span` (``None`` is a no-op)."""
        if sid is None or not self.tracer.enabled:
            return
        with self._lock:
            t = self.ranks[world_rank].clock
            snap = self._counter_snapshot(world_rank)
        prev = self.tracer.take_attr(sid, "_snap")
        deltas = {}
        if prev is not None:
            deltas = {
                "bytes_sent": snap[0] - prev[0],
                "bytes_recv": snap[1] - prev[1],
                "msgs_sent": snap[2] - prev[2],
                "msgs_recv": snap[3] - prev[3],
            }
        self.tracer.end(world_rank, sid, t, attrs=deltas)

    def note_live_bytes(self, world_rank: int, nbytes: int) -> None:
        """Record a high-water mark of self-reported live bytes on a rank.

        Kept for engines that estimate their footprint analytically
        (e.g. the COSMA baseline); measured footprint lives in the
        memtrace counters (:meth:`mem_alloc` / :meth:`mem_free`).
        """
        with self._lock:
            st = self.ranks[world_rank]
            if nbytes > st.peak_live_bytes:
                st.peak_live_bytes = nbytes

    # ---------------------------------------------------------- memtrace -- #
    def mem_alloc(self, world_rank: int, purpose: str, nbytes: int) -> None:
        """Charge ``nbytes`` of tracked resident memory to ``purpose``.

        Updates the rank's resident total, its watermark, the
        per-purpose and per-phase high-water marks, and (when recording
        events) appends a :class:`MemEvent` at the rank's simulated
        clock.  Must only be called from the owning rank's program order
        so watermarks stay replay-deterministic.
        """
        with self._lock:
            self._mem_alloc_locked(world_rank, purpose, nbytes)

    def mem_free(self, world_rank: int, purpose: str, nbytes: int) -> None:
        """Release ``nbytes`` previously charged to ``purpose``.

        Raises :class:`ValueError` when the free exceeds the purpose's
        live bytes — that is an instrumentation bug, not a runtime
        condition, and silently clamping would corrupt every watermark
        downstream of it.
        """
        with self._lock:
            self._mem_free_locked(world_rank, purpose, nbytes)

    def _mem_alloc_locked(self, world_rank: int, purpose: str, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"mem_alloc of negative size {nbytes}")
        st = self.ranks[world_rank]
        st.resident_bytes += nbytes
        if st.resident_bytes > st.resident_peak_bytes:
            st.resident_peak_bytes = st.resident_bytes
        live = st.mem_live.get(purpose, 0) + nbytes
        st.mem_live[purpose] = live
        if live > st.mem_peak.get(purpose, 0):
            st.mem_peak[purpose] = live
        phase = st.phase
        if st.resident_bytes > st.phase_mem_peak.get(phase, 0):
            st.phase_mem_peak[phase] = st.resident_bytes
        if purpose == MEM_INFLIGHT and live > st.peak_live_bytes:
            # Fold the transport packed-copy category into the legacy
            # in-flight counter so ``peak_live_bytes`` genuinely tracks
            # transport buffering (plus any self-reported notes).
            st.peak_live_bytes = live
        if self.record_events:
            self.memlog.append(
                MemEvent(
                    rank=world_rank,
                    kind="alloc",
                    purpose=purpose,
                    phase=phase,
                    t=st.clock,
                    nbytes=nbytes,
                    resident_bytes=st.resident_bytes,
                )
            )

    def release_rank_memory(self, world_rank: int) -> None:
        """Free every span still open on a rank whose program unwound.

        Dead-letter reclamation for the leak table: a rank killed
        (``RankFault(kill=True)``) or aborted mid-phase never reaches
        its ``mem_free`` calls, so its open spans (``tile.a``,
        ``cannon.dblbuf``, ``transport.inflight``, ...) would sit in
        :attr:`RankTrace.mem_live` forever and every leak audit
        downstream would report false positives for memory that died
        with the rank.  The runtime calls this after the rank's program
        has fully unwound — every organic free has already run, so
        nothing here can double-free — and the frees are emitted in
        sorted purpose order at the rank's final clock, keeping the
        per-rank memory timeline replay-deterministic.
        """
        with self._lock:
            st = self.ranks[world_rank]
            for purpose in sorted(st.mem_live):
                live = st.mem_live[purpose]
                if live > 0:
                    self._mem_free_locked(world_rank, purpose, live)

    def _mem_free_locked(self, world_rank: int, purpose: str, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"mem_free of negative size {nbytes}")
        st = self.ranks[world_rank]
        live = st.mem_live.get(purpose, 0)
        if nbytes > live:
            raise ValueError(
                f"mem_free({purpose!r}) of {nbytes} bytes exceeds live "
                f"{live} on rank {world_rank}"
            )
        st.mem_live[purpose] = live - nbytes
        st.resident_bytes -= nbytes
        if self.record_events:
            self.memlog.append(
                MemEvent(
                    rank=world_rank,
                    kind="free",
                    purpose=purpose,
                    phase=st.phase,
                    t=st.clock,
                    nbytes=nbytes,
                    resident_bytes=st.resident_bytes,
                )
            )

    # --------------------------------------------------------------- p2p -- #
    def post_send(
        self,
        ctx: int,
        src_world: int,
        dst_world: int,
        tag: int,
        stored: Any,
        nbytes: int,
        is_array: bool,
        advance_sender: bool,
    ) -> tuple[float, int]:
        """Deposit a message; return ``(arrival_time, seq)``.

        ``advance_sender=True`` models a blocking send (the sender's
        clock moves past the transfer); ``False`` models a nonblocking
        send whose cost is accounted at ``wait`` time by the caller.
        ``seq`` identifies the message in :attr:`msglog` (and on the
        send/recv events bracketing its transfer) when recording.
        """
        t_msg = self.machine.msg_time(nbytes, src_world, dst_world)
        with self._cond:
            self._check_abort()
            # Sends always succeed locally, even to dead ranks and on a
            # revoked world (eager-buffered / dead-letter semantics).
            # Raising here would make the outcome depend on whether this
            # thread observed the death/revocation flag before or after
            # the racing detector set it — a wall-clock artifact that
            # made faulted makespans wobble between replays.  Failure
            # detection is the receiver's job (recv-from-dead, the
            # revocation quiescence check) with ``agree`` as the
            # collective backstop.
            st = self.ranks[src_world]
            drops = 0
            injected = False
            if self.faults is not None:
                t_msg, drops, injected, stored = self._perturb_flight_locked(
                    src_world, dst_world, st.phase, t_msg,
                    stored=stored, is_array=is_array,
                )
            in_region = st.async_depth > 0
            base = st.comm_clock if in_region else st.clock
            nic_serialized = (
                self.machine.overlap == "partial"
                and not self.machine.same_node(src_world, dst_world)
                and (in_region or not advance_sender)
            )
            if nic_serialized:
                # One NIC stream per rank in partial mode: an in-flight
                # nonblocking transfer delays the next one's start.
                # Blocking sends are untouched (their wait drags the
                # clock past nic_free anyway, keeping sync paths
                # bit-exact under every overlap mode).
                base = max(base, st.nic_free)
            t_post = base
            arrival = t_post + t_msg
            if nic_serialized:
                st.nic_free = arrival
            self._seq += 1
            seq = self._seq
            if self.record_events:
                self.msglog.append(
                    MsgRecord(
                        seq=seq,
                        src=src_world,
                        dst=dst_world,
                        t_post=t_post,
                        arrival=arrival,
                        nbytes=nbytes,
                        tag=tag,
                        ctx=ctx,
                        phase=st.phase,
                        injected=injected,
                        coll=st.coll,
                    )
                )
            if in_region:
                # The transfer rides the comm timeline; its cost is
                # settled by async_wait when the region's request is
                # waited on (no event, no phase charge here).
                st.comm_clock = arrival
            elif advance_sender:
                if t_post > st.clock:
                    # NIC-delayed start (partial mode): charge straight
                    # to the arrival so the queueing delay is visible as
                    # send time.  (a+b)-a != b in floating point, so the
                    # undelayed path below must stay the legacy advance.
                    self._raise_clock_locked(
                        src_world, arrival,
                        event_kind="send", nbytes=nbytes, peer=dst_world,
                        seq=seq, injected=injected,
                    )
                else:
                    self._advance_locked(
                        src_world, t_msg, "comm",
                        event_kind="send", nbytes=nbytes, peer=dst_world, seq=seq,
                        injected=injected,
                    )
            ps = st.phase_stats()
            ps.bytes_sent += nbytes
            ps.msgs_sent += 1
            cs = st.coll_stats()
            cs.bytes_sent += nbytes
            cs.msgs_sent += 1
            st.bytes_sent += nbytes
            st.msgs_sent += 1
            # Sender-side packed copy: charged transiently in the
            # sender's own program order (deterministic on replay).
            self._mem_alloc_locked(src_world, MEM_INFLIGHT, nbytes)
            self._mem_free_locked(src_world, MEM_INFLIGHT, nbytes)
            msg = Message(
                ctx=ctx,
                src_world=src_world,
                dst_world=dst_world,
                tag=tag,
                stored=stored,
                nbytes=nbytes,
                is_array=is_array,
                arrival=arrival,
                seq=seq,
            )
            if drops > 0:
                # Lost on the wire: held until the receiver times out and
                # requests retransmits (see match_recv).  The sender is
                # oblivious — its clock and counters were charged as usual.
                self._dropped[(ctx, dst_world)].append(
                    _Dropped(msg=msg, flight=t_msg, drops=drops, t_post=t_post)
                )
            else:
                self._mail[(ctx, dst_world)].append(msg)
            self.progress += 1
            self._cond.notify_all()
            if self.scheduler is not None:
                # Precise wakeup: only the receiver can be unblocked by
                # this post.  A *dropped* message readies it too — the
                # receiver must start charging its timeout/retry clock.
                self.scheduler.wake_recv_locked(dst_world)
        return arrival, seq

    def _perturb_flight_locked(
        self,
        src_world: int,
        dst_world: int,
        phase: str,
        t_msg: float,
        stored: Any = None,
        is_array: bool = False,
    ) -> tuple[float, int, bool, Any]:
        """Apply matching link-fault rules to one posted message.

        Returns ``(perturbed_flight, drops, injected, stored)`` — the
        returned payload replaces the caller's, because corrupting a
        pickled container produces a *new* blob.  Factors from
        multiple matching rules multiply, extra delays add, and drop
        counts take the max.  Per-(rule, link) hit counters make every
        decision reproducible (one sender thread per link).  Corrupt
        rules flip seeded elements of ``stored`` (``payload_pack``
        hands the transport a private copy, so the sender's buffer is
        untouched and the receiver sees the corrupted bits, exactly
        like a wire-level flip).  Rules with ``corrupt_phase`` draw
        their corruption decisions from a separate per-link hit
        counter, so adding phase-targeted corruption to a plan never
        shifts the seeded decisions of existing rules.
        """
        extra = 0.0
        factor = 1.0
        drops = 0
        corrupt: list[tuple[int, int, int]] = []
        for idx, rule in self.faults.link_rules(src_world, dst_world, phase):
            key = (idx, src_world, dst_world)
            hit = self._fault_hits.get(key, 0)
            self._fault_hits[key] = hit + 1
            dec = rule.decide(
                self.faults.seed, idx, src_world, dst_world, hit, t_msg
            )
            extra += dec.extra_s
            factor *= dec.latency_factor
            drops = max(drops, dec.drops)
            if dec.corrupt_elems > 0:
                corrupt.append((idx, hit, dec.corrupt_elems))
            if rule.corrupt_phase is not None and phase == rule.corrupt_phase:
                ckey = (idx, src_world, dst_world, "corrupt")
                chit = self._fault_hits.get(ckey, 0)
                self._fault_hits[ckey] = chit + 1
                elems = rule.corrupt_elems_for(
                    self.faults.seed, idx, src_world, dst_world, chit
                )
                if elems > 0:
                    corrupt.append((idx, chit, elems))
        corrupted = False
        if corrupt:
            if is_array:
                corrupted = self._corrupt_payload_locked(
                    src_world, dst_world, phase, stored, corrupt
                )
            else:
                blob = self._corrupt_container_locked(
                    src_world, dst_world, phase, stored, corrupt
                )
                if blob is not None:
                    stored = blob
                    corrupted = True
        injected = extra > 0.0 or factor != 1.0 or drops > 0 or corrupted
        return t_msg * factor + extra, drops, injected, stored

    def _record_injection_locked(self, src_world: int, phase: str) -> None:
        st = self.ranks[src_world]
        st.corruptions_injected += 1
        st.corruptions_injected_by_phase[phase] = (
            st.corruptions_injected_by_phase.get(phase, 0) + 1
        )

    def _corrupt_payload_locked(
        self,
        src_world: int,
        dst_world: int,
        phase: str,
        arr: Any,
        requests: list[tuple[int, int, int]],
    ) -> bool:
        """Flip seeded elements of an in-flight array payload (in place).

        Only inexact (float/complex) arrays are corruptible — integer
        arrays carry control decisions (ABFT votes), and flipping them
        would corrupt the corrector rather than the data it guards.
        Each flip adds ``1 + |v|`` to the chosen element: large
        relative to both the value and float64 roundoff, hence always
        detectable by a checksum with a sane tolerance.
        """
        if not isinstance(arr, np.ndarray) or arr.size == 0:
            return False
        if not np.issubdtype(arr.dtype, np.inexact):
            return False
        seed = self.faults.seed
        for idx, hit, elems in requests:
            for e in range(elems):
                pos = int(
                    _mix(seed, idx, 5, src_world, dst_world, hit, e) * arr.size
                ) % arr.size
                val = arr.flat[pos]
                arr.flat[pos] = val + (1.0 + abs(val))
            self._record_injection_locked(src_world, phase)
        return True

    def _corrupt_container_locked(
        self,
        src_world: int,
        dst_world: int,
        phase: str,
        blob: Any,
        requests: list[tuple[int, int, int]],
    ) -> bytes | None:
        """Flip seeded elements inside a pickled container payload.

        Redistribution batches and allgather rounds travel as pickled
        containers of arrays, not raw ndarrays.  Wire corruption
        reaches them by unpickling the blob, walking it
        deterministically for inexact arrays, flipping a seeded
        element of the virtual concatenation of those arrays (same
        formula as the raw-array path), and re-pickling.  Returns the
        replacement blob, or ``None`` when there is nothing to flip —
        payloads without float arrays (ABFT vote ints, resend nack
        bools) are incorruptible by construction.
        """
        if not isinstance(blob, (bytes, bytearray)):
            return None
        try:
            obj = pickle.loads(bytes(blob))
        except Exception:
            return None
        arrays: list[np.ndarray] = []

        def walk(x: Any) -> None:
            if isinstance(x, np.ndarray):
                if x.size and np.issubdtype(x.dtype, np.inexact):
                    arrays.append(x)
            elif isinstance(x, (list, tuple)):
                for y in x:
                    walk(y)
            elif isinstance(x, dict):
                for k in x:
                    walk(x[k])

        walk(obj)
        total = sum(a.size for a in arrays)
        if total == 0:
            return None
        seed = self.faults.seed
        for idx, hit, elems in requests:
            for e in range(elems):
                pos = int(
                    _mix(seed, idx, 5, src_world, dst_world, hit, e) * total
                ) % total
                for a in arrays:
                    if pos < a.size:
                        val = a.flat[pos]
                        a.flat[pos] = val + (1.0 + abs(val))
                        break
                    pos -= a.size
            self._record_injection_locked(src_world, phase)
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def msg_record(self, seq: int) -> MsgRecord | None:
        """The :class:`MsgRecord` for a message seq (None when unknown)."""
        i = seq - 1
        if 0 <= i < len(self.msglog) and self.msglog[i].seq == seq:
            return self.msglog[i]
        return None

    @staticmethod
    def _matches(msg: Message, src_world: int, tag: int) -> bool:
        if src_world != ANY_SOURCE and msg.src_world != src_world:
            return False
        if tag != ANY_TAG and msg.tag != tag:
            return False
        return True

    def _select_locked(
        self,
        ctx: int,
        dst_world: int,
        src_world: int,
        tag: int,
        caps: dict[int, int] | None = None,
    ) -> int | None:
        """Index of the deliverable mailbox message this receive takes.

        Per sender, only that pair's oldest matching message is a
        candidate (mailboxes hold each pair's messages in seq order, so
        the first hit per sender preserves MPI non-overtaking).  ``caps``
        maps a sender's world rank to the seq of its lowest *held
        dropped* message matching this receive: candidates at or past
        the cap are invisible until the retransmit lands.  Among
        candidates the smallest ``(arrival, src)`` wins — a virtual-time
        tie-break, so an ``ANY_SOURCE`` receive resolves identically on
        every backend and replay instead of inheriting the wall-clock
        order in which sender threads reached the mailbox.
        """
        box = self._mail.get((ctx, dst_world))
        if not box:
            return None
        best_i = -1
        best_key: tuple[float, int] | None = None
        seen: set[int] = set()
        for i, msg in enumerate(box):
            if not self._matches(msg, src_world, tag):
                continue
            s = msg.src_world
            if s in seen:
                continue
            seen.add(s)
            if caps is not None and s in caps and msg.seq >= caps[s]:
                continue
            key = (msg.arrival, s)
            if best_key is None or key < best_key:
                best_i, best_key = i, key
            if src_world != ANY_SOURCE:
                break  # single pair: its oldest candidate is the answer
        if best_key is None:
            return None
        return best_i

    def _find_locked(
        self,
        ctx: int,
        dst_world: int,
        src_world: int,
        tag: int,
        caps: dict[int, int] | None = None,
    ) -> Message | None:
        """Pop the matching mailbox message :meth:`_select_locked` chose."""
        i = self._select_locked(ctx, dst_world, src_world, tag, caps)
        if i is None:
            return None
        return self._mail[(ctx, dst_world)].pop(i)

    def _drop_caps_locked(
        self, ctx: int, dst_world: int, src_world: int, tag: int
    ) -> dict[int, int] | None:
        """Per-sender seq caps from held dropped messages this receive matches.

        Non-overtaking is a *per-pair* property: a drop from sender A
        must not be overtaken by A's later messages, but says nothing
        about sender B.  (The old global ``before_seq`` cap compared
        seqs across pairs — a wall-clock artifact under ``ANY_SOURCE``.)
        """
        held = self._dropped.get((ctx, dst_world))
        if not held:
            return None
        caps: dict[int, int] = {}
        for d in held:
            if self._matches(d.msg, src_world, tag):
                s = d.msg.src_world
                if s not in caps or d.msg.seq < caps[s]:
                    caps[s] = d.msg.seq
        return caps or None

    def _find_dropped_locked(
        self, ctx: int, dst_world: int, src_world: int, tag: int
    ) -> _Dropped | None:
        """The held dropped message this receive times out against.

        Per sender the lowest-seq matching drop is the candidate (its
        retransmit must land first); across senders the one whose
        original arrival would have been earliest wins, with the sender
        rank as tie-break — again virtual-time ordering, never the
        wall-clock order the drops were registered in.
        """
        held = self._dropped.get((ctx, dst_world))
        if not held:
            return None
        per_src: dict[int, _Dropped] = {}
        for d in held:
            if self._matches(d.msg, src_world, tag):
                cur = per_src.get(d.msg.src_world)
                if cur is None or d.msg.seq < cur.msg.seq:
                    per_src[d.msg.src_world] = d
        if not per_src:
            return None
        return min(
            per_src.values(), key=lambda d: (d.msg.arrival, d.msg.src_world)
        )

    def _timeout_retry_locked(self, ctx: int, dst_world: int, d: _Dropped) -> None:
        """Charge one recv timeout against the held dropped message ``d``
        and either request a retransmit or raise :class:`RecvTimeoutError`.

        The timeout is a *simulated-time* construct: it fires as soon as
        the transport can prove the awaited message was dropped, and the
        wait it models (``timeout_s * backoff**(n-1)``) is charged to
        the receiver's simulated clock as an ``injected=True`` wait.
        """
        st = self.ranks[dst_world]
        policy = self.faults.retry
        d.attempts += 1
        wait_s = policy.nth_timeout_s(d.attempts)
        st.timeouts += 1
        st.injected_wait_s += wait_s
        self._advance_locked(
            dst_world, wait_s, "comm",
            event_kind="wait", peer=d.msg.src_world, seq=d.msg.seq,
            injected=True,
        )
        self.progress += 1
        if d.attempts > policy.max_retries:
            waited = sum(policy.nth_timeout_s(i) for i in range(1, d.attempts + 1))
            raise RecvTimeoutError(
                dst_world, d.msg.src_world, d.msg.tag, d.attempts, waited
            )
        st.retries += 1
        if d.attempts >= d.drops:
            # Retransmit succeeds: receiver-driven resend arrives one
            # flight after the request.  The msglog record is replaced
            # in place (index == seq - 1 invariant) so the critical-path
            # walk sees the true arrival.
            self._dropped[(ctx, dst_world)].remove(d)
            msg = d.msg
            # The resend leaves no earlier than the receiver's request
            # *and* no earlier than the original post: a receiver whose
            # timeouts all fired before the sender even posted (e.g. the
            # sender straggling under a slowdown fault) must not receive
            # a message from the future.  Deadlines are virtual-clock
            # quantities, never real thread-wait time.
            msg.arrival = max(st.clock, d.t_post) + d.flight
            # Re-insert in seq order: later same-(src, tag) messages may
            # already sit in the mailbox, and matching pops in list order,
            # so an append here would let them overtake the retransmit.
            box = self._mail[(ctx, dst_world)]
            i = len(box)
            while i > 0 and box[i - 1].seq > msg.seq:
                i -= 1
            box.insert(i, msg)
            if self.record_events:
                i = msg.seq - 1
                if 0 <= i < len(self.msglog) and self.msglog[i].seq == msg.seq:
                    self.msglog[i] = dataclasses.replace(
                        self.msglog[i], arrival=msg.arrival, injected=True
                    )
            self._cond.notify_all()

    def match_recv(
        self,
        ctx: int,
        dst_world: int,
        src_world: int,
        tag: int,
        advance_receiver: bool = True,
    ) -> tuple[Message, Status]:
        """Block (the real thread) until a matching message is available.

        On return the receiver's simulated clock has been raised to the
        message arrival time (if ``advance_receiver``), and the
        receive-side counters are charged.

        Under a fault plan, a receive whose matching message was
        *dropped* times out per the plan's
        :class:`~repro.mpi.faults.RetryPolicy`: each timeout charges a
        simulated backoff wait and requests a retransmit; exhausting the
        budget raises :class:`~repro.mpi.errors.RecvTimeoutError`.
        """
        with self._cond:
            waitdesc = f"recv(src={src_world}, tag={tag}, ctx={ctx})"
            st = self.ranks[dst_world]
            st.waiting_on = waitdesc
            st.recv_wait = (ctx, src_world, tag)
            try:
                while True:
                    self._check_abort()
                    # Non-overtaking: a held dropped message must not be
                    # overtaken by a later message on the same pair, so
                    # mailbox matching is capped at the dropped seqs.
                    caps = (
                        self._drop_caps_locked(ctx, dst_world, src_world, tag)
                        if self.faults is not None
                        else None
                    )
                    msg = self._find_locked(
                        ctx, dst_world, src_world, tag, caps=caps
                    )
                    if msg is not None:
                        break
                    # A message already on the wire from a now-dead rank
                    # is still deliverable (checked above); with nothing
                    # in flight, waiting on a dead rank is hopeless.
                    if src_world != ANY_SOURCE and src_world in self.dead:
                        raise RankFailedError(dst_world, src_world, op="recv from")
                    if caps is not None:
                        d = self._find_dropped_locked(
                            ctx, dst_world, src_world, tag
                        )
                        if d is not None:
                            self._timeout_retry_locked(ctx, dst_world, d)
                            continue
                    # Quiescence-gated revocation: a deliverable message
                    # always wins over the revoked flag, so the program
                    # point (and virtual clock) at which each survivor
                    # is unwound is replay-deterministic.
                    if self.revoked and self._quiescent_locked():
                        raise CommRevokedError(dst_world)
                    self._wait_locked(dst_world, "recv")
                self.progress += 1
                if advance_receiver:
                    self._raise_clock_locked(
                        dst_world, msg.arrival,
                        event_kind="recv", nbytes=msg.nbytes, peer=msg.src_world,
                        seq=msg.seq,
                    )
                ps = st.phase_stats()
                ps.bytes_recv += msg.nbytes
                ps.msgs_recv += 1
                cs = st.coll_stats()
                cs.bytes_recv += msg.nbytes
                cs.msgs_recv += 1
                st.bytes_recv += msg.nbytes
                st.msgs_recv += 1
                # No receiver-side in-flight charge: at receipt the
                # payload is handed to the engine, whose own spans
                # (cannon.dblbuf, redist.tiles, ...) account for it —
                # charging here would double-count every received block.
                status = Status(source=msg.src_world, tag=msg.tag, nbytes=msg.nbytes)
                return msg, status
            finally:
                st.waiting_on = None
                st.recv_wait = None

    def _quiescent_locked(self) -> bool:
        """True when no live, unfinished rank can make progress.

        The gate for delivering :class:`CommRevokedError` (see
        :meth:`revoke`): every rank is dead, finished, parked in an
        agree rendezvous, or blocked in a receive with no matching
        message in the mailbox and no held drop a retransmit could
        still release.  Quiescence is a stable property — once reached,
        only the unwinding of a blocked receiver changes it — so the
        set of ranks unwound, and the virtual clock each is unwound at,
        do not depend on thread scheduling.
        """
        for r, st in enumerate(self.ranks):
            if r in self.dead or r in self.finished or st.agree_wait:
                continue
            w = st.recv_wait
            if w is None:
                return False  # still running between transport calls
            ctx, src, tag = w
            if self.faults is not None and self._find_dropped_locked(
                ctx, r, src, tag
            ) is not None:
                return False  # a retransmit can still release it
            box = self._mail.get((ctx, r))
            if box and any(self._matches(m, src, tag) for m in box):
                return False  # deliverable: about to make progress
        return True

    def probe(self, ctx: int, dst_world: int, src_world: int, tag: int) -> Status | None:
        """Nonblocking probe: status of the message a receive would take.

        Candidate selection is shared with :meth:`match_recv`
        (:meth:`_select_locked`), so a probe-then-recv pair always
        agrees on the message — including under fault injection, where
        held dropped messages cap what the probe may report: a later
        message that a drop should precede is invisible until the
        retransmit lands.
        """
        with self._lock:
            self._check_abort()
            caps = (
                self._drop_caps_locked(ctx, dst_world, src_world, tag)
                if self.faults is not None
                else None
            )
            i = self._select_locked(ctx, dst_world, src_world, tag, caps)
            if i is not None:
                msg = self._mail[(ctx, dst_world)][i]
                return Status(source=msg.src_world, tag=msg.tag, nbytes=msg.nbytes)
            # A deliverable message wins over the revoked flag (matching
            # match_recv); with nothing to report, refuse so that a
            # probe-polling loop cannot spin forever on a revoked world.
            if self.revoked:
                raise CommRevokedError(dst_world)
            if self.scheduler is not None:
                # Cooperative yield: a probe miss must not monopolise the
                # DES world — let every rank with real work run first.
                self.scheduler.poll_yield_locked(dst_world)
            return None

    # ----------------------------------------------------------- tracing -- #
    def trace(self, world_rank: int) -> RankTrace:
        with self._lock:
            st = self.ranks[world_rank]
            return RankTrace(
                rank=world_rank,
                time=st.clock,
                bytes_sent=st.bytes_sent,
                bytes_recv=st.bytes_recv,
                msgs_sent=st.msgs_sent,
                msgs_recv=st.msgs_recv,
                peak_live_bytes=st.peak_live_bytes,
                phases={k: v.merged(PhaseStats()) for k, v in st.phases.items()},
                colls={
                    phase: {c: v.merged(CollStats()) for c, v in by_coll.items()}
                    for phase, by_coll in st.colls.items()
                },
                resident_peak_bytes=st.resident_peak_bytes,
                resident_bytes=st.resident_bytes,
                mem_peaks=dict(st.mem_peak),
                mem_live={k: v for k, v in st.mem_live.items() if v},
                phase_mem_peaks=dict(st.phase_mem_peak),
                retries=st.retries,
                timeouts=st.timeouts,
                injected_wait_s=st.injected_wait_s,
                corruptions_injected=st.corruptions_injected,
                corruptions_detected=st.corruptions_detected,
                corruptions_injected_by_phase=dict(
                    st.corruptions_injected_by_phase
                ),
                corruptions_detected_by_phase=dict(
                    st.corruptions_detected_by_phase
                ),
                recomputed_flops=st.recomputed_flops,
                reused_flops=st.reused_flops,
                recoveries=st.recoveries,
            )

    def traces(self) -> list[RankTrace]:
        return [self.trace(r) for r in range(self.nprocs)]

    def blocked_ranks(self) -> dict[int, str]:
        with self._lock:
            return {
                r: st.waiting_on
                for r, st in enumerate(self.ranks)
                if st.waiting_on is not None
            }
