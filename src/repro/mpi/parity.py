"""Differential parity harness: thread backend vs. DES backend.

The DES backend (:mod:`repro.mpi.des`) is deterministic by
construction; the thread backend is the battle-tested oracle.  This
module runs the same program on both and asserts that everything
observable — results, traces, metrics, audit reports, ledger records,
and the event/message/memory timelines — is identical.

Raw logs cannot be compared byte-for-byte across backends, because a
few identifiers are allocation-order artifacts with no semantic
content:

* the global interleaving of per-rank appends in ``transport.events``
  / ``msglog`` / ``memlog`` (each *rank's* subsequence is its program
  order — deterministic — but the merge order is wall-clock),
* transport ``seq`` numbers (global post order),
* context ids (first-caller-allocates in :meth:`Transport.context_for_key`).

:func:`canonical_timeline` normalises exactly those: logs are grouped
per rank (messages per sender), ``seq`` is replaced by the message's
*pair index* (the n-th message on its ``(ctx, src, dst)`` wire, a pure
program-order quantity), and context ids are replaced by their
deterministic split keys.  Everything else — virtual clocks, byte
counts, phases, fault annotations — is compared exactly.

Known caveat: programs receiving with ``ANY_SOURCE`` can legitimately
observe different message *payloads* per backend when two candidates
arrive at the exact same virtual time and tie-break differently than
wall-clock delivery would; the transport's virtual-time tie-break (see
``Transport._select_locked``) makes each backend individually
replay-deterministic, and none of the library's engines use
``ANY_SOURCE``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

import numpy as np

from ..machine.model import MachineModel
from .faults import FaultPlan
from .runtime import SpmdResult, run_spmd
from .transport import Transport


# ------------------------------------------------------- canonical logs -- #
def _ctx_names(transport: Transport) -> dict[int, Any]:
    """Map context ids back to their deterministic split keys."""
    names: dict[int, Any] = {0: "world"}
    for key, ctx in transport._context_keys.items():
        names[ctx] = repr(key)
    return names


def canonical_timeline(transport: Transport) -> dict[str, Any]:
    """Backend-invariant rendering of a transport's recorded logs.

    Requires the run to have used ``record_events=True``; with event
    recording off the logs are empty and the timeline is trivially
    equal for any two runs.
    """
    ctx_names = _ctx_names(transport)
    # Message identity: the n-th message posted on its (ctx, src, dst)
    # wire.  Per-pair mailbox order is sender program order on every
    # backend, so the pair index is backend-invariant while the global
    # seq is not.
    pair_counts: dict[tuple[int, int, int], int] = {}
    msg_id: dict[int, tuple[Any, int, int, int]] = {}
    msgs_by_src: dict[int, list[dict[str, Any]]] = {}
    for rec in transport.msglog:
        wire = (rec.ctx, rec.src, rec.dst)
        idx = pair_counts.get(wire, 0)
        pair_counts[wire] = idx + 1
        msg_id[rec.seq] = (ctx_names[rec.ctx], rec.src, rec.dst, idx)
        d = dataclasses.asdict(rec)
        d.pop("seq")
        d["ctx"] = ctx_names[rec.ctx]
        d["pair_idx"] = idx
        msgs_by_src.setdefault(rec.src, []).append(d)

    events_by_rank: dict[int, list[dict[str, Any]]] = {}
    for ev in transport.events:
        d = dataclasses.asdict(ev)
        d["msg"] = msg_id.get(ev.seq)
        d.pop("seq")
        events_by_rank.setdefault(ev.rank, []).append(d)

    mem_by_rank: dict[int, list[dict[str, Any]]] = {}
    for me in transport.memlog:
        mem_by_rank.setdefault(me.rank, []).append(dataclasses.asdict(me))

    return {
        "events": {r: events_by_rank.get(r, []) for r in range(transport.nprocs)},
        "messages": {r: msgs_by_src.get(r, []) for r in range(transport.nprocs)},
        "memory": {r: mem_by_rank.get(r, []) for r in range(transport.nprocs)},
    }


# ------------------------------------------------------------ comparing -- #
def _diff(a: Any, b: Any, path: str, out: list[str], limit: int = 20) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and np.array_equal(a, b)
        ):
            out.append(f"{path}: arrays differ")
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=repr):
            if key not in a or key not in b:
                out.append(f"{path}.{key}: only on one side")
                continue
            _diff(a[key], b[key], f"{path}.{key}", out, limit)
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _diff(x, y, f"{path}[{i}]", out, limit)
        return
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def assert_equal(a: Any, b: Any, what: str) -> None:
    """Deep equality with a readable diff (numpy-aware)."""
    found: list[str] = []
    _diff(a, b, what, found)
    if found:
        raise AssertionError(
            f"{what}: backends diverge:\n  " + "\n  ".join(found)
        )


def assert_parity(
    threads: SpmdResult, des: SpmdResult, check_timeline: bool = True
) -> None:
    """Assert two runs of the same program are observably identical."""
    assert_equal(threads.results, des.results, "results")
    assert_equal(
        [dataclasses.asdict(t) for t in threads.traces],
        [dataclasses.asdict(t) for t in des.traces],
        "traces",
    )
    assert_equal(threads.metrics.to_dict(), des.metrics.to_dict(), "metrics")
    if check_timeline:
        assert_equal(
            canonical_timeline(threads.transport),
            canonical_timeline(des.transport),
            "timeline",
        )


def run_both(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    machine: MachineModel | None = None,
    deadlock_timeout: float = 30.0,
    record_events: bool = True,
    faults: FaultPlan | None = None,
) -> tuple[SpmdResult, SpmdResult]:
    """Run ``fn`` under both backends and assert full parity.

    Returns ``(threads_result, des_result)`` after the assertion, so
    callers can layer further backend-specific checks (ledger bytes,
    audit reports) on top.
    """
    kw = dict(
        args=args,
        machine=machine,
        deadlock_timeout=deadlock_timeout,
        record_events=record_events,
        faults=faults,
    )
    threads = run_spmd(nprocs, fn, backend="threads", **kw)
    des = run_spmd(nprocs, fn, backend="des", **kw)
    assert_parity(threads, des, check_timeline=record_events)
    return threads, des
