"""Exception types for the virtual MPI runtime.

The virtual runtime mirrors the error behaviour of a hosted MPI: misuse of
the API (bad ranks, mismatched buffers) raises immediately on the calling
rank, while a global stall (every live rank blocked with no message able to
satisfy any of them) is detected by the runtime watchdog and surfaced as a
:class:`DeadlockError` on the driver thread.
"""

from __future__ import annotations


class VMpiError(Exception):
    """Base class for all virtual-MPI errors."""


class RankError(VMpiError):
    """An operation referenced a rank outside the communicator."""


class TagError(VMpiError):
    """An operation used an invalid tag value."""


class BufferError_(VMpiError):
    """A receive buffer did not match the incoming message."""


class CommError(VMpiError):
    """A communicator was used incorrectly (e.g. after being freed)."""


class DeadlockError(VMpiError):
    """The runtime watchdog found every live rank blocked with no progress.

    Carries the set of blocked ranks and what each was waiting for, which
    is usually enough to spot a mismatched send/recv pair.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"virtual MPI deadlock; blocked ranks: {detail}")


class AbortError(VMpiError):
    """Raised inside ranks when another rank has failed and the job aborts."""

    def __init__(self, origin_rank: int, cause: BaseException | None = None):
        self.origin_rank = origin_rank
        self.cause = cause
        super().__init__(
            f"virtual MPI job aborted (first failure on rank {origin_rank})"
        )
