"""Exception types for the virtual MPI runtime.

The virtual runtime mirrors the error behaviour of a hosted MPI: misuse of
the API (bad ranks, mismatched buffers) raises immediately on the calling
rank, while a global stall (every live rank blocked with no message able to
satisfy any of them) is detected by the runtime watchdog and surfaced as a
:class:`DeadlockError` on the driver thread.
"""

from __future__ import annotations


class VMpiError(Exception):
    """Base class for all virtual-MPI errors."""


class RankError(VMpiError):
    """An operation referenced a rank outside the communicator."""


class TagError(VMpiError):
    """An operation used an invalid tag value."""


class BufferError_(VMpiError):
    """A receive buffer did not match the incoming message."""


class CommError(VMpiError):
    """A communicator was used incorrectly (e.g. after being freed)."""


class DeadlockError(VMpiError):
    """The runtime watchdog found every live rank blocked with no progress.

    Carries the set of blocked ranks and what each was waiting for, which
    is usually enough to spot a mismatched send/recv pair.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"virtual MPI deadlock; blocked ranks: {detail}")


class AbortError(VMpiError):
    """Raised inside ranks when another rank has failed and the job aborts."""

    def __init__(self, origin_rank: int, cause: BaseException | None = None):
        self.origin_rank = origin_rank
        self.cause = cause
        super().__init__(
            f"virtual MPI job aborted (first failure on rank {origin_rank})"
        )


class RecvTimeoutError(VMpiError, TimeoutError):
    """A receive exhausted its fault-plan retry budget on a dropped message.

    Raised on the *receiving* rank when a message the transport knows
    was dropped (fault injection) has timed out more times than the
    plan's :class:`~repro.mpi.faults.RetryPolicy` allows; the runtime
    then aborts every other live rank with :class:`AbortError`.  Never
    raised without an active fault plan — organic stalls remain the
    watchdog's :class:`DeadlockError`.
    """

    def __init__(
        self,
        rank: int,
        src: int,
        tag: int,
        attempts: int,
        waited_s: float,
    ):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.attempts = attempts
        self.waited_s = waited_s
        super().__init__(
            f"rank {rank} recv from {src} (tag {tag}) timed out after "
            f"{attempts} attempt(s), {waited_s:.6g}s simulated wait; "
            f"retry budget exhausted"
        )


class InjectedAbortError(VMpiError):
    """A scripted fatal fault (``RankFault(abort=True)``) fired on a rank."""

    def __init__(self, rank: int, phase: str, occurrence: int):
        self.rank = rank
        self.phase = phase
        self.occurrence = occurrence
        super().__init__(
            f"injected abort on rank {rank} at entry #{occurrence} "
            f"of phase {phase!r}"
        )


class RankKilledError(VMpiError):
    """An injected permanent failure (``RankFault(kill=True)``) fired.

    Unlike :class:`InjectedAbortError`, a kill does *not* abort the
    world: the rank is marked dead on the transport and its thread
    simply ends.  Survivors that touch the dead rank see
    :class:`RankFailedError` (ULFM's ``MPI_ERR_PROC_FAILED`` analog)
    and may recover via ``Comm.revoke``/``agree``/``shrink``
    (see :mod:`repro.ft`).
    """

    def __init__(self, rank: int, phase: str, occurrence: int):
        self.rank = rank
        self.phase = phase
        self.occurrence = occurrence
        super().__init__(
            f"injected permanent failure of rank {rank} at entry "
            f"#{occurrence} of phase {phase!r}"
        )


class RankFailedError(VMpiError):
    """An operation touched a rank the transport knows is dead.

    The ULFM ``MPI_ERR_PROC_FAILED`` analog: raised on the *calling*
    rank when it sends to, or waits on a receive from, a rank killed by
    a ``RankFault(kill=True)`` rule.  Without a recovery driver this
    propagates like any rank error and aborts the world; with one
    (:func:`repro.ft.resilient_multiply`) it triggers
    revoke-agree-shrink recovery instead.
    """

    def __init__(self, rank: int, failed: int, op: str = "recv"):
        self.rank = rank
        self.failed = failed
        self.op = op
        super().__init__(
            f"rank {rank} {op} involving failed rank {failed}"
        )


class CommRevokedError(VMpiError):
    """Communication was revoked pending survivor agreement.

    The ULFM ``MPI_ERR_REVOKED`` analog: after a failure is detected,
    the first detector revokes the world (``Comm.revoke``) so every
    rank still blocked in — or about to enter — a communication call
    unblocks with this error and can join the recovery protocol.  The
    revocation is cleared when a ``Comm.agree`` completes.
    """

    def __init__(self, rank: int):
        self.rank = rank
        super().__init__(
            f"communication revoked (observed on rank {rank}); "
            f"join agreement to recover"
        )
