"""Message envelopes, wildcard constants, and reduction operators.

Two payload kinds are supported, mirroring mpi4py's split between
buffer-mode (numpy arrays, counted byte-exactly) and pickle-mode (arbitrary
Python objects, counted by their pickled size).  All traffic accounting in
the tracer uses the byte sizes defined here, so the executed communication
volumes can be compared against the paper's analytic formulas.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE: int = -1
#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG: int = -1

#: Tags >= this value are reserved for internal collective traffic.
INTERNAL_TAG_BASE: int = 1 << 28


@dataclass
class Status:
    """Receive status: who sent the message, with what tag, and how big."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0


class Op:
    """A reduction operator usable by reduce / allreduce / reduce_scatter.

    Wraps a binary numpy ufunc-like callable operating elementwise on
    arrays.  ``commutative`` is informational; the provided collectives
    always apply operands in a deterministic order so non-commutative
    user ops still give reproducible results.
    """

    def __init__(self, fn: Callable[[Any, Any], Any], name: str, commutative: bool = True):
        self.fn = fn
        self.name = name
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name})"


SUM = Op(lambda a, b: a + b, "sum")
PROD = Op(lambda a, b: a * b, "prod")
MAX = Op(np.maximum, "max")
MIN = Op(np.minimum, "min")


def payload_pack(value: Any) -> tuple[Any, int, bool]:
    """Prepare ``value`` for transport.

    Returns ``(stored, nbytes, is_array)``.  Arrays are copied (emulating
    MPI buffer semantics: the sender may overwrite its buffer immediately
    after ``send`` returns); everything else is pickled, which both
    isolates the receiver from later sender-side mutation and yields an
    honest byte count.
    """
    if isinstance(value, np.ndarray):
        stored = np.ascontiguousarray(value).copy()
        return stored, stored.nbytes, True
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, len(blob), False


def payload_unpack(stored: Any, is_array: bool) -> Any:
    """Inverse of :func:`payload_pack` on the receiving side."""
    if is_array:
        return stored
    return pickle.loads(stored)


@dataclass
class Message:
    """An in-flight message in a transport mailbox."""

    ctx: int  #: communicator context id
    src_world: int  #: sender's world rank
    dst_world: int  #: receiver's world rank
    tag: int
    stored: Any
    nbytes: int
    is_array: bool
    arrival: float  #: simulated time at which the payload is available
    seq: int = field(default=0)  #: global order stamp (FIFO tiebreak)

    def unpack(self) -> Any:
        return payload_unpack(self.stored, self.is_array)
