"""Regenerate any paper table/figure from the command line.

::

    python -m repro.bench fig3           # Fig. 3 strong-scaling series
    python -m repro.bench table2 fig5    # several at once
    python -m repro.bench all            # everything
    python -m repro.bench --list

Prints the rendered tables (the same text the benchmark suite writes to
``benchmarks/out/``).
"""

from __future__ import annotations

import argparse
import sys

from .harness import (
    TRACE_WORKLOADS,
    baseline_artifact,
    checkpoint_cost,
    fault_degradation,
    fig2_partitions,
    fig3_scaling,
    fig4_hybrid,
    fig5_breakdown,
    history_artifact,
    l_sweep,
    overlap_comparison,
    recovery_cost,
    table1_memory,
    table2_grids,
    table3_gpu,
    trace_artifact,
)

GENERATORS = {
    "fig2": fig2_partitions,
    "fig3": fig3_scaling,
    "fig4": fig4_hybrid,
    "fig5": fig5_breakdown,
    "table1": table1_memory,
    "table2": table2_grids,
    "table3": table3_gpu,
    "l_sweep": l_sweep,
    "overlap": overlap_comparison,
}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures",
    )
    ap.add_argument("names", nargs="*", help="fig2 fig3 fig4 fig5 table1 table2 table3 l_sweep overlap, or 'all'")
    ap.add_argument("--list", action="store_true", help="list available generators")
    ap.add_argument(
        "--backend", choices=("threads", "des"), default="des",
        help="virtual-MPI backend for executed stand-ins and artifacts "
             "(default: des — structural deadlock detection, no scheduler "
             "noise; both backends produce byte-identical artifacts)",
    )
    ap.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="also execute a small stand-in of each figure's workload and "
             "write a Chrome trace (<name>.trace.json) under DIR",
    )
    ap.add_argument(
        "--baseline-dir", metavar="DIR", default=None,
        help="also execute each figure's stand-in workload and write "
             "(refresh) its perf baseline (<name>.json) under DIR; "
             "commit the result to update the perf gate",
    )
    ap.add_argument(
        "--history-dir", metavar="DIR", default=None,
        help="also execute each figure's stand-in workload and write its "
             "measured-optimality trajectory point (BENCH_<name>.json: "
             "ledger record + audit report) under DIR",
    )
    ap.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="with --history-dir, also append each trajectory point's "
             "record to this JSONL run ledger",
    )
    ap.add_argument(
        "--fault-plan", metavar="FILE", default=None,
        help="also execute each figure's stand-in workload clean and "
             "under the fault plan (JSON, see docs/FAULTS.md) and print "
             "the degradation (makespan delta, retries, injected "
             "critical-path share)",
    )
    ap.add_argument(
        "--kill-rank", metavar="R", type=int, default=None,
        help="also execute each figure's stand-in workload with rank R "
             "permanently killed mid-Cannon and print the recovery "
             "overhead (ULFM-style shrink-replan recovery, see "
             "docs/RECOVERY.md)",
    )
    ap.add_argument(
        "--ckpt-every", metavar="N", type=int, default=None,
        help="also run each figure's stand-in workload as a 4-call matmul "
             "chain checkpointed every N calls, kill a rank mid-pipeline, "
             "and print the checkpoint/restart overhead (repro.ckpt, see "
             "docs/RECOVERY.md)",
    )
    args = ap.parse_args(argv)

    plan = None
    if args.fault_plan:
        from ..mpi.faults import FaultPlan

        plan = FaultPlan.load(args.fault_plan)

    if args.list or not args.names:
        print("available:", " ".join(sorted(GENERATORS)), "or 'all'")
        return 0
    names = sorted(GENERATORS) if args.names == ["all"] else args.names
    rc = 0
    for name in names:
        gen = GENERATORS.get(name)
        if gen is None:
            print(f"unknown generator {name!r}; use --list", file=sys.stderr)
            rc = 2
            continue
        if name == "overlap":
            print(overlap_comparison(backend=args.backend).text)
        else:
            print(gen().text)
        print()
        if name not in TRACE_WORKLOADS:
            continue  # no executed stand-in (e.g. "overlap" runs its own)
        if args.trace_dir:
            path = trace_artifact(name, args.trace_dir,
                                  backend=args.backend)
            print(f"trace artifact: {path}")
            print()
        if args.baseline_dir:
            path = baseline_artifact(name, args.baseline_dir,
                                     backend=args.backend)
            print(f"perf baseline: {path}")
            print()
        if args.history_dir:
            path = history_artifact(name, args.history_dir,
                                    ledger=args.ledger,
                                    backend=args.backend)
            print(f"history point: {path}")
            print()
        if plan is not None:
            print(fault_degradation(name, plan).text)
            print()
        if args.kill_rank is not None:
            print(recovery_cost(name, args.kill_rank).text)
            print()
        if args.ckpt_every is not None:
            print(checkpoint_cost(name, ckpt_every=args.ckpt_every).text)
            print()
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
