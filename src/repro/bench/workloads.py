"""The paper's problem classes and evaluation grids (Section IV).

Four classes of matrix dimensions, "taken from real-world applications":

* **square** (``m = n = k``) — density-matrix purification, polar
  decomposition;
* **large-K** (``m = n << k``) — CholeskyQR, Rayleigh-Ritz Gram matrices;
* **large-M** (``m >> n = k``) — the projection application step of the
  same methods;
* **flat** (``m = n >> k``) — trailing-matrix updates in LU / Cholesky /
  QR factorizations.

The module also records the exact dimension sets of every figure/table
so benches and EXPERIMENTS.md stay in sync with one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Problem:
    """One (class, m, n, k) evaluation point."""

    cls: str
    m: int
    n: int
    k: int

    @property
    def dims(self) -> tuple[int, int, int]:
        return self.m, self.n, self.k

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def label(self) -> str:
        def fmt(x: int) -> str:
            return f"{x // 1000}k" if x % 1000 == 0 and x >= 1000 else str(x)

        return f"{self.cls}({fmt(self.m)},{fmt(self.n)},{fmt(self.k)})"


#: Fig. 3 / Fig. 4 / Table I / Table II problem dimensions (x 10^3 in paper).
CPU_PROBLEMS: tuple[Problem, ...] = (
    Problem("square", 50_000, 50_000, 50_000),
    Problem("large-K", 6_000, 6_000, 1_200_000),
    Problem("large-M", 1_200_000, 6_000, 6_000),
    Problem("flat", 100_000, 100_000, 5_000),
)

#: Table III (GPU) problem dimensions.
GPU_PROBLEMS: tuple[Problem, ...] = (
    Problem("square", 50_000, 50_000, 50_000),
    Problem("large-K", 10_000, 10_000, 300_000),
    Problem("large-M", 300_000, 10_000, 10_000),
    Problem("flat", 50_000, 50_000, 10_000),
)

#: Strong-scaling process counts of Figs. 3-4 / Table I.
SCALING_PROCS: tuple[int, ...] = (192, 384, 768, 1536, 3072)

#: Table II process counts.
TABLE2_PROCS: tuple[int, ...] = (2048, 3072)

#: Table III GPU counts.
GPU_COUNTS: tuple[int, ...] = (16, 32)


def scaled_problem(p: Problem, factor: int) -> Problem:
    """Shrink a paper problem by an integer factor (executed-engine scale)."""
    return Problem(p.cls, max(1, p.m // factor), max(1, p.n // factor), max(1, p.k // factor))


#: Small executed-engine analogues keeping each class's aspect ratio
#: (used by tests and the verification benches; P <= 32).
SMALL_PROBLEMS: tuple[Problem, ...] = (
    Problem("square", 96, 96, 96),
    Problem("large-K", 24, 24, 960),
    Problem("large-M", 960, 24, 24),
    Problem("flat", 160, 160, 16),
)
