"""ASCII table and series rendering for the benchmark harness.

Every bench regenerates its paper table/figure as plain text: figures
become per-series value lists over the x-axis (process counts), tables
become aligned grids.  The same renderers feed EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render figure data: one row per series over a shared x-axis."""
    headers = [x_label] + [f"{x}" for x in xs]
    rows = []
    for name, ys in series.items():
        rows.append([name + (f" [{unit}]" if unit else "")] + [_fmt(y) for y in ys])
    return format_table(headers, rows, title=title)


def format_ledger(
    records: Sequence[dict],
    title: str | None = None,
) -> str:
    """Render run-ledger records (:mod:`repro.obs.ledger`) as a table.

    One row per record: producer kind, problem/grid shape, measured Q,
    the two optimality ratios, Cannon overlap, simulated makespan, and
    the fault counters (retries/recoveries/corruptions-detected).
    """
    rows = []
    for rec in records:
        prob, grid, opt = rec["problem"], rec["grid"], rec["optimality"]
        cannon_ov = rec.get("overlap", {}).get("cannon")
        faults = rec.get("faults", {})
        rows.append([
            rec["run_id"][:8],
            rec["kind"],
            f"{prob['m']}x{prob['n']}x{prob['k']}",
            f"{prob['nprocs']}",
            f"{grid['pm']}x{grid['pn']}x{grid['pk']}",
            f"{rec['traffic']['q_words']:.0f}",
            (f"{opt['q_over_eq9']:.3f}"
             if opt.get("q_over_eq9") is not None else "-"),
            (f"{opt['q_over_pebbling']:.3f}"
             if opt.get("q_over_pebbling") is not None else "-"),
            f"{100 * cannon_ov:.1f}%" if cannon_ov is not None else "-",
            f"{rec['makespan_s'] * 1e3:.3f}",
            "/".join(
                str(faults.get(key, 0))
                for key in ("retries", "recoveries", "corruptions_detected")
            ),
        ])
    return format_table(
        ["run", "kind", "mnk", "P", "grid", "Q", "Q/eq9", "Q/pebb",
         "overlap", "ms", "rt/rec/cd"],
        rows,
        title=title,
    )


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
