"""ASCII table and series rendering for the benchmark harness.

Every bench regenerates its paper table/figure as plain text: figures
become per-series value lists over the x-axis (process counts), tables
become aligned grids.  The same renderers feed EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render figure data: one row per series over a shared x-axis."""
    headers = [x_label] + [f"{x}" for x in xs]
    rows = []
    for name, ys in series.items():
        rows.append([name + (f" [{unit}]" if unit else "")] + [_fmt(y) for y in ys])
    return format_table(headers, rows, title=title)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)
