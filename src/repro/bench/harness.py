"""The benchmark harness: one entry point per paper table/figure.

Each ``figN_*`` / ``tableN_*`` function returns the regenerated data in
structured form *and* a rendered text block, so the pytest benches can
both assert the paper's qualitative claims and print the artifact.  At
paper scale the analytic engine prices the schedules; the executed
engine backs it up at small scale through the verification helpers in
:mod:`repro.analysis.verify` (exercised by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.breakdown import breakdown_from_report
from ..analysis.costs import ca3dmm_cost, cosma_cost, ctf_cost
from ..grid.optimizer import GridSpec, ca3dmm_grid, cosma_grid
from ..machine.model import MachineModel, pace_phoenix_cpu, pace_phoenix_gpu
from .report import format_series, format_table
from .workloads import (
    CPU_PROBLEMS,
    GPU_COUNTS,
    GPU_PROBLEMS,
    SCALING_PROCS,
    TABLE2_PROCS,
    Problem,
)


@dataclass
class BenchResult:
    """Structured data + rendered text for one table/figure."""

    name: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text



# --------------------------------------------------------- trace artifacts -- #
#: Small executed stand-ins per generator, used for trace artifacts: the
#: analytic benches price paper-scale problems, so each figure/table gets
#: a thread-simulator-sized problem of the same shape class whose
#: executed trace documents the schedule the analytic numbers price.
TRACE_WORKLOADS: dict[str, tuple[int, int, int, int]] = {
    "fig2": (32, 64, 16, 8),      # the paper's worked Example 1
    "fig3": (64, 64, 64, 8),      # square class (strong scaling)
    "fig4": (64, 64, 64, 8),      # square class (hybrid scaling)
    "fig5": (48, 48, 48, 8),      # breakdown: all phases populated
    "table1": (32, 32, 64, 16),   # the paper's worked Example 2
    "table2": (48, 40, 56, 8),    # non-square, forced-grid territory
    "table3": (64, 32, 32, 8),    # large-M flavour (GPU table)
    "l_sweep": (40, 40, 40, 8),
}


def executed_workload(
    name: str,
    machine: MachineModel | None = None,
    faults=None,
    backend: str | None = None,
):
    """Execute the stand-in workload for generator ``name``.

    Returns ``(plan, result)`` with event recording on — the input both
    the trace artifacts and the perf baselines are derived from.
    ``faults`` (a :class:`~repro.mpi.faults.FaultPlan`) runs the same
    workload under deterministic fault injection.  ``backend`` selects
    the virtual-MPI execution backend (``"threads"``/``"des"``; the two
    produce identical traces — the parity suite holds them to that).
    Raises ``KeyError`` for unknown names.
    """
    from ..core import ca3dmm_matmul
    from ..core.plan import Ca3dmmPlan
    from ..layout import DistMatrix, dense_random
    from ..mpi import run_spmd

    m, n, k, p = TRACE_WORKLOADS[name]
    plan = Ca3dmmPlan(m, n, k, p)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    mach = machine or pace_phoenix_cpu("mpi")
    result = run_spmd(
        p, f, machine=mach, record_events=True, faults=faults, backend=backend
    )
    return plan, result


#: The overlap-comparison workload: big enough that a 4x2 SUMMA grid
#: broadcasts panels worth hiding and the CA3DMM plan (2x4x1) runs a
#: multi-shift Cannon stage — both phases clear 0.5 overlap efficiency
#: with the engine on (the ISSUE acceptance bar).
OVERLAP_WORKLOAD: tuple[int, int, int, int] = (384, 384, 128, 8)
OVERLAP_SUMMA_GRID: tuple[int, int] = (4, 2)
OVERLAP_SUMMA_PANEL: int = 64


def overlap_comparison(
    machine: MachineModel | None = None,
    backend: str | None = "des",
) -> BenchResult:
    """Async-engine payoff: pipelined vs synchronous SUMMA, plus Cannon.

    Runs the :data:`OVERLAP_WORKLOAD` twice per algorithm — once with
    the machine's async comm engine off (``overlap="none"``, the
    historical serialized schedule) and once with it on — and reports
    makespans, per-phase overlap efficiency, and the comm seconds the
    engine covered.  ``machine`` defaults to
    ``laptop().with_overlap("full")``; the "off" run is the same
    machine with ``with_overlap("none")`` so the only variable is the
    engine.  Used by the CI ``overlap-smoke`` job, which asserts the
    pipelined SUMMA makespan beats the synchronous one.
    """
    from ..baselines.summa import summa_matmul
    from ..core import ca3dmm_matmul
    from ..core.plan import Ca3dmmPlan
    from ..layout import DistMatrix, dense_random
    from ..layout.distributions import Block2D
    from ..machine.model import laptop
    from ..mpi import run_spmd
    from ..obs.metrics import overlap_by_phase

    m, n, k, p = OVERLAP_WORKLOAD
    pr, pc = OVERLAP_SUMMA_GRID
    mach_on = machine or laptop().with_overlap("full")
    mach_off = mach_on.with_overlap("none")
    plan = Ca3dmmPlan(m, n, k, p)

    def summa_body(comm):
        a = DistMatrix.from_global(
            comm, Block2D((m, k), p, pr, pc), dense_random(m, k, 0)
        )
        b = DistMatrix.from_global(
            comm, Block2D((k, n), p, pr, pc), dense_random(k, n, 1)
        )
        summa_matmul(a, b, grid=(pr, pc), panel=OVERLAP_SUMMA_PANEL)

    def ca3dmm_body(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    data: dict = {"workload": {"m": m, "n": n, "k": k, "nprocs": p},
                  "overlap_mode": mach_on.overlap}
    lines = [
        f"overlap comparison — {m}x{n}x{k} P={p} "
        f"(engine {mach_on.overlap!r} vs 'none')",
    ]
    for label, body, phase in (
        ("summa", summa_body, "summa"),
        ("ca3dmm", ca3dmm_body, "cannon"),
    ):
        off = run_spmd(p, body, machine=mach_off, record_events=True,
                       backend=backend)
        on = run_spmd(p, body, machine=mach_on, record_events=True,
                      backend=backend)
        ov = overlap_by_phase(on)
        covered = {}
        for t in on.live_traces:
            for ph, st in t.phases.items():
                if st.comm_covered_time > 0:
                    covered[ph] = covered.get(ph, 0.0) + st.comm_covered_time
        data[label] = {
            "sync_makespan_s": off.time,
            "engine_makespan_s": on.time,
            "speedup": off.time / on.time if on.time else float("inf"),
            "phase_overlap": {phase: ov.get(phase, 0.0)},
            "covered_by_phase": covered,
        }
        lines.append(
            f"  {label:<7} sync {off.time * 1e3:.6f} ms -> engine "
            f"{on.time * 1e3:.6f} ms ({data[label]['speedup']:.3f}x)  "
            f"{phase} overlap {100 * ov.get(phase, 0.0):.1f}%  "
            f"hidden {sum(covered.values()) * 1e3:.4f} ms"
        )
    return BenchResult("overlap", "\n".join(lines), data)


def fault_degradation(
    name: str,
    faults,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Degradation curve: a workload clean vs under a fault plan.

    Runs the stand-in workload for ``name`` twice — once clean, once
    under ``faults`` — and reports makespan delta, retry/timeout
    counters, and how much of the faulted run's critical path sits on
    injected segments.  Used by ``python -m repro.bench --fault-plan``.
    """
    from ..obs.critpath import critical_path

    _plan, clean = executed_workload(name, machine)
    _plan, faulted = executed_workload(name, machine, faults=faults)
    injected_s = critical_path(faulted).injected_s
    fm = faulted.metrics
    delta = faulted.time - clean.time
    data = {
        "clean_makespan_s": clean.time,
        "faulted_makespan_s": faulted.time,
        "delta_s": delta,
        "slowdown": faulted.time / clean.time if clean.time else float("inf"),
        "total_retries": fm.total_retries,
        "total_timeouts": fm.total_timeouts,
        "injected_wait_s": fm.injected_wait_s,
        "injected_critical_s": injected_s,
    }
    text = "\n".join([
        f"fault degradation — {name}",
        f"  clean makespan   : {clean.time * 1e3:.6f} ms",
        f"  faulted makespan : {faulted.time * 1e3:.6f} ms "
        f"({data['slowdown']:.3f}x, +{delta * 1e3:.6f} ms)",
        f"  retries/timeouts : {fm.total_retries}/{fm.total_timeouts}",
        f"  injected wait    : {fm.injected_wait_s * 1e3:.6f} ms "
        f"({injected_s * 1e3:.6f} ms on the critical path)",
    ])
    return BenchResult(f"faults_{name}", text, data)


def recovery_cost(
    name: str,
    kill_rank: int = 1,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Recovery overhead: a workload clean vs surviving a rank kill.

    Runs the stand-in workload for ``name`` twice through
    :func:`~repro.ft.resilient_multiply` — once clean, once with
    ``kill_rank`` permanently killed at its first Cannon entry — and
    reports the makespan cost of the shrink-replan-redistribute
    recovery plus a correctness check of the recovered C.  Used by
    ``python -m repro.bench --kill-rank``.
    """
    import numpy as np

    from ..core.plan import Ca3dmmPlan
    from ..ft import resilient_multiply
    from ..layout import DistMatrix, dense_random
    from ..mpi import run_spmd
    from ..mpi.faults import FaultPlan, RankFault

    m, n, k, p = TRACE_WORKLOADS[name]
    if not 0 <= kill_rank < p:
        raise ValueError(f"kill_rank {kill_rank} outside world [0, {p})")
    plan = Ca3dmmPlan(m, n, k, p)
    fault = FaultPlan(
        seed=0,
        ranks=(RankFault(rank=kill_rank, phase="cannon", occurrence=1,
                         kill=True),),
    )

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        c = resilient_multiply(comm, a, b, max_recoveries=2)
        return c.to_global()

    mach = machine or pace_phoenix_cpu("mpi")
    clean = run_spmd(p, f, machine=mach, record_events=True)
    faulted = run_spmd(p, f, machine=mach, record_events=True, faults=fault)
    got = next(r for r in faulted.results if r is not None)
    ref = dense_random(m, k, 0) @ dense_random(k, n, 1)
    tol = 1e-9 * max(1.0, float(np.abs(ref).max()))
    correct = bool(float(np.abs(got - ref).max()) <= tol)
    fm = faulted.metrics
    delta = faulted.time - clean.time
    data = {
        "kill_rank": kill_rank,
        "clean_makespan_s": clean.time,
        "faulted_makespan_s": faulted.time,
        "delta_s": delta,
        "slowdown": faulted.time / clean.time if clean.time else float("inf"),
        "recoveries": fm.recoveries,
        "failed_ranks": faulted.failed_ranks,
        "survivors": p - len(faulted.failed_ranks),
        "correct": correct,
    }
    text = "\n".join([
        f"recovery cost — {name} (kill rank {kill_rank} mid-Cannon)",
        f"  clean makespan   : {clean.time * 1e3:.6f} ms",
        f"  faulted makespan : {faulted.time * 1e3:.6f} ms "
        f"({data['slowdown']:.3f}x, +{delta * 1e3:.6f} ms)",
        f"  recoveries       : {fm.recoveries} "
        f"({data['survivors']}/{p} ranks survive)",
        f"  recovered C      : "
        f"{'correct' if correct else 'WRONG'} (tol {tol:.3e})",
    ])
    return BenchResult(f"recovery_{name}", text, data)


def checkpoint_cost(
    name: str,
    ckpt_every: int = 1,
    kill_rank: int = 1,
    calls: int = 4,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Checkpoint/restart overhead on a multi-call pipeline.

    Runs the alternating matmul chain (:mod:`repro.apps.pipeline`) on
    the stand-in workload for ``name`` twice — once clean, once with
    ``kill_rank`` killed mid-pipeline — both under
    :mod:`repro.ckpt` checkpointing every ``ckpt_every`` calls, and
    reports the checkpoint overhead (clean vs an uncheckpointed clean
    run), the recovery cost, and the reused-vs-recomputed flops split.
    A third clean run under a forced full-snapshot policy
    (``full_interval=1``) measures how many store bytes the default
    incremental (delta) checkpoints save.  Used by
    ``python -m repro.bench --ckpt-every``.
    """
    import numpy as np

    from ..apps.pipeline import matmul_chain, matmul_chain_reference
    from ..ckpt import CheckpointPolicy, MemoryStore
    from ..mpi import run_spmd
    from ..mpi.faults import FaultPlan, RankFault

    m, n, k, p = TRACE_WORKLOADS[name]
    if not 0 <= kill_rank < p:
        raise ValueError(f"kill_rank {kill_rank} outside world [0, {p})")
    kill_call = calls // 2
    fault = FaultPlan(
        seed=0,
        ranks=(RankFault(rank=kill_rank, phase="cannon",
                         occurrence=kill_call + 1, kill=True),),
    )

    def run(faults, policy):
        store = MemoryStore() if policy is not None else None

        def f(comm):
            res = matmul_chain(
                comm, m, n, k, calls=calls, store=store, policy=policy,
            )
            return res.state["X"].to_global()

        result = run_spmd(p, f, machine=machine or pace_phoenix_cpu("mpi"),
                          record_events=True, faults=faults)
        return result, store

    policy = CheckpointPolicy(every_calls=ckpt_every)
    bare, _ = run(None, None)
    clean, delta_store = run(None, policy)
    _full_run, full_store = run(
        None, CheckpointPolicy(every_calls=ckpt_every, full_interval=1),
    )
    faulted, _ = run(fault, policy)
    got = next(r for r in faulted.results if r is not None)
    ref = matmul_chain_reference(m, n, k, calls=calls)
    tol = 1e-8 * max(1.0, float(np.abs(ref).max()))
    correct = bool(float(np.abs(got - ref).max()) <= tol)
    fm = faulted.metrics
    ckpt_overhead = clean.time - bare.time
    delta = faulted.time - clean.time
    data = {
        "calls": calls,
        "ckpt_every": ckpt_every,
        "kill_rank": kill_rank,
        "kill_call": kill_call,
        "bare_makespan_s": bare.time,
        "clean_makespan_s": clean.time,
        "ckpt_overhead_s": ckpt_overhead,
        "faulted_makespan_s": faulted.time,
        "delta_s": delta,
        "recoveries": fm.recoveries,
        "reused_flops": fm.reused_flops,
        "recomputed_flops": fm.recomputed_flops,
        "one_call_flops": 2.0 * m * n * k,
        "failed_ranks": faulted.failed_ranks,
        "delta_bytes_written": delta_store.bytes_written,
        "full_bytes_written": full_store.bytes_written,
        "correct": correct,
    }
    saved = (
        100.0 * (1.0 - delta_store.bytes_written / full_store.bytes_written)
        if full_store.bytes_written else 0.0
    )
    text = "\n".join([
        f"checkpoint cost — {name} ({calls}-call chain, checkpoint every "
        f"{ckpt_every}, kill rank {kill_rank} in call {kill_call})",
        f"  bare makespan    : {bare.time * 1e3:.6f} ms (no checkpoints)",
        f"  clean makespan   : {clean.time * 1e3:.6f} ms "
        f"(+{ckpt_overhead * 1e3:.6f} ms checkpoint overhead)",
        f"  faulted makespan : {faulted.time * 1e3:.6f} ms "
        f"(+{delta * 1e3:.6f} ms recovery)",
        f"  flops accounting : {fm.reused_flops:.0f} reused, "
        f"{fm.recomputed_flops:.0f} recomputed "
        f"(one call = {2.0 * m * n * k:.0f})",
        f"  store bytes      : {delta_store.bytes_written} delta vs "
        f"{full_store.bytes_written} full-snapshot ({saved:.1f}% saved)",
        f"  recovered X      : "
        f"{'correct' if correct else 'WRONG'} (tol {tol:.3e})",
    ])
    return BenchResult(f"checkpoint_{name}", text, data)


def trace_artifact(
    name: str,
    outdir: str | Path,
    machine: MachineModel | None = None,
    backend: str | None = "des",
) -> Path:
    """Execute the stand-in workload for generator ``name`` and write a
    schema-validated Chrome trace to ``outdir/<name>.trace.json``.

    Runs on the DES backend by default (structural deadlock detection,
    no scheduler noise; traces are backend-identical anyway).  Returns
    the written path.  Raises ``KeyError`` for unknown names.
    """
    from ..obs.export import write_chrome_trace

    m, n, k, p = TRACE_WORKLOADS[name]
    _plan, result = executed_workload(name, machine, backend=backend)
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{name}.trace.json"
    write_chrome_trace(
        result, path, label=f"{name} stand-in {m}x{n}x{k} P={p}"
    )
    return path


def baseline_artifact(
    name: str,
    outdir: str | Path,
    machine: MachineModel | None = None,
    backend: str | None = "des",
) -> Path:
    """Execute the stand-in workload for ``name`` and write (or refresh)
    its perf baseline under ``outdir/<name>.json``.

    The baseline snapshots makespan, per-phase critical seconds (from
    the binding chain), and traffic counters; ``repro perfdiff`` and the
    CI perf-gate compare later runs against it.  Returns the written
    path.  Raises ``KeyError`` for unknown names.
    """
    from ..obs.baseline import BaselineStore, capture_baseline

    m, n, k, p = TRACE_WORKLOADS[name]
    _plan, result = executed_workload(name, machine, backend=backend)
    doc = capture_baseline(
        result,
        name,
        workload={"m": m, "n": n, "k": k, "nprocs": p},
        machine_label="pace_phoenix_cpu(mpi)" if machine is None else "custom",
    )
    return BaselineStore(outdir).save(name, doc)


def history_artifact(
    name: str,
    outdir: str | Path,
    machine: MachineModel | None = None,
    ledger: str | Path | None = None,
    backend: str | None = "des",
) -> Path:
    """Execute the stand-in workload for ``name`` and write its
    trajectory point to ``outdir/BENCH_<name>.json``.

    The document bundles the run's ledger record (the same deterministic
    schema the run history accumulates) with the full audit report —
    one measured-optimality data point per sweep, diffable across
    commits.  When ``ledger`` is given the record is also appended to
    that JSONL history.  Returns the written path.  Raises ``KeyError``
    for unknown names.
    """
    import json

    from ..obs.audit import audit_run
    from ..obs.ledger import Ledger, ledger_record

    mach = machine or pace_phoenix_cpu("mpi")
    plan, result = executed_workload(name, mach, backend=backend)
    audit = audit_run(result, plan, machine=mach)
    record = ledger_record(
        result, plan, f"bench.{name}", audit_ok=audit.ok
    )
    if ledger is not None:
        Ledger(ledger).append(record)
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"BENCH_{name}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"schema_version": 1, "record": record, "audit": audit.to_dict()},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return path


# ------------------------------------------------------------------ Fig 2 -- #
def fig2_partitions() -> BenchResult:
    """Fig. 2: the worked partitioning examples, rendered exactly.

    Example 1 (m=32, k=16, n=64, P=8) and Example 2 (m=n=32, k=64,
    P=16) as owner-labelled block diagrams of the native layouts.
    """
    from ..core.plan import Ca3dmmPlan
    from ..core.plan_render import render_partitions

    ex1 = Ca3dmmPlan(32, 64, 16, 8)
    ex2 = Ca3dmmPlan(32, 32, 64, 16)
    text = "\n\n".join(
        [
            "Fig 2a — Example 1 (m=32, k=16, n=64, P=8)",
            render_partitions(ex1),
            "Fig 2b — Example 2 (m=n=32, k=64, P=16)",
            render_partitions(ex2),
        ]
    )
    return BenchResult("fig2", text, {"ex1": ex1, "ex2": ex2})


# ------------------------------------------------------------------ Fig 3 -- #
def fig3_scaling(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    procs: tuple[int, ...] = SCALING_PROCS,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Fig. 3: strong scaling, % of peak, native and 1D-column layouts."""
    mach = machine or pace_phoenix_cpu("mpi")
    blocks, data = [], {}
    for p in problems:
        series: dict[str, list[float]] = {
            "CA3DMM native": [],
            "CA3DMM custom": [],
            "COSMA native": [],
            "COSMA custom": [],
            "CTF native": [],
        }
        for P in procs:
            series["CA3DMM native"].append(ca3dmm_cost(*p.dims, P, mach).pct_peak())
            series["CA3DMM custom"].append(
                ca3dmm_cost(*p.dims, P, mach, custom_layout=True).pct_peak()
            )
            series["COSMA native"].append(cosma_cost(*p.dims, P, mach).pct_peak())
            series["COSMA custom"].append(
                cosma_cost(*p.dims, P, mach, custom_layout=True).pct_peak()
            )
            series["CTF native"].append(ctf_cost(*p.dims, P, mach).pct_peak())
        data[p.cls] = series
        blocks.append(
            format_series("procs", procs, series, title=f"Fig 3 — {p.label()} (% of peak)")
        )
    return BenchResult("fig3", "\n\n".join(blocks), data)


# ------------------------------------------------------------------ Fig 4 -- #
def fig4_hybrid(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    procs: tuple[int, ...] = SCALING_PROCS,
) -> BenchResult:
    """Fig. 4: pure-MPI vs MPI+OpenMP strong scaling (% of peak)."""
    mpi = pace_phoenix_cpu("mpi")
    hyb = pace_phoenix_cpu("hybrid")
    blocks, data = [], {}
    for p in problems:
        series: dict[str, list[float]] = {
            "CA3DMM pure MPI": [],
            "CA3DMM hybrid": [],
            "COSMA pure MPI": [],
            "COSMA hybrid": [],
        }
        for P in procs:
            nodes = max(1, P // mpi.cores_per_node)
            series["CA3DMM pure MPI"].append(ca3dmm_cost(*p.dims, P, mpi).pct_peak())
            series["CA3DMM hybrid"].append(ca3dmm_cost(*p.dims, nodes, hyb).pct_peak())
            series["COSMA pure MPI"].append(cosma_cost(*p.dims, P, mpi).pct_peak())
            series["COSMA hybrid"].append(cosma_cost(*p.dims, nodes, hyb).pct_peak())
        data[p.cls] = series
        blocks.append(
            format_series(
                "cores", procs, series, title=f"Fig 4 — {p.label()} (% of peak)"
            )
        )
    return BenchResult("fig4", "\n\n".join(blocks), data)


# --------------------------------------------------------------- Table I -- #
def table1_memory(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    procs: tuple[int, ...] = SCALING_PROCS,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Table I: per-process memory (MB) for COSMA and CA3DMM."""
    mach = machine or pace_phoenix_cpu("mpi")
    rows, data = [], {}
    for algo, fn in (("COSMA", cosma_cost), ("CA3DMM", ca3dmm_cost)):
        for p in problems:
            mems = [fn(*p.dims, P, mach).mem_mb for P in procs]
            rows.append([algo, p.label()] + [f"{v:.0f}" for v in mems])
            data[(algo, p.cls)] = mems
    text = format_table(
        ["library", "problem"] + [str(P) for P in procs],
        rows,
        title="Table I — memory per process (MB)",
    )
    return BenchResult("table1", text, data)


def table1_measured(
    names: tuple[str, ...] = ("fig3", "table1", "table2", "table3"),
    machine: MachineModel | None = None,
) -> BenchResult:
    """Table I companion: measured resident peak vs eq. (11), executed.

    The analytic table prices paper-scale problems; this executes the
    thread-simulator stand-ins of the same shape classes and puts the
    memtrace resident watermark (max over ranks, words) next to the
    eq. (11) prediction for the grid actually planned.  ``ratio`` is
    measured / analytic — the memory gate bounds it near 1.
    """
    from ..obs.metrics import ITEM

    rows, data = [], {}
    for name in names:
        m, n, k, p = TRACE_WORKLOADS[name]
        plan, result = executed_workload(name, machine=machine)
        eq11 = plan.grid.memory_words(m, n, k)
        measured = max(
            (t.resident_peak_bytes for t in result.live_traces), default=0
        ) / ITEM
        ratio = measured / eq11 if eq11 > 0 else float("nan")
        rows.append([
            name, f"{m}x{n}x{k}", str(p),
            f"{plan.pm}x{plan.pn}x{plan.pk}",
            f"{eq11:.0f}", f"{measured:.0f}", f"{ratio:.3f}",
        ])
        data[name] = {
            "eq11_words": eq11,
            "measured_words": measured,
            "ratio": ratio,
        }
    text = format_table(
        ["workload", "m x n x k", "P", "grid", "eq11 words",
         "measured words", "ratio"],
        rows,
        title="Table I companion — measured resident peak vs eq. (11) (words)",
    )
    return BenchResult("table1_measured", text, data)


# -------------------------------------------------------------- Table II -- #
#: The paper's Table II grid specifications: problem class ->
#: [(procs, (pm, pn, pk), is_default)] for each library.
TABLE2_GRIDS: dict[str, list[tuple[int, tuple[int, int, int]]]] = {
    "square": [(2048, (8, 16, 16)), (3072, (16, 16, 12)), (3072, (12, 16, 16))],
    "large-K": [(2048, (2, 2, 512)), (3072, (3, 3, 341)), (3072, (4, 2, 384))],
    "large-M": [(2048, (512, 2, 2)), (3072, (512, 2, 3)), (3072, (384, 4, 2))],
    "flat": [(2048, (32, 32, 2)), (3072, (32, 32, 3)), (3072, (39, 39, 2))],
}


def table2_grids(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Table II: runtimes with the paper's forced process grids."""
    mach = machine or pace_phoenix_cpu("mpi")
    rows, data = [], {}
    for p in problems:
        for procs, dims in TABLE2_GRIDS[p.cls]:
            pm, pn, pk = dims
            grid = GridSpec(pm=pm, pn=pn, pk=pk, nprocs=procs)
            co = cosma_cost(*p.dims, procs, mach, grid=grid)
            if grid.cannon_compatible:
                ca = ca3dmm_cost(*p.dims, procs, mach, grid=grid)
                ca_t = ca.t_total
            else:
                ca_t = float("nan")
            rows.append(
                [procs, p.label(), f"{pm}x{pn}x{pk}", f"{co.t_total:.3f}", f"{ca_t:.3f}"]
            )
            data[(p.cls, procs, dims)] = {"cosma": co.t_total, "ca3dmm": ca_t}
        # the library-default grids for comparison
        for procs in TABLE2_PROCS:
            gca = ca3dmm_grid(*p.dims, procs)
            gco = cosma_grid(*p.dims, procs)
            ca = ca3dmm_cost(*p.dims, procs, mach, grid=gca)
            co = cosma_cost(*p.dims, procs, mach, grid=gco)
            rows.append(
                [
                    procs,
                    p.label() + " (default)",
                    f"{gca.pm}x{gca.pn}x{gca.pk} / {gco.pm}x{gco.pn}x{gco.pk}",
                    f"{co.t_total:.3f}",
                    f"{ca.t_total:.3f}",
                ]
            )
            data[(p.cls, procs, "default")] = {"cosma": co.t_total, "ca3dmm": ca.t_total}
    text = format_table(
        ["cores", "problem", "grid pm x pn x pk", "COSMA (s)", "CA3DMM (s)"],
        rows,
        title="Table II — runtime with forced process grids",
    )
    return BenchResult("table2", text, data)


# ------------------------------------------------------------------ Fig 5 -- #
def fig5_breakdown(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    procs: int = 2048,
    machine: MachineModel | None = None,
) -> BenchResult:
    """Fig. 5: relative runtime breakdowns at 2048 cores.

    Normalized so COSMA's total equals 1 for each problem class, as in
    the paper.
    """
    mach = machine or pace_phoenix_cpu("mpi")
    rows, data = [], {}
    for p in problems:
        co = breakdown_from_report(cosma_cost(*p.dims, procs, mach))
        ca = breakdown_from_report(ca3dmm_cost(*p.dims, procs, mach))
        denom = co.total
        co_n, ca_n = co.normalized(denom), ca.normalized(denom)
        for name, b in (("COSMA", co_n), ("CA3DMM", ca_n)):
            rows.append(
                [
                    p.cls,
                    name,
                    f"{b.local_compute:.3f}",
                    f"{b.replicate_ab:.3f}",
                    f"{b.reduce_c:.3f}",
                    f"{b.total:.3f}",
                ]
            )
        data[p.cls] = {"cosma": co_n, "ca3dmm": ca_n}
    text = format_table(
        ["problem", "library", "local comp", "replicate A,B", "reduce C", "total"],
        rows,
        title=f"Fig 5 — normalized runtime breakdown at {procs} cores (COSMA total = 1)",
    )
    return BenchResult("fig5", text, data)


# ------------------------------------------------------------- Table III -- #
def table3_gpu(
    problems: tuple[Problem, ...] = GPU_PROBLEMS,
    gpu_counts: tuple[int, ...] = GPU_COUNTS,
) -> BenchResult:
    """Table III: GPU runtimes for COSMA / CA3DMM / CTF."""
    mach = pace_phoenix_gpu()
    rows, data = [], {}
    for P in gpu_counts:
        for p in problems:
            ca = ca3dmm_cost(*p.dims, P, mach)
            co = cosma_cost(*p.dims, P, mach)
            ct = ctf_cost(*p.dims, P, mach)
            rows.append(
                [
                    P,
                    p.label(),
                    ca.grid,
                    f"{co.t_total:.3f}",
                    f"{ca.t_total:.3f}",
                    f"{ct.t_total:.3f}",
                ]
            )
            data[(P, p.cls)] = {
                "cosma": co.t_total,
                "ca3dmm": ca.t_total,
                "ctf": ct.t_total,
            }
    text = format_table(
        ["GPUs", "problem", "grid", "COSMA (s)", "CA3DMM (s)", "CTF (s)"],
        rows,
        title="Table III — GPU runtimes (s)",
    )
    return BenchResult("table3", text, data)


# -------------------------------------------------------------- l sweep -- #
def l_sweep(
    problems: tuple[Problem, ...] = CPU_PROBLEMS,
    procs: tuple[int, ...] = SCALING_PROCS,
    l_values: tuple[float, ...] = (0.85, 0.90, 0.95, 0.99),
) -> BenchResult:
    """Section IV-A: the grid choice is insensitive to l in [0.85, 0.99]."""
    rows, same, total = [], 0, 0
    for p in problems:
        for P in procs:
            grids = [ca3dmm_grid(*p.dims, P, l=l) for l in l_values]
            base = (grids[l_values.index(0.95)].pm, grids[l_values.index(0.95)].pn,
                    grids[l_values.index(0.95)].pk)
            agree = all((g.pm, g.pn, g.pk) == base for g in grids)
            total += 1
            same += agree
            rows.append(
                [p.cls, P, f"{base[0]}x{base[1]}x{base[2]}", "yes" if agree else "no"]
            )
    text = format_table(
        ["problem", "procs", "grid at l=0.95", "identical for all l"],
        rows,
        title=f"l-sweep — {same}/{total} cases give the same grid for l in {l_values}",
    )
    return BenchResult("l_sweep", text, {"same": same, "total": total})
