"""Benchmark harness: workloads, per-figure/table generators, renderers."""

from .harness import (
    BenchResult,
    fig2_partitions,
    TABLE2_GRIDS,
    fig3_scaling,
    fig4_hybrid,
    fig5_breakdown,
    l_sweep,
    table1_measured,
    table1_memory,
    table2_grids,
    table3_gpu,
)
from .report import format_series, format_table
from .workloads import (
    CPU_PROBLEMS,
    GPU_COUNTS,
    GPU_PROBLEMS,
    SCALING_PROCS,
    SMALL_PROBLEMS,
    TABLE2_PROCS,
    Problem,
    scaled_problem,
)

__all__ = [
    "BenchResult",
    "fig2_partitions",
    "fig3_scaling",
    "fig4_hybrid",
    "fig5_breakdown",
    "table1_measured",
    "table1_memory",
    "table2_grids",
    "table3_gpu",
    "l_sweep",
    "TABLE2_GRIDS",
    "format_table",
    "format_series",
    "Problem",
    "CPU_PROBLEMS",
    "GPU_PROBLEMS",
    "SMALL_PROBLEMS",
    "SCALING_PROCS",
    "TABLE2_PROCS",
    "GPU_COUNTS",
    "scaled_problem",
]
