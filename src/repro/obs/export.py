"""Trace and metrics exporters: Chrome-trace/Perfetto JSON and JSONL.

:func:`chrome_trace` turns an executed run (``run_spmd(...,
record_events=True)``) into the Chrome Trace Event Format — the JSON
Array-of-events flavour inside an object, which both ``chrome://tracing``
and Perfetto load directly:

* one ``"X"`` (complete) event per tracer span — CA3DMM phases,
  collectives, user spans — with the span's byte/message deltas in
  ``args``;
* optionally one fine-grained ``"X"`` event per transport event
  (send/recv/wait/compute slices), category ``transport``;
* optionally one ``"C"`` (counter) event per memtrace alloc/free —
  each rank's resident tagged footprint as a step-function track;
* ``"M"`` metadata events naming the process and one thread per rank.

Timestamps are microseconds of *simulated* time, re-zeroed to the trace
epoch.  :data:`CHROME_TRACE_SCHEMA` is the JSON Schema the tests (and
CI smoke job) validate exports against; :func:`validate_chrome_trace`
applies it (via ``jsonschema`` when installed, with a built-in
structural fallback otherwise).

:func:`jsonl_records` / :func:`write_jsonl` produce a line-per-record
structured log (run header, spans, per-rank summaries) for downstream
tooling; :data:`RUN_JSON_SCHEMA` covers the CLI's ``--json`` document.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import ITEM, snapshot_run
from .tracer import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SpmdResult

#: displayTimeUnit for Chrome; ts values are always microseconds.
_DISPLAY_UNIT = "ms"


# ------------------------------------------------------------- schemas -- #
CHROME_TRACE_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "Chrome Trace Event Format export",
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"enum": ["X", "M", "i", "C"]},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                },
                "allOf": [
                    {
                        "if": {"properties": {"ph": {"const": "X"}}},
                        "then": {"required": ["ts", "dur", "cat"]},
                    },
                    {
                        "if": {"properties": {"ph": {"const": "C"}}},
                        "then": {"required": ["ts", "args"]},
                    },
                ],
            },
        },
        "displayTimeUnit": {"type": "string"},
        "otherData": {"type": "object"},
    },
}

RUN_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.cli --json run document",
    "type": "object",
    "required": ["schema_version", "problem", "partition", "phases", "correctness"],
    "properties": {
        "schema_version": {"const": 1},
        "problem": {
            "type": "object",
            "required": ["m", "n", "k", "nprocs", "transA", "transB", "device"],
            "properties": {
                "m": {"type": "integer", "minimum": 1},
                "n": {"type": "integer", "minimum": 1},
                "k": {"type": "integer", "minimum": 1},
                "nprocs": {"type": "integer", "minimum": 1},
                "transA": {"enum": ["N", "T", "C"]},
                "transB": {"enum": ["N", "T", "C"]},
                "device": {"enum": ["cpu", "gpu"]},
            },
        },
        "partition": {
            "type": "object",
            "required": ["pm", "pn", "pk", "s", "c", "utilization_pct"],
            "properties": {
                "pm": {"type": "integer", "minimum": 1},
                "pn": {"type": "integer", "minimum": 1},
                "pk": {"type": "integer", "minimum": 1},
                "s": {"type": "integer", "minimum": 1},
                "c": {"type": "integer", "minimum": 1},
                "utilization_pct": {"type": "number"},
                "q_over_lower_bound": {"type": "number"},
                "work_cuboid": {
                    "type": "array",
                    "items": {"type": "integer"},
                    "minItems": 3,
                    "maxItems": 3,
                },
            },
        },
        "phases": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["avg_ms"],
                "properties": {"avg_ms": {"type": "number", "minimum": 0}},
            },
        },
        "runs": {"type": "array", "items": {"type": "object"}},
        "correctness": {
            "type": "object",
            "required": ["validated", "errors"],
            "properties": {
                "validated": {"type": "boolean"},
                "errors": {"type": "integer", "minimum": 0},
            },
        },
        "peak_bytes": {"type": "integer", "minimum": 0},
        "metrics": {"type": "object"},
        "drift": {"type": "object"},
        "audit": {"type": "object"},
    },
}


class TraceSchemaError(ValueError):
    """An exported document does not match its schema."""


def _validate(doc: Any, schema: dict[str, Any]) -> None:
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - jsonschema is normally present
        _validate_fallback(doc, schema)
        return
    try:
        jsonschema.validate(doc, schema)
    except jsonschema.ValidationError as exc:
        raise TraceSchemaError(str(exc)) from exc


def _validate_fallback(doc: Any, schema: dict[str, Any]) -> None:
    """Minimal structural check used when jsonschema is unavailable."""
    if not isinstance(doc, dict):
        raise TraceSchemaError("document must be an object")
    for req in schema.get("required", []):
        if req not in doc:
            raise TraceSchemaError(f"missing required key {req!r}")
    events = doc.get("traceEvents")
    if events is not None:
        if not isinstance(events, list):
            raise TraceSchemaError("traceEvents must be an array")
        for ev in events:
            if not isinstance(ev, dict) or "ph" not in ev or "name" not in ev:
                raise TraceSchemaError(f"malformed trace event: {ev!r}")
            if ev["ph"] == "X" and ("ts" not in ev or "dur" not in ev):
                raise TraceSchemaError(f"X event missing ts/dur: {ev!r}")
            if ev["ph"] == "C" and ("ts" not in ev or "args" not in ev):
                raise TraceSchemaError(f"C event missing ts/args: {ev!r}")


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`TraceSchemaError` unless ``doc`` is a valid export."""
    _validate(doc, CHROME_TRACE_SCHEMA)


def validate_run_json(doc: Any) -> None:
    """Raise :class:`TraceSchemaError` unless ``doc`` matches the CLI schema."""
    _validate(doc, RUN_JSON_SCHEMA)


# ---------------------------------------------------------- chrome trace -- #
def _span_event(span: Span, epoch: float) -> dict[str, Any]:
    t1 = span.t1 if span.t1 is not None else span.t0
    args = {k: v for k, v in span.attrs.items() if not k.startswith("_")}
    args["sid"] = span.sid
    if span.parent >= 0:
        args["parent"] = span.parent
    return {
        "ph": "X",
        "pid": 0,
        "tid": span.rank,
        "name": span.name,
        "cat": span.cat,
        "ts": (span.t0 - epoch) * 1e6,
        "dur": max(0.0, (t1 - span.t0) * 1e6),
        "args": args,
    }


def chrome_trace(
    result: "SpmdResult",
    include_transport_events: bool = True,
    label: str = "repro run",
) -> dict[str, Any]:
    """Build a Chrome-trace document from an executed run.

    ``include_transport_events=False`` drops the per-message/per-GEMM
    slices and keeps only the structured spans (phases, collectives) —
    smaller files for large runs.
    """
    transport = result.transport
    spans = transport.tracer.spans
    epoch = min(
        transport.tracer.epoch(),
        min((e.t0 for e in transport.events), default=0.0),
        min((e.t for e in transport.memlog), default=float("inf"))
        if transport.memlog else 0.0,
    )
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": label}},
    ]
    for rank in range(transport.nprocs):
        events.append(
            {"ph": "M", "pid": 0, "tid": rank, "name": "thread_name",
             "args": {"name": f"rank {rank}"}}
        )
    events.extend(_span_event(s, epoch) for s in spans)
    if include_transport_events:
        for e in transport.events:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": e.rank,
                    "name": e.kind,
                    "cat": "transport",
                    "ts": (e.t0 - epoch) * 1e6,
                    "dur": max(0.0, (e.t1 - e.t0) * 1e6),
                    "args": {
                        "phase": e.phase,
                        "nbytes": e.nbytes,
                        "peer": e.peer,
                    },
                }
            )
        # One "C" sample per memtrace alloc/free: Perfetto draws each
        # rank's resident footprint as a step-function counter track.
        # Args stay purely numeric — string args would become series.
        for me in transport.memlog:
            events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": me.rank,
                    "name": f"resident_bytes rank {me.rank}",
                    "cat": "memory",
                    "ts": max(0.0, (me.t - epoch) * 1e6),
                    "args": {"resident_bytes": me.resident_bytes},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": _DISPLAY_UNIT,
        "otherData": {
            "generator": "repro.obs",
            "nprocs": transport.nprocs,
            "makespan_us": result.time * 1e6,
            "q_words": max((t.bytes_sent for t in result.traces), default=0) / ITEM,
        },
    }


def write_chrome_trace(result: "SpmdResult", path: str, **kwargs: Any) -> dict[str, Any]:
    """Export, schema-validate, and write a Chrome trace; returns the doc."""
    doc = chrome_trace(result, **kwargs)
    validate_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


# ---------------------------------------------------------------- jsonl -- #
def jsonl_records(result: "SpmdResult") -> Iterator[dict[str, Any]]:
    """Structured-log records for one run: header, spans, rank summaries."""
    transport = result.transport
    yield {
        "type": "run",
        "nprocs": transport.nprocs,
        "makespan_s": result.time,
        "record_events": transport.record_events,
    }
    epoch = transport.tracer.epoch()
    for span in transport.tracer.spans:
        yield {
            "type": "span",
            "sid": span.sid,
            "parent": span.parent,
            "rank": span.rank,
            "name": span.name,
            "cat": span.cat,
            "t0_s": span.t0 - epoch,
            "t1_s": (span.t1 if span.t1 is not None else span.t0) - epoch,
            "attrs": {k: v for k, v in span.attrs.items() if not k.startswith("_")},
        }
    for trace in result.traces:
        yield {
            "type": "rank",
            "rank": trace.rank,
            "clock_s": trace.time,
            "bytes_sent": trace.bytes_sent,
            "bytes_recv": trace.bytes_recv,
            "msgs_sent": trace.msgs_sent,
            "msgs_recv": trace.msgs_recv,
            "peak_live_bytes": trace.peak_live_bytes,  # transport in-flight
            "resident_peak_bytes": trace.resident_peak_bytes,
            "resident_bytes": trace.resident_bytes,  # nonzero = leak
            "mem_peaks": dict(sorted(trace.mem_peaks.items())),
            "phase_mem_peaks": dict(sorted(trace.phase_mem_peaks.items())),
            "phases": {
                name: {
                    "time_s": st.time,
                    "comm_time_s": st.comm_time,
                    "compute_time_s": st.compute_time,
                    "bytes_sent": st.bytes_sent,
                    "bytes_recv": st.bytes_recv,
                    "msgs_sent": st.msgs_sent,
                    "msgs_recv": st.msgs_recv,
                }
                for name, st in sorted(trace.phases.items())
            },
            "colls": {
                phase: {
                    label: {
                        "bytes_sent": cs.bytes_sent,
                        "bytes_recv": cs.bytes_recv,
                        "msgs_sent": cs.msgs_sent,
                        "msgs_recv": cs.msgs_recv,
                    }
                    for label, cs in sorted(by_coll.items())
                }
                for phase, by_coll in sorted(trace.colls.items())
            },
        }


def write_jsonl(result: "SpmdResult", path: str) -> int:
    """Write the structured log; returns the number of records."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in jsonl_records(result):
            fh.write(json.dumps(rec) + "\n")
            n += 1
    return n


def run_summary(result: "SpmdResult", plan=None) -> dict[str, Any]:
    """Metrics snapshot as a JSON-ready dict (used by CLI ``stats``)."""
    return snapshot_run(result, plan).to_dict()
