"""Low-overhead span tracer for the virtual MPI runtime.

A :class:`Span` is one named, nested interval on one rank's *simulated*
clock — a phase of the CA3DMM schedule, a collective, or any region a
caller brackets with :meth:`~repro.mpi.comm.Comm.span`.  Spans carry
attributes (byte/message deltas are attached automatically by the
transport) and a parent pointer, so an executed run yields a full causal
trace: every collective sits inside the CA3DMM stage that issued it, and
every stage sits inside the run.

Design constraints:

* **Low overhead when off.**  The tracer is enabled together with
  ``record_events``; when disabled, instrumentation sites pay one
  attribute read (``tracer.enabled``) and nothing else.
* **Thread safety.**  Ranks are threads sharing one tracer; a single
  lock guards the span list (span *stacks* are per-rank, so only the
  append to the shared list needs it).
* **Clock alignment.**  All ranks advance clocks derived from the same
  simulated epoch (t = 0 at ``run_spmd`` start), so spans are globally
  ordered by construction; :meth:`Tracer.epoch` exposes the earliest
  span start so exporters can re-zero traces of a later multiply in a
  long-lived engine.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Span categories used by the built-in instrumentation.
CAT_PHASE = "phase"  #: a CA3DMM schedule stage (redist/replicate/cannon/...)
CAT_COLLECTIVE = "collective"  #: one collective call on one communicator
CAT_USER = "user"  #: caller-opened span (``Comm.span``)


@dataclass
class Span:
    """One nested interval on one rank's simulated clock."""

    sid: int  #: unique span id (per tracer)
    parent: int  #: sid of the enclosing span on the same rank, or -1
    rank: int  #: world rank
    name: str
    cat: str = CAT_USER
    t0: float = 0.0
    t1: float | None = None  #: None while the span is still open
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    @property
    def closed(self) -> bool:
        return self.t1 is not None


class Tracer:
    """Collects :class:`Span` records from all ranks of one transport."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._spans: dict[int, Span] = {}
        self._stacks: dict[int, list[int]] = {}
        #: cached start-ordered view; invalidated when a span is added.
        self._sorted: list[Span] | None = None

    # ------------------------------------------------------------ record -- #
    def begin(
        self,
        rank: int,
        name: str,
        t: float,
        cat: str = CAT_USER,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Open a span on ``rank`` at simulated time ``t``; returns its id."""
        with self._lock:
            sid = next(self._ids)
            stack = self._stacks.setdefault(rank, [])
            span = Span(
                sid=sid,
                parent=stack[-1] if stack else -1,
                rank=rank,
                name=name,
                cat=cat,
                t0=t,
                attrs=dict(attrs) if attrs else {},
            )
            self._spans[sid] = span
            stack.append(sid)
            self._sorted = None
            return sid

    def end(self, rank: int, sid: int, t: float, attrs: dict[str, Any] | None = None) -> None:
        """Close span ``sid`` at simulated time ``t``.

        Spans must close innermost-first (context managers guarantee
        this); closing a span also closes any deeper spans left open by
        a non-local exit, so the stack never wedges on exceptions.  A
        stale ``sid`` — already closed, e.g. by an ancestor's non-local
        exit, or never opened on this rank — only updates that span's
        end time/attrs and leaves the rank's stack untouched.
        """
        with self._lock:
            span = self._spans.get(sid)
            if span is None:
                return
            stack = self._stacks.get(rank, [])
            if sid in stack:
                while stack:
                    top = stack.pop()
                    inner = self._spans[top]
                    if inner.t1 is None:
                        inner.t1 = max(t, inner.t0)
                    if top == sid:
                        break
            elif span.t1 is None:
                span.t1 = max(t, span.t0)
            if attrs:
                span.attrs.update(attrs)

    def annotate(self, sid: int, **attrs: Any) -> None:
        """Attach attributes to an already-recorded span."""
        with self._lock:
            self._spans[sid].attrs.update(attrs)

    def take_attr(self, sid: int, key: str) -> Any:
        """Remove and return an attribute (None if absent)."""
        with self._lock:
            return self._spans[sid].attrs.pop(key, None)

    # ----------------------------------------------------------- inspect -- #
    def _sorted_view(self) -> list[Span]:
        """The cached start-ordered span list (shared; do not mutate)."""
        with self._lock:
            if self._sorted is None:
                self._sorted = sorted(
                    self._spans.values(), key=lambda s: (s.t0, s.sid)
                )
            return self._sorted

    @property
    def spans(self) -> list[Span]:
        """All spans, ordered by start time then id (open ones included).

        The sort is computed once and cached until the next ``begin``
        (span end times never reorder the ``(t0, sid)`` key), so
        repeated access — exporters iterating per rank, per name, per
        parent — costs a copy, not a re-sort.
        """
        return list(self._sorted_view())

    def spans_of(self, rank: int) -> list[Span]:
        return [s for s in self._sorted_view() if s.rank == rank]

    def named(self, name: str) -> list[Span]:
        return [s for s in self._sorted_view() if s.name == name]

    def epoch(self) -> float:
        """Earliest span start (0.0 when no spans were recorded)."""
        with self._lock:
            return min((s.t0 for s in self._spans.values()), default=0.0)

    def children(self, sid: int) -> list[Span]:
        return [s for s in self._sorted_view() if s.parent == sid]

    def roots(self, rank: int | None = None) -> Iterator[Span]:
        for s in self._sorted_view():
            if s.parent == -1 and (rank is None or s.rank == rank):
                yield s

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
