"""Rank-level memory-footprint report and the eq. (11) audit gate.

The transport's memtrace counters (:meth:`Transport.mem_alloc` /
:meth:`Transport.mem_free`, charged by the engines through
``Comm.mem(purpose, nbytes)``) record every tagged allocation span a
rank holds: operand tiles, replication buffers, Cannon double buffers,
ABFT checksum borders, checkpoint staging copies, write-behind delta
snapshots (``ckpt.writebehind`` — resident from the step that dirtied a
matrix until the commit barrier proves the flushed tiles durable), and
in-flight transport payloads.  This module distils those counters into a
:class:`MemReport` — per-rank resident watermarks, per-purpose and
per-phase peaks, top-offender ranks — and closes the loop against the
paper's analytic model:

* **eq. (11)** (:meth:`GridSpec.memory_words`) predicts the peak matrix
  words an active process holds.  The measured resident watermark must
  not exceed it by more than a tolerance; :func:`check_mem` raises
  :class:`MemAuditError` when it does.
* a ``memory_limit_words`` cap (the Section V knob) is enforced the
  same way — unless the plan's ``mem_limit_infeasible`` flag records
  that the cap excluded every grid, in which case the cap is known to
  be un-honoured and only eq. (11) gates.

Resident watermarks are **measured** footprint — distinct from the
legacy ``peak_live_bytes`` counter, which tracks transport in-flight
payload plus self-reported baseline estimates (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .metrics import ITEM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import Ca3dmmPlan
    from ..mpi.runtime import SpmdResult


class MemAuditError(AssertionError):
    """Measured resident footprint violates eq. (11) or the memory cap."""


MEMPROF_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs.memtrace report",
    "type": "object",
    "required": [
        "schema_version",
        "problem",
        "eq11_words",
        "resident_peak_words",
        "peak_rank",
        "by_purpose_words",
        "ranks",
        "ok",
    ],
    "properties": {
        "schema_version": {"const": 1},
        "problem": {
            "type": "object",
            "required": ["m", "n", "k", "nprocs"],
            "properties": {
                "m": {"type": "integer", "minimum": 1},
                "n": {"type": "integer", "minimum": 1},
                "k": {"type": "integer", "minimum": 1},
                "nprocs": {"type": "integer", "minimum": 1},
            },
        },
        "eq11_words": {"type": "number", "minimum": 0},
        "limit_words": {"type": ["number", "null"]},
        "mem_limit_infeasible": {"type": "boolean"},
        "tol": {"type": "number", "minimum": 0},
        "resident_peak_words": {"type": "number", "minimum": 0},
        "transport_peak_words": {"type": "number", "minimum": 0},
        "peak_rank": {"type": "integer", "minimum": -1},
        "peak_over_eq11": {"type": ["number", "null"]},
        "by_purpose_words": {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        },
        "ranks": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rank", "resident_peak_words"],
                "properties": {
                    "rank": {"type": "integer", "minimum": 0},
                    "resident_peak_words": {"type": "number", "minimum": 0},
                    "live_words": {"type": "number", "minimum": 0},
                    "by_purpose_words": {"type": "object"},
                    "by_phase_words": {"type": "object"},
                },
            },
        },
        "leaks": {"type": "object"},
        "ok": {"type": "boolean"},
        "violations": {"type": "array", "items": {"type": "string"}},
    },
}


def validate_memprof_json(doc: Any) -> None:
    """Raise :class:`TraceSchemaError` unless ``doc`` matches the schema."""
    from .export import _validate

    _validate(doc, MEMPROF_JSON_SCHEMA)


@dataclass(frozen=True)
class RankMemProfile:
    """One rank's memtrace summary."""

    rank: int
    resident_peak_words: float  #: high-water mark of tagged bytes / ITEM
    live_words: float  #: still-charged words at run exit (0 = balanced)
    by_purpose_words: dict[str, float] = field(default_factory=dict)
    by_phase_words: dict[str, float] = field(default_factory=dict)


@dataclass
class MemReport:
    """The measured-vs-analytic memory audit of one executed run."""

    m: int
    n: int
    k: int
    nprocs: int
    #: eq. (11) prediction for the plan's grid, words per active process.
    eq11_words: float
    #: the Section V cap the plan was built under, if any.
    limit_words: float | None
    #: the cap excluded every grid; the plan does not honour it.
    mem_limit_infeasible: bool
    #: relative headroom allowed over eq. (11) / the cap.
    tol: float
    #: max measured resident watermark over live ranks, words.
    resident_peak_words: float
    #: the rank holding the watermark (-1 when no memtrace data).
    peak_rank: int
    #: legacy transport in-flight / self-reported peak, for context.
    transport_peak_words: float
    #: max-over-ranks peak per allocation purpose, words.
    by_purpose_words: dict[str, float] = field(default_factory=dict)
    ranks: list[RankMemProfile] = field(default_factory=list)
    #: ``{rank: {purpose: words}}`` still charged at exit.
    leaks: dict[int, dict[str, float]] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def peak_over_eq11(self) -> float | None:
        """Measured / analytic ratio; the gate bounds it by ``1 + tol``."""
        if self.eq11_words <= 0 or self.resident_peak_words <= 0:
            return None
        return self.resident_peak_words / self.eq11_words

    def top_offenders(self, count: int = 3) -> list[RankMemProfile]:
        """The ``count`` ranks with the highest resident watermark."""
        return sorted(
            self.ranks, key=lambda r: (-r.resident_peak_words, r.rank)
        )[:count]

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema_version": 1,
            "problem": {
                "m": self.m, "n": self.n, "k": self.k, "nprocs": self.nprocs,
            },
            "eq11_words": self.eq11_words,
            "limit_words": self.limit_words,
            "mem_limit_infeasible": self.mem_limit_infeasible,
            "tol": self.tol,
            "resident_peak_words": self.resident_peak_words,
            "transport_peak_words": self.transport_peak_words,
            "peak_rank": self.peak_rank,
            "peak_over_eq11": self.peak_over_eq11,
            "by_purpose_words": dict(sorted(self.by_purpose_words.items())),
            "ranks": [
                {
                    "rank": r.rank,
                    "resident_peak_words": r.resident_peak_words,
                    "live_words": r.live_words,
                    "by_purpose_words": dict(sorted(r.by_purpose_words.items())),
                    "by_phase_words": dict(sorted(r.by_phase_words.items())),
                }
                for r in self.ranks
            ],
            "leaks": {
                str(rank): dict(sorted(purposes.items()))
                for rank, purposes in sorted(self.leaks.items())
            },
            "ok": self.ok,
            "violations": list(self.violations),
        }
        validate_memprof_json(doc)
        return doc

    def format(self, top: int = 3) -> str:
        """Human-readable memory profile (the CLI's default output)."""
        ratio = self.peak_over_eq11
        lines = [
            f"memory profile  {self.m}x{self.n}x{self.k}  P={self.nprocs}",
            f"  eq. (11) prediction      : {self.eq11_words:12.0f} words/process",
            f"  measured resident peak   : {self.resident_peak_words:12.0f} words"
            f"  (rank {self.peak_rank})",
            f"  measured / eq. (11)      : "
            + (f"{ratio:12.3f}" if ratio is not None else "         n/a")
            + f"  (gate: <= {1 + self.tol:.2f})",
            f"  transport in-flight peak : {self.transport_peak_words:12.0f} words"
            "  (not footprint)",
        ]
        if self.limit_words is not None:
            cap = f"{self.limit_words:12.0f} words"
            if self.mem_limit_infeasible:
                cap += "  [INFEASIBLE: min-memory grid used, cap not honoured]"
            lines.append(f"  memory cap               : {cap}")
        if self.by_purpose_words:
            lines.append("  peak words by purpose (max over ranks):")
            for purpose, words in sorted(
                self.by_purpose_words.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"    {purpose:20s} {words:12.0f}")
        offenders = self.top_offenders(top)
        if offenders:
            lines.append(f"  top {len(offenders)} ranks by resident peak:")
            for r in offenders:
                worst = max(
                    r.by_purpose_words.items(),
                    key=lambda kv: kv[1],
                    default=(None, 0.0),
                )
                detail = f"  ({worst[0]}: {worst[1]:.0f})" if worst[0] else ""
                lines.append(
                    f"    rank {r.rank:4d} : {r.resident_peak_words:12.0f} words{detail}"
                )
        if self.leaks:
            lines.append("  LEAKS (still charged at exit):")
            for rank, purposes in sorted(self.leaks.items()):
                detail = ", ".join(
                    f"{p}={w:.0f}" for p, w in sorted(purposes.items())
                )
                lines.append(f"    rank {rank:4d} : {detail}")
        lines.append(
            "  verdict: " + ("OK" if self.ok else "; ".join(self.violations))
        )
        return "\n".join(lines)


def memprof_run(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    tol: float = 0.10,
) -> MemReport:
    """Build the memory audit of an executed run against its plan.

    ``tol`` is the relative headroom allowed over the analytic bound:
    measured resident peak must satisfy ``peak <= eq11 * (1 + tol)``
    (and ``peak <= limit * (1 + tol)`` under a feasible cap).  The
    report is diagnostic; :func:`check_mem` turns it into a hard gate.
    """
    if tol < 0:
        raise ValueError("tol must be >= 0")
    live = result.live_traces
    eq11 = plan.grid.memory_words(plan.m, plan.n, plan.k)
    limit = getattr(plan, "memory_limit_words", None)
    infeasible = bool(getattr(plan, "mem_limit_infeasible", False))

    ranks: list[RankMemProfile] = []
    leaks: dict[int, dict[str, float]] = {}
    for t in live:
        if not t.resident_peak_bytes and not t.mem_live:
            continue  # rank never charged a span (idle outside redistribute)
        ranks.append(RankMemProfile(
            rank=t.rank,
            resident_peak_words=t.resident_peak_bytes / ITEM,
            live_words=t.resident_bytes / ITEM,
            by_purpose_words={
                p: b / ITEM for p, b in sorted(t.mem_peaks.items())
            },
            by_phase_words={
                ph: b / ITEM for ph, b in sorted(t.phase_mem_peaks.items())
            },
        ))
        if t.mem_live:
            leaks[t.rank] = {p: b / ITEM for p, b in sorted(t.mem_live.items())}

    peak_rank, peak_words = -1, 0.0
    for r in ranks:
        if r.resident_peak_words > peak_words:
            peak_rank, peak_words = r.rank, r.resident_peak_words
    by_purpose: dict[str, float] = {}
    for r in ranks:
        for purpose, words in r.by_purpose_words.items():
            if words > by_purpose.get(purpose, 0.0):
                by_purpose[purpose] = words

    report = MemReport(
        m=plan.m, n=plan.n, k=plan.k, nprocs=plan.nprocs,
        eq11_words=eq11,
        limit_words=limit,
        mem_limit_infeasible=infeasible,
        tol=tol,
        resident_peak_words=peak_words,
        peak_rank=peak_rank,
        transport_peak_words=max(
            (t.peak_live_bytes for t in live), default=0
        ) / ITEM,
        by_purpose_words=by_purpose,
        ranks=ranks,
        leaks=leaks,
    )

    if not ranks:
        report.violations.append(
            "no memtrace data: the run recorded no tagged allocation spans "
            "(engine not instrumented, or no rank was active)"
        )
        return report
    if peak_words > eq11 * (1.0 + tol):
        report.violations.append(
            f"resident peak {peak_words:.0f} words on rank {peak_rank} "
            f"exceeds eq. (11) = {eq11:.0f} words by more than "
            f"{100 * tol:.0f}% (ratio {peak_words / eq11:.3f})"
        )
    if limit is not None and not infeasible and peak_words > limit * (1.0 + tol):
        report.violations.append(
            f"resident peak {peak_words:.0f} words exceeds "
            f"memory_limit_words = {limit:.0f} by more than {100 * tol:.0f}%"
        )
    return report


def check_mem(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    tol: float = 0.10,
) -> MemReport:
    """Run the memory audit and raise :class:`MemAuditError` on violation.

    The memory gate: measured resident watermark vs the eq. (11)
    prediction and any ``memory_limit_words`` cap, as a runtime
    assertion.  Returns the (passing) report otherwise.
    """
    report = memprof_run(result, plan, tol=tol)
    if not report.ok:
        raise MemAuditError(
            "memory audit failed:\n  - " + "\n  - ".join(report.violations)
            + "\n" + report.format()
        )
    return report
