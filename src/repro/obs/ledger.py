"""Append-only, schema-validated JSONL ledger of executed runs.

Every executed multiplication — CLI subcommands, the bench harness,
recovery/checkpoint demos — can append one :data:`LEDGER_RECORD_SCHEMA`
record to a shared history file (default
``benchmarks/history/ledger.jsonl``).  A record is the run's durable
trace: problem and grid, measured wire traffic, peak live memory,
overlap efficiency, fault/recovery counters, and the measured
optimality ratios the audit computes.  Accumulated over time the ledger
is the calibration corpus the ROADMAP's cost-model work reads, and CI's
audit-gate compares fresh records against committed baselines.

Determinism contract: records contain **no wall-clock timestamps** —
every quantity is derived from the simulated clocks, which are
deterministic for a given seed.  Two identical runs therefore append
byte-identical lines modulo the ``run_id`` field (a fresh ``uuid4``
per record), which is exactly what the CI gate checks.  Lines are
canonical JSON (sorted keys, compact separators) so byte comparison is
meaningful.

Opt-in: nothing writes the ledger unless asked — pass ``--ledger`` to
the CLI / bench harness or set the ``REPRO_LEDGER`` environment
variable to a path (the literal value ``1`` selects the default path).
This keeps test runs from dirtying the working tree.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import ITEM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import Ca3dmmPlan
    from ..mpi.runtime import SpmdResult

#: Default ledger location, relative to the repo / invocation root.
DEFAULT_LEDGER_PATH = "benchmarks/history/ledger.jsonl"

#: Environment variable enabling ledger writes (value = path, or "1").
LEDGER_ENV = "REPRO_LEDGER"


class LedgerError(ValueError):
    """A ledger record or file violates the schema."""


LEDGER_RECORD_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs.ledger record",
    "type": "object",
    "required": [
        "schema_version",
        "run_id",
        "kind",
        "problem",
        "grid",
        "makespan_s",
        "traffic",
        "memory",
        "overlap",
        "optimality",
        "faults",
    ],
    "properties": {
        # v2: memory block gained resident_peak_words / by_purpose_words
        # (measured memtrace watermarks) beside the legacy transport
        # in-flight peak_live_words; v1 records remain readable.
        # v3: overlap block gained covered_by_phase (simulated seconds
        # of communication the async comm engine hid under compute,
        # summed over live ranks); v1/v2 records remain readable.
        "schema_version": {"enum": [1, 2, 3]},
        "run_id": {"type": "string", "pattern": "^[0-9a-f]{32}$"},
        "kind": {"type": "string", "minLength": 1},
        "problem": {
            "type": "object",
            "required": ["m", "n", "k", "nprocs"],
            "properties": {
                "m": {"type": "integer", "minimum": 1},
                "n": {"type": "integer", "minimum": 1},
                "k": {"type": "integer", "minimum": 1},
                "nprocs": {"type": "integer", "minimum": 1},
                "nruns": {"type": "integer", "minimum": 1},
            },
        },
        "grid": {
            "type": "object",
            "required": ["pm", "pn", "pk", "s", "c", "active"],
            "properties": {
                "pm": {"type": "integer", "minimum": 1},
                "pn": {"type": "integer", "minimum": 1},
                "pk": {"type": "integer", "minimum": 1},
                "s": {"type": "integer", "minimum": 1},
                "c": {"type": "integer", "minimum": 1},
                "active": {"type": "integer", "minimum": 1},
            },
        },
        "makespan_s": {"type": "number", "minimum": 0},
        "traffic": {
            "type": "object",
            "required": ["q_words", "total_words", "max_msgs"],
            "properties": {
                "q_words": {"type": "number", "minimum": 0},
                "total_words": {"type": "number", "minimum": 0},
                "max_msgs": {"type": "integer", "minimum": 0},
                "by_phase": {"type": "object"},
            },
        },
        "memory": {
            "type": "object",
            "required": ["peak_live_words"],
            "properties": {
                # transport in-flight / self-reported peak (legacy name)
                "peak_live_words": {"type": "number", "minimum": 0},
                # measured memtrace resident watermark (max over ranks)
                "resident_peak_words": {"type": "number", "minimum": 0},
                # per-purpose peaks, max over ranks, words
                "by_purpose_words": {
                    "type": "object",
                    "additionalProperties": {"type": "number", "minimum": 0},
                },
            },
        },
        "overlap": {
            "type": "object",
            "properties": {
                "cannon": {"type": ["number", "null"]},
                "by_phase": {"type": "object"},
                # seconds of comm the async engine hid, per phase (v3)
                "covered_by_phase": {
                    "type": "object",
                    "additionalProperties": {"type": "number", "minimum": 0},
                },
            },
        },
        "optimality": {
            "type": "object",
            "required": ["q_over_eq9"],
            "properties": {
                "eq9_words": {"type": "number", "minimum": 0},
                "pebbling_words": {"type": "number", "minimum": 0},
                "q_over_eq9": {"type": ["number", "null"]},
                "q_over_pebbling": {"type": ["number", "null"]},
            },
        },
        "faults": {
            "type": "object",
            "properties": {
                "retries": {"type": "integer", "minimum": 0},
                "timeouts": {"type": "integer", "minimum": 0},
                "recoveries": {"type": "integer", "minimum": 0},
                "failed_ranks": {"type": "array", "items": {"type": "integer"}},
                "corruptions_injected": {"type": "integer", "minimum": 0},
                "corruptions_detected": {"type": "integer", "minimum": 0},
                "corruptions_injected_by_phase": {
                    "type": "object",
                    "additionalProperties": {"type": "integer", "minimum": 0},
                },
                "corruptions_detected_by_phase": {
                    "type": "object",
                    "additionalProperties": {"type": "integer", "minimum": 0},
                },
                "recomputed_flops": {"type": "number", "minimum": 0},
                "reused_flops": {"type": "number", "minimum": 0},
            },
        },
        "audit_ok": {"type": ["boolean", "null"]},
        "extra": {"type": "object"},
    },
}


def validate_ledger_record(doc: Any) -> None:
    """Raise :class:`LedgerError` unless ``doc`` is a valid record."""
    from .export import TraceSchemaError, _validate

    try:
        _validate(doc, LEDGER_RECORD_SCHEMA)
    except TraceSchemaError as exc:
        raise LedgerError(str(exc)) from exc


def canonical_json(record: dict[str, Any]) -> str:
    """One canonical line: sorted keys, compact separators, no NaN."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def ledger_path_from_env() -> Path | None:
    """The ledger path selected by :data:`LEDGER_ENV`, or None."""
    raw = os.environ.get(LEDGER_ENV, "").strip()
    if not raw:
        return None
    return Path(DEFAULT_LEDGER_PATH) if raw == "1" else Path(raw)


# ------------------------------------------------------------ record build -- #
def ledger_record(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    kind: str,
    nruns: int = 1,
    run_id: str | None = None,
    audit_ok: bool | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Distil one executed run into a validated ledger record.

    ``kind`` names the producer (``cli.example``, ``bench.fig3``, ...);
    ``audit_ok`` carries the audit verdict when one ran; ``extra`` is a
    free-form producer-specific object (kept small — the ledger is a
    history, not an archive).  All measured quantities are per multiply
    (divided by ``nruns``) and derived from simulated clocks only, so
    the record is deterministic modulo ``run_id``.
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    from ..analysis.verify import eq9_lower_bound
    from .audit import pebbling_lower_bound
    from .metrics import overlap_by_phase

    live = result.live_traces
    q_words = max((t.bytes_sent for t in live), default=0) / ITEM / nruns
    total_words = sum(t.bytes_sent for t in live) / ITEM / nruns
    peak_live = max((t.peak_live_bytes for t in live), default=0) / ITEM
    resident = max((t.resident_peak_bytes for t in live), default=0) / ITEM
    by_purpose: dict[str, float] = {}
    for t in live:
        for purpose, peak in t.mem_peaks.items():
            words = peak / ITEM
            if words > by_purpose.get(purpose, 0.0):
                by_purpose[purpose] = words
    eq9 = eq9_lower_bound(plan.m, plan.n, plan.k, plan.nprocs)
    # The pebbling M is the measured resident watermark; runs without
    # memtrace spans fall back to the legacy in-flight counter.
    pebb = pebbling_lower_bound(
        plan.m, plan.n, plan.k, plan.nprocs,
        resident if resident > 0 else peak_live,
    )
    overlap = overlap_by_phase(result)

    by_phase: dict[str, dict[str, float]] = {}
    for t in live:
        for phase, st in t.phases.items():
            slot = by_phase.setdefault(phase, {"words": 0.0, "msgs": 0.0})
            slot["words"] += st.bytes_sent / ITEM / nruns
            slot["msgs"] += st.msgs_sent / nruns

    covered: dict[str, float] = {}
    for t in live:
        for phase, st in t.phases.items():
            if st.comm_covered_time > 0:
                covered[phase] = (
                    covered.get(phase, 0.0) + st.comm_covered_time / nruns
                )

    metrics = result.metrics
    record: dict[str, Any] = {
        "schema_version": 3,
        "run_id": run_id if run_id is not None else uuid.uuid4().hex,
        "kind": kind,
        "problem": {
            "m": plan.m,
            "n": plan.n,
            "k": plan.k,
            "nprocs": plan.nprocs,
            "nruns": nruns,
        },
        "grid": {
            "pm": plan.pm,
            "pn": plan.pn,
            "pk": plan.pk,
            "s": plan.s,
            "c": plan.c,
            "active": plan.active,
        },
        "makespan_s": result.time,
        "traffic": {
            "q_words": q_words,
            "total_words": total_words,
            "max_msgs": max((t.msgs_sent for t in live), default=0) // nruns,
            "by_phase": {ph: dict(v) for ph, v in sorted(by_phase.items())},
        },
        "memory": {
            "peak_live_words": peak_live,
            "resident_peak_words": resident,
            "by_purpose_words": {p: v for p, v in sorted(by_purpose.items())},
        },
        "overlap": {
            "cannon": overlap.get("cannon"),
            "by_phase": dict(sorted(overlap.items())),
            "covered_by_phase": dict(sorted(covered.items())),
        },
        "optimality": {
            "eq9_words": eq9,
            "pebbling_words": pebb,
            "q_over_eq9": q_words / eq9 if eq9 > 0 else None,
            "q_over_pebbling": q_words / pebb if pebb > 0 else None,
        },
        "faults": {
            "retries": metrics.total_retries,
            "timeouts": metrics.total_timeouts,
            "recoveries": metrics.recoveries,
            "failed_ranks": result.failed_ranks,
            "corruptions_injected": metrics.corruptions_injected,
            "corruptions_detected": metrics.corruptions_detected,
            "corruptions_injected_by_phase": dict(
                sorted(metrics.corruptions_injected_by_phase.items())
            ),
            "corruptions_detected_by_phase": dict(
                sorted(metrics.corruptions_detected_by_phase.items())
            ),
            "recomputed_flops": metrics.recomputed_flops,
            "reused_flops": metrics.reused_flops,
        },
        "audit_ok": audit_ok,
    }
    if extra:
        record["extra"] = extra
    validate_ledger_record(record)
    return record


# ----------------------------------------------------------------- ledger -- #
class Ledger:
    """The append-only history file.

    Appends validate before writing (a broken producer can't poison the
    history); reads validate each line and raise :class:`LedgerError`
    with the offending line number, so corruption is caught where it is
    noticed, not three tools downstream.
    """

    def __init__(self, path: str | Path = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Validate and append one record; returns it."""
        validate_ledger_record(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(canonical_json(record) + "\n")
        return record

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield validated records in append order."""
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{self.path}:{lineno}: not JSON: {exc}"
                    ) from exc
                try:
                    validate_ledger_record(doc)
                except LedgerError as exc:
                    raise LedgerError(f"{self.path}:{lineno}: {exc}") from exc
                yield doc

    def query(
        self,
        kind: str | None = None,
        m: int | None = None,
        n: int | None = None,
        k: int | None = None,
        nprocs: int | None = None,
        last: int | None = None,
    ) -> list[dict[str, Any]]:
        """Filter records by producer kind and/or problem shape."""
        out = []
        for rec in self.records():
            if kind is not None and rec["kind"] != kind:
                continue
            prob = rec["problem"]
            if m is not None and prob["m"] != m:
                continue
            if n is not None and prob["n"] != n:
                continue
            if k is not None and prob["k"] != k:
                continue
            if nprocs is not None and prob["nprocs"] != nprocs:
                continue
            out.append(rec)
        if last is not None:
            out = out[-last:]
        return out
