"""Transport-truth communication audit for executed CA3DMM runs.

Where :mod:`repro.obs.drift` asserts that measured per-phase traffic
matches the paper's closed forms, the audit goes further and answers
*"is the run communication-optimal, as measured on the wire?"*:

* every message carries the collective algorithm that posted it
  (``RankTrace.colls``, written by the transport — binomial vs
  scatter+allgather broadcast, Bruck allgather, pairwise
  reduce-scatter, raw Cannon/redistribution ``p2p``), so the audit can
  attribute each phase's bytes to the algorithm that moved them;
* per phase, measured critical-rank words are compared against **two**
  independent predictions — the paper's eq. (4)/Section III-D schedule
  (:func:`repro.obs.drift.expected_phase_traffic`) and the α-β
  collective accounting (:func:`repro.machine.collcost.ca3dmm_phase_costs`)
  — with the excess attributed per collective algorithm;
* the run's Q (max words sent by any rank) is set against the paper's
  eq. (9) bound ``3(mnk/P)^(2/3)`` *and* the red-blue pebbling I/O
  lower bound ``2mnk/(P·√M)`` of Kwasniewski et al. (the COSMA bound),
  using the **measured** peak live words per rank as M;
* measured overlap efficiency per phase
  (:func:`repro.obs.metrics.overlap_by_phase`) rides along so the
  report shows not just how much moved but how much of the movement
  hid behind compute.

:func:`audit_run` builds the :class:`AuditReport`;
:meth:`AuditReport.check` is the drift-style gate raising a typed
:class:`AuditError` when measured bytes leave the tolerance band.  The
predictions model the fault-free, unguarded schedule: ABFT-verified
runs move slightly more (checksum borders ride the replicate / Cannon /
reduce traffic, CRC envelopes and detection votes ride the
redistributions), and corrupted runs add resend rounds on top — gate on
clean, unguarded configurations and read guarded runs diagnostically.
Attribution counters are always on (they are plain integers bumped
under the transport lock), so the audit needs no event recording.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .drift import GUARDED_PHASES, expected_phase_traffic
from .metrics import ITEM, overlap_by_phase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import Ca3dmmPlan
    from ..machine.model import MachineModel
    from ..mpi.runtime import SpmdResult


class AuditError(AssertionError):
    """Measured on-the-wire traffic violates the audit tolerance."""


AUDIT_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs.audit report",
    "type": "object",
    "required": [
        "schema_version",
        "ok",
        "problem",
        "q_words",
        "bounds",
        "phases",
        "overlap_by_phase",
    ],
    "properties": {
        "schema_version": {"const": 1},
        "ok": {"type": "boolean"},
        "byte_tol": {"type": "number", "minimum": 0},
        "problem": {
            "type": "object",
            "required": ["m", "n", "k", "nprocs", "grid"],
            "properties": {
                "m": {"type": "integer", "minimum": 1},
                "n": {"type": "integer", "minimum": 1},
                "k": {"type": "integer", "minimum": 1},
                "nprocs": {"type": "integer", "minimum": 1},
                "grid": {"type": "string"},
            },
        },
        "q_words": {"type": "number", "minimum": 0},
        "total_words": {"type": "number", "minimum": 0},
        "peak_live_words": {"type": "number", "minimum": 0},
        "resident_peak_words": {"type": "number", "minimum": 0},
        "bounds": {
            "type": "object",
            "required": ["eq9_words", "pebbling_words", "q_over_eq9"],
            "properties": {
                "eq9_words": {"type": "number", "minimum": 0},
                "pebbling_words": {"type": "number", "minimum": 0},
                "q_over_eq9": {"type": ["number", "null"]},
                "q_over_pebbling": {"type": ["number", "null"]},
            },
        },
        "phases": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "phase",
                    "measured_words",
                    "model_words",
                    "collcost_words",
                    "ok",
                ],
                "properties": {
                    "phase": {"type": "string"},
                    "measured_words": {"type": "number", "minimum": 0},
                    "model_words": {"type": "number", "minimum": 0},
                    "collcost_words": {"type": ["number", "null"]},
                    "measured_msgs": {"type": "integer", "minimum": 0},
                    "model_msgs": {"type": "integer", "minimum": 0},
                    "rel_err_model": {"type": "number"},
                    "rel_err_collcost": {"type": ["number", "null"]},
                    "excess_words": {"type": "number"},
                    "overlap": {"type": ["number", "null"]},
                    "covered_s": {"type": "number", "minimum": 0},
                    "colls": {"type": "object"},
                    "ok": {"type": "boolean"},
                },
            },
        },
        "overlap_by_phase": {"type": "object"},
    },
}


# ------------------------------------------------------------------ bounds -- #
def pebbling_lower_bound(m: int, n: int, k: int, p: int, mem_words: float) -> float:
    """Red-blue pebbling I/O lower bound, in words per rank.

    ``2mnk/(P·√M)`` (Kwasniewski et al., SC'19): no schedule of the
    ``mnk`` elementary products over ``P`` processors with fast memory
    of ``M`` words can move fewer words through any single processor.
    COSMA audits its own schedule against the same bound; here ``M`` is
    the *measured* peak live words per rank, so the bound tightens as
    the run actually economizes memory.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if mem_words <= 0:
        return 0.0
    return 2.0 * m * n * k / (p * math.sqrt(mem_words))


# ----------------------------------------------------------------- report -- #
@dataclass
class PhaseAudit:
    """Measured vs predicted on-the-wire traffic for one phase."""

    phase: str
    measured_words: float  #: critical-rank words sent, per multiply
    model_words: float  #: eq. (4)/Section III-D prediction
    collcost_words: float | None  #: α-β accounting (None when unscheduled)
    measured_msgs: int
    model_msgs: int
    rel_err_model: float
    rel_err_collcost: float | None
    excess_words: float  #: measured - model (signed)
    overlap: float | None  #: volume-weighted overlap efficiency
    #: comm seconds the async engine hid under compute (0 when off) —
    #: hidden *time*, never hidden *traffic*: the word columns above are
    #: unaffected, which is exactly what the gate verifies.
    covered_s: float = 0.0
    #: per-collective-algorithm attribution of this phase's traffic,
    #: summed over live ranks: label -> {"words": ..., "msgs": ...}.
    colls: dict[str, dict[str, float]] = field(default_factory=dict)
    ok: bool = True

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "phase": self.phase,
            "measured_words": self.measured_words,
            "model_words": self.model_words,
            "collcost_words": self.collcost_words,
            "measured_msgs": self.measured_msgs,
            "model_msgs": self.model_msgs,
            "rel_err_model": self.rel_err_model,
            "rel_err_collcost": self.rel_err_collcost,
            "excess_words": self.excess_words,
            "overlap": self.overlap,
            "colls": {c: dict(v) for c, v in sorted(self.colls.items())},
            "ok": self.ok,
        }
        # Schema-optional: absent when the engine hid nothing, so audit
        # documents from overlap="none" runs are byte-identical to the
        # pre-engine format.
        if self.covered_s > 0:
            doc["covered_s"] = self.covered_s
        return doc


@dataclass
class AuditReport:
    """Wire-truth conformance of one executed run."""

    m: int
    n: int
    k: int
    nprocs: int
    grid: str
    phases: list[PhaseAudit]
    q_words: float  #: measured critical-rank words sent (the paper's Q)
    total_words: float  #: words sent across all ranks
    #: transport in-flight / self-reported peak — NOT resident footprint
    peak_live_words: float
    eq9_words: float  #: analytic lower bound 3(mnk/P)^(2/3)
    pebbling_words: float  #: I/O lower bound 2mnk/(P·√M), measured M
    overlap_by_phase: dict[str, float] = field(default_factory=dict)
    byte_tol: float = 0.05
    #: memtrace resident watermark — the M the pebbling bound consumes
    #: (falls back to ``peak_live_words`` when no memtrace data exists)
    resident_peak_words: float = 0.0

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.phases)

    @property
    def q_over_eq9(self) -> float | None:
        return self.q_words / self.eq9_words if self.eq9_words > 0 else None

    @property
    def q_over_pebbling(self) -> float | None:
        return (
            self.q_words / self.pebbling_words if self.pebbling_words > 0 else None
        )

    @property
    def max_rel_err(self) -> float:
        return max((p.rel_err_model for p in self.phases), default=0.0)

    def check(self) -> "AuditReport":
        """Return self, or raise :class:`AuditError` listing violations."""
        if self.ok:
            return self
        bad = [p.to_dict() for p in self.phases if not p.ok]
        raise AuditError(
            "measured traffic violates the audit tolerance "
            f"({100 * self.byte_tol:.1f}%):\n"
            + "\n".join(f"  {b}" for b in bad)
        )

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "schema_version": 1,
            "ok": self.ok,
            "byte_tol": self.byte_tol,
            "problem": {
                "m": self.m,
                "n": self.n,
                "k": self.k,
                "nprocs": self.nprocs,
                "grid": self.grid,
            },
            "q_words": self.q_words,
            "total_words": self.total_words,
            "peak_live_words": self.peak_live_words,
            "resident_peak_words": self.resident_peak_words,
            "bounds": {
                "eq9_words": self.eq9_words,
                "pebbling_words": self.pebbling_words,
                "q_over_eq9": self.q_over_eq9,
                "q_over_pebbling": self.q_over_pebbling,
            },
            "phases": [p.to_dict() for p in self.phases],
            "overlap_by_phase": dict(self.overlap_by_phase),
        }
        validate_audit_json(doc)
        return doc

    def format(self) -> str:
        """Human-readable one-screen rendering."""
        lines = [
            f"Communication audit  {self.m}x{self.n}x{self.k}  "
            f"grid {self.grid}  (byte tol {100 * self.byte_tol:.1f}%): "
            + ("OK" if self.ok else "FAIL"),
            f"  Q (max words sent)       : {self.q_words:.0f}",
            f"  eq. (9) bound            : {self.eq9_words:.0f}"
            + (
                f"  (Q/bound {self.q_over_eq9:.3f})"
                if self.q_over_eq9 is not None
                else ""
            ),
            f"  pebbling bound 2mnk/(P√M): {self.pebbling_words:.0f}"
            + (
                f"  (Q/bound {self.q_over_pebbling:.3f}, "
                f"measured M={self.resident_peak_words:.0f} words "
                "resident watermark)"
                if self.q_over_pebbling is not None
                else ""
            ),
            f"  transport in-flight peak : {self.peak_live_words:.0f} words "
            "(not footprint)",
        ]
        for p in self.phases:
            cc = (
                f"{p.collcost_words:>12.0f}"
                if p.collcost_words is not None
                else " " * 11 + "-"
            )
            ov = f"{100 * p.overlap:5.1f}%" if p.overlap is not None else "    - "
            hid = f"  hidden {p.covered_s:.3e}s" if p.covered_s > 0 else ""
            lines.append(
                f"  {p.phase:<10} measured {p.measured_words:>12.0f} "
                f"model {p.model_words:>12.0f} collcost {cc} "
                f"({100 * p.rel_err_model:6.2f}%)  overlap {ov}  "
                + ("ok" if p.ok else "EXCESS")
                + hid
            )
            for label, stats in sorted(p.colls.items()):
                lines.append(
                    f"      {label:<26} {stats['words']:>12.0f} words  "
                    f"{stats['msgs']:>6.0f} msgs"
                )
        return "\n".join(lines)


def validate_audit_json(doc: Any) -> None:
    """Raise unless ``doc`` matches :data:`AUDIT_JSON_SCHEMA`."""
    from .export import _validate

    _validate(doc, AUDIT_JSON_SCHEMA)


# ------------------------------------------------------------ measurement -- #
def _measured_phases(
    result: "SpmdResult", nruns: int
) -> dict[str, tuple[float, int]]:
    """Critical-rank (words, msgs) per phase over live traces."""
    out: dict[str, list[float]] = {}
    for t in result.live_traces:
        for phase, st in t.phases.items():
            cur = out.setdefault(phase, [0.0, 0])
            cur[0] = max(cur[0], st.bytes_sent / ITEM / nruns)
            cur[1] = max(cur[1], st.msgs_sent // nruns)
    return {ph: (w, int(m)) for ph, (w, m) in out.items()}


def _coll_breakdown(
    result: "SpmdResult", nruns: int
) -> dict[str, dict[str, dict[str, float]]]:
    """phase -> collective label -> summed {words, msgs} over live ranks."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for t in result.live_traces:
        for phase, by_coll in t.colls.items():
            slot = out.setdefault(phase, {})
            for label, cs in by_coll.items():
                agg = slot.setdefault(label, {"words": 0.0, "msgs": 0.0})
                agg["words"] += cs.bytes_sent / ITEM / nruns
                agg["msgs"] += cs.msgs_sent / nruns
    return out


# ------------------------------------------------------------------ audit -- #
def audit_run(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    machine: "MachineModel | None" = None,
    byte_tol: float = 0.05,
    abs_tol_words: float = 64.0,
    nruns: int = 1,
) -> AuditReport:
    """Audit an executed run's wire traffic against the paper's model.

    Parameters mirror :func:`repro.obs.drift.drift_report`: ``byte_tol``
    is the allowed relative error on per-phase critical-rank words (the
    default 5% absorbs pickle framing on object sends; balanced
    divisible grids measure exact), ``abs_tol_words`` the absolute floor
    protecting tiny problems, ``nruns`` the number of multiplies the
    counters accumulated.  When ``machine`` is given, the α-β collective
    accounting of :func:`~repro.machine.collcost.ca3dmm_phase_costs`
    is included as a second, independent prediction column.
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    from ..analysis.verify import eq9_lower_bound

    expected = expected_phase_traffic(plan)
    collcosts = {}
    if machine is not None:
        from ..machine.collcost import ca3dmm_phase_costs

        collcosts = ca3dmm_phase_costs(plan, machine, item=ITEM)

    measured = _measured_phases(result, nruns)
    colls = _coll_breakdown(result, nruns)
    overlap = overlap_by_phase(result)
    covered: dict[str, float] = {}
    for t in result.live_traces:
        for ph, st in t.phases.items():
            if st.comm_covered_time > 0:
                covered[ph] = covered.get(ph, 0.0) + st.comm_covered_time / nruns

    phases: list[PhaseAudit] = []
    for name in GUARDED_PHASES:
        exp = expected.get(name)
        meas_words, meas_msgs = measured.get(name, (0.0, 0))
        cc = collcosts.get(name)
        cc_words = cc.bytes_sent / ITEM if cc is not None else None
        if exp is None:
            ok = meas_words == 0 and meas_msgs == 0
            phases.append(
                PhaseAudit(
                    phase=name,
                    measured_words=meas_words,
                    model_words=0.0,
                    collcost_words=cc_words,
                    measured_msgs=meas_msgs,
                    model_msgs=0,
                    rel_err_model=0.0 if ok else math.inf,
                    rel_err_collcost=None,
                    excess_words=meas_words,
                    overlap=overlap.get(name),
                    covered_s=covered.get(name, 0.0),
                    colls=colls.get(name, {}),
                    ok=ok,
                )
            )
            continue
        err = abs(meas_words - exp.words)
        rel = err / exp.words if exp.words > 0 else (0.0 if err == 0 else math.inf)
        rel_cc = None
        if cc_words is not None and cc_words > 0:
            rel_cc = abs(meas_words - cc_words) / cc_words
        phases.append(
            PhaseAudit(
                phase=name,
                measured_words=meas_words,
                model_words=exp.words,
                collcost_words=cc_words,
                measured_msgs=meas_msgs,
                model_msgs=exp.msgs,
                rel_err_model=rel,
                rel_err_collcost=rel_cc,
                excess_words=meas_words - exp.words,
                overlap=overlap.get(name),
                covered_s=covered.get(name, 0.0),
                colls=colls.get(name, {}),
                ok=rel <= byte_tol or err <= abs_tol_words,
            )
        )

    live = result.live_traces
    q_words = max((t.bytes_sent for t in live), default=0) / ITEM / nruns
    total_words = sum(t.bytes_sent for t in live) / ITEM / nruns
    peak_live = max((t.peak_live_bytes for t in live), default=0) / ITEM
    # The pebbling M is the memtrace resident watermark — actual tracked
    # footprint — not the transport in-flight proxy.  Self-reporting
    # engines (no memtrace spans) fall back to the legacy counter.
    resident = max((t.resident_peak_bytes for t in live), default=0) / ITEM
    mem_words = resident if resident > 0 else peak_live
    return AuditReport(
        m=plan.m,
        n=plan.n,
        k=plan.k,
        nprocs=plan.nprocs,
        grid=str(plan.grid),
        phases=phases,
        q_words=q_words,
        total_words=total_words,
        peak_live_words=peak_live,
        eq9_words=eq9_lower_bound(plan.m, plan.n, plan.k, plan.nprocs),
        pebbling_words=pebbling_lower_bound(
            plan.m, plan.n, plan.k, plan.nprocs, mem_words
        ),
        overlap_by_phase=overlap,
        byte_tol=byte_tol,
        resident_peak_words=mem_words,
    )


def check_audit(
    result: "SpmdResult", plan: "Ca3dmmPlan", **kwargs: Any
) -> AuditReport:
    """:func:`audit_run` that raises :class:`AuditError` on violation."""
    return audit_run(result, plan, **kwargs).check()
