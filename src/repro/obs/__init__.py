"""Observability for the executed engine: spans, metrics, exporters, drift.

The :mod:`repro.obs` subsystem makes the paper's quantitative claims
checkable on every run:

* :mod:`~repro.obs.tracer` — nested spans on the simulated clock,
  recorded by the transport for every CA3DMM phase and collective when
  ``run_spmd(..., record_events=True)``;
* :mod:`~repro.obs.metrics` — counters/gauges/histograms snapshotted
  from a run (``SpmdResult.metrics``);
* :mod:`~repro.obs.export` — Chrome-trace/Perfetto JSON and JSONL
  structured logs, schema-validated;
* :mod:`~repro.obs.drift` — measured-vs-analytic per-phase traffic
  guard (eq. 9 / Section III-D as a runtime assertion);
* :mod:`~repro.obs.audit` — transport-truth communication audit:
  per-collective-algorithm attribution, eq. (4)/collcost conformance,
  and the measured red-blue pebbling optimality ratio;
* :mod:`~repro.obs.memtrace` — per-rank resident-memory report from the
  transport's tagged allocation spans, gated against the paper's
  eq. (11) footprint prediction and any ``memory_limit_words`` cap;
* :mod:`~repro.obs.ledger` — append-only, schema-validated JSONL run
  history (``benchmarks/history/ledger.jsonl``).

See ``docs/OBSERVABILITY.md`` for the span model and exporter formats.
"""

from .audit import (
    AUDIT_JSON_SCHEMA,
    AuditError,
    AuditReport,
    PhaseAudit,
    audit_run,
    check_audit,
    pebbling_lower_bound,
    validate_audit_json,
)
from .baseline import (
    BASELINE_JSON_SCHEMA,
    BaselineStore,
    PerfDelta,
    PerfDiff,
    PerfTolerance,
    capture_baseline,
    compare_baseline,
    validate_baseline_json,
)
from .critpath import (
    CRITPATH_JSON_SCHEMA,
    CriticalPath,
    CritPathReport,
    PathSegment,
    PhaseBlame,
    RankBreakdown,
    Straggler,
    WaitEdge,
    critical_path,
    critpath_report,
    phase_blame,
    rank_decomposition,
    stragglers,
    validate_critpath_json,
    waitfor_edges,
)
from .drift import (
    DriftError,
    DriftReport,
    check_drift,
    drift_report,
    expected_phase_traffic,
)
from .export import (
    CHROME_TRACE_SCHEMA,
    RUN_JSON_SCHEMA,
    TraceSchemaError,
    chrome_trace,
    jsonl_records,
    validate_chrome_trace,
    validate_run_json,
    write_chrome_trace,
    write_jsonl,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_RECORD_SCHEMA,
    Ledger,
    LedgerError,
    ledger_record,
    validate_ledger_record,
)
from .memtrace import (
    MEMPROF_JSON_SCHEMA,
    MemAuditError,
    MemReport,
    RankMemProfile,
    check_mem,
    memprof_run,
    validate_memprof_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunMetrics,
    format_metrics,
    overlap_by_phase,
    snapshot_run,
)
from .tracer import Span, Tracer

__all__ = [
    "AUDIT_JSON_SCHEMA",
    "AuditError",
    "AuditReport",
    "BASELINE_JSON_SCHEMA",
    "BaselineStore",
    "CHROME_TRACE_SCHEMA",
    "CRITPATH_JSON_SCHEMA",
    "Counter",
    "CritPathReport",
    "CriticalPath",
    "DEFAULT_LEDGER_PATH",
    "DriftError",
    "DriftReport",
    "Gauge",
    "Histogram",
    "LEDGER_RECORD_SCHEMA",
    "Ledger",
    "LedgerError",
    "MEMPROF_JSON_SCHEMA",
    "MemAuditError",
    "MemReport",
    "MetricsRegistry",
    "PathSegment",
    "PerfDelta",
    "PerfDiff",
    "PerfTolerance",
    "PhaseAudit",
    "PhaseBlame",
    "RUN_JSON_SCHEMA",
    "RankBreakdown",
    "RankMemProfile",
    "RunMetrics",
    "Span",
    "Straggler",
    "TraceSchemaError",
    "Tracer",
    "WaitEdge",
    "audit_run",
    "capture_baseline",
    "check_audit",
    "check_drift",
    "check_mem",
    "chrome_trace",
    "compare_baseline",
    "critical_path",
    "critpath_report",
    "drift_report",
    "expected_phase_traffic",
    "format_metrics",
    "jsonl_records",
    "ledger_record",
    "memprof_run",
    "overlap_by_phase",
    "pebbling_lower_bound",
    "phase_blame",
    "rank_decomposition",
    "snapshot_run",
    "stragglers",
    "validate_audit_json",
    "validate_baseline_json",
    "validate_chrome_trace",
    "validate_critpath_json",
    "validate_ledger_record",
    "validate_memprof_json",
    "validate_run_json",
    "waitfor_edges",
    "write_chrome_trace",
    "write_jsonl",
]
