"""Metrics registry + run snapshots for executed CA3DMM runs.

Two layers:

* a small, dependency-free **registry** of :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments keyed by name +
  labels (Prometheus-style, but in-process and simulation-clocked);
* :func:`snapshot_run`, which distils one
  :class:`~repro.mpi.runtime.SpmdResult` into a :class:`RunMetrics`
  snapshot: bytes/messages per phase per rank, Cannon shift latency
  distribution, per-k-task-group imbalance, and the skew/shift
  overlap ratio (how much of the Cannon transfer time the dual-buffer
  hid behind local GEMMs).

``SpmdResult.metrics`` calls :func:`snapshot_run` lazily, so every
executed run carries its metrics without extra plumbing at call sites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import Ca3dmmPlan
    from ..mpi.runtime import SpmdResult

ITEM = 8  #: bytes per word (float64), as in the paper's analysis


# ------------------------------------------------------------ instruments -- #
@dataclass
class Counter:
    """Monotonically increasing count (bytes, messages, calls)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (ratio, clock, high-water mark)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """A distribution of observations with quantile queries."""

    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return math.fsum(self.samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1].

        Raises :class:`ValueError` on an empty histogram — a silent 0.0
        is indistinguishable from a real zero-latency measurement.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            raise ValueError("quantile of an empty histogram")
        xs = sorted(self.samples)
        pos = q * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)

    def summary(self) -> dict[str, Any]:
        """Headline stats; ``{"count": 0.0, "empty": True}`` when no
        samples were observed, so exports can't mistake absence for
        measured zeros."""
        if not self.samples:
            return {"count": 0.0, "empty": True}
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max,
        }


_LabelKey = tuple[str, tuple[tuple[str, Any], ...]]


def _key(name: str, labels: dict[str, Any]) -> _LabelKey:
    return name, tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    def __init__(self) -> None:
        self._counters: dict[_LabelKey, Counter] = {}
        self._gauges: dict[_LabelKey, Gauge] = {}
        self._histograms: dict[_LabelKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._histograms.setdefault(_key(name, labels), Histogram())

    # ------------------------------------------------------------ export -- #
    @staticmethod
    def _rows(table: dict[_LabelKey, Any], render) -> list[dict[str, Any]]:
        return [
            {"name": name, "labels": dict(labels), **render(inst)}
            for (name, labels), inst in sorted(table.items())
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": self._rows(self._counters, lambda c: {"value": c.value}),
            "gauges": self._rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": self._rows(self._histograms, lambda h: h.summary()),
        }

    def find(self, name: str) -> list[tuple[dict[str, Any], Any]]:
        """All instruments with ``name`` as ``(labels, instrument)`` pairs."""
        out: list[tuple[dict[str, Any], Any]] = []
        for table in (self._counters, self._gauges, self._histograms):
            for (nm, labels), inst in table.items():
                if nm == name:
                    out.append((dict(labels), inst))
        return out


# ------------------------------------------------------------- snapshots -- #
@dataclass
class RunMetrics:
    """One executed run distilled into a registry + headline numbers."""

    registry: MetricsRegistry
    makespan: float
    q_words: float  #: max over ranks of words sent (the paper's Q)
    total_words: float
    max_msgs: int
    #: transport in-flight / self-reported peak (NOT resident footprint;
    #: see ``resident_peak_words`` for the measured watermark)
    peak_live_words: float
    cannon_overlap_ratio: float | None  #: None when no cannon phase ran
    k_group_imbalance: float | None  #: None without a plan / single group
    #: volume-weighted overlap efficiency per phase over live ranks
    overlap_by_phase: dict[str, float] = field(default_factory=dict)
    #: simulated seconds of communication the async comm engine hid
    #: under compute, per phase, summed over live ranks (0 with
    #: ``overlap="none"`` — there is no engine to hide anything)
    covered_by_phase: dict[str, float] = field(default_factory=dict)
    #: historical critical-rank-only cannon overlap (slowest live trace)
    cannon_overlap_critical_rank: float | None = None
    total_retries: int = 0  #: fault-injection retransmits across ranks
    total_timeouts: int = 0  #: fault-injection recv timeouts across ranks
    injected_wait_s: float = 0.0  #: simulated seconds added by injected faults
    recoveries: int = 0  #: shrink-replan-redistribute rounds (max over ranks)
    corruptions_injected: int = 0  #: payload flips injected, across ranks
    corruptions_detected: int = 0  #: ABFT checksum violations, across ranks
    #: injected payload flips per algorithm phase, summed across ranks
    corruptions_injected_by_phase: dict[str, int] = field(default_factory=dict)
    #: checksum/CRC detections per algorithm phase, summed across ranks
    corruptions_detected_by_phase: dict[str, int] = field(default_factory=dict)
    recomputed_flops: float = 0.0  #: extra flops spent on ABFT/recovery recomputes
    reused_flops: float = 0.0  #: flops avoided by reusing retained partials/checkpoints
    #: measured resident watermark (max over ranks of tracked resident words)
    resident_peak_words: float = 0.0
    #: max over ranks of each allocation purpose's high-water mark (words)
    mem_by_purpose: dict[str, float] = field(default_factory=dict)
    #: the plan's memory_limit_words filtered out every candidate grid
    mem_limit_infeasible: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan_s": self.makespan,
            "q_words": self.q_words,
            "total_words": self.total_words,
            "max_msgs": self.max_msgs,
            "peak_live_words": self.peak_live_words,
            "resident_peak_words": self.resident_peak_words,
            "mem_by_purpose": dict(sorted(self.mem_by_purpose.items())),
            "mem_limit_infeasible": self.mem_limit_infeasible,
            "cannon_overlap_ratio": self.cannon_overlap_ratio,
            "cannon_overlap_critical_rank": self.cannon_overlap_critical_rank,
            "overlap_by_phase": dict(self.overlap_by_phase),
            "covered_by_phase": dict(sorted(self.covered_by_phase.items())),
            "k_group_imbalance": self.k_group_imbalance,
            "total_retries": self.total_retries,
            "total_timeouts": self.total_timeouts,
            "injected_wait_s": self.injected_wait_s,
            "recoveries": self.recoveries,
            "corruptions_injected": self.corruptions_injected,
            "corruptions_detected": self.corruptions_detected,
            "corruptions_injected_by_phase": dict(
                sorted(self.corruptions_injected_by_phase.items())
            ),
            "corruptions_detected_by_phase": dict(
                sorted(self.corruptions_detected_by_phase.items())
            ),
            "recomputed_flops": self.recomputed_flops,
            "reused_flops": self.reused_flops,
            "registry": self.registry.to_dict(),
        }


def _phase_tables(result: "SpmdResult", reg: MetricsRegistry) -> None:
    for trace in result.traces:
        for phase, st in trace.phases.items():
            reg.counter("bytes_sent", rank=trace.rank, phase=phase).inc(st.bytes_sent)
            reg.counter("bytes_recv", rank=trace.rank, phase=phase).inc(st.bytes_recv)
            reg.counter("msgs_sent", rank=trace.rank, phase=phase).inc(st.msgs_sent)
            reg.counter("msgs_recv", rank=trace.rank, phase=phase).inc(st.msgs_recv)
            reg.gauge("phase_time_s", rank=trace.rank, phase=phase).set(st.time)
            reg.gauge("phase_comm_time_s", rank=trace.rank, phase=phase).set(st.comm_time)
            reg.gauge("phase_compute_time_s", rank=trace.rank, phase=phase).set(
                st.compute_time
            )
            if st.comm_covered_time > 0:
                # Only engine-on runs carry the gauge, so legacy
                # snapshots stay identical under overlap="none".
                reg.gauge(
                    "phase_comm_covered_time_s", rank=trace.rank, phase=phase
                ).set(st.comm_covered_time)


def _phase_maxima(result: "SpmdResult", reg: MetricsRegistry) -> None:
    names: set[str] = set()
    for trace in result.traces:
        names.update(trace.phases)
    for phase in names:
        words = max(
            (t.phases[phase].bytes_sent for t in result.traces if phase in t.phases),
            default=0,
        ) / ITEM
        msgs = max(
            (t.phases[phase].msgs_sent for t in result.traces if phase in t.phases),
            default=0,
        )
        reg.gauge("phase_q_words", phase=phase).set(words)
        reg.gauge("phase_max_msgs", phase=phase).set(msgs)


def _shift_latencies(result: "SpmdResult", reg: MetricsRegistry) -> None:
    hist = reg.histogram("cannon_shift_seconds")
    for e in result.transport.events:
        if e.phase == "cannon" and e.kind in ("recv", "wait") and e.duration > 0:
            hist.observe(e.duration)


def overlap_by_phase(result: "SpmdResult") -> dict[str, float]:
    """Volume-weighted overlap efficiency per phase, over live ranks.

    For each rank, ``1 - comm/total`` is the fraction of that phase's
    wall time whose traffic hid behind computation (the transport only
    charges the non-hidden remainder as comm time; transfers the async
    comm engine covered appear in ``PhaseStats.comm_covered_time`` and
    never inflate ``comm_time``, so engine-hidden communication raises
    this ratio automatically).  Ranks are weighted
    by the phase's bytes on the wire (sent + received), so ranks that
    moved no data don't dilute the efficiency of ranks that did; when a
    phase moved no bytes anywhere, time-weighting is the fallback.
    Dead ranks are excluded — their clocks stopped at the kill point.
    """
    acc: dict[str, list[float]] = {}  # phase -> [Σr·vol, Σvol, Σr·t, Σt]
    for trace in result.live_traces:
        for phase, st in trace.phases.items():
            if st.time <= 0:
                continue
            ratio = max(0.0, min(1.0, 1.0 - st.comm_time / st.time))
            weight = float(st.bytes_sent + st.bytes_recv)
            w = acc.setdefault(phase, [0.0, 0.0, 0.0, 0.0])
            w[0] += ratio * weight
            w[1] += weight
            w[2] += ratio * st.time  # time-weighted fallback
            w[3] += st.time
    out: dict[str, float] = {}
    for phase, (rw, w, rt, t) in sorted(acc.items()):
        if w > 0:
            out[phase] = rw / w
        elif t > 0:
            out[phase] = rt / t
    return out


def _overlap_ratio(
    result: "SpmdResult", critical_rank: bool = False
) -> float | None:
    """Overlap efficiency of the Cannon stage.

    By default this is the volume-weighted aggregate over all live ranks
    (see :func:`overlap_by_phase`); ``critical_rank=True`` restores the
    historical reading from the slowest live trace only.
    """
    if critical_rank:
        traces = result.live_traces
        if not traces:
            return None
        crit = max(traces, key=lambda t: t.time)
        st = crit.phases.get("cannon")
        if st is None or st.time <= 0:
            return None
        return max(0.0, min(1.0, 1.0 - st.comm_time / st.time))
    return overlap_by_phase(result).get("cannon")


def _k_group_imbalance(
    result: "SpmdResult", plan: "Ca3dmmPlan | None"
) -> float | None:
    """Relative spread of per-k-task-group busy time: (max-min)/max."""
    if plan is None or plan.pk <= 1:
        return None
    group_time: dict[int, float] = {}
    layer = plan.pm * plan.pn
    for trace in result.live_traces:
        if trace.rank >= plan.active:
            continue
        ik = trace.rank // layer
        group_time[ik] = max(group_time.get(ik, 0.0), trace.time)
    if not group_time:
        return None
    hi, lo = max(group_time.values()), min(group_time.values())
    return 0.0 if hi <= 0 else (hi - lo) / hi


def snapshot_run(
    result: "SpmdResult", plan: "Ca3dmmPlan | None" = None
) -> RunMetrics:
    """Distil an executed run into a :class:`RunMetrics` snapshot.

    ``plan`` (optional) enables plan-aware instruments such as the
    k-task-group imbalance gauge.
    """
    reg = MetricsRegistry()
    _phase_tables(result, reg)
    _phase_maxima(result, reg)
    _shift_latencies(result, reg)
    for trace in result.traces:
        reg.gauge("rank_clock_s", rank=trace.rank).set(trace.time)
        reg.gauge("peak_live_bytes", rank=trace.rank).set(trace.peak_live_bytes)
        if trace.resident_peak_bytes:
            reg.gauge("resident_peak_bytes", rank=trace.rank).set(
                trace.resident_peak_bytes
            )
            for purpose, peak in sorted(trace.mem_peaks.items()):
                reg.gauge(
                    "mem_purpose_peak_bytes", rank=trace.rank, purpose=purpose
                ).set(peak)
            for phase, peak in sorted(trace.phase_mem_peaks.items()):
                reg.gauge(
                    "phase_mem_peak_bytes", rank=trace.rank, phase=phase
                ).set(peak)
        if trace.retries or trace.timeouts or trace.injected_wait_s:
            reg.counter("fault_retries", rank=trace.rank).inc(trace.retries)
            reg.counter("fault_timeouts", rank=trace.rank).inc(trace.timeouts)
            reg.gauge("injected_wait_s", rank=trace.rank).set(trace.injected_wait_s)
        if (
            trace.recoveries
            or trace.corruptions_injected
            or trace.corruptions_detected
        ):
            reg.counter("ft_recoveries", rank=trace.rank).inc(trace.recoveries)
            reg.counter("corruptions_injected", rank=trace.rank).inc(
                trace.corruptions_injected
            )
            reg.counter("corruptions_detected", rank=trace.rank).inc(
                trace.corruptions_detected
            )
            reg.counter("recomputed_flops", rank=trace.rank).inc(
                trace.recomputed_flops
            )
            for ph, n in sorted(trace.corruptions_injected_by_phase.items()):
                reg.counter(
                    "corruptions_injected", rank=trace.rank, phase=ph
                ).inc(n)
            for ph, n in sorted(trace.corruptions_detected_by_phase.items()):
                reg.counter(
                    "corruptions_detected", rank=trace.rank, phase=ph
                ).inc(n)
        if trace.reused_flops:
            reg.counter("reused_flops", rank=trace.rank).inc(trace.reused_flops)

    phase_overlap = overlap_by_phase(result)
    overlap = phase_overlap.get("cannon")
    overlap_crit = _overlap_ratio(result, critical_rank=True)
    imbalance = _k_group_imbalance(result, plan)
    for phase, ratio in phase_overlap.items():
        reg.gauge("phase_overlap_ratio", phase=phase).set(ratio)
    covered_by_phase: dict[str, float] = {}
    for trace in result.live_traces:
        for ph, st in trace.phases.items():
            if st.comm_covered_time > 0:
                covered_by_phase[ph] = (
                    covered_by_phase.get(ph, 0.0) + st.comm_covered_time
                )
    for ph, s in sorted(covered_by_phase.items()):
        reg.gauge("phase_comm_covered_s", phase=ph).set(s)
    if overlap is not None:
        reg.gauge("cannon_overlap_ratio").set(overlap)
    if imbalance is not None:
        reg.gauge("k_group_imbalance").set(imbalance)

    injected_by_phase: dict[str, int] = {}
    detected_by_phase: dict[str, int] = {}
    for trace in result.traces:
        for ph, n in trace.corruptions_injected_by_phase.items():
            injected_by_phase[ph] = injected_by_phase.get(ph, 0) + n
        for ph, n in trace.corruptions_detected_by_phase.items():
            detected_by_phase[ph] = detected_by_phase.get(ph, 0) + n

    mem_by_purpose: dict[str, float] = {}
    for trace in result.traces:
        for purpose, peak in trace.mem_peaks.items():
            words = peak / ITEM
            if words > mem_by_purpose.get(purpose, 0.0):
                mem_by_purpose[purpose] = words
    infeasible = bool(getattr(plan, "mem_limit_infeasible", False))
    reg.gauge("mem_limit_infeasible").set(float(infeasible))

    return RunMetrics(
        registry=reg,
        makespan=result.time,
        q_words=max((t.bytes_sent for t in result.traces), default=0) / ITEM,
        total_words=sum(t.bytes_sent for t in result.traces) / ITEM,
        max_msgs=max((t.msgs_sent for t in result.traces), default=0),
        peak_live_words=max((t.peak_live_bytes for t in result.traces), default=0)
        / ITEM,
        cannon_overlap_ratio=overlap,
        cannon_overlap_critical_rank=overlap_crit,
        overlap_by_phase=phase_overlap,
        covered_by_phase=covered_by_phase,
        k_group_imbalance=imbalance,
        total_retries=sum(t.retries for t in result.traces),
        total_timeouts=sum(t.timeouts for t in result.traces),
        injected_wait_s=sum(t.injected_wait_s for t in result.traces),
        # Every survivor bumps its counter once per recovery round, so
        # the round count is the max, not the sum.
        recoveries=max((t.recoveries for t in result.traces), default=0),
        corruptions_injected=sum(t.corruptions_injected for t in result.traces),
        corruptions_detected=sum(t.corruptions_detected for t in result.traces),
        corruptions_injected_by_phase=injected_by_phase,
        corruptions_detected_by_phase=detected_by_phase,
        recomputed_flops=sum(t.recomputed_flops for t in result.traces),
        reused_flops=sum(t.reused_flops for t in result.traces),
        resident_peak_words=max(
            (t.resident_peak_bytes for t in result.traces), default=0
        )
        / ITEM,
        mem_by_purpose=mem_by_purpose,
        mem_limit_infeasible=infeasible,
    )


def format_metrics(metrics: RunMetrics) -> str:
    """Human-readable one-screen rendering of a snapshot."""
    lines = [
        "Run metrics",
        f"  makespan            : {metrics.makespan * 1e3:.3f} ms (simulated)",
        f"  Q (max words sent)  : {metrics.q_words:.0f}",
        f"  total words sent    : {metrics.total_words:.0f}",
        f"  max messages / rank : {metrics.max_msgs}",
        f"  transport in-flight : {metrics.peak_live_words:.0f} words (peak)",
        f"  resident watermark  : {metrics.resident_peak_words:.0f} words (measured)",
    ]
    if metrics.mem_limit_infeasible:
        lines.append("  memory cap          : INFEASIBLE (min-memory grid used)")
    if metrics.mem_by_purpose:
        lines.append("  peak words by purpose:")
        for purpose, words in sorted(metrics.mem_by_purpose.items()):
            lines.append(f"    {purpose:<18}: {words:.0f}")
    if metrics.cannon_overlap_ratio is not None:
        crit = metrics.cannon_overlap_critical_rank
        suffix = f" (critical rank {100 * crit:.1f} %)" if crit is not None else ""
        lines.append(
            f"  cannon overlap      : {100 * metrics.cannon_overlap_ratio:.1f} %"
            + suffix
        )
    if metrics.covered_by_phase:
        total_covered = sum(metrics.covered_by_phase.values())
        lines.append(
            f"  comm hidden (engine): {total_covered * 1e3:.3f} ms across ranks"
        )
        for ph, s in sorted(metrics.covered_by_phase.items()):
            lines.append(f"    {ph:<18}: {s * 1e3:.3f} ms covered")
    if metrics.k_group_imbalance is not None:
        lines.append(
            f"  k-group imbalance   : {100 * metrics.k_group_imbalance:.1f} %"
        )
    if metrics.total_retries or metrics.total_timeouts:
        lines.append(
            f"  injected faults     : {metrics.total_retries} retr"
            f"{'y' if metrics.total_retries == 1 else 'ies'}, "
            f"{metrics.total_timeouts} timeout(s), "
            f"{metrics.injected_wait_s * 1e3:.3f} ms injected wait"
        )
    if metrics.recoveries:
        lines.append(f"  recoveries          : {metrics.recoveries}")
    if metrics.reused_flops:
        lines.append(
            f"  partial reuse       : {metrics.reused_flops:.0f} flops reused, "
            f"{metrics.recomputed_flops:.0f} recomputed"
        )
    if metrics.corruptions_injected or metrics.corruptions_detected:
        lines.append(
            f"  corruption (ABFT)   : {metrics.corruptions_injected} injected, "
            f"{metrics.corruptions_detected} detected, "
            f"{metrics.recomputed_flops:.0f} flops recomputed"
        )
        phases = sorted(
            set(metrics.corruptions_injected_by_phase)
            | set(metrics.corruptions_detected_by_phase)
        )
        for ph in phases:
            lines.append(
                f"    {ph:<18}: "
                f"{metrics.corruptions_injected_by_phase.get(ph, 0)} injected, "
                f"{metrics.corruptions_detected_by_phase.get(ph, 0)} detected"
            )
    shift = metrics.registry.histogram("cannon_shift_seconds")
    if shift.count:
        lines.append(
            f"  shift latency       : n={shift.count} "
            f"p50={shift.quantile(0.5) * 1e6:.2f}us p95={shift.quantile(0.95) * 1e6:.2f}us"
        )
    lines.append("  per-phase Q (words):")
    for labels, gauge in sorted(
        metrics.registry.find("phase_q_words"), key=lambda lg: lg[0]["phase"]
    ):
        lines.append(f"    {labels['phase']:<10}: {gauge.value:.0f}")
    return "\n".join(lines)
