"""Perf-regression baselines for executed runs.

The simulated clock is deterministic: a fixed workload on a fixed
machine model produces the same makespan, the same binding chain, and
the same traffic counters on every run, on every host.  That makes
executed schedules *diffable*: snapshot the numbers once, commit them
under ``benchmarks/baselines/``, and any later change that regresses a
schedule — a collective losing its overlap, a layout change inflating
the reduce, a transport fix stretching the critical path — shows up as
a numeric delta instead of going unnoticed.

A baseline document records, per workload: the makespan, the per-phase
*critical* seconds (presence on the binding chain, from
:mod:`repro.obs.critpath` — the quantity that actually prices the
schedule, unlike overlappable per-phase elapsed times), per-phase
elapsed seconds for context, and the traffic counters the paper's Q/L
metrics read.  :func:`compare_baseline` diffs two documents under a
:class:`PerfTolerance` and classifies every metric as ok / improved /
regressed; ``repro perfdiff`` turns that into an exit code, and the CI
perf-gate job runs it against the committed baselines on every push.

Refreshing after an intentional change::

    python -m repro.bench all --baseline-dir benchmarks/baselines
    # or: python -m repro.cli perfdiff --update

then commit the rewritten JSON files alongside the change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from .critpath import critpath_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SpmdResult

BASELINE_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "executed perf baseline",
    "type": "object",
    "required": [
        "schema_version",
        "name",
        "workload",
        "makespan_s",
        "phase_critical_s",
        "traffic",
    ],
    "properties": {
        "schema_version": {"const": 1},
        "name": {"type": "string"},
        "workload": {
            "type": "object",
            "required": ["m", "n", "k", "nprocs"],
            "properties": {
                "m": {"type": "integer", "minimum": 1},
                "n": {"type": "integer", "minimum": 1},
                "k": {"type": "integer", "minimum": 1},
                "nprocs": {"type": "integer", "minimum": 1},
            },
        },
        "machine": {"type": "string"},
        "makespan_s": {"type": "number", "minimum": 0},
        "phase_critical_s": {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        },
        "phase_elapsed_s": {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        },
        "traffic": {
            "type": "object",
            "required": ["max_bytes_sent", "total_bytes", "max_msgs_sent"],
            "properties": {
                "max_bytes_sent": {"type": "integer", "minimum": 0},
                "total_bytes": {"type": "integer", "minimum": 0},
                "max_msgs_sent": {"type": "integer", "minimum": 0},
            },
        },
        "critical_rank": {"type": "integer", "minimum": 0},
        "path_segments": {"type": "integer", "minimum": 0},
        "faults": {
            "type": "object",
            "properties": {
                "total_retries": {"type": "integer", "minimum": 0},
                "total_timeouts": {"type": "integer", "minimum": 0},
                "injected_wait_s": {"type": "number", "minimum": 0},
                "injected_critical_s": {"type": "number", "minimum": 0},
            },
        },
    },
}


def validate_baseline_json(doc: Any) -> None:
    """Raise ``TraceSchemaError`` unless ``doc`` is a valid baseline."""
    from .export import _validate

    _validate(doc, BASELINE_JSON_SCHEMA)


@dataclass(frozen=True)
class PerfTolerance:
    """Allowed drift before a metric counts as a regression.

    Executed runs are deterministic, so the defaults are tight: they
    absorb float noise and minor pickle-framing variation across Python
    versions, not real schedule changes.  ``phase_abs_s`` is an absolute
    floor under which per-phase critical-time changes never fail
    (protects near-empty phases where one latency α is a huge relative
    change).
    """

    time_rel: float = 0.03
    phase_rel: float = 0.10
    phase_abs_s: float = 1e-7
    bytes_rel: float = 0.02
    msgs_abs: int = 0


@dataclass(frozen=True)
class PerfDelta:
    """One compared metric: baseline vs current."""

    metric: str
    baseline: float
    current: float
    rel_change: float  #: (current - baseline) / max(|baseline|, tiny)
    regressed: bool
    improved: bool

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "REGRESSED"
        return "improved" if self.improved else "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel_change": self.rel_change,
            "verdict": self.verdict,
        }


@dataclass
class PerfDiff:
    """The comparison of one workload's run against its baseline."""

    name: str
    deltas: list[PerfDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.regressed for d in self.deltas)

    @property
    def regressions(self) -> list[PerfDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[PerfDelta]:
        return [d for d in self.deltas if d.improved]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def format(self, verbose: bool = False) -> str:
        head = f"{self.name}: " + ("OK" if self.ok else "REGRESSION")
        if self.improvements:
            head += f" ({len(self.improvements)} improved)"
        lines = [head]
        for d in self.deltas:
            if not verbose and not d.regressed and not d.improved:
                continue
            lines.append(
                f"  {d.metric:<28} {d.baseline:.6e} -> {d.current:.6e} "
                f"({100 * d.rel_change:+7.2f}%)  {d.verdict}"
            )
        return "\n".join(lines)


# ------------------------------------------------------------- capture -- #
def capture_baseline(
    result: "SpmdResult",
    name: str,
    workload: dict[str, int] | None = None,
    machine_label: str = "",
) -> dict[str, Any]:
    """Snapshot one executed run into a baseline document."""
    report = critpath_report(result)
    doc: dict[str, Any] = {
        "schema_version": 1,
        "name": name,
        "workload": dict(workload or {}),
        "machine": machine_label,
        "makespan_s": result.time,
        "phase_critical_s": {
            p: b.critical_s for p, b in sorted(report.blame.items())
        },
        "phase_elapsed_s": {
            p: b.elapsed_s for p, b in sorted(report.blame.items())
        },
        "traffic": {
            "max_bytes_sent": int(result.max_bytes_sent),
            "total_bytes": int(result.total_bytes),
            "max_msgs_sent": int(result.max_msgs_sent),
        },
        "critical_rank": report.path.final_rank,
        "path_segments": len(report.path.segments),
    }
    retries = sum(t.retries for t in result.traces)
    timeouts = sum(t.timeouts for t in result.traces)
    injected_wait = sum(t.injected_wait_s for t in result.traces)
    if retries or timeouts or injected_wait or report.path.injected_s:
        # Only faulted runs carry the block, so organic baselines stay
        # byte-identical to pre-fault-layer captures.
        doc["faults"] = {
            "total_retries": retries,
            "total_timeouts": timeouts,
            "injected_wait_s": injected_wait,
            "injected_critical_s": report.path.injected_s,
        }
    validate_baseline_json(doc)
    return doc


# ------------------------------------------------------------- compare -- #
def _delta(
    metric: str,
    base: float,
    cur: float,
    rel_tol: float,
    abs_tol: float = 0.0,
    fail_on_decrease: bool = False,
) -> PerfDelta:
    diff = cur - base
    rel = diff / max(abs(base), 1e-300)
    over = diff > max(rel_tol * abs(base), abs_tol)
    under = -diff > max(rel_tol * abs(base), abs_tol)
    return PerfDelta(
        metric=metric,
        baseline=base,
        current=cur,
        rel_change=rel,
        regressed=over or (fail_on_decrease and under),
        improved=under and not fail_on_decrease,
    )


def compare_baseline(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tol: PerfTolerance | None = None,
) -> PerfDiff:
    """Diff two baseline documents (``baseline`` committed, ``current`` fresh).

    Compared metrics: makespan, per-phase critical seconds (union of
    phases; a phase absent on one side counts as zero), max/total bytes
    sent, and max messages sent.  Message-count changes regress in
    *either* direction — a schedule that silently gained or lost rounds
    changed, whether or not it got faster — while time/byte improvements
    beyond tolerance are reported as such without failing.
    """
    tol = tol or PerfTolerance()
    deltas: list[PerfDelta] = [
        _delta(
            "makespan_s",
            float(baseline["makespan_s"]),
            float(current["makespan_s"]),
            tol.time_rel,
        )
    ]
    base_ph = baseline.get("phase_critical_s", {})
    cur_ph = current.get("phase_critical_s", {})
    for phase in sorted(set(base_ph) | set(cur_ph)):
        deltas.append(
            _delta(
                f"phase_critical_s[{phase}]",
                float(base_ph.get(phase, 0.0)),
                float(cur_ph.get(phase, 0.0)),
                tol.phase_rel,
                abs_tol=tol.phase_abs_s,
            )
        )
    base_tr = baseline.get("traffic", {})
    cur_tr = current.get("traffic", {})
    for key in ("max_bytes_sent", "total_bytes"):
        deltas.append(
            _delta(
                f"traffic[{key}]",
                float(base_tr.get(key, 0)),
                float(cur_tr.get(key, 0)),
                tol.bytes_rel,
            )
        )
    deltas.append(
        _delta(
            "traffic[max_msgs_sent]",
            float(base_tr.get("max_msgs_sent", 0)),
            float(cur_tr.get("max_msgs_sent", 0)),
            0.0,
            abs_tol=float(tol.msgs_abs),
            fail_on_decrease=True,
        )
    )
    return PerfDiff(name=str(current.get("name") or baseline.get("name") or ""), deltas=deltas)


# --------------------------------------------------------------- store -- #
class BaselineStore:
    """One ``*.json`` baseline per workload name under a directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, name: str) -> dict[str, Any] | None:
        path = self.path(name)
        if not path.is_file():
            return None
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        validate_baseline_json(doc)
        return doc

    def save(self, name: str, doc: dict[str, Any]) -> Path:
        validate_baseline_json(doc)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def compare(
        self, name: str, current: dict[str, Any], tol: PerfTolerance | None = None
    ) -> PerfDiff | None:
        """Diff ``current`` against the stored baseline (None if missing)."""
        base = self.load(name)
        if base is None:
            return None
        return compare_baseline(base, current, tol)

    def __iter__(self) -> Iterator[str]:  # pragma: no cover - convenience
        return iter(self.names())
