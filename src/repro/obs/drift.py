"""Drift guard: executed per-phase traffic vs the paper's analytic model.

The paper's communication claims are per-phase and exact: replication
moves ``|blk|(c-1)/c`` words in ``⌈log2 c⌉`` rounds, Cannon moves
``(|blk_A|+|blk_B|)·s`` words, the reduce-scatter ``|blk_C|(pk-1)/pk``
words in ``pk-1`` rounds (Section III-D, summing to eq. 9's Q on
balanced grids).  :func:`drift_report` re-derives those predictions from
a :class:`~repro.core.plan.Ca3dmmPlan` — the same planning code the
executed engine runs — and compares them against the *measured*
phase-tagged traffic of an executed run, reporting per-phase relative
error and failing above a configurable tolerance.  This turns the
eq. 9 / Table-1 checks into an always-on runtime assertion: any future
change that silently alters the communication schedule trips the guard.

Volumes are compared tightly (they are scheduled, not timed); timing is
compared only when a ``machine`` is given, against
:func:`~repro.analysis.costs.ca3dmm_cost`, and only enforced when a
``time_tol`` is set — timing predictions carry model error that byte
counts do not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .metrics import ITEM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import Ca3dmmPlan
    from ..machine.model import MachineModel
    from ..mpi.runtime import SpmdResult

#: Executed phases with closed-form traffic predictions.
GUARDED_PHASES = ("replicate", "cannon", "reduce")


class DriftError(AssertionError):
    """Measured traffic drifted from the analytic prediction."""


@dataclass(frozen=True)
class PhaseExpectation:
    """Predicted per-rank traffic of one phase (critical rank, words)."""

    words: float
    msgs: int


@dataclass
class PhaseDrift:
    """Measured vs predicted traffic for one phase."""

    phase: str
    measured_words: float
    expected_words: float
    measured_msgs: int
    expected_msgs: int
    words_rel_err: float
    ok: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "measured_words": self.measured_words,
            "expected_words": self.expected_words,
            "measured_msgs": self.measured_msgs,
            "expected_msgs": self.expected_msgs,
            "words_rel_err": self.words_rel_err,
            "ok": self.ok,
        }


@dataclass
class TimeDrift:
    """Measured vs model-predicted seconds for one analytic bucket."""

    bucket: str
    measured_s: float
    predicted_s: float
    ok: bool | None  #: None when timing is report-only

    def to_dict(self) -> dict[str, Any]:
        return {
            "bucket": self.bucket,
            "measured_s": self.measured_s,
            "predicted_s": self.predicted_s,
            "ok": self.ok,
        }


@dataclass
class DriftReport:
    """Per-phase drift of one executed run against its plan."""

    phases: list[PhaseDrift]
    times: list[TimeDrift] = field(default_factory=list)
    byte_tol: float = 0.05
    msg_slack: int = 0

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.phases) and all(
            t.ok for t in self.times if t.ok is not None
        )

    @property
    def max_rel_err(self) -> float:
        return max((p.words_rel_err for p in self.phases), default=0.0)

    def check(self) -> "DriftReport":
        """Return self, or raise :class:`DriftError` listing violations."""
        if self.ok:
            return self
        bad = [p for p in self.phases if not p.ok] + [
            t for t in self.times if t.ok is False
        ]
        raise DriftError(
            "executed traffic drifted from the analytic model:\n"
            + "\n".join(f"  {b.to_dict()}" for b in bad)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "byte_tol": self.byte_tol,
            "max_rel_err": self.max_rel_err,
            "phases": [p.to_dict() for p in self.phases],
            "times": [t.to_dict() for t in self.times],
        }

    def format(self) -> str:
        lines = [
            f"Drift guard (byte tol {100 * self.byte_tol:.1f}%): "
            + ("OK" if self.ok else "FAIL")
        ]
        for p in self.phases:
            lines.append(
                f"  {p.phase:<10} words {p.measured_words:>12.0f} vs "
                f"{p.expected_words:>12.0f} ({100 * p.words_rel_err:6.2f}%)  "
                f"msgs {p.measured_msgs} vs {p.expected_msgs}  "
                + ("ok" if p.ok else "DRIFT")
            )
        for t in self.times:
            verdict = "report-only" if t.ok is None else ("ok" if t.ok else "DRIFT")
            lines.append(
                f"  t[{t.bucket:<9}] {t.measured_s * 1e3:9.3f} ms vs "
                f"{t.predicted_s * 1e3:9.3f} ms  {verdict}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------- predictions -- #
def expected_phase_traffic(plan: "Ca3dmmPlan") -> dict[str, PhaseExpectation]:
    """Closed-form per-phase send volume/messages of the executed schedule.

    Words use the continuous block extents (``m/pm`` etc.), exact when
    the grid divides the dimensions; message counts are the executed
    algorithms' exact per-rank maxima (Bruck rounds for the replication
    allgather, 2 messages per Cannon round for A and B, ``pk-1``
    pairwise exchanges for the reduce-scatter).  Their sum equals
    :func:`repro.analysis.verify.theoretical_metrics`'s Q.
    """
    m, n, k = plan.m, plan.n, plan.k
    pm, pn, pk, s, c = plan.pm, plan.pn, plan.pk, plan.s, plan.c
    mb, nb, kg = m / pm, n / pn, k / pk
    kb = kg / s
    blk_a, blk_b = mb * kb, kb * nb

    out: dict[str, PhaseExpectation] = {}
    if c > 1:
        blk = blk_a if plan.replicates_a else blk_b
        out["replicate"] = PhaseExpectation(
            words=blk * (c - 1) / c, msgs=math.ceil(math.log2(c))
        )
    if s > 1:
        # Skew (A left by u, B up by v: ranks with u>0 and v>0 send both)
        # plus s-1 dual-buffered shift rounds moving A and B each.
        out["cannon"] = PhaseExpectation(words=(blk_a + blk_b) * s, msgs=2 * s)
    if pk > 1:
        out["reduce"] = PhaseExpectation(words=mb * nb * (pk - 1) / pk, msgs=pk - 1)
    return out


def _measured_phase(result: "SpmdResult", phase: str, nruns: int) -> tuple[float, int]:
    words = 0.0
    msgs = 0
    for t in result.traces:
        st = t.phases.get(phase)
        if st is None:
            continue
        words = max(words, st.bytes_sent / ITEM / nruns)
        msgs = max(msgs, st.msgs_sent // nruns)
    return words, msgs


def _time_buckets(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    machine: "MachineModel",
    time_tol: float | None,
) -> list[TimeDrift]:
    from ..analysis.costs import ca3dmm_cost

    rep = ca3dmm_cost(plan.m, plan.n, plan.k, plan.nprocs, machine, grid=plan.grid)
    crit = max(result.traces, key=lambda t: t.time)

    def phase_stat(name: str):
        return crit.phases.get(name)

    # Map measured phases onto the analytic buckets: the model books
    # Cannon shift traffic under "replicate" and the local GEMMs under
    # "compute" (Fig. 5's bucketing).
    repl = phase_stat("replicate")
    cann = phase_stat("cannon")
    redu = phase_stat("reduce")
    measured = {
        "replicate": (repl.time if repl else 0.0)
        + (cann.comm_time if cann else 0.0),
        "compute": (cann.compute_time if cann else 0.0)
        + (repl.compute_time if repl else 0.0),
        "reduce": redu.time if redu else 0.0,
    }
    out = []
    for bucket, meas in measured.items():
        pred = rep.phases[bucket].time if bucket in rep.phases else 0.0
        ok: bool | None = None
        if time_tol is not None:
            scale = max(pred, 1e-30)
            ok = abs(meas - pred) / scale <= time_tol
        out.append(TimeDrift(bucket=bucket, measured_s=meas, predicted_s=pred, ok=ok))
    return out


# ---------------------------------------------------------------- report -- #
def drift_report(
    result: "SpmdResult",
    plan: "Ca3dmmPlan",
    byte_tol: float = 0.05,
    abs_tol_words: float = 64.0,
    msg_slack: int = 0,
    nruns: int = 1,
    machine: "MachineModel | None" = None,
    time_tol: float | None = None,
) -> DriftReport:
    """Compare an executed run's per-phase traffic against its plan.

    Parameters
    ----------
    byte_tol:
        Maximum allowed relative error on per-phase words sent.  The
        default 5% absorbs ragged-block rounding and the pickle framing
        on the replication allgather; balanced divisible grids measure
        exact (0%).
    abs_tol_words:
        Absolute floor below which byte differences never fail (protects
        tiny problems where framing dominates).
    msg_slack:
        Allowed absolute deviation in per-phase message counts.
    nruns:
        Number of multiplies the trace accumulated (counters are
        divided by this before comparison).
    machine, time_tol:
        When ``machine`` is given, per-bucket timing vs
        :func:`~repro.analysis.costs.ca3dmm_cost` is included; it only
        affects :attr:`DriftReport.ok` when ``time_tol`` is set.
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    expected = expected_phase_traffic(plan)
    phases: list[PhaseDrift] = []
    for name in GUARDED_PHASES:
        exp = expected.get(name)
        meas_words, meas_msgs = _measured_phase(result, name, nruns)
        if exp is None:
            # Phase not scheduled: any traffic at all is drift.
            ok = meas_words == 0 and meas_msgs == 0
            phases.append(
                PhaseDrift(name, meas_words, 0.0, meas_msgs, 0,
                           words_rel_err=0.0 if ok else math.inf, ok=ok)
            )
            continue
        err = abs(meas_words - exp.words)
        rel = err / exp.words if exp.words > 0 else (0.0 if err == 0 else math.inf)
        words_ok = rel <= byte_tol or err <= abs_tol_words
        msgs_ok = abs(meas_msgs - exp.msgs) <= msg_slack
        phases.append(
            PhaseDrift(
                phase=name,
                measured_words=meas_words,
                expected_words=exp.words,
                measured_msgs=meas_msgs,
                expected_msgs=exp.msgs,
                words_rel_err=rel,
                ok=words_ok and msgs_ok,
            )
        )
    times = (
        _time_buckets(result, plan, machine, time_tol) if machine is not None else []
    )
    return DriftReport(phases=phases, times=times, byte_tol=byte_tol, msg_slack=msg_slack)


def check_drift(result: "SpmdResult", plan: "Ca3dmmPlan", **kwargs: Any) -> DriftReport:
    """:func:`drift_report` that raises :class:`DriftError` on violation."""
    return drift_report(result, plan, **kwargs).check()
