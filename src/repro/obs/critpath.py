"""Critical-path analysis of executed runs: where the makespan goes.

The transport's per-rank traffic counters say how much each CA3DMM phase
*moves*; this module says which dependency chain actually *bounds*
``SpmdResult.time``.  Following COSMA's decomposition discipline
(Kwasniewski et al., SC 2019), the makespan is not the sum of per-phase
elapsed times — phases overlap across ranks — but the length of one
connected wait-for chain through the run's events.

From a run recorded with ``run_spmd(..., record_events=True)`` the
transport keeps, besides the per-rank :class:`~repro.mpi.transport.Event`
intervals, a :class:`~repro.mpi.transport.MsgRecord` per message carrying
its post time and arrival.  Every clock movement is evented, so each
rank's events tile ``[0, clock]`` exactly; every blocking receive carries
the ``seq`` of the message that released it.  That makes the wait-for DAG
exact, and the binding chain recoverable by walking *backward* from the
makespan:

* a ``compute`` (or bare ``wait``) interval ending at the cursor keeps
  the chain on the same rank;
* a ``send`` interval (blocking send, or an ``isend`` settled at
  ``wait``) binds the chain to the rank's own outgoing transfer — the
  chain follows the flight back to its post time on the same rank;
* a ``recv`` interval means the rank idled until a message arrived — the
  chain crosses to the *sender* at the message's post time, and the
  flight itself becomes a chain segment.

The resulting :class:`CriticalPath` is a connected sequence of segments
whose endpoints coincide to the float (each hop lands exactly on an
event boundary, because post times are clock snapshots), so its total
duration telescopes to the makespan.  On top of it:
:func:`rank_decomposition` (per-rank compute/comm/wait/idle summing to
the makespan), :func:`phase_blame` (critical vs elapsed seconds per
phase — the executed analogue of the paper's Fig. 5 bars),
:func:`stragglers` (ranks holding an outsized share of the chain), and
:func:`critpath_report` bundling everything into a schema-validated
document for the ``repro critpath`` CLI and the perf baselines.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.runtime import SpmdResult
    from ..mpi.transport import Event

#: Relative tolerance when anchoring a chain cursor on an event boundary.
_REL_TOL = 1e-9

#: Chain-segment kinds (Event kinds, with "recv" meaning the flight).
SEG_COMPUTE = "compute"
SEG_SEND = "send"
SEG_RECV = "recv"
SEG_WAIT = "wait"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the binding chain.

    ``rank`` is the rank whose activity bounds the interval; for a
    ``recv`` segment that is the *sender* of the releasing message (the
    chain continues there) and ``peer`` is the blocked receiver.  For a
    ``send`` segment the interval is the rank's own outgoing flight and
    ``peer`` is the destination.  ``phase`` is the phase blamed for the
    interval — the blocked side's phase for transfers.
    """

    kind: str
    rank: int
    t0: float
    t1: float
    phase: str
    peer: int = -1
    nbytes: int = 0
    seq: int = -1
    injected: bool = False  #: interval caused/extended by fault injection

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rank": self.rank,
            "t0_s": self.t0,
            "t1_s": self.t1,
            "dur_s": self.duration,
            "phase": self.phase,
            "peer": self.peer,
            "nbytes": self.nbytes,
            "seq": self.seq,
            "injected": self.injected,
        }


@dataclass
class CriticalPath:
    """The binding chain of one executed run, in chronological order."""

    segments: list[PathSegment]
    makespan: float
    final_rank: int  #: the rank whose clock realizes the makespan
    complete: bool  #: True when the backward walk reached t = 0

    @property
    def total(self) -> float:
        """Chain length in seconds (== makespan when ``complete``)."""
        return sum(s.duration for s in self.segments)

    @property
    def injected_s(self) -> float:
        """Chain seconds on segments tagged ``injected`` (fault layer)."""
        return sum(s.duration for s in self.segments if s.injected)

    @property
    def ranks(self) -> list[int]:
        """Ranks appearing on the chain, in order of first appearance."""
        seen: list[int] = []
        for s in self.segments:
            if s.rank not in seen:
                seen.append(s.rank)
        return seen

    def rank_residency(self) -> dict[int, float]:
        """Seconds each rank spends on the chain (flights charge the sender)."""
        out: dict[int, float] = {}
        for s in self.segments:
            out[s.rank] = out.get(s.rank, 0.0) + s.duration
        return out

    def connected(self, rel_tol: float = _REL_TOL) -> bool:
        """True when consecutive segment endpoints coincide to the float."""
        for a, b in zip(self.segments, self.segments[1:]):
            scale = max(1.0, abs(a.t1))
            if abs(a.t1 - b.t0) > rel_tol * scale:
                return False
        return True


@dataclass(frozen=True)
class WaitEdge:
    """One wait-for DAG edge: a message that released a blocked interval.

    ``released`` is ``"recv"`` when the receiver idled for the message
    and ``"send"`` when the sender itself settled its own nonblocking
    flight at ``wait`` time (a self-edge in rank space).
    """

    seq: int
    src: int
    dst: int
    t_post: float
    arrival: float
    nbytes: int
    released: str
    blocked_from: float  #: when the released rank started idling

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "src": self.src,
            "dst": self.dst,
            "t_post_s": self.t_post,
            "arrival_s": self.arrival,
            "nbytes": self.nbytes,
            "released": self.released,
            "blocked_from_s": self.blocked_from,
        }


@dataclass
class RankBreakdown:
    """Per-rank decomposition of the makespan into activity classes.

    ``compute + comm + wait + tail_idle == makespan`` to float precision:
    events tile ``[0, finish]`` and ``tail_idle`` covers the remainder
    (the rank finished and idled until the slowest rank's clock).
    """

    rank: int
    compute_s: float
    comm_s: float  #: occupied by the rank's own outgoing transfers
    wait_s: float  #: idle, blocked on arrivals (recv) or bare waits
    tail_idle_s: float
    finish_s: float

    @property
    def total(self) -> float:
        return self.compute_s + self.comm_s + self.wait_s + self.tail_idle_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "wait_s": self.wait_s,
            "tail_idle_s": self.tail_idle_s,
            "finish_s": self.finish_s,
        }


@dataclass
class PhaseBlame:
    """Critical vs elapsed seconds of one phase.

    ``critical_s`` is the phase's presence on the binding chain — the
    seconds the makespan would shrink if the phase's chain segments
    vanished; ``elapsed_s`` is the wall interval the phase spanned
    across all ranks.  Critical times sum to the makespan; elapsed
    times generally overlap and sum to more.
    """

    phase: str
    critical_s: float
    elapsed_s: float
    critical_share: float  #: critical_s / makespan

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "critical_s": self.critical_s,
            "elapsed_s": self.elapsed_s,
            "critical_share": self.critical_share,
        }


@dataclass(frozen=True)
class Straggler:
    """A rank holding an outsized share of the binding chain."""

    rank: int
    residency_s: float
    share: float  #: residency / makespan
    finish_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "residency_s": self.residency_s,
            "share": self.share,
            "finish_s": self.finish_s,
        }


# ----------------------------------------------------------------- walk -- #
class _RankTimeline:
    """One rank's events, indexed for exact end-time lookup."""

    def __init__(self, events: list["Event"]):
        self.events = sorted(events, key=lambda e: e.t0)
        self._ends = [e.t1 for e in self.events]

    def ending_at(self, t: float) -> "Event | None":
        """The event whose t1 equals ``t`` (exact, with a float fallback)."""
        i = bisect_left(self._ends, t)
        for j in (i, i - 1, i + 1):
            if 0 <= j < len(self._ends):
                if self._ends[j] == t or abs(self._ends[j] - t) <= _REL_TOL * max(
                    1.0, abs(t)
                ):
                    return self.events[j]
        return None


def critical_path(result: "SpmdResult") -> CriticalPath:
    """Reconstruct the binding chain of an executed run.

    Requires ``record_events=True``; without events the returned path is
    empty (and marked complete only for a zero makespan).
    """
    transport = result.transport
    makespan = result.time
    clocks = [t.time for t in result.traces]
    final_rank = min(
        (r for r in range(transport.nprocs) if clocks[r] == makespan),
        default=0,
    )
    if not transport.events or makespan <= 0.0:
        return CriticalPath(
            segments=[],
            makespan=makespan,
            final_rank=final_rank,
            complete=makespan <= 0.0,
        )

    by_rank: dict[int, list[Event]] = {r: [] for r in range(transport.nprocs)}
    for e in transport.events:
        by_rank[e.rank].append(e)
    timelines = {r: _RankTimeline(evs) for r, evs in by_rank.items()}

    segments: list[PathSegment] = []
    rank, t = final_rank, makespan
    complete = False
    max_steps = len(transport.events) + len(transport.msglog) + 4
    for _ in range(max_steps):
        if t <= 0.0:
            complete = True
            break
        e = timelines[rank].ending_at(t)
        if e is None:
            break  # untracked clock movement; report a partial chain
        msg = transport.msg_record(e.seq) if e.seq >= 0 else None
        if e.kind == "recv" and msg is not None:
            # The rank idled until this message arrived: the chain is the
            # flight, continuing on the sender at its post time.
            segments.append(
                PathSegment(
                    kind=SEG_RECV,
                    rank=msg.src,
                    t0=msg.t_post,
                    t1=t,
                    phase=e.phase,
                    peer=e.rank,
                    nbytes=e.nbytes,
                    seq=e.seq,
                    injected=e.injected or msg.injected,
                )
            )
            rank, t = msg.src, msg.t_post
        elif e.kind == "send" and msg is not None:
            # Bound by the rank's own outgoing transfer; for an isend the
            # flight started before the wait, overlapping later events.
            segments.append(
                PathSegment(
                    kind=SEG_SEND,
                    rank=e.rank,
                    t0=msg.t_post,
                    t1=t,
                    phase=e.phase,
                    peer=e.peer,
                    nbytes=e.nbytes,
                    seq=e.seq,
                    injected=e.injected or msg.injected,
                )
            )
            t = msg.t_post
        else:
            segments.append(
                PathSegment(
                    kind=e.kind,
                    rank=e.rank,
                    t0=e.t0,
                    t1=t,
                    phase=e.phase,
                    peer=e.peer,
                    nbytes=e.nbytes,
                    seq=e.seq,
                    injected=e.injected,
                )
            )
            t = e.t0
    else:  # pragma: no cover - defensive: cycle in a corrupt event log
        complete = False
    segments.reverse()
    return CriticalPath(
        segments=segments,
        makespan=makespan,
        final_rank=final_rank,
        complete=complete,
    )


# ----------------------------------------------------------- wait-for DAG -- #
def waitfor_edges(result: "SpmdResult") -> list[WaitEdge]:
    """Every blocking dependency of the run, in arrival order.

    One edge per ``recv``/``send`` event that raised a clock — i.e. per
    message some rank actually idled for.  Messages that arrived before
    their receiver asked for them never block and contribute no edge.
    """
    transport = result.transport
    edges: list[WaitEdge] = []
    for e in transport.events:
        if e.kind not in (SEG_RECV, SEG_SEND) or e.seq < 0:
            continue
        msg = transport.msg_record(e.seq)
        if msg is None:
            continue
        edges.append(
            WaitEdge(
                seq=e.seq,
                src=msg.src,
                dst=msg.dst,
                t_post=msg.t_post,
                arrival=msg.arrival,
                nbytes=msg.nbytes,
                released=e.kind,
                blocked_from=e.t0,
            )
        )
    edges.sort(key=lambda w: (w.arrival, w.seq))
    return edges


# ----------------------------------------------------------- decomposition -- #
def rank_decomposition(result: "SpmdResult") -> dict[int, RankBreakdown]:
    """Per-rank makespan decomposition: compute / comm / wait / tail idle."""
    transport = result.transport
    makespan = result.time
    sums: dict[int, dict[str, float]] = {
        r: {SEG_COMPUTE: 0.0, SEG_SEND: 0.0, SEG_WAIT: 0.0}
        for r in range(transport.nprocs)
    }
    for e in transport.events:
        bucket = sums[e.rank]
        if e.kind == SEG_COMPUTE:
            bucket[SEG_COMPUTE] += e.duration
        elif e.kind == SEG_SEND:
            bucket[SEG_SEND] += e.duration
        else:  # recv + bare waits: the rank was idle, blocked
            bucket[SEG_WAIT] += e.duration
    out: dict[int, RankBreakdown] = {}
    for r, trace in enumerate(result.traces):
        b = sums[r]
        out[r] = RankBreakdown(
            rank=r,
            compute_s=b[SEG_COMPUTE],
            comm_s=b[SEG_SEND],
            wait_s=b[SEG_WAIT],
            tail_idle_s=makespan - trace.time,
            finish_s=trace.time,
        )
    return out


def phase_blame(
    result: "SpmdResult", path: CriticalPath | None = None
) -> dict[str, PhaseBlame]:
    """Critical vs elapsed seconds per phase (Fig. 5, executed and exact)."""
    if path is None:
        path = critical_path(result)
    critical: dict[str, float] = {}
    for s in path.segments:
        critical[s.phase] = critical.get(s.phase, 0.0) + s.duration
    extents: dict[str, tuple[float, float]] = {}
    for e in result.transport.events:
        lo, hi = extents.get(e.phase, (float("inf"), 0.0))
        extents[e.phase] = (min(lo, e.t0), max(hi, e.t1))
    denom = max(path.makespan, 1e-300)
    out: dict[str, PhaseBlame] = {}
    for phase in sorted(set(critical) | set(extents)):
        crit = critical.get(phase, 0.0)
        lo, hi = extents.get(phase, (0.0, 0.0))
        out[phase] = PhaseBlame(
            phase=phase,
            critical_s=crit,
            elapsed_s=max(0.0, hi - lo),
            critical_share=crit / denom,
        )
    return out


def stragglers(
    result: "SpmdResult",
    path: CriticalPath | None = None,
    threshold: float | None = None,
) -> list[Straggler]:
    """Ranks holding an outsized share of the binding chain.

    A rank is a straggler when its chain residency exceeds
    ``threshold`` as a fraction of the makespan; the default threshold
    is twice the fair share ``1/P`` (capped at 1), so a perfectly
    balanced schedule reports none.  Sorted by descending residency.
    """
    if path is None:
        path = critical_path(result)
    nprocs = result.transport.nprocs
    if threshold is None:
        threshold = min(1.0, 2.0 / max(1, nprocs))
    denom = max(path.makespan, 1e-300)
    finish = {t.rank: t.time for t in result.traces}
    out = [
        Straggler(
            rank=r,
            residency_s=res,
            share=res / denom,
            finish_s=finish.get(r, 0.0),
        )
        for r, res in path.rank_residency().items()
        if res / denom >= threshold
    ]
    out.sort(key=lambda s: (-s.residency_s, s.rank))
    return out


# ------------------------------------------------------------------ report -- #
CRITPATH_JSON_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro critpath --json document",
    "type": "object",
    "required": [
        "schema_version",
        "makespan_s",
        "nprocs",
        "critical_rank",
        "complete",
        "path",
        "phase_blame",
        "rank_decomposition",
    ],
    "properties": {
        "schema_version": {"const": 1},
        "makespan_s": {"type": "number", "minimum": 0},
        "nprocs": {"type": "integer", "minimum": 1},
        "critical_rank": {"type": "integer", "minimum": 0},
        "complete": {"type": "boolean"},
        "path_total_s": {"type": "number", "minimum": 0},
        "path": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["kind", "rank", "t0_s", "t1_s", "dur_s", "phase"],
                "properties": {
                    "kind": {"enum": ["compute", "send", "recv", "wait"]},
                    "rank": {"type": "integer", "minimum": 0},
                    "t0_s": {"type": "number", "minimum": 0},
                    "t1_s": {"type": "number", "minimum": 0},
                    "dur_s": {"type": "number", "minimum": 0},
                    "phase": {"type": "string"},
                    "peer": {"type": "integer"},
                    "nbytes": {"type": "integer", "minimum": 0},
                    "seq": {"type": "integer"},
                    "injected": {"type": "boolean"},
                },
            },
        },
        "injected_critical_s": {"type": "number", "minimum": 0},
        "phase_blame": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["critical_s", "elapsed_s", "critical_share"],
            },
        },
        "rank_decomposition": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["compute_s", "comm_s", "wait_s", "tail_idle_s"],
            },
        },
        "rank_residency": {"type": "object"},
        "stragglers": {"type": "array"},
        "phase_overlap": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "phase_covered_s": {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        },
    },
}


def validate_critpath_json(doc: Any) -> None:
    """Raise ``TraceSchemaError`` unless ``doc`` matches the schema."""
    from .export import _validate

    _validate(doc, CRITPATH_JSON_SCHEMA)


@dataclass
class CritPathReport:
    """Everything the analyzer knows about one run, JSON- and text-ready."""

    path: CriticalPath
    blame: dict[str, PhaseBlame]
    ranks: dict[int, RankBreakdown]
    stragglers: list[Straggler] = field(default_factory=list)
    nprocs: int = 0
    #: measured overlap efficiency per phase (volume-weighted over live
    #: ranks, :func:`repro.obs.metrics.overlap_by_phase`) — how much of
    #: each phase's traffic hid behind compute, beside the blame table.
    phase_overlap: dict[str, float] = field(default_factory=dict)
    #: comm seconds the async engine covered per phase (summed over live
    #: ranks) — the *covered* half of the exposed-vs-covered taxonomy;
    #: what remains in the blame table's recv/wait segments is exposed.
    phase_covered_s: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "schema_version": 1,
            "makespan_s": self.path.makespan,
            "nprocs": self.nprocs,
            "critical_rank": self.path.final_rank,
            "complete": self.path.complete,
            "path_total_s": self.path.total,
            "injected_critical_s": self.path.injected_s,
            "path": [s.to_dict() for s in self.path.segments],
            "phase_blame": {p: b.to_dict() for p, b in self.blame.items()},
            "rank_decomposition": {
                str(r): b.to_dict() for r, b in self.ranks.items()
            },
            "rank_residency": {
                str(r): v for r, v in sorted(self.path.rank_residency().items())
            },
            "stragglers": [s.to_dict() for s in self.stragglers],
            "phase_overlap": dict(self.phase_overlap),
        }
        # Schema-optional: only present when the engine hid anything, so
        # overlap="none" documents stay byte-identical to the old format.
        if self.phase_covered_s:
            doc["phase_covered_s"] = dict(sorted(self.phase_covered_s.items()))
        validate_critpath_json(doc)
        return doc

    def format(self, max_segments: int = 12) -> str:
        p = self.path
        ms = p.makespan * 1e3
        lines = [
            f"Critical path: {len(p.segments)} segment(s), "
            f"{p.total * 1e3:.6f} ms of {ms:.6f} ms makespan "
            f"({'complete' if p.complete else 'PARTIAL'}), "
            f"ends on rank {p.final_rank}",
            f"  chain visits {len(p.ranks)} of {self.nprocs} rank(s)",
        ]
        if p.injected_s > 0.0:
            lines.append(
                f"  injected faults hold {p.injected_s * 1e3:.6f} ms of the "
                f"chain ({100 * p.injected_s / max(p.makespan, 1e-300):.1f}% "
                f"of makespan; segments marked '!')"
            )
        if self.blame:
            lines.append("  phase blame (critical | elapsed | share | overlap):")
            for b in sorted(
                self.blame.values(), key=lambda b: -b.critical_s
            ):
                ov = self.phase_overlap.get(b.phase)
                cov = self.phase_covered_s.get(b.phase, 0.0)
                lines.append(
                    f"    {b.phase:<10} {b.critical_s * 1e3:9.4f} ms | "
                    f"{b.elapsed_s * 1e3:9.4f} ms | {100 * b.critical_share:5.1f}%"
                    + (f" | {100 * ov:5.1f}%" if ov is not None else "")
                    + (f" | hidden {cov * 1e3:.4f} ms" if cov > 0 else "")
                )
        lines.append("  per-rank decomposition (compute/comm/wait/idle ms):")
        for r in sorted(self.ranks):
            b = self.ranks[r]
            lines.append(
                f"    rank {r:>3}  {b.compute_s * 1e3:8.4f} "
                f"{b.comm_s * 1e3:8.4f} {b.wait_s * 1e3:8.4f} "
                f"{b.tail_idle_s * 1e3:8.4f}"
            )
        if self.stragglers:
            lines.append("  stragglers (chain residency):")
            for s in self.stragglers:
                lines.append(
                    f"    rank {s.rank:>3}  {s.residency_s * 1e3:8.4f} ms "
                    f"({100 * s.share:.1f}% of makespan)"
                )
        if p.segments:
            tail = p.segments[-max_segments:]
            lines.append(
                f"  binding chain (last {len(tail)} of {len(p.segments)}):"
            )
            for s in tail:
                arrow = (
                    f"{s.rank}->{s.peer}" if s.kind == SEG_RECV else f"{s.rank}"
                )
                lines.append(
                    f"    [{s.t0 * 1e3:10.6f}, {s.t1 * 1e3:10.6f}] ms "
                    f"{s.kind:<7} r{arrow:<7} {s.phase}"
                    f"{'  !injected' if s.injected else ''}"
                )
        return "\n".join(lines)


def critpath_report(result: "SpmdResult") -> CritPathReport:
    """Run the full analysis on one executed run."""
    from .metrics import overlap_by_phase

    path = critical_path(result)
    covered: dict[str, float] = {}
    for t in result.live_traces:
        for phase, st in t.phases.items():
            if st.comm_covered_time > 0:
                covered[phase] = covered.get(phase, 0.0) + st.comm_covered_time
    return CritPathReport(
        path=path,
        blame=phase_blame(result, path),
        ranks=rank_decomposition(result),
        stragglers=stragglers(result, path),
        nprocs=result.transport.nprocs,
        phase_overlap=overlap_by_phase(result),
        phase_covered_s=covered,
    )
