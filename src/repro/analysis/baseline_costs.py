"""Closed-form costs of the classical baselines (1D, SUMMA, 2.5D, CARMA).

Completes the analytic engine beyond the paper's three measured
libraries so the whole algorithm landscape can be compared on one
machine model — used by the crossover-map bench (which algorithm wins
where in (m, n, k, P) space) and by tests that pin the textbook
complexity results the paper's Section II recounts:

* 1D algorithms win only when one dimension dominates,
* SUMMA's O(N²/√P) volume loses to the 3D family's O(N²/P^(2/3)) once
  P is large,
* 2.5D interpolates between them with its replication factor c,
* CARMA matches the 3D family asymptotically on powers of two.
"""

from __future__ import annotations

import math

from ..grid.factorize import near_square_pair
from ..machine.model import MachineModel
from .costs import (
    ITEM,
    CostReport,
    PhaseCost,
    _bcast_vdg,
    _bruck_allgather,
    _pairwise,
    _reduce_scatter,
)


def algo1d_cost(
    m: int, n: int, k: int, nprocs: int, machine: MachineModel, variant: str = "auto"
) -> CostReport:
    """1D m/n/k-partition algorithms (replicate-one-operand or reduce-C)."""
    if variant == "auto":
        variant = "m" if m >= max(n, k) else ("n" if n >= k else "k")
    rep = CostReport(
        algo=f"1d-{variant}", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"1d-{variant}({nprocs})", machine=machine,
    )
    ranks = list(range(nprocs))
    if variant == "m":
        rep.phase("replicate").__iadd__(
            _bruck_allgather(machine, ranks, k * n * ITEM)
        )
        rep.phase("compute").time += machine.gemm_time(
            math.ceil(m / nprocs), n, k,
            stage_bytes=int((m / nprocs * k + k * n + m / nprocs * n) * ITEM),
        )
        rep.mem_words = (m / nprocs) * k + k * n + (m / nprocs) * n
    elif variant == "n":
        rep.phase("replicate").__iadd__(
            _bruck_allgather(machine, ranks, m * k * ITEM)
        )
        rep.phase("compute").time += machine.gemm_time(
            m, math.ceil(n / nprocs), k,
            stage_bytes=int((m * k + k * n / nprocs + m * n / nprocs) * ITEM),
        )
        rep.mem_words = m * k + k * (n / nprocs) + m * (n / nprocs)
    elif variant == "k":
        rep.phase("compute").time += machine.gemm_time(
            m, n, math.ceil(k / nprocs),
            stage_bytes=int((m * k / nprocs + k / nprocs * n + m * n) * ITEM),
        )
        rep.phase("reduce").__iadd__(_reduce_scatter(machine, ranks, m * n * ITEM))
        rep.mem_words = m * (k / nprocs) + (k / nprocs) * n + m * n
    else:
        raise ValueError(f"unknown 1D variant {variant!r}")
    rep.flops_per_rank = 2.0 * m * n * k / nprocs
    return rep


def summa_cost(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    grid: tuple[int, int] | None = None,
    panel: int = 256,
) -> CostReport:
    """Stationary-C SUMMA on a ``pr x pc`` grid with panel width b."""
    pr, pc = grid if grid is not None else near_square_pair(nprocs)
    rep = CostReport(
        algo="summa", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"{pr}x{pc}", machine=machine,
    )
    mb, nb = m / pr, n / pc
    iters = max(1, math.ceil(k / panel))
    b = k / iters
    ph = rep.phase("replicate")
    for _ in range(iters):
        if pc > 1:  # A panel along the row (pc ranks, stride pr)
            ph.__iadd__(_bcast_vdg(machine, [i * pr for i in range(pc)], mb * b * ITEM))
        if pr > 1:  # B panel along the column (pr ranks, stride 1)
            ph.__iadd__(_bcast_vdg(machine, list(range(pr)), b * nb * ITEM))
    rep.phase("compute").time += machine.gemm_time(
        int(mb), int(nb), max(1, int(k)),
        stage_bytes=int((mb * k + k * nb + mb * nb) * ITEM),
    )
    rep.flops_per_rank = 2.0 * mb * nb * k
    # stationary blocks + one in-flight panel pair
    rep.mem_words = mb * k / pc + k * nb / pr + mb * nb + mb * b + b * nb
    return rep


def algo25d_cost(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    sq: int | None = None,
    c: int | None = None,
) -> CostReport:
    """The 2.5D algorithm with replication factor c (c=1 is Cannon)."""
    from ..baselines.algo25d import grid_25d

    if sq is None or c is None:
        sq, c = grid_25d(nprocs, c)
    rep = CostReport(
        algo="2.5d", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"{sq}x{sq}x{c}", machine=machine,
    )
    mb, nb, kb = m / sq, n / sq, k / sq
    layer = sq * sq
    ph = rep.phase("replicate")
    if c > 1:
        fiber = [i * layer for i in range(c)]
        ph.__iadd__(_bcast_vdg(machine, fiber, mb * kb * ITEM))
        ph.__iadd__(_bcast_vdg(machine, fiber, kb * nb * ITEM))
    steps = math.ceil(sq / c)
    gemm_step = machine.gemm_time(
        int(mb), int(nb), max(1, int(kb)),
        stage_bytes=int((mb * kb + kb * nb + mb * nb) * ITEM),
    )
    if sq > 1:
        shift_pair = machine.msg_time(mb * kb * ITEM, 0, sq) + machine.msg_time(
            kb * nb * ITEM, 0, 1
        )
        ph.time += shift_pair  # alignment
        ph.words += mb * kb + kb * nb
        ph.msgs += 2
        ph.time += max(0, steps - 1) * shift_pair  # per-step shifts, no overlap
        ph.words += max(0, steps - 1) * (mb * kb + kb * nb)
        ph.msgs += 2 * max(0, steps - 1)
    rep.phase("compute").time += steps * gemm_step
    rep.flops_per_rank = 2.0 * mb * nb * kb * steps
    if c > 1:
        fiber = [i * layer for i in range(c)]
        rep.phase("reduce").__iadd__(_reduce_scatter(machine, fiber, mb * nb * ITEM))
    rep.mem_words = 2.0 * (mb * kb + kb * nb) + mb * nb
    return rep


def carma_cost(
    m: int, n: int, k: int, nprocs: int, machine: MachineModel
) -> CostReport:
    """CARMA's recursive bisection on the largest 2^t <= P ranks.

    Costs follow the recursion: each m-split exchanges the current B
    holdings pairwise, each n-split the A holdings, each k-split half
    the partial C on the way up; the leaf GEMM is the full local
    subproblem.  Fractional extents keep sibling subtrees congruent, as
    in the executed implementation.
    """
    from ..baselines.carma import active_count

    act = active_count(nprocs)
    rep = CostReport(
        algo="carma", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"2^{int(math.log2(act))}", machine=machine,
    )
    fm, fn, fk = float(m), float(n), float(k)
    # Track per-rank holdings (words) of A and B down the recursion.
    a_hold = fm * fk / act
    b_hold = fk * fn / act
    size = act
    ph_rep = rep.phase("replicate")
    ph_red = rep.phase("reduce")
    c_words = 0.0
    k_splits: list[float] = []
    while size > 1:
        if fm >= fn and fm >= fk:
            ph_rep.__iadd__(PhaseCost(
                time=machine.msg_time(b_hold * ITEM, 0, size // 2),
                words=b_hold, msgs=1,
            ))
            b_hold *= 2.0
            fm /= 2.0
        elif fn >= fk:
            ph_rep.__iadd__(PhaseCost(
                time=machine.msg_time(a_hold * ITEM, 0, size // 2),
                words=a_hold, msgs=1,
            ))
            a_hold *= 2.0
            fn /= 2.0
        else:
            a_hold /= 2.0
            b_hold /= 2.0
            k_splits.append(size)
            fk /= 2.0
        size //= 2
    # Leaf compute: the full local subproblem.
    rep.phase("compute").time += machine.gemm_time(
        max(1, int(fm)), max(1, int(fn)), max(1, int(fk)),
        stage_bytes=int((fm * fk + fk * fn + fm * fn) * ITEM),
    )
    rep.flops_per_rank = 2.0 * fm * fn * fk
    # Unwind: each k-split trades half the current C piece pairwise.
    c_words = fm * fn
    for size in reversed(k_splits):
        ph_red.__iadd__(PhaseCost(
            time=machine.msg_time(c_words / 2.0 * ITEM, 0, size // 2),
            words=c_words / 2.0, msgs=1,
        ))
        c_words /= 2.0
    rep.mem_words = a_hold + b_hold + fm * fn
    return rep


BASELINE_COSTS = {
    "1d": algo1d_cost,
    "summa": summa_cost,
    "2.5d": algo25d_cost,
    "carma": carma_cost,
}
