"""Analytic cost engine and executed-vs-theory verification."""

from .breakdown import BUCKETS, Breakdown, breakdown_from_report, breakdown_from_traces
from .costs import (
    ITEM,
    CostReport,
    PhaseCost,
    ca3dmm_cost,
    cosma_cost,
    ctf_cost,
    redist_cost,
)
from .timeline import (
    critical_rank,
    event_totals,
    phase_spans,
    render_timeline,
)
from .verify import (
    ExecutedMetrics,
    PaperMetrics,
    eq9_lower_bound,
    executed_metrics,
    theoretical_metrics,
)

__all__ = [
    "ITEM",
    "PhaseCost",
    "CostReport",
    "ca3dmm_cost",
    "cosma_cost",
    "ctf_cost",
    "redist_cost",
    "Breakdown",
    "BUCKETS",
    "breakdown_from_traces",
    "breakdown_from_report",
    "PaperMetrics",
    "ExecutedMetrics",
    "theoretical_metrics",
    "executed_metrics",
    "eq9_lower_bound",
    "render_timeline",
    "phase_spans",
    "critical_rank",
    "event_totals",
]
