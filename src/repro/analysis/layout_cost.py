"""Exact layout-conversion volumes between concrete distributions.

``redist_cost`` prices a *generic* conversion by total matrix size; this
module computes the **exact** per-rank send volume between two concrete
:class:`~repro.layout.distributions.Distribution` objects by rectangle
intersection — the same arithmetic the executed redistribution performs,
without moving data.  Uses:

* pinning executed redistribution traffic in tests (volume must match
  to the byte, minus pickle envelopes),
* quantifying how much of a conversion is "already in place" (the
  ``overlap`` argument of :func:`repro.analysis.costs.redist_cost`),
* choosing between candidate output layouts for a driver application.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layout.distributions import Distribution


@dataclass(frozen=True)
class RedistVolume:
    """Exact conversion traffic between two layouts (in words)."""

    per_rank_sent: tuple[int, ...]  #: words each rank ships to other ranks
    total_moved: int  #: words that change owner
    total_area: int  #: matrix size
    max_sent: int

    @property
    def moved_fraction(self) -> float:
        """Share of the matrix that changes owner (0 = layouts agree)."""
        return self.total_moved / self.total_area if self.total_area else 0.0

    @property
    def overlap(self) -> float:
        """The in-place share, directly usable as redist_cost(overlap=...)."""
        return 1.0 - self.moved_fraction


def exact_redist_volume(
    src: Distribution, dst: Distribution, transpose: bool = False
) -> RedistVolume:
    """Words each rank must send to convert ``src`` into ``dst``.

    With ``transpose=True``, ``dst`` describes the transposed matrix
    (same convention as :func:`repro.layout.redistribute.redistribute`).
    """
    if src.nranks != dst.nranks:
        raise ValueError("distributions span different rank counts")
    m, n = src.shape
    dm, dn = dst.shape
    if (transpose and (dm, dn) != (n, m)) or (not transpose and (dm, dn) != (m, n)):
        raise ValueError(
            f"shape mismatch: src {src.shape}, dst {dst.shape}, transpose={transpose}"
        )
    sent = [0] * src.nranks
    moved = 0
    for dst_rank in range(dst.nranks):
        for want in dst.owned_rects(dst_rank):
            want_src = want.transposed() if transpose else want
            for src_rank in range(src.nranks):
                if src_rank == dst_rank:
                    continue
                for owned in src.owned_rects(src_rank):
                    piece = owned.intersect(want_src)
                    if not piece.is_empty():
                        sent[src_rank] += piece.area
                        moved += piece.area
    return RedistVolume(
        per_rank_sent=tuple(sent),
        total_moved=moved,
        total_area=m * n,
        max_sent=max(sent) if sent else 0,
    )
