"""Timeline rendering of executed runs (simulated-time Gantt lanes).

Run with ``run_spmd(..., record_events=True)`` and render::

    result = run_spmd(16, rank_main, record_events=True)
    print(render_timeline(result))

Each rank becomes one text lane over the simulated makespan; every
column shows what the rank was doing in that time slice (``#`` compute,
``>`` send, ``<`` receive, ``.`` waiting, `` `` idle/untracked).  This
makes the paper's scheduling story *visible*: the Cannon stage's
compute/transfer overlap, the reduce-scatter tail, stragglers from
ragged blocks.

``render_timeline(..., highlight_critical=True)`` overlays the binding
chain from :mod:`repro.obs.critpath`: cells the critical path runs
through switch to upper-case glyphs (``C`` compute, ``S`` send, ``R``
receive/flight, ``W`` wait), so the one dependency chain that bounds the
makespan stands out from the overlappable background work.

Also provided: :func:`phase_spans` (per-phase simulated intervals) and
:func:`critical_rank` — small utilities the tests and notebooks use.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..mpi.runtime import SpmdResult

#: lane glyph per event kind; later entries win on overlap within a cell.
GLYPHS = {"wait": ".", "recv": "<", "send": ">", "compute": "#"}
#: glyph for intervals caused/extended by fault injection (repro.mpi.faults).
INJECTED_GLYPH = "!"
#: upper-case glyph per chain-segment kind (critical-path overlay).
CRITICAL_GLYPHS = {"wait": "W", "recv": "R", "send": "S", "compute": "C"}
_PRIORITY = {"wait": 0, "recv": 1, "send": 2, "compute": 3, "injected": 4}


def _paint(lane: list[str], kind: str, c0: int, c1: int, glyph: str) -> None:
    for c in range(c0, c1 + 1):
        old = lane[c]
        if old == " " or _PRIORITY.get(kind, 0) >= _PRIORITY.get(
            _kind_of(old), -1
        ):
            lane[c] = glyph


def _cells(t0: float, t1: float, scale: float, width: int) -> tuple[int, int]:
    c0 = min(width - 1, int(t0 * scale))
    # Half-open mapping: the cell covering [c/scale, (c+1)/scale) is
    # painted only if the event overlaps it, so an event ending
    # exactly on a column boundary does not bleed into the next cell.
    c1 = min(width - 1, max(c0, math.ceil(t1 * scale) - 1))
    return c0, c1


def render_timeline(
    result: SpmdResult,
    width: int = 80,
    ranks: list[int] | None = None,
    highlight_critical: bool = False,
) -> str:
    """Render per-rank lanes over the simulated makespan.

    ``width`` columns cover ``[0, makespan]``; each cell shows the
    highest-priority event kind overlapping that slice.  With
    ``highlight_critical=True`` the binding chain is painted on top in
    upper-case glyphs (a ``recv`` chain segment — a message flight —
    highlights the *sender's* lane, where the chain continues).  Runs
    executed without ``record_events=True`` (or that never touched the
    simulated clock) render an explanatory placeholder instead of
    raising.
    """
    events = result.transport.events
    if not events:
        return (
            "(no timeline: no events recorded — run with "
            "run_spmd(..., record_events=True))"
        )
    makespan = max(result.time, max(e.t1 for e in events))
    if makespan <= 0:
        return (
            f"(no timeline: {len(events)} event(s) recorded but the "
            "simulated clock never advanced)"
        )
    lanes = ranks if ranks is not None else list(range(result.transport.nprocs))
    grid = {r: [" "] * width for r in lanes}
    scale = width / makespan
    any_injected = False
    for e in events:
        if e.rank not in grid:
            continue
        c0, c1 = _cells(e.t0, e.t1, scale, width)
        if e.injected:
            any_injected = True
            _paint(grid[e.rank], "injected", c0, c1, INJECTED_GLYPH)
        else:
            _paint(grid[e.rank], e.kind, c0, c1, GLYPHS.get(e.kind, "?"))
    legend = "legend: # compute   > send   < recv   . wait"
    if any_injected:
        legend += f"   {INJECTED_GLYPH} injected fault"
    if highlight_critical:
        from ..obs.critpath import critical_path

        for seg in critical_path(result).segments:
            if seg.rank not in grid or seg.duration <= 0:
                continue
            c0, c1 = _cells(seg.t0, seg.t1, scale, width)
            glyph = CRITICAL_GLYPHS.get(seg.kind, "?")
            lane = grid[seg.rank]
            for c in range(c0, c1 + 1):
                lane[c] = glyph
        legend += "   (upper-case: critical path)"
    label_w = len(str(max(lanes))) + 6
    header = (
        f"{'':{label_w}}0{'':{width - 2}}{makespan * 1e6:.1f}us\n"
        f"{'':{label_w}}{'-' * width}"
    )
    body = "\n".join(
        f"rank {r:>{label_w - 6}} |{''.join(grid[r])}" for r in lanes
    )
    return f"{header}\n{body}\n{legend}"


def _kind_of(glyph: str) -> str:
    if glyph == INJECTED_GLYPH:
        return "injected"
    for kind, g in GLYPHS.items():
        if g == glyph:
            return kind
    return "wait"


def phase_spans(result: SpmdResult) -> dict[str, tuple[float, float]]:
    """Simulated [start, end] interval of each phase across all ranks."""
    spans: dict[str, tuple[float, float]] = {}
    for e in result.transport.events:
        lo, hi = spans.get(e.phase, (float("inf"), 0.0))
        spans[e.phase] = (min(lo, e.t0), max(hi, e.t1))
    return spans


def critical_rank(result: SpmdResult) -> int:
    """The rank whose finish bounds the makespan (critical-path endpoint).

    Backed by :func:`repro.obs.critpath.critical_path`: the returned rank
    is the endpoint of the binding dependency chain.  For runs executed
    without ``record_events=True`` there is no chain to walk, so this
    falls back to the rank with the largest simulated clock — the same
    value the chain would end on.
    """
    if result.transport.events:
        from ..obs.critpath import critical_path

        return critical_path(result).final_rank
    return max(result.traces, key=lambda t: t.time).rank


def event_totals(result: SpmdResult) -> dict[int, dict[str, float]]:
    """Per-rank seconds spent in each event kind."""
    out: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for e in result.transport.events:
        out[e.rank][e.kind] += e.duration
    return {r: dict(v) for r, v in out.items()}
