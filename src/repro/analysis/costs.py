"""Closed-form per-phase cost models of the executed algorithms.

The executed engine (threads + real data) validates correctness and
measures traffic at small P; this module prices the *same schedules* at
the paper's scale (hundreds of matrix-dimension-thousands, thousands of
ranks) where executing real data is impossible in Python.  Planning is
shared — grid selection, group shapes, and per-rank block sizes come
from the identical code paths — so the analytic engine only replaces
data movement with the α-β formulas of :mod:`repro.machine.collcost`,
which the executed collectives are tested to match.

Node-awareness: every collective is priced on the *world ranks* of the
representative (rank-0) group, so intra-node vs inter-node links and the
pure-MPI/hybrid distinction of Fig. 4 fall out of the rank-to-node
mapping rather than ad-hoc factors.

All volumes are in **words** (matrix elements); times in seconds.
``ITEM`` converts to bytes (double precision, as in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..grid.factorize import prime_factors
from ..grid.optimizer import GridSpec, ca3dmm_grid, cosma_grid, ctf_grid
from ..machine.model import MachineModel

ITEM = 8  #: bytes per word (float64)


@dataclass
class PhaseCost:
    """Cost of one phase on the critical rank."""

    time: float = 0.0
    words: float = 0.0  #: words sent by the rank
    msgs: int = 0  #: communication rounds (the paper's latency metric)

    def __iadd__(self, other: "PhaseCost") -> "PhaseCost":
        self.time += other.time
        self.words += other.words
        self.msgs += other.msgs
        return self


@dataclass
class CostReport:
    """Per-phase predicted costs of one algorithm on one problem."""

    algo: str
    m: int
    n: int
    k: int
    nprocs: int
    grid: str
    machine: MachineModel
    phases: dict[str, PhaseCost] = field(default_factory=dict)
    mem_words: float = 0.0
    flops_per_rank: float = 0.0

    def phase(self, name: str) -> PhaseCost:
        if name not in self.phases:
            self.phases[name] = PhaseCost()
        return self.phases[name]

    @property
    def t_total(self) -> float:
        return sum(p.time for p in self.phases.values())

    def t_of(self, *names: str) -> float:
        return sum(self.phases[nm].time for nm in names if nm in self.phases)

    @property
    def q_words(self) -> float:
        """Max words sent by a rank (the paper's communication size Q)."""
        return sum(p.words for p in self.phases.values())

    @property
    def l_msgs(self) -> int:
        """Communication rounds (the paper's latency L)."""
        return sum(p.msgs for p in self.phases.values())

    @property
    def mem_mb(self) -> float:
        return self.mem_words * ITEM / 2 ** 20

    def pct_peak(self) -> float:
        """Achieved percentage of *nominal* peak, as plotted in Fig. 3/4."""
        total_flops = 2.0 * self.m * self.n * self.k
        peak_rate = self.nprocs * self.machine.peak_rate
        if self.t_total <= 0:
            return 0.0
        return (total_flops / self.t_total) / peak_rate * 100.0


# ------------------------------------------------------- pattern pricing -- #
def _pairwise(machine: MachineModel, ranks: list[int], block_bytes: float) -> PhaseCost:
    """Pairwise exchange (reduce-scatter / alltoall): g-1 rounds."""
    g = len(ranks)
    if g <= 1:
        return PhaseCost()
    me = ranks[0]
    t = 0.0
    for i in range(1, g):
        t += machine.msg_time(block_bytes, me, ranks[i % g])
    return PhaseCost(time=t, words=block_bytes * (g - 1) / ITEM, msgs=g - 1)


def _bruck_allgather(machine: MachineModel, ranks: list[int], total_bytes: float) -> PhaseCost:
    """Bruck allgather of ``total_bytes`` distributed over the group."""
    g = len(ranks)
    if g <= 1:
        return PhaseCost()
    me_idx = 0
    block = total_bytes / g
    t, words, h, msgs = 0.0, 0.0, 1, 0
    while h < g:
        cnt = min(h, g - h)
        dest = ranks[(me_idx - h) % g]
        t += machine.msg_time(cnt * block, ranks[me_idx], dest)
        words += cnt * block / ITEM
        msgs += 1
        h += cnt
    return PhaseCost(time=t, words=words, msgs=msgs)


def _reduce_scatter(
    machine: MachineModel, ranks: list[int], total_bytes: float, degraded: bool = True
) -> PhaseCost:
    """Pairwise reduce-scatter with two MPI-library degradations.

    ``degraded=False`` models a library that ships its own reduction
    trees (COSMA) and therefore dodges both: the MVAPICH2 threshold
    behaviour (GPU study, Section IV-C) and the group-factorability
    penalty — butterfly reductions need well-factorable group sizes, so
    groups with a large prime factor (the paper's "for collective
    operations, pk = 341 is unfavorable", Table II) pay a bandwidth
    surcharge.
    """
    g = len(ranks)
    if g <= 1:
        return PhaseCost()
    piece = total_bytes / g
    cost = _pairwise(machine, ranks, piece)
    if degraded:
        if piece > machine.rs_degrade_threshold:
            cost.time += (
                (machine.rs_degrade_factor - 1.0) * machine.beta * piece * (g - 1)
            )
        lpf = max(prime_factors(g))
        if lpf > 4:
            surcharge = min(0.05 * (lpf - 2), 2.0)
            cost.time += surcharge * machine.beta * piece * (g - 1)
    return cost


def _bcast_vdg(machine: MachineModel, ranks: list[int], total_bytes: float) -> PhaseCost:
    """van de Geijn bcast: scatter (root-critical) + Bruck allgather."""
    g = len(ranks)
    if g <= 1:
        return PhaseCost()
    piece = total_bytes / g
    t, words = 0.0, 0.0
    for r in ranks[1:]:
        t += machine.msg_time(piece, ranks[0], r)
        words += piece / ITEM
    ag = _bruck_allgather(machine, ranks, total_bytes)
    return PhaseCost(time=t + ag.time, words=words + ag.words, msgs=(g - 1) + ag.msgs)


def _p2p(machine: MachineModel, src: int, dst: int, nbytes: float) -> PhaseCost:
    return PhaseCost(time=machine.msg_time(nbytes, src, dst), words=nbytes / ITEM, msgs=1)


# ------------------------------------------------------ layout conversion -- #
def redist_cost(
    machine: MachineModel,
    total_words: float,
    nprocs: int,
    overlap: float = 0.0,
    congestion: float = 4.0,
    pack_bw: float = 4e9,
) -> PhaseCost:
    """Cost of converting ``total_words`` between unrelated layouts.

    Every rank sends ``(1-overlap)`` of its ``total/P`` share through
    the pairwise alltoall the executed redistribution uses.  The paper's
    conversion subroutine is deliberately unoptimized ("simply packs and
    unpacks matrix blocks and exchanges data using
    MPI_Neighbor_alltoallv"), so two real-world penalties are applied:
    ``pack_bw`` charges two memory passes (pack + unpack) over the share
    at a per-rank memory bandwidth, and ``congestion`` derates the
    alltoall bandwidth for the many small per-pair pieces and the global
    traffic pattern.  These reproduce the paper's Fig. 3 finding that an
    unfavourable 1D layout can dominate the runtime for tall-and-skinny
    problems.
    """
    if nprocs <= 1 or overlap >= 1.0:
        return PhaseCost()
    share = total_words / nprocs * (1.0 - overlap) * ITEM
    cost = _pairwise(machine, list(range(nprocs)), share / max(1, nprocs - 1))
    cost.time *= congestion
    cost.time += 2.0 * share / pack_bw
    return cost


# --------------------------------------------------------------- CA3DMM -- #
def ca3dmm_cost(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    grid: GridSpec | None = None,
    custom_layout: bool = False,
    inner: str = "cannon",
    summa_panel_frac: float = 1.0,
) -> CostReport:
    """Predicted cost of CA3DMM (or CA3DMM-S with ``inner='summa'``)."""
    g = grid if grid is not None else (
        ca3dmm_grid(m, n, k, nprocs) if inner == "cannon" else cosma_grid(m, n, k, nprocs)
    )
    pm, pn, pk = g.pm, g.pn, g.pk
    rep = CostReport(
        algo="ca3dmm" if inner == "cannon" else "ca3dmm-s",
        m=m, n=n, k=k, nprocs=nprocs,
        grid=f"{pm}x{pn}x{pk}", machine=machine,
    )
    mb, nb, kg = m / pm, n / pn, k / pk

    if custom_layout:
        rep.phase("redist").__iadd__(
            redist_cost(machine, float(m * k + k * n + m * n), nprocs)
        )

    if inner == "cannon":
        s, c = g.s, g.c
        kb = kg / s  # Cannon block k-extent
        blk_a = mb * kb * ITEM
        blk_b = kb * nb * ITEM

        # Step 5: allgather replication over the c-rank replica group.
        if c > 1:
            if g.replicates_a:
                stride = pm * s  # replicas sit one Cannon group apart
                repl_bytes = blk_a
            else:
                stride = s
                repl_bytes = blk_b
            ranks = [i * stride for i in range(c)]
            rep.phase("replicate").__iadd__(_bruck_allgather(machine, ranks, repl_bytes))

        # Step 6: skew + s-1 overlapped shift steps.
        gemm_step = machine.gemm_time(
            int(mb), int(nb), max(1, int(kb)), stage_bytes=int((mb * kb + kb * nb + mb * nb) * ITEM)
        )
        ph_rep = rep.phase("replicate")  # shifts count as "replicate A,B" (Fig. 5)
        ph_cmp = rep.phase("compute")
        if s > 1:
            # Initial skew: A travels u columns left (world-rank stride
            # s per column in the column-major group), B travels v rows
            # up (stride 1).
            skew = _p2p(machine, 0, s, blk_a)
            skew.__iadd__(_p2p(machine, 0, 1, blk_b))
            ph_rep.__iadd__(skew)
            # Dual-buffer overlap: each of the s-1 shift steps costs the
            # larger of the transfer pair and the local GEMM step; only
            # the non-hidden communication remainder lands in "replicate".
            # With the full async engine the A and B shifts progress as
            # independent streams (step = max(gemm, max(flight_a,
            # flight_b))); "none"/"partial" price the single-NIC
            # serialization (step = max(gemm, flight_a + flight_b)) —
            # the executed arithmetic tests/core/test_cannon.py pins.
            msg_a = machine.msg_time(blk_a, 0, s)
            msg_b = machine.msg_time(blk_b, 0, 1)
            if machine.overlap == "full":
                shift_pair = max(msg_a, msg_b)
            else:
                shift_pair = msg_a + msg_b
            ph_rep.time += (s - 1) * max(0.0, shift_pair - gemm_step)
            ph_rep.words += (s - 1) * (blk_a + blk_b) / ITEM
            ph_rep.msgs += s - 1
            ph_cmp.time += s * gemm_step
        else:
            ph_cmp.time += gemm_step
        rep.flops_per_rank = 2.0 * mb * nb * kg

        # Step 7: reduce-scatter over the pk-rank k-reduction group.
        if pk > 1:
            ranks = [i * pm * pn for i in range(pk)]
            rep.phase("reduce").__iadd__(
                _reduce_scatter(machine, ranks, mb * nb * ITEM)
            )

        repl_factor_a = c if g.replicates_a else 1
        repl_factor_b = 1 if g.replicates_a else c
        rep.mem_words = (
            2.0 * (repl_factor_a * m * k + repl_factor_b * k * n) / g.used
            + pk * m * n / g.used
        )
    else:  # SUMMA inner kernel (CA3DMM-S)
        panel = max(1.0, kg * summa_panel_frac)
        iters = math.ceil(kg / panel)
        ph_rep = rep.phase("replicate")
        ph_cmp = rep.phase("compute")
        for _ in range(iters):
            if pn > 1:
                ph_rep.__iadd__(
                    _bcast_vdg(machine, [i * pm for i in range(pn)], mb * panel * ITEM)
                )
            if pm > 1:
                ph_rep.__iadd__(
                    _bcast_vdg(machine, list(range(pm)), panel * nb * ITEM)
                )
        gemm = machine.gemm_time(int(mb), int(nb), max(1, int(kg)))
        if machine.overlap_enabled and iters > 1:
            # Pipelined multicast: panel p+1's broadcasts ride the async
            # engine under panel p's GEMM.  Panel 0 stays an exposed
            # prologue, so at most (iters-1)/iters of the broadcast time
            # can hide, and "partial" halves the cover (one shared NIC
            # stream serializes the A- and B-panel broadcasts).
            frac = (iters - 1) / iters
            if machine.overlap == "partial":
                frac *= 0.5
            ph_rep.time -= frac * min(ph_rep.time, gemm)
        ph_cmp.time += gemm
        rep.flops_per_rank = 2.0 * mb * nb * kg
        if pk > 1:
            ranks = [i * pm * pn for i in range(pk)]
            rep.phase("reduce").__iadd__(
                _reduce_scatter(machine, ranks, mb * nb * ITEM)
            )
        rep.mem_words = 2.0 * (m * k + k * n) / g.used + pk * m * n / g.used

    if custom_layout:
        rep.phase("redist").__iadd__(PhaseCost())  # C conversion folded above
    return rep


# ---------------------------------------------------------------- COSMA -- #
def cosma_cost(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    grid: GridSpec | None = None,
    custom_layout: bool = False,
    overlap_factor: float | None = None,
) -> CostReport:
    """Predicted cost of the COSMA-like schedule (Section III-C).

    ``overlap_factor`` is the fraction of replication time COSMA hides
    behind computation with its pipelined one-sided communication (the
    paper credits COSMA with overlap; CA3DMM gets its overlap from the
    Cannon dual buffer instead).  When ``None`` it is derived from the
    machine's async-engine capability: the historical 0.35 under
    ``overlap="none"`` (COSMA's own progress thread still earns some
    cover on hardware the runtime does not model), 0.9 under ``"full"``
    and 0.6 under ``"partial"`` — the COSMA-style overlap bound the
    bench crossover maps price against.
    """
    if overlap_factor is None:
        overlap_factor = {"none": 0.35, "partial": 0.6, "full": 0.9}[
            machine.overlap
        ]
    g = grid if grid is not None else cosma_grid(m, n, k, nprocs)
    pm, pn, pk = g.pm, g.pn, g.pk
    rep = CostReport(
        algo="cosma", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"{pm}x{pn}x{pk}", machine=machine,
    )
    mb, nb, kg = m / pm, n / pn, k / pk

    if custom_layout:
        rep.phase("redist").__iadd__(
            redist_cost(machine, float(m * k + k * n + m * n), nprocs)
        )

    gemm = machine.gemm_time(
        int(mb), int(nb), max(1, int(kg)),
        stage_bytes=int((mb * kg + kg * nb + mb * nb) * ITEM),
    )
    ph_rep = rep.phase("replicate")
    if pn > 1:  # allgather A over the n-groups (stride pm)
        ph_rep.__iadd__(
            _bruck_allgather(machine, [i * pm for i in range(pn)], mb * kg * ITEM)
        )
    if pm > 1:  # allgather B over the m-groups (stride 1)
        ph_rep.__iadd__(_bruck_allgather(machine, list(range(pm)), kg * nb * ITEM))
    # Pipelined overlap hides part of the replication behind the GEMM.
    hidden = min(ph_rep.time * overlap_factor, gemm * 0.9)
    ph_rep.time -= hidden

    rep.phase("compute").time += gemm
    rep.flops_per_rank = 2.0 * mb * nb * kg
    if pk > 1:
        ranks = [i * pm * pn for i in range(pk)]
        # COSMA's own binary-tree collectives dodge the MVAPICH2
        # reduce-scatter threshold the paper observed (Section IV-C).
        rep.phase("reduce").__iadd__(
            _reduce_scatter(machine, ranks, mb * nb * ITEM, degraded=False)
        )

    # Fully materialized replicated operands, the local C block, and the
    # initial 1/P shares the allgathers started from.  (Unlike CA3DMM's
    # dual-buffered Cannon blocks, COSMA's buffers hold each operand
    # once — the allgather output *is* the compute operand.)
    rep.mem_words = (
        mb * kg + kg * nb + mb * nb + (m * k + k * n) / max(1, g.used)
    )
    return rep


# ------------------------------------------------------------- CTF / 2.5D -- #
def ctf_cost(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    grid: GridSpec | None = None,
    framework_overhead: bool = True,
    gemm_efficiency: float = 0.3,
) -> CostReport:
    """Predicted cost of the CTF-like 2.5D schedule.

    ``framework_overhead`` adds the tensor-framework costs the paper's
    CTF measurements include: internal cyclic-layout packing/unpacking
    of every operand element (memory-bandwidth bound) and no
    communication/computation overlap.  ``gemm_efficiency`` derates the
    local GEMM rate — the paper states CTF "is not fine tuned for matrix
    multiplication, so its parallel efficiency is less satisfying", and
    its Fig. 3 CTF curves sit a factor ~3-5 below the tuned libraries
    across all P, which a pure communication model cannot produce.
    """
    g = grid if grid is not None else ctf_grid(m, n, k, nprocs)
    sq, c = g.pm, min(g.pk, g.pm)
    rep = CostReport(
        algo="ctf", m=m, n=n, k=k, nprocs=nprocs,
        grid=f"{sq}x{sq}x{c}", machine=machine,
    )
    mb, nb = m / sq, n / sq
    kb = k / sq  # Cannon-block k extent on the sq x sq face
    layer = sq * sq

    ph_rep = rep.phase("replicate")
    if c > 1:  # broadcast A and B down the layer fibers
        fiber = [i * layer for i in range(c)]
        ph_rep.__iadd__(_bcast_vdg(machine, fiber, mb * kb * ITEM))
        ph_rep.__iadd__(_bcast_vdg(machine, fiber, kb * nb * ITEM))
    steps = math.ceil(sq / c)
    if sq > 1:
        # Alignment + per-step shifts (no overlap in CTF mode).
        ph_rep.time += machine.msg_time(mb * kb * ITEM, 0, sq) + machine.msg_time(
            kb * nb * ITEM, 0, 1
        )
        ph_rep.words += mb * kb + kb * nb
        ph_rep.msgs += 2
        for _ in range(max(0, steps - 1)):
            ph_rep.time += machine.msg_time(mb * kb * ITEM, 0, sq) + machine.msg_time(
                kb * nb * ITEM, 0, 1
            )
            ph_rep.words += mb * kb + kb * nb
            ph_rep.msgs += 2
    ph_cmp = rep.phase("compute")
    eff = gemm_efficiency if framework_overhead else 1.0
    ph_cmp.time += steps * machine.gemm_time(
        int(mb), int(nb), max(1, int(kb)),
        stage_bytes=int((mb * kb + kb * nb + mb * nb) * ITEM),
    ) / eff
    rep.flops_per_rank = 2.0 * mb * nb * kb * steps
    if c > 1:
        fiber = [i * layer for i in range(c)]
        rep.phase("reduce").__iadd__(
            _reduce_scatter(machine, fiber, mb * nb * ITEM)
        )

    if framework_overhead:
        local_words = (m * k + k * n + 2 * m * n) / max(1, g.used)
        mem_bw = 8e9  # bytes/s per rank for pack/unpack of cyclic layouts
        rep.phase("framework").time += local_words * ITEM * 2.0 / mem_bw
    rep.mem_words = 2.0 * (mb * kb + kb * nb) + 2.0 * mb * nb
    return rep


ALGO_COSTS = {
    "ca3dmm": ca3dmm_cost,
    "cosma": cosma_cost,
    "ctf": ctf_cost,
}
