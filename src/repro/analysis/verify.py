"""Cross-validation helpers: executed traffic vs paper formulas.

The reproduction's credibility rests on the analytic engine agreeing
with the executed one where both can run.  These helpers extract the
paper's three metrics from executed traces and compute their theoretical
values, so tests (and the verification bench) can assert agreement:

* ``Q`` — communication size: max over ranks of *words sent*
  (paper eq. (9): ``3 (mnk/P)^(2/3)`` under the balanced-grid
  assumptions of Section III-D);
* ``L`` — latency: communication rounds on the critical rank
  (paper eq. (10): ``log2(c) + s + pk - 1``);
* ``S`` — memory: max over ranks of live matrix words
  (paper eq. (11): ``2(c·mk + kn)/P + pk·mn/P``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.plan import Ca3dmmPlan
from ..mpi.runtime import SpmdResult

ITEM = 8


@dataclass(frozen=True)
class PaperMetrics:
    """The theoretical Q/L/S of Section III-D for one plan."""

    q_words: float
    l_rounds: int
    s_words: float


def theoretical_metrics(plan: Ca3dmmPlan) -> PaperMetrics:
    """Eqs. (9)-(11) evaluated for a concrete plan (no idealizations).

    ``q_words`` here is the schedule's exact per-rank send volume
    (replication + skew + shifts + reduce-scatter), which equals eq. (9)
    when the grid is perfectly balanced; tests check both the exact
    value against executed traffic and the eq. (9) form under the
    paper's assumptions.
    """
    m, n, k = plan.m, plan.n, plan.k
    pm, pn, pk, s, c = plan.pm, plan.pn, plan.pk, plan.s, plan.c
    mb, nb, kg = m / pm, n / pn, k / pk
    kb = kg / s
    blk_a, blk_b = mb * kb, kb * nb

    q = 0.0
    if c > 1:
        q += (blk_a if plan.replicates_a else blk_b) * (c - 1) / c
    if s > 1:
        q += (blk_a + blk_b) * s  # skew + (s-1) shifts, A and B each
    if pk > 1:
        q += mb * nb * (pk - 1) / pk

    import math

    l_rounds = (math.ceil(math.log2(c)) if c > 1 else 0) + (s if s > 1 else 0) + (pk - 1)

    repl_a = c if plan.replicates_a else 1
    repl_b = 1 if plan.replicates_a else c
    s_words = 2.0 * (repl_a * m * k + repl_b * k * n) / plan.active + pk * m * n / plan.active
    return PaperMetrics(q_words=q, l_rounds=l_rounds, s_words=s_words)


def eq9_lower_bound(m: int, n: int, k: int, nprocs: int) -> float:
    """Paper eq. (9): Q = 3 (mnk/P)^(2/3) words."""
    return 3.0 * (m * n * k / nprocs) ** (2.0 / 3.0)


@dataclass
class ExecutedMetrics:
    """Q/L/S observed in an executed run (matrix words / rounds)."""

    q_words: float
    msgs: int
    s_words: float
    time: float


def executed_metrics(result: SpmdResult, itemsize: int = ITEM) -> ExecutedMetrics:
    """Extract the paper's metrics from executed traces.

    ``msgs`` counts individual messages (the executed Cannon stage sends
    A and B separately, so it is up to ~2x the paper's *round* count L;
    tests account for that factor explicitly).
    """
    q = max(t.bytes_sent for t in result.traces) / itemsize
    msgs = max(t.msgs_sent for t in result.traces)
    # S is the memtrace resident watermark (tagged allocation spans);
    # runs without memtrace instrumentation (or duck-typed trace
    # snapshots) fall back to the legacy self-reported / transport
    # in-flight counter.
    resident = max(
        getattr(t, "resident_peak_bytes", 0) for t in result.traces
    )
    peak = resident if resident > 0 else max(
        t.peak_live_bytes for t in result.traces
    )
    s = peak / itemsize
    return ExecutedMetrics(q_words=q, msgs=msgs, s_words=s, time=result.time)
