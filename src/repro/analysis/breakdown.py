"""Runtime breakdowns (Fig. 5 of the paper) from both engines.

The paper's Fig. 5 buckets CA3DMM/COSMA runtime into "local computation",
"replicate A, B" (which for CA3DMM includes the Cannon shift traffic),
and "reduce C", normalized so COSMA's total is 1.  This module produces
that bucketing from

* an executed :class:`~repro.mpi.runtime.SpmdResult` — phase-tagged
  traffic measured by the transport, and
* an analytic :class:`~repro.analysis.costs.CostReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mpi.runtime import SpmdResult
from .costs import CostReport

#: Fig. 5 bucket names in display order.
BUCKETS = ("local computation", "replicate A, B", "reduce C", "other")

#: phase-tag -> bucket mapping for executed runs.  Communication time in
#: the "cannon"/"summa" phases is shift/panel traffic -> "replicate A, B";
#: its compute time is the local GEMM.
_PHASE_BUCKET = {
    "replicate": "replicate A, B",
    "cannon": "replicate A, B",
    "summa": "replicate A, B",
    "reduce": "reduce C",
    "compute": "local computation",
    "redist": "other",
    "other": "other",
}


@dataclass
class Breakdown:
    """Seconds per Fig. 5 bucket (one algorithm, one problem)."""

    algo: str
    local_compute: float = 0.0
    replicate_ab: float = 0.0
    reduce_c: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.local_compute + self.replicate_ab + self.reduce_c + self.other

    def normalized(self, denom: float) -> "Breakdown":
        if denom <= 0:
            return self
        return Breakdown(
            self.algo,
            self.local_compute / denom,
            self.replicate_ab / denom,
            self.reduce_c / denom,
            self.other / denom,
        )

    def as_row(self) -> dict[str, float]:
        return {
            "local computation": self.local_compute,
            "replicate A, B": self.replicate_ab,
            "reduce C": self.reduce_c,
            "other": self.other,
        }


def breakdown_from_traces(result: SpmdResult, algo: str) -> Breakdown:
    """Fig. 5 buckets from an executed run's phase-tagged traces.

    Uses the critical rank (largest simulated clock); within each phase
    the compute share goes to "local computation" and the communication
    share to the phase's bucket.
    """
    crit = max(result.traces, key=lambda t: t.time)
    out = Breakdown(algo)
    for name, stats in crit.phases.items():
        bucket = _PHASE_BUCKET.get(name, "other")
        out.local_compute += stats.compute_time
        comm = stats.time - stats.compute_time
        if bucket == "replicate A, B":
            out.replicate_ab += comm
        elif bucket == "reduce C":
            out.reduce_c += comm
        elif bucket == "local computation":
            out.local_compute += comm
        else:
            out.other += comm
    return out


def breakdown_from_report(report: CostReport) -> Breakdown:
    """Fig. 5 buckets from an analytic cost report."""
    out = Breakdown(report.algo)
    for name, ph in report.phases.items():
        if name == "compute":
            out.local_compute += ph.time
        elif name in ("replicate", "framework"):
            out.replicate_ab += ph.time if name == "replicate" else 0.0
            out.other += ph.time if name == "framework" else 0.0
        elif name == "reduce":
            out.reduce_c += ph.time
        else:
            out.other += ph.time
    return out
