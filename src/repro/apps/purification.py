"""McWeeny density-matrix purification (Palser & Manolopoulos, 1998).

The paper's **square** problem class: repeated same-shape PGEMMs
(Section IV-A cites canonical purification [7] and Fock-matrix work [9];
CA3DMM is being integrated into the SPARC DFT code for exactly this).

Given a symmetric Hamiltonian ``H`` and an electron count ``ne``,
purification iterates

.. math:: D_{t+1} = 3 D_t^2 - 2 D_t^3

from a trace-correct linear initial guess until ``D`` is idempotent —
two square PGEMMs per iteration, all through one reusable
:class:`~repro.core.ca3dmm.Ca3dmm` engine (the layout-reuse pattern the
paper's Section V discusses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ca3dmm import Ca3dmm
from ..layout import ops
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute


def initial_density_guess(h: DistMatrix, ne: int) -> DistMatrix:
    """Palser-Manolopoulos trace-preserving linear initial guess.

    ``D0 = (λ/2)(μ I - H) + (ne/N) I`` with μ the trace mean and λ
    chosen from Gershgorin-style spectral bounds so ``D0``'s spectrum
    lies in [0, 1] and ``tr(D0) = ne``.
    """
    m, n = h.shape
    if m != n:
        raise ValueError("the Hamiltonian must be square")
    mu = ops.trace(h) / n
    # spectral bounds via global max row sums (cheap, replicated H rows
    # are not needed: use local partial sums + allreduce)
    from ..mpi.datatypes import MAX

    local_hi = 0.0
    for rect, tile in zip(h.owned_rects, h.tiles):
        if tile.size:
            local_hi = max(local_hi, float(np.max(np.sum(np.abs(tile), axis=1))))
    hmax = float(h.comm.allreduce(np.array([local_hi]), MAX)[0])
    hmin = -hmax
    lam = min(ne / (hmax - mu + 1e-300), (n - ne) / (mu - hmin + 1e-300)) / max(n, 1)
    eye = ops.identity(h.comm, h.dist, dtype=h.dtype)
    # D0 = lam*(mu I - H) + (ne/n) I
    d0 = ops.add(eye, h, alpha=lam * mu + ne / n, beta=-lam)
    return d0


@dataclass
class PurificationResult:
    """Converged density matrix plus iteration diagnostics."""

    density: DistMatrix
    iterations: int
    idempotency_error: float
    trace: float
    history: list[float]


def mcweeny_purification(
    h: DistMatrix,
    ne: int,
    tol: float = 1e-10,
    max_iter: int = 100,
    engine: Ca3dmm | None = None,
    method: str = "canonical",
) -> PurificationResult:
    """Purify ``H`` into the density matrix of its ``ne`` lowest states.

    ``method="canonical"`` (default) runs Palser-Manolopoulos canonical
    purification, whose per-step polynomial is chosen from the traces of
    ``D²`` and ``D³`` so that ``tr(D) = ne`` is preserved exactly — this
    is what reliably locks onto the ``ne``-state projector.
    ``method="mcweeny"`` runs the plain ``D <- 3D² - 2D³`` map (each
    eigenvalue flows to the nearer of 0/1, so the electron count is
    fixed by the initial guess alone).  Either way: two square PGEMMs
    per sweep until the idempotency error ``||D² - D||_F < tol``.
    """
    m, n = h.shape
    if m != n:
        raise ValueError("the Hamiltonian must be square")
    if not 0 <= ne <= n:
        raise ValueError(f"electron count {ne} outside [0, {n}]")
    if method not in ("canonical", "mcweeny"):
        raise ValueError(f"unknown purification method {method!r}")
    eng = engine if engine is not None else Ca3dmm(h.comm, n, n, n)

    d = initial_density_guess(h, ne)
    history: list[float] = []
    err = float("inf")
    it = 0
    for it in range(1, max_iter + 1):
        d2 = eng.multiply(d, d)  # D²  (native layout out)
        d2_in = redistribute(d2, d.dist)
        err = ops.distance(d2_in, d)
        history.append(err)
        if err < tol:
            break
        d3 = eng.multiply(d2_in, d)  # D³
        d3_in = redistribute(d3, d.dist)
        if method == "mcweeny":
            d = ops.add(d2_in, d3_in, alpha=3.0, beta=-2.0)
        else:
            t_d = ops.trace(d)
            t_d2 = ops.trace(d2_in)
            t_d3 = ops.trace(d3_in)
            denom = t_d - t_d2
            c = (t_d2 - t_d3) / denom if abs(denom) > 1e-300 else 0.5
            if c >= 0.5:
                # D <- ((1+c) D² - D³) / c
                d = ops.add(d2_in, d3_in, alpha=(1 + c) / c, beta=-1.0 / c)
            else:
                # D <- ((1-2c) D + (1+c) D² - D³) / (1-c)
                d = ops.add(
                    ops.add(d, d2_in, alpha=(1 - 2 * c) / (1 - c), beta=(1 + c) / (1 - c)),
                    d3_in,
                    alpha=1.0,
                    beta=-1.0 / (1 - c),
                )
    return PurificationResult(
        density=d,
        iterations=it,
        idempotency_error=err,
        trace=ops.trace(d),
        history=history,
    )
