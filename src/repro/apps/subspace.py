"""Chebyshev-filtered subspace iteration (CheFSI) building blocks.

The Rayleigh-Ritz step of CheFSI [8, 29] is the paper's flagship
application — CA3DMM "is being integrated into the ... SPARC" DFT code
for it, and the large-K / large-M evaluation classes are its two
halves:

* ``HV`` products during Chebyshev filtering and the projection
  ``W = H V`` — tall-times-small (large-M-like panels),
* the subspace matrices ``VᵀW`` and ``VᵀV`` — huge contraction
  dimension (large-K).

:func:`subspace_iteration` composes them into a complete eigensolver
for the lowest ``b`` eigenpairs of a symmetric operator, with
:func:`repro.apps.cholesky_qr.cholesky_qr2` keeping the basis
orthonormal between sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ca3dmm import Ca3dmm
from ..layout.distributions import BlockCol1D
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from .cholesky_qr import cholesky_qr2


def _small(comm, arr: np.ndarray) -> DistMatrix:
    return DistMatrix.from_global(comm, BlockCol1D(arr.shape, comm.size), arr)


def rayleigh_ritz(
    h: DistMatrix,
    v: DistMatrix,
    hv_engine: Ca3dmm | None = None,
    proj_engine: Ca3dmm | None = None,
    rotate_engine: Ca3dmm | None = None,
) -> tuple[np.ndarray, DistMatrix]:
    """One Rayleigh-Ritz step: eigenpairs of ``VᵀHV`` and rotated basis.

    Returns ``(ritz_values, V @ W)`` where W diagonalizes the projected
    operator.  V must have orthonormal columns.
    """
    m, b = v.shape
    hv_eng = hv_engine if hv_engine is not None else Ca3dmm(h.comm, m, b, m)
    pr_eng = proj_engine if proj_engine is not None else Ca3dmm(h.comm, b, b, m)
    ro_eng = rotate_engine if rotate_engine is not None else Ca3dmm(h.comm, m, b, b)

    w = hv_eng.multiply(h, v)  # H V   (m x b)
    w_in = redistribute(w, v.dist)
    hsub = pr_eng.multiply(v, w_in, transa=True).to_global()  # Vᵀ H V (b x b)
    hsub = (hsub + hsub.T.conj()) / 2.0
    vals, vecs = np.linalg.eigh(hsub)
    rotated = ro_eng.multiply(v, _small(v.comm, vecs))
    return vals, redistribute(rotated, v.dist)


def chebyshev_filter(
    h: DistMatrix,
    v: DistMatrix,
    degree: int,
    bounds: tuple[float, float],
    hv_engine: Ca3dmm | None = None,
) -> DistMatrix:
    """Apply a degree-``degree`` Chebyshev filter that damps the
    spectrum inside ``bounds = (a, b)`` (the unwanted interval).

    Uses the standard three-term recurrence; one ``H V`` PGEMM per
    degree.  Returns the filtered (unnormalized) block.
    """
    lo, hi = bounds
    if degree < 1:
        return v
    m, b = v.shape
    eng = hv_engine if hv_engine is not None else Ca3dmm(h.comm, m, b, m)
    e = (hi - lo) / 2.0
    c = (hi + lo) / 2.0

    def apply_h(x: DistMatrix) -> DistMatrix:
        return redistribute(eng.multiply(h, x), v.dist)

    from ..layout import ops

    y = ops.add(apply_h(v), v, alpha=1.0 / e, beta=-c / e)
    v_prev, v_cur = v, y
    for _ in range(2, degree + 1):
        hy = apply_h(v_cur)
        # v_next = 2/e (H - cI) v_cur - v_prev
        v_next = ops.add(
            ops.add(hy, v_cur, alpha=2.0 / e, beta=-2.0 * c / e),
            v_prev,
            alpha=1.0,
            beta=-1.0,
        )
        v_prev, v_cur = v_cur, v_next
    return v_cur


@dataclass
class SubspaceResult:
    """Converged Ritz pairs plus iteration diagnostics."""

    eigenvalues: np.ndarray
    basis: DistMatrix
    iterations: int
    residual: float


def subspace_iteration(
    h: DistMatrix,
    b: int,
    degree: int = 6,
    tol: float = 1e-8,
    max_iter: int = 50,
    seed: int = 0,
) -> SubspaceResult:
    """Find the ``b`` lowest eigenpairs of symmetric ``H`` with CheFSI.

    Filter -> orthonormalize (CholeskyQR2) -> Rayleigh-Ritz, repeated
    until the Ritz values stabilize.
    """
    m, n = h.shape
    if m != n:
        raise ValueError("H must be square")
    if not 1 <= b <= n:
        raise ValueError(f"subspace size {b} outside [1, {n}]")
    comm = h.comm
    v = DistMatrix.random(comm, BlockCol1D((n, b), comm.size), seed=seed)

    # Crude spectral bounds for the damped interval: Gershgorin radius.
    from ..layout import ops
    from ..mpi.datatypes import MAX

    local_hi = 0.0
    for tile in h.tiles:
        if tile.size:
            local_hi = max(local_hi, float(np.max(np.sum(np.abs(tile), axis=1))))
    hmax = float(comm.allreduce(np.array([local_hi]), MAX)[0])

    prev = None
    vals = np.zeros(b)
    it = 0
    res = float("inf")
    for it in range(1, max_iter + 1):
        # Damp everything above the current Ritz ceiling.
        ceiling = vals[-1] + 1e-3 * max(1.0, abs(vals[-1])) if prev is not None else 0.0
        v = chebyshev_filter(h, v, degree, (ceiling, hmax + 1.0))
        v, _ = cholesky_qr2(v)
        vals, v = rayleigh_ritz(h, v)
        if prev is not None:
            res = float(np.max(np.abs(vals - prev)) / max(1.0, np.max(np.abs(vals))))
            if res < tol:
                break
        prev = vals.copy()
    return SubspaceResult(eigenvalues=vals, basis=v, iterations=it, residual=res)
