"""Driver applications built on CA3DMM.

The paper motivates CA3DMM with concrete PGEMM consumers — density
matrix purification [7, 9], CholeskyQR [8, 30], Rayleigh-Ritz
projection in Chebyshev-filtered subspace iteration [8, 29] (the SPARC
DFT code it ships in), and polar decomposition [28].  This subpackage
implements those drivers on the distributed-matrix API so the library
is exercised the way its intended users exercise it: repeated
multiplications of every problem class (square, large-K, large-M, and
the flat trailing updates of blocked factorizations) with layout reuse
between calls.
"""

from .block_cholesky import block_cholesky
from .pipeline import matmul_chain, matmul_chain_reference, matmul_chain_steps
from .cholesky_qr import cholesky_qr, cholesky_qr2, gram_matrix, shifted_cholesky_qr
from .polar import polar_decompose
from .purification import initial_density_guess, mcweeny_purification
from .subspace import chebyshev_filter, rayleigh_ritz, subspace_iteration

__all__ = [
    "block_cholesky",
    "matmul_chain",
    "matmul_chain_reference",
    "matmul_chain_steps",
    "gram_matrix",
    "cholesky_qr",
    "cholesky_qr2",
    "shifted_cholesky_qr",
    "mcweeny_purification",
    "initial_density_guess",
    "polar_decompose",
    "rayleigh_ritz",
    "chebyshev_filter",
    "subspace_iteration",
]
