"""A multi-call matmul pipeline: the checkpoint/restart demo workload.

The paper's consumers never multiply once: purification, CholeskyQR,
and subspace iteration all chain dozens of PGEMMs whose outputs feed the
next call.  ``matmul_chain`` distills that shape to its essence — a
fixed operand ``A`` carried across the whole run and an iterate ``X``
rewritten by every call::

    X_{t+1} = A    @ X_t    (t even;  A is m x k, X_t is k x n)
    X_{t+1} = A^T  @ X_t    (t odd;   X_t is m x n)

so the iterate alternates between (m, n) and (k, n) and every call costs
``2*m*n*k`` flops.  Each step runs through
:func:`~repro.ft.resilient_multiply` (in-call recovery with
partial-result reuse) or the plain engine, under
:func:`~repro.ckpt.run_pipeline` (checkpoint/restart between calls) —
the workload behind the ``repro checkpoint`` CLI and the
checkpoint-smoke CI job.
"""

from __future__ import annotations

import numpy as np

from ..ckpt import CheckpointPolicy, CheckpointStore, PipelineResult, PipelineStep, run_pipeline
from ..core.ca3dmm import Ca3dmm
from ..ft.recovery import resilient_multiply
from ..layout.distributions import BlockCol1D
from ..layout.matrix import DistMatrix, dense_random
from ..mpi.comm import Comm


def matmul_chain_steps(
    m: int,
    n: int,
    k: int,
    calls: int,
    *,
    resilient: bool = True,
    max_recoveries: int = 1,
    abft: bool = False,
) -> list[PipelineStep]:
    """The chain's :class:`~repro.ckpt.PipelineStep` list.

    Step ``t`` computes ``X <- op(A) @ X`` with ``op`` alternating
    identity / transpose, so shapes stay consistent for any length.
    ``resilient=True`` routes each call through
    :func:`~repro.ft.resilient_multiply` (a kill is healed inside the
    step, exercising partial-result reuse); ``False`` uses the plain
    engine, so a kill escapes to :func:`~repro.ckpt.run_pipeline` and
    exercises the restart path instead.
    """
    steps: list[PipelineStep] = []
    for t in range(calls):
        trans = bool(t % 2)

        def fn(comm: Comm, state, _trans=trans):
            a, x = state["A"], state["X"]
            if resilient:
                y = resilient_multiply(
                    comm, a, x, transa=_trans, abft=abft,
                    max_recoveries=max_recoveries,
                )
            else:
                om, on = (k, n) if _trans else (m, n)
                engine = Ca3dmm(comm, om, on, k if not _trans else m)
                y = engine.multiply(a, x, transa=_trans)
            return {"X": y}

        steps.append(PipelineStep(name=f"call{t}", fn=fn, flops=2.0 * m * n * k))
    return steps


def matmul_chain(
    comm: Comm,
    m: int,
    n: int,
    k: int,
    *,
    calls: int = 4,
    store: CheckpointStore | None = None,
    policy: CheckpointPolicy | None = None,
    resilient: bool = True,
    max_recoveries: int = 1,
    max_restarts: int = 2,
    resume: bool = False,
    abft: bool = False,
    dtype=np.float64,
    seeds: tuple[int, int] = (7, 8),
) -> PipelineResult:
    """Run the alternating chain for ``calls`` steps under checkpointing.

    The carried state is ``{"A": m x k, "X": k x n iterate}``; both are
    seeded deterministically so :func:`matmul_chain_reference` can check
    any rank count against numpy.  Collective over ``comm``.
    """

    def init(c: Comm):
        a = DistMatrix.from_global(
            c, BlockCol1D((m, k), c.size),
            dense_random(m, k, seed=seeds[0]).astype(dtype),
        )
        x = DistMatrix.from_global(
            c, BlockCol1D((k, n), c.size),
            dense_random(k, n, seed=seeds[1]).astype(dtype),
        )
        return {"A": a, "X": x}

    steps = matmul_chain_steps(
        m, n, k, calls,
        resilient=resilient, max_recoveries=max_recoveries, abft=abft,
    )
    return run_pipeline(
        comm, steps, init,
        store=store, policy=policy,
        max_restarts=max_restarts, resume=resume,
    )


def matmul_chain_reference(
    m: int,
    n: int,
    k: int,
    calls: int = 4,
    dtype=np.float64,
    seeds: tuple[int, int] = (7, 8),
) -> np.ndarray:
    """The chain's final iterate, computed serially with numpy."""
    a = dense_random(m, k, seed=seeds[0]).astype(dtype)
    x = dense_random(k, n, seed=seeds[1]).astype(dtype)
    for t in range(calls):
        x = (a.T if t % 2 else a) @ x
    return x
