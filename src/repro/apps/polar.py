"""Polar decomposition via Newton-Schulz iteration.

Nakatsukasa & Higham's spectral divide-and-conquer work [28] is one of
the paper's square-PGEMM motivations.  The inverse-free Newton-Schulz
iteration

.. math:: X_{t+1} = \\tfrac{1}{2} X_t (3 I - X_t^T X_t)

converges quadratically to the orthogonal polar factor ``U`` of
``A = U H`` once ``||X_0||_2 < \\sqrt{3}``, costing two PGEMMs per sweep
(one large-K-shaped ``XᵀX`` and one large-M-shaped ``X (…)``) — for
square A, two square PGEMMs, matching the paper's square class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ca3dmm import Ca3dmm
from ..layout import ops
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute


@dataclass
class PolarResult:
    """Orthogonal factor plus iteration diagnostics."""

    u: DistMatrix
    iterations: int
    orthogonality_error: float
    history: list[float]


def polar_decompose(
    a: DistMatrix,
    tol: float = 1e-10,
    max_iter: int = 60,
) -> PolarResult:
    """Compute the orthogonal polar factor of a full-rank ``m x n`` A.

    Returns U with ``UᵀU = I``; the Hermitian factor is recoverable as
    ``H = Uᵀ A``.  Convergence is measured by ``||XᵀX - I||_F``.
    """
    m, n = a.shape
    if m < n:
        raise ValueError("polar_decompose expects m >= n")
    comm = a.comm
    gram_eng = Ca3dmm(comm, n, n, m)  # XᵀX: large-K shape
    apply_eng = Ca3dmm(comm, m, n, n)  # X G: large-M shape

    # Scale so ||X0||_2 < sqrt(3): Frobenius norm over-estimates the
    # 2-norm, so dividing by it is always safe.
    x = ops.scale(a, 1.0 / max(ops.frobenius_norm(a), 1e-300))
    x_dist = x.dist

    history: list[float] = []
    err = float("inf")
    it = 0
    for it in range(1, max_iter + 1):
        g = gram_eng.multiply(x, x, transa=True)  # XᵀX (native layout)
        g_global = g.to_global()  # n x n, small, replicated
        err = float(np.linalg.norm(g_global - np.eye(n, dtype=g_global.dtype)))
        history.append(err)
        if err < tol:
            break
        update = (3.0 * np.eye(n, dtype=g_global.dtype) - g_global) / 2.0
        from ..layout.distributions import BlockCol1D

        u_mat = DistMatrix.from_global(comm, BlockCol1D((n, n), comm.size), update)
        x_new = apply_eng.multiply(x, u_mat)
        x = redistribute(x_new, x_dist)
    return PolarResult(u=x, iterations=it, orthogonality_error=err, history=history)
