"""CholeskyQR family for tall-and-skinny matrices.

The paper's "large-K" and "large-M" problem classes come straight from
these methods (Section IV-A, citing [8, 29, 30]):

* the Gram matrix ``G = AᵀA`` of a tall A (m >> n) is a PGEMM with a
  huge contraction dimension — the **large-K** class;
* applying ``Q = A R⁻¹`` is a PGEMM with a huge first dimension — the
  **large-M** class.

Variants:

* :func:`cholesky_qr` — one pass (loses orthogonality ~ κ(A)²·eps),
* :func:`cholesky_qr2` — two passes (orthogonal to ~eps for
  κ(A) < 1e8),
* :func:`shifted_cholesky_qr` — Fukaya et al. (2020): a diagonal shift
  makes the first Cholesky succeed even for ill-conditioned A, followed
  by a CholeskyQR2 cleanup.

The small n x n factors are replicated on every rank (they are tiny
next to A), mirroring how real codes treat them.
"""

from __future__ import annotations

import numpy as np

from ..core.ca3dmm import Ca3dmm
from ..layout.matrix import DistMatrix


def gram_matrix(a: DistMatrix, engine: Ca3dmm | None = None) -> np.ndarray:
    """``G = AᵀA`` via a large-K PGEMM; the small result is replicated.

    ``engine`` may be a pre-planned :class:`Ca3dmm` for (n, n, m); one
    is created on the fly otherwise.
    """
    m, n = a.shape
    eng = engine if engine is not None else Ca3dmm(a.comm, n, n, m)
    g = eng.multiply(a, a, transa=True)
    return g.to_global()


def _apply_inverse_r(a: DistMatrix, r: np.ndarray, engine: Ca3dmm | None) -> DistMatrix:
    """``Q = A R⁻¹`` via a large-M PGEMM with the replicated factor."""
    m, n = a.shape
    rinv = np.linalg.inv(r)  # n x n, tiny; same on every rank
    rinv_mat = DistMatrix.from_global(a.comm, _small_square_dist(a, n), rinv)
    eng = engine if engine is not None else Ca3dmm(a.comm, m, n, n)
    return eng.multiply(a, rinv_mat)


def _small_square_dist(a: DistMatrix, n: int):
    """A 1D-column layout for the small n x n factor."""
    from ..layout.distributions import BlockCol1D

    return BlockCol1D((n, n), a.comm.size)


def cholesky_qr(
    a: DistMatrix,
    gram_engine: Ca3dmm | None = None,
    apply_engine: Ca3dmm | None = None,
) -> tuple[DistMatrix, np.ndarray]:
    """One-pass CholeskyQR: ``A = QR`` with Q in A's distribution.

    Returns ``(Q, R)`` where R (n x n, upper triangular) is replicated.
    Raises :class:`numpy.linalg.LinAlgError` if the Gram matrix is not
    numerically positive definite (use :func:`shifted_cholesky_qr`).
    """
    g = gram_matrix(a, gram_engine)
    r = np.linalg.cholesky(g).T.conj()  # upper-triangular factor
    q = _apply_inverse_r(a, r, apply_engine)
    return q, r


def cholesky_qr2(
    a: DistMatrix,
    gram_engine: Ca3dmm | None = None,
    apply_engine: Ca3dmm | None = None,
) -> tuple[DistMatrix, np.ndarray]:
    """CholeskyQR2: two passes; Q orthogonal to machine precision for
    moderately conditioned A."""
    q1, r1 = cholesky_qr(a, gram_engine, apply_engine)
    q2, r2 = cholesky_qr(q1, gram_engine, apply_engine)
    return q2, r2 @ r1


def shifted_cholesky_qr(
    a: DistMatrix,
    gram_engine: Ca3dmm | None = None,
    apply_engine: Ca3dmm | None = None,
    shift: float | None = None,
) -> tuple[DistMatrix, np.ndarray]:
    """Shifted CholeskyQR3 (Fukaya et al., 2020) for ill-conditioned A.

    A diagonal shift ``s ≈ 11 (m n + n(n+1)) eps ||A||²`` guarantees the
    first Cholesky succeeds; two unshifted passes then restore
    orthogonality.  Returns ``(Q, R)`` with ``R = R2 R1`` combined.
    """
    m, n = a.shape
    g = gram_matrix(a, gram_engine)
    norm2 = float(np.linalg.norm(g, 2))
    if shift is None:
        eps = np.finfo(np.float64).eps
        shift = 11.0 * (m * n + n * (n + 1)) * eps * norm2
    r1 = np.linalg.cholesky(g + shift * np.eye(n, dtype=g.dtype)).T.conj()
    q1 = _apply_inverse_r(a, r1, apply_engine)
    q2, r21 = cholesky_qr2(q1, gram_engine, apply_engine)
    return q2, r21 @ r1
