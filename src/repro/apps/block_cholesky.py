"""Right-looking blocked Cholesky factorization.

The paper's **flat** problem class "comes from the trailing matrix
update in matrix factorization algorithms, for example, LU, Cholesky,
and Householder QR" (Section IV-A).  This driver is that algorithm:

for each block column ``j`` of width ``b``:

1. factor the ``b x b`` diagonal block locally (it is tiny and
   replicated, like the R factors in CholeskyQR),
2. form the panel ``L_{:,j} = A_{:,j} L_jj^{-T}`` — a tall-times-small
   PGEMM (large-M shape),
3. **trailing update** ``A_{j+1:, j+1:} -= L_{panel} L_{panel}^T`` — the
   flat-class PGEMM, executed through CA3DMM's full GEMM semantics
   (``alpha=-1, beta=1``).

The matrix is kept in a 2D block layout between steps; panels move
through the ordinary redistribution machinery.  This is deliberately a
*simple* blocked Cholesky (no look-ahead, local panel math) — the point
is exercising the flat-class PGEMM exactly the way factorizations do.
"""

from __future__ import annotations

import numpy as np

from ..core.ca3dmm import Ca3dmm
from ..layout.blocks import Rect
from ..layout.distributions import BlockCol1D, BlockRow1D, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute


def _full_on_all(mat: DistMatrix) -> np.ndarray:
    """Gather a (small) distributed matrix everywhere."""
    return mat.to_global()


def _trailing_dist(n: int, j1: int, nranks: int) -> Explicit:
    """Row-band layout of the trailing submatrix A[j1:, j1:]."""
    size = n - j1
    mapping = {}
    from ..layout.blocks import block_range

    for r in range(nranks):
        lo, hi = block_range(size, nranks, r)
        if hi > lo:
            mapping[r] = [Rect(j1 + lo, j1 + hi, j1, n)]
    return Explicit.from_mapping((n, n), nranks, mapping)


def block_cholesky(
    a: DistMatrix,
    block: int = 8,
) -> DistMatrix:
    """Factor a symmetric positive-definite ``A = L Lᵀ``.

    ``a`` may use any distribution; the returned L is row-band
    (``BlockRow1D``) distributed with zeros above the diagonal.
    """
    n, n2 = a.shape
    if n != n2:
        raise ValueError("Cholesky needs a square matrix")
    if block < 1:
        raise ValueError("block width must be >= 1")
    comm = a.comm

    work = redistribute(a, BlockRow1D((n, n), comm.size))
    l_out = DistMatrix.zeros(comm, BlockRow1D((n, n), comm.size), dtype=a.dtype)

    j = 0
    while j < n:
        b = min(block, n - j)
        j1 = j + b

        # The current panel A[j:, j:j1] as a (small-width) column band,
        # replicated via gather: width b is small by construction.
        panel_dist = BlockCol1D((n, b), comm.size)
        panel = DistMatrix(
            comm,
            _column_slice_dist(n, j, b, comm.size),
            _column_slice_tiles(work, j, b),
        )
        panel_global = _full_on_all(redistribute(panel, panel_dist))[j:, :]

        # (1) local factorization of the b x b diagonal block.
        ljj = np.linalg.cholesky(panel_global[:b, :b])
        # (2) panel solve: rows below the diagonal.
        lpanel_below = _solve_lower_t(panel_global[b:, :], ljj)
        lpanel = np.vstack([ljj, lpanel_below])

        _write_column_block(l_out, lpanel, j, b)

        if j1 < n:
            # (3) trailing update: A[j1:, j1:] -= L_below L_belowᵀ.
            rest = n - j1
            lp = DistMatrix.from_global(
                comm, BlockRow1D((rest, b), comm.size), lpanel_below
            )
            eng = Ca3dmm(comm, rest, rest, b)
            trail = _extract_trailing(work, j1)
            updated = eng.multiply(
                lp, lp, transb="T", alpha=-1.0, beta=1.0, c_in=trail,
                c_dist=BlockRow1D((rest, rest), comm.size),
            )
            _write_trailing(work, updated, j1)
        j = j1
    return l_out


def _column_slice_dist(n: int, j: int, b: int, nranks: int) -> Explicit:
    """Row-band layout of the width-b panel, in (n, b) coordinates."""
    from ..layout.blocks import block_range

    mapping = {}
    for r in range(nranks):
        lo, hi = block_range(n, nranks, r)
        if hi > lo:
            mapping[r] = [Rect(lo, hi, 0, b)]
    return Explicit.from_mapping((n, b), nranks, mapping)


def _column_slice_tiles(work: DistMatrix, j: int, b: int) -> list[np.ndarray]:
    return [
        np.ascontiguousarray(tile[:, j : j + b]) for tile in work.tiles
    ]


def _solve_lower_t(rows: np.ndarray, ljj: np.ndarray) -> np.ndarray:
    """Solve ``X L^T = rows`` for X with lower-triangular L (local)."""
    # X = rows @ inv(L^T); triangular solve via numpy (small b).
    return np.linalg.solve(ljj, rows.T).T


def _write_column_block(l_out: DistMatrix, lpanel: np.ndarray, j: int, b: int) -> None:
    """Scatter the factored panel (rows j:) into the row-band L."""
    for rect, tile in zip(l_out.owned_rects, l_out.tiles):
        lo = max(rect.r0, j)
        hi = rect.r1
        if hi > lo:
            tile[lo - rect.r0 : hi - rect.r0, j : j + b] = lpanel[lo - j : hi - j, :]


def _extract_trailing(work: DistMatrix, j1: int) -> DistMatrix:
    """The trailing submatrix A[j1:, j1:] as its own row-band matrix."""
    comm = work.comm
    n = work.shape[0]
    rest = n - j1
    full = None
    # Build from the row-band tiles: each rank contributes the rows it
    # owns below j1; redistribute to the canonical row-band of size rest.
    from ..layout.blocks import block_range

    mapping = {}
    tiles = []
    for rect, tile in zip(work.owned_rects, work.tiles):
        lo = max(rect.r0, j1)
        if rect.r1 > lo:
            mapping.setdefault(comm.rank, []).append(
                Rect(lo - j1, rect.r1 - j1, 0, rest)
            )
            tiles.append(np.ascontiguousarray(tile[lo - rect.r0 :, j1:]))
    all_maps = comm.allgather((comm.rank, mapping.get(comm.rank, [])))
    dist = Explicit.from_mapping(
        (rest, rest), comm.size, {r: rects for r, rects in all_maps if rects}
    )
    src = DistMatrix(comm, dist, tiles)
    del full
    return redistribute(src, BlockRow1D((rest, rest), comm.size))


def _write_trailing(work: DistMatrix, updated: DistMatrix, j1: int) -> None:
    """Write the updated trailing matrix back into the row-band work."""
    n = work.shape[0]
    rest = n - j1
    # updated is BlockRow1D((rest, rest)); work rows r own updated rows
    # r - j1.  Redistribute updated into each rank's needed slice.
    comm = work.comm
    mapping = {}
    for r in range(comm.size):
        rects = work.dist.owned_rects(r)
        need = []
        for rect in rects:
            lo = max(rect.r0, j1)
            if rect.r1 > lo:
                need.append(Rect(lo - j1, rect.r1 - j1, 0, rest))
        if need:
            mapping[r] = need
    target = Explicit.from_mapping((rest, rest), comm.size, mapping)
    mine = redistribute(updated, target)
    idx = 0
    for rect, tile in zip(work.owned_rects, work.tiles):
        lo = max(rect.r0, j1)
        if rect.r1 > lo:
            tile[lo - rect.r0 :, j1:] = mine.tiles[idx]
            idx += 1
