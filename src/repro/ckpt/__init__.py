"""Checkpoint/restart for multi-call pipelines (:mod:`repro.ckpt`).

Snapshots a pipeline's carried distributed matrices to a pluggable
store (in-memory "disk" or a real directory) on a policy cadence, and
restarts from the newest manifest onto the surviving process count
after a failure.  Composes with :mod:`repro.ft`: in-call recovery heals
a single multiplication; this layer keeps the *pipeline's* progress.
See docs/RECOVERY.md.
"""

from .manifest import (
    MANIFEST_JSON_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    validate_manifest,
)
from .pipeline import (
    PipelineResult,
    PipelineStep,
    restart,
    run_pipeline,
    save_checkpoint,
)
from .policy import CheckpointPolicy
from .store import CheckpointError, CheckpointStore, DirStore, MemoryStore

__all__ = [
    "MANIFEST_JSON_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "validate_manifest",
    "CheckpointPolicy",
    "CheckpointError",
    "CheckpointStore",
    "DirStore",
    "MemoryStore",
    "PipelineResult",
    "PipelineStep",
    "restart",
    "run_pipeline",
    "save_checkpoint",
]
