"""Checkpoint manifest: the JSON record that makes a checkpoint exist.

A checkpoint is published by writing its manifest (rank 0, after a
barrier proves every rank's tiles landed), so the store can never expose
a half-written checkpoint.  The manifest is deliberately self-contained:
``restart`` needs nothing but the manifest and the tile payloads to
rebuild the pipeline state on a *different* (smaller) process count —
the rect lists recorded per old rank are re-dealt round-robin onto the
survivors through the ``Explicit`` layout machinery.

Schema-validated like the other machine-readable artifacts
(docs/OBSERVABILITY.md): ``jsonschema`` when installed, a minimal
required-keys check otherwise.
"""

from __future__ import annotations

import numpy as np

from ..layout.matrix import DistMatrix

#: Version stamp for the manifest format.  v2 adds incremental
#: checkpoints: an optional ``kind`` ("full" | "delta") and, per matrix,
#: an optional ``stored_in`` naming the earlier checkpoint whose tile
#: payloads still back the matrix (absent = this checkpoint's own id).
#: v1 manifests remain valid — a v1 document is simply a full snapshot.
MANIFEST_SCHEMA_VERSION = 2

#: JSON Schema (draft-07) for a checkpoint manifest.
MANIFEST_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro checkpoint manifest",
    "type": "object",
    "required": [
        "schema_version", "ckpt_id", "step", "step_name",
        "t_virtual_s", "nranks", "matrices",
    ],
    "properties": {
        "schema_version": {"enum": [1, MANIFEST_SCHEMA_VERSION]},
        "ckpt_id": {"type": "string", "minLength": 1},
        "kind": {"enum": ["full", "delta"]},
        "step": {"type": "integer", "minimum": 0},
        "step_name": {"type": "string"},
        "t_virtual_s": {"type": "number", "minimum": 0},
        "nranks": {"type": "integer", "minimum": 1},
        "matrices": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["shape", "dtype", "rects"],
                "properties": {
                    "shape": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                        "minItems": 2,
                        "maxItems": 2,
                    },
                    "dtype": {"type": "string"},
                    "stored_in": {"type": "string", "minLength": 1},
                    "rects": {
                        "type": "object",
                        "additionalProperties": {
                            "type": "array",
                            "items": {
                                "type": "array",
                                "items": {"type": "integer", "minimum": 0},
                                "minItems": 4,
                                "maxItems": 4,
                            },
                        },
                    },
                },
            },
        },
    },
}


def validate_manifest(doc: dict) -> None:
    """Validate ``doc`` against :data:`MANIFEST_JSON_SCHEMA`.

    Raises ``jsonschema.ValidationError`` (or ``ValueError`` from the
    fallback validator) on mismatch.
    """
    from ..obs.export import _validate

    _validate(doc, MANIFEST_JSON_SCHEMA)


def build_manifest(
    ckpt_id: str,
    step: int,
    step_name: str,
    t_virtual_s: float,
    nranks: int,
    state: dict[str, DistMatrix],
    kind: str = "full",
    stored_in: dict[str, str] | None = None,
) -> dict:
    """Assemble the manifest for one checkpoint of ``state``.

    Pure bookkeeping — callable on any rank, but only rank 0 should
    publish the result (every rank sees the same distributions, so the
    manifests would agree anyway).

    A ``"delta"`` manifest still describes *every* carried matrix — its
    shapes and rect lists are always current — but ``stored_in`` maps
    the matrices whose tile payloads were *not* rewritten to the earlier
    checkpoint id that still holds them.  Restart never has to walk the
    manifest chain: each manifest is self-contained, only the payload
    lookup is indirected.  Delta manifests are only ever published on
    the same communicator size as their payload checkpoints (a
    communicator change forces a full snapshot), so the per-old-rank
    rect lists and tile files always agree.
    """
    matrices = {}
    for name in sorted(state):
        mat = state[name]
        rects = {
            str(r): [
                [rect.r0, rect.r1, rect.c0, rect.c1]
                for rect in mat.dist.owned_rects(r)
                if not rect.is_empty()
            ]
            for r in range(mat.dist.nranks)
        }
        matrices[name] = {
            "shape": [int(mat.shape[0]), int(mat.shape[1])],
            "dtype": str(np.dtype(mat.dtype)),
            "rects": rects,
        }
        home = (stored_in or {}).get(name, ckpt_id)
        if home != ckpt_id:
            matrices[name]["stored_in"] = home
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "ckpt_id": ckpt_id,
        "kind": kind,
        "step": int(step),
        "step_name": step_name,
        "t_virtual_s": float(t_virtual_s),
        "nranks": int(nranks),
        "matrices": matrices,
    }
