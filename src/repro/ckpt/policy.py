"""When to checkpoint: every N calls, every T virtual seconds, or both.

``due`` must be called by every rank of the pipeline communicator in
lockstep: the call-count trigger is decided from replicated arguments
(purely local), but the time trigger needs one collective — an
``allreduce(MAX)`` of the ranks' simulated clocks — so that every rank
reaches the same verdict even though their virtual clocks differ.
Deciding from the *local* clock would let ranks disagree about whether a
checkpoint is due, which deadlocks the ensuing barrier; this is the same
class of bug as the wall-clock failure detection fixed in the ft layer
(docs/RECOVERY.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpi.comm import Comm
from ..mpi.datatypes import MAX


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint cadence for :func:`repro.ckpt.run_pipeline`.

    Parameters
    ----------
    every_calls:
        Checkpoint after every N pipeline steps (``1`` = after each
        step).  ``None`` or ``0`` disables the call-count trigger.
    every_virtual_s:
        Checkpoint when at least this much *simulated* time has passed
        since the last checkpoint.  ``None`` disables the time trigger.
        This is a collective trigger (one small allreduce per step).
    full_interval:
        Force every Nth published checkpoint to be a full snapshot
        instead of a dirty-matrix delta.  ``0`` (the default) writes a
        full snapshot only where correctness demands one: the first
        checkpoint of a chain and the first after a communicator
        change — every other checkpoint stores just the matrices the
        intervening steps touched.
    """

    every_calls: int | None = 1
    every_virtual_s: float | None = None
    full_interval: int = 0

    def global_now(self, comm: Comm) -> float:
        """The world's virtual time: max of the members' clocks."""
        return float(comm.allreduce(np.array([comm.now()]), MAX)[0])

    def due(self, step_index: int, comm: Comm, t_last: float = 0.0) -> bool:
        """Is a checkpoint due after completing ``step_index``?

        Collective over ``comm`` when the time trigger is enabled; every
        rank must call it with the same ``step_index`` and ``t_last``.
        """
        if self.every_calls and (step_index + 1) % self.every_calls == 0:
            return True
        if self.every_virtual_s is not None:
            return self.global_now(comm) - t_last >= self.every_virtual_s
        return False
