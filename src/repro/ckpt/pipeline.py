"""Checkpoint/restart for multi-call CA3DMM pipelines.

The ft layer (:mod:`repro.ft`) recovers *one* multiplication: buddy
backups resurrect the operands, partial-result reuse salvages the
surviving k-groups.  Real consumers, though, run *pipelines* — SCF
loops, purification sequences, subspace iterations — where a failure in
call 7 of 40 must not force recomputing calls 1-6.  This module adds the
missing layer: snapshot the pipeline's carried state to a
:class:`~repro.ckpt.store.CheckpointStore` on a
:class:`~repro.ckpt.policy.CheckpointPolicy` cadence, and on failure
shrink the world and resume from the newest manifest instead of from
scratch.

Two failure paths compose with the ft layer:

* **Escaped failure** (non-resilient step, or a resilient step that ran
  out of in-call recovery budget and re-raised): the error unwinds into
  :func:`run_pipeline`, which revokes, agrees on the survivors, shrinks,
  and calls :func:`restart` — the grid is re-planned for the surviving
  process count and the restored tiles are redistributed through the
  ``Explicit`` layout machinery on the next engine call.
* **In-call recovery** (a resilient step healed itself): the step
  returns its outputs on a *shrunk* communicator.  The pipeline detects
  the communicator change and rebases the carried state (matrices the
  step did not return) from the newest checkpoint onto the new
  communicator, keeping the step's freshly computed outputs.

A checkpoint only exists once its manifest is published, and the
manifest is written by rank 0 *after* a barrier proves every rank's
tiles landed — so a kill mid-checkpoint leaves the previous checkpoint
as the restart point, never a torn one.

Checkpoints are *incremental*: the pipeline tracks which matrices each
step touched and, once a full snapshot anchors the chain, later
checkpoints store only the dirty matrices.  Dirty tiles are snapshotted
into a write-behind buffer the moment the step that produced them
completes — on the virtual clock, charged to the ``ckpt.writebehind``
memtrace purpose so the eq. (11) footprint gate stays exact — and the
barrier+manifest protocol is retained only as the cheap commit point
that drains the buffer.  A delta manifest still describes every carried
matrix; per-matrix ``stored_in`` pointers name the checkpoint whose
payloads back the unchanged ones, so restart replays from any mix of
full and delta manifests without walking the chain.  A communicator
change (restart or in-call recovery) always forces the next checkpoint
full: stored payloads and manifest rect lists therefore always agree on
the rank count.

Checkpoint ids are minted from the *virtual* clock (allreduce-MAX of
the member clocks), so identical faulted runs produce byte-identical
checkpoint histories — the determinism contract of docs/RECOVERY.md
extends through this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ft.errors import UnrecoverableError
from ..layout.blocks import Rect
from ..layout.distributions import Explicit
from ..layout.matrix import DistMatrix
from ..mpi.comm import Comm
from ..mpi.errors import CommRevokedError, RankFailedError, RankKilledError
from .manifest import build_manifest, validate_manifest
from .policy import CheckpointPolicy
from .store import CheckpointError, CheckpointStore

#: Pipeline state: named distributed matrices carried between steps.
State = dict[str, DistMatrix]


@dataclass(frozen=True)
class PipelineStep:
    """One call of a multi-call pipeline.

    ``fn(comm, state) -> updates`` computes on the current communicator
    and returns a dict of the matrices it produced *or changed*; the
    pipeline merges the updates into the carried state.  Steps must
    return every matrix they modify — the checkpoint layer assumes
    anything not returned is unchanged since the last checkpoint.

    ``flops`` (the step's useful arithmetic) feeds the
    ``reused_flops`` accounting: work a restart did *not* redo because a
    checkpoint preserved it.
    """

    name: str
    fn: Callable[[Comm, State], State]
    flops: float = 0.0


@dataclass
class PipelineResult:
    """What :func:`run_pipeline` hands back."""

    state: State  #: final carried state (on ``comm``)
    comm: Comm  #: the communicator the pipeline finished on
    restarts: int = 0  #: pipeline-level restarts (not in-call recoveries)
    checkpoints: list[str] = field(default_factory=list)  #: published ckpt ids


class _WriteBehind:
    """Per-rank write-behind buffer for incremental checkpoints.

    ``stage`` snapshots a dirty matrix's tiles the moment the step that
    produced them completes — on the virtual clock, not at commit time —
    and charges the copies to the ``ckpt.writebehind`` memtrace purpose
    so the eq. (11) footprint gate sees them for exactly as long as they
    are resident.  :func:`save_checkpoint` later flushes the snapshots
    to the store and ``drain``s the buffer once the commit barrier
    proves them durable.  ``forget`` abandons the buffer *without*
    releasing the charge — the transport already auto-freed this rank's
    open spans when it was killed, so freeing again would double-count.
    """

    def __init__(self) -> None:
        self._staged: dict[str, tuple[int, list[tuple[Rect, np.ndarray]]]] = {}

    def stage(self, comm: Comm, name: str, mat: DistMatrix) -> None:
        self.discard(comm, name)
        copied = [
            (rect, np.array(tile, copy=True))
            for rect, tile in zip(mat.owned_rects, mat.tiles)
        ]
        nbytes = sum(t.nbytes for _r, t in copied)
        comm.mem_alloc("ckpt.writebehind", nbytes)
        self._staged[name] = (nbytes, copied)

    def has(self, name: str) -> bool:
        return name in self._staged

    def tiles(self, name: str, mat: DistMatrix) -> list[tuple[Rect, np.ndarray]]:
        """The snapshot to persist for ``name`` (live tiles if unstaged)."""
        if name in self._staged:
            return self._staged[name][1]
        return list(zip(mat.owned_rects, mat.tiles))

    def discard(self, comm: Comm, name: str) -> None:
        entry = self._staged.pop(name, None)
        if entry is not None:
            comm.mem_free("ckpt.writebehind", entry[0])

    def drain(self, comm: Comm) -> None:
        for name in list(self._staged):
            self.discard(comm, name)

    def forget(self) -> None:
        self._staged.clear()


def save_checkpoint(
    comm: Comm,
    store: CheckpointStore,
    step: int,
    step_name: str,
    state: State,
    *,
    kind: str = "full",
    dirty: set[str] | None = None,
    homes: dict[str, str] | None = None,
    writebehind: _WriteBehind | None = None,
) -> tuple[str, float]:
    """Checkpoint ``state`` to ``store``; collective over ``comm``.

    Returns ``(ckpt_id, t_virtual)``.  The id embeds the world's virtual
    time so the store's key space is replay-deterministic.  The manifest
    is published by rank 0 only after a barrier proves every rank's
    tiles landed; a failure before that leaves no trace of this
    checkpoint.

    ``kind="delta"`` persists only the matrices in ``dirty``; the rest
    are manifested with ``stored_in`` pointers into ``homes`` (the map
    from matrix name to the checkpoint id whose payloads still back
    it).  Dirty tiles come from the ``writebehind`` buffer when one is
    supplied — the snapshots taken when the producing step finished —
    and the buffer is drained only after the durability barrier, so the
    ``ckpt.writebehind`` charge covers the bytes' whole residency.
    """
    t = CheckpointPolicy().global_now(comm)
    ckpt_id = f"step{step:04d}-t{t:.9f}"
    written = sorted(state) if kind == "full" else sorted(dirty or ())
    with comm.span("ckpt_save", cat="ckpt", step=step, ckpt_id=ckpt_id,
                   kind=kind, matrices=len(written)):
        if kind == "full" and writebehind is not None:
            # A full snapshot rewrites everything synchronously; any
            # staged deltas are superseded before they ever flush.
            writebehind.drain(comm)
        staged_names = [
            n for n in written
            if writebehind is not None and writebehind.has(n)
        ]
        # The store copies every tile on the way in; synchronous staging
        # copies live until the tiles are durable (the barrier below).
        # Write-behind snapshots are already charged (ckpt.writebehind).
        staging = sum(
            t.nbytes for name in written if name not in staged_names
            for t in state[name].tiles
        )
        with comm.mem("ckpt.staging", staging):
            for name in written:
                mat = state[name]
                tiles = (
                    writebehind.tiles(name, mat) if writebehind is not None
                    else list(zip(mat.owned_rects, mat.tiles))
                )
                store.put_tiles(ckpt_id, name, comm.rank, tiles)
            comm.barrier()  # all tiles durable before the manifest publishes
        if writebehind is not None:
            writebehind.drain(comm)  # durable: release the staged snapshots
        if comm.rank == 0:
            store.put_manifest(build_manifest(
                ckpt_id, step, step_name, t, comm.size, state,
                kind=kind,
                stored_in={
                    name: (homes or {}).get(name, ckpt_id)
                    for name in state if name not in written
                },
            ))
        comm.barrier()  # manifest visible before anyone races ahead
    return ckpt_id, t


def restart(
    comm: Comm,
    store: CheckpointStore,
    manifest: dict | None = None,
) -> tuple[State, int]:
    """Rebuild pipeline state from a checkpoint onto ``comm``.

    ``comm`` may have a *different* (typically smaller) size than the
    world that wrote the checkpoint: each old rank ``r``'s tiles are
    dealt round-robin to new rank ``r % comm.size`` via an ``Explicit``
    distribution, and the next engine call redistributes them into its
    planned layout — no resize-aware store format needed.

    Delta manifests restore transparently: each matrix's payload is
    fetched from its ``stored_in`` checkpoint (its own id when absent),
    so a full+delta chain replays from the newest manifest alone.

    Returns ``(state, next_step)`` where ``next_step`` is the index of
    the first step that still has to run.
    """
    man = manifest if manifest is not None else store.latest_manifest()
    if man is None:
        raise CheckpointError("restart requested but the store holds no "
                              "checkpoint manifest")
    validate_manifest(man)
    old_n = int(man["nranks"])
    with comm.span("ckpt_restore", cat="ckpt", ckpt_id=man["ckpt_id"],
                   old_nranks=old_n, new_nranks=comm.size):
        state: State = {}
        for name in sorted(man["matrices"]):
            info = man["matrices"][name]
            mapping: dict[int, list[Rect]] = {}
            for new_rank in range(comm.size):
                rects: list[Rect] = []
                for old in range(new_rank, old_n, comm.size):
                    rects.extend(
                        Rect(*r) for r in info["rects"].get(str(old), [])
                    )
                mapping[new_rank] = rects
            home = info.get("stored_in", man["ckpt_id"])
            tiles = []
            for old in range(comm.rank, old_n, comm.size):
                tiles.extend(
                    tile for _rect, tile
                    in store.get_tiles(home, name, old)
                )
            # Restored tiles are store-made copies; charge the read-back
            # staging window until the matrix takes ownership.
            with comm.mem("ckpt.staging", sum(t.nbytes for t in tiles)):
                dist = Explicit.from_mapping(
                    (int(info["shape"][0]), int(info["shape"][1])),
                    comm.size, mapping,
                )
                state[name] = DistMatrix(comm, dist, tiles)
    return state, int(man["step"]) + 1


def _rebase(
    new_comm: Comm,
    store: CheckpointStore | None,
    state: State,
    updates: State,
) -> State:
    """Re-home the carried state after an in-call recovery shrank the comm.

    The step's ``updates`` already live on ``new_comm``; every carried
    matrix the step did not return is reloaded from the newest
    checkpoint (its tiles survive in the store even though some of their
    old owners are dead).
    """
    carried = [name for name in state if name not in updates]
    out: State = {}
    if carried:
        if store is None or store.latest_manifest() is None:
            raise CheckpointError(
                "a step recovered onto a shrunk communicator but no "
                "checkpoint holds the carried state "
                f"{carried}; run the pipeline with a store and a policy "
                "that checkpoints every call"
            )
        restored, _next = restart(new_comm, store)
        missing = [name for name in carried if name not in restored]
        if missing:
            raise CheckpointError(
                f"carried state {missing} is not in the latest checkpoint"
            )
        out = {name: restored[name] for name in carried}
    out.update(updates)
    return out


def run_pipeline(
    comm: Comm,
    steps: list[PipelineStep],
    init: Callable[[Comm], State],
    *,
    store: CheckpointStore | None = None,
    policy: CheckpointPolicy | None = None,
    max_restarts: int = 2,
    resume: bool = False,
) -> PipelineResult:
    """Run ``steps`` with checkpoint/restart; collective over ``comm``.

    ``init(comm)`` builds the initial state (step 0's inputs).  With a
    ``store`` and ``policy``, completed steps are checkpointed on the
    policy's cadence; a failure that escapes a step shrinks the world
    and resumes from the newest checkpoint (or from ``init`` if none was
    published yet).  ``resume=True`` starts from the store's newest
    checkpoint instead of ``init`` — the cross-run restart path, e.g.
    with a :class:`~repro.ckpt.store.DirStore` from a previous process.

    The first checkpoint of a chain — and the first after any
    communicator change — is a full snapshot; later ones are deltas
    holding only the matrices the intervening steps returned, staged
    through the write-behind buffer (module docstring).  The policy's
    ``full_interval`` can force periodic re-anchoring.

    Raises :class:`~repro.ft.errors.UnrecoverableError` when the restart
    budget is exhausted or a failure hits a single-rank communicator.
    """
    cur = comm
    restarts = 0
    ckpt_ids: list[str] = []
    t_last = 0.0
    wb = _WriteBehind()
    dirty: set[str] = set()  # matrices touched since the last checkpoint
    homes: dict[str, str] = {}  # matrix -> ckpt id backing its payload
    force_full = True
    since_full = 0
    if resume and store is not None and store.latest_manifest() is not None:
        state, i = restart(cur, store)
    else:
        state, i = init(cur), 0
    while i < len(steps):
        step = steps[i]
        try:
            with cur.phase("ckpt_step", step=i, step_name=step.name):
                updates = step.fn(cur, state)
            # A resilient step may have healed an in-call failure by
            # shrinking the communicator under us; its outputs then live
            # on the new comm and the carried state must follow.
            new_comm = next(
                (
                    mat.comm for mat in updates.values()
                    if getattr(mat, "comm", cur) is not cur
                ),
                None,
            )
            if new_comm is not None:
                # Staged snapshots belong to the old world; the next
                # checkpoint is a full snapshot on the new one.
                wb.drain(cur)
                state = _rebase(new_comm, store, state, updates)
                cur = new_comm
                dirty.clear()
                homes.clear()
                force_full = True
            else:
                state = {**state, **updates}
                if store is not None and policy is not None:
                    for name in sorted(updates):
                        wb.stage(cur, name, state[name])
                    dirty |= set(updates)
            done = i
            i += 1
            if (
                store is not None
                and policy is not None
                and policy.due(done, cur, t_last)
            ):
                full = (
                    force_full
                    or dirty >= set(state)
                    or (
                        policy.full_interval > 0
                        and since_full + 1 >= policy.full_interval
                    )
                )
                cid, t_last = save_checkpoint(
                    cur, store, done, step.name, state,
                    kind="full" if full else "delta",
                    dirty=dirty, homes=homes, writebehind=wb,
                )
                for name in state if full else dirty:
                    homes[name] = cid
                dirty.clear()
                force_full = False
                since_full = 0 if full else since_full + 1
                ckpt_ids.append(cid)
        except UnrecoverableError:
            raise
        except RankKilledError:
            # The transport auto-freed this rank's open memtrace spans
            # (ckpt.writebehind included) at the kill; freeing again
            # would double-count, so the buffer is abandoned, not
            # drained.
            wb.forget()
            if cur.size == 1:
                raise UnrecoverableError(
                    "rank killed on a single-rank communicator: nobody "
                    "is left to restart the pipeline",
                    recoveries=restarts,
                ) from None
            raise  # this rank is dead; survivors handle the restart
        except (RankFailedError, CommRevokedError):
            wb.drain(cur)  # survivors release their staged snapshots
            cur.revoke()
            _all_ok, survivors = cur.agree(False)
            restarts += 1
            if restarts > max_restarts:
                raise UnrecoverableError(
                    f"pipeline restart budget exhausted "
                    f"(max_restarts={max_restarts})",
                    recoveries=restarts,
                ) from None
            with cur.span("ckpt_restart", cat="ckpt", attempt=restarts,
                          survivors=len(survivors)):
                new_comm = cur.shrink(survivors)
                if new_comm.rank == 0:
                    new_comm.transport.add_ft(
                        new_comm.world_rank, recoveries=1,
                    )
                if store is not None and store.latest_manifest() is not None:
                    state, i = restart(new_comm, store)
                    if new_comm.rank == 0:
                        preserved = sum(s.flops for s in steps[:i])
                        if preserved:
                            new_comm.transport.add_ft(
                                new_comm.world_rank,
                                reused_flops=preserved,
                            )
                else:
                    state, i = init(new_comm), 0
                cur = new_comm
                dirty.clear()
                homes.clear()
                force_full = True
                since_full = 0
    wb.drain(cur)  # a trailing un-checkpointed step leaves staged bytes
    return PipelineResult(
        state=state, comm=cur, restarts=restarts, checkpoints=ckpt_ids,
    )
