"""Pluggable checkpoint stores: an in-memory "disk" and a real directory.

A store outlives any rank: it is the simulation's stand-in for a
parallel file system, so tiles written by a rank that is later killed
remain readable — which is exactly what distinguishes checkpoint/restart
from the ft layer's buddy backups (those die with their holder).

Both backends are thread-safe (ranks are threads) and copy array
payloads on the way in and out, so a checkpoint can never alias live
compute buffers.  Checkpoint ids are opaque strings minted by the
pipeline from the *virtual* clock (``stepNNNN-t<seconds>``), keeping the
store's key space replay-deterministic.
"""

from __future__ import annotations

import json
import os
import threading
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from ..layout.blocks import Rect
from ..mpi.errors import VMpiError


class CheckpointError(VMpiError):
    """A checkpoint could not be written, found, or restored."""


class CheckpointStore(ABC):
    """Where checkpoints live.  All methods are callable from any rank.

    ``bytes_written`` accumulates the tile payload bytes accepted by
    :meth:`put_tiles` over the store's lifetime — the observable that
    makes incremental (delta) checkpointing measurable: a dirty-only
    checkpoint grows the counter by strictly less than a full snapshot.
    """

    bytes_written: int = 0

    @abstractmethod
    def put_tiles(
        self, ckpt_id: str, matrix: str, rank: int,
        rects_tiles: list[tuple[Rect, np.ndarray]],
    ) -> None:
        """Persist one rank's ``(rect, tile)`` list for one matrix."""

    @abstractmethod
    def get_tiles(
        self, ckpt_id: str, matrix: str, rank: int
    ) -> list[tuple[Rect, np.ndarray]]:
        """Read back exactly what :meth:`put_tiles` stored, in order."""

    @abstractmethod
    def put_manifest(self, manifest: dict) -> None:
        """Publish a checkpoint: only manifested checkpoints exist."""

    @abstractmethod
    def manifests(self) -> list[dict]:
        """All published manifests, oldest first."""

    def latest_manifest(self) -> dict | None:
        ms = self.manifests()
        return ms[-1] if ms else None


class MemoryStore(CheckpointStore):
    """The in-memory "disk": survives rank death, dies with the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tiles: dict[tuple[str, str, int], list[tuple[Rect, np.ndarray]]] = {}
        self._manifests: list[dict] = []
        self.bytes_written = 0

    def put_tiles(self, ckpt_id, matrix, rank, rects_tiles):
        copied = [(rect, np.array(tile, copy=True)) for rect, tile in rects_tiles]
        with self._lock:
            self._tiles[(ckpt_id, matrix, rank)] = copied
            self.bytes_written += sum(t.nbytes for _r, t in copied)

    def get_tiles(self, ckpt_id, matrix, rank):
        with self._lock:
            stored = self._tiles.get((ckpt_id, matrix, rank))
            if stored is None:
                raise CheckpointError(
                    f"checkpoint {ckpt_id!r} has no tiles for matrix "
                    f"{matrix!r} rank {rank}"
                )
            return [(rect, tile.copy()) for rect, tile in stored]

    def put_manifest(self, manifest):
        with self._lock:
            self._manifests.append(json.loads(json.dumps(manifest)))

    def manifests(self):
        with self._lock:
            return [json.loads(json.dumps(m)) for m in self._manifests]


class DirStore(CheckpointStore):
    """A real directory backend: ``.npy`` tiles plus JSON manifests.

    Layout::

        root/
          manifests.jsonl              # one manifest per line, append order
          <ckpt_id>/
            <matrix>.r<rank>.json      # the rank's rect list
            <matrix>.r<rank>.<i>.npy   # one tile per rect, same order

    Because manifests are appended only after every rank's tiles landed
    (the pipeline barriers in between), a crash mid-checkpoint leaves
    orphan tile files but never a readable half-checkpoint.

    Every file lands via write-to-temp-name + ``os.replace``: a rank
    killed mid-write can strand a ``*.tmp`` orphan but never a
    truncated ``.npy`` or rect-list JSON under the final name, so a
    later ``resume=True`` run can never load half a tile.  A torn
    trailing line in ``manifests.jsonl`` (appends are not atomic) is
    tolerated by the reader: an unparsable line is an unpublished
    checkpoint, not an error.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.bytes_written = 0

    def _rank_base(self, ckpt_id: str, matrix: str, rank: int) -> Path:
        d = self.root / ckpt_id
        d.mkdir(parents=True, exist_ok=True)
        return d / f"{matrix}.r{rank}"

    def put_tiles(self, ckpt_id, matrix, rank, rects_tiles):
        base = self._rank_base(ckpt_id, matrix, rank)
        for i, (_rect, tile) in enumerate(rects_tiles):
            # The temp name keeps the rank suffix, so concurrent ranks
            # never collide, and keeps the .npy extension so np.save
            # does not append a second one.
            tmp = f"{base}.{i}.tmp.npy"
            np.save(tmp, np.ascontiguousarray(tile))
            os.replace(tmp, f"{base}.{i}.npy")
        meta = {"rects": [[r.r0, r.r1, r.c0, r.c1] for r, _t in rects_tiles]}
        # NB: not Path.with_suffix — it would strip the ".r<rank>" part
        # and collide every rank onto one file.
        meta_tmp = base.parent / (base.name + ".json.tmp")
        meta_tmp.write_text(json.dumps(meta))
        os.replace(meta_tmp, base.parent / (base.name + ".json"))
        with self._lock:
            self.bytes_written += sum(t.nbytes for _r, t in rects_tiles)

    def get_tiles(self, ckpt_id, matrix, rank):
        base = self.root / ckpt_id / f"{matrix}.r{rank}"
        meta_path = base.parent / (base.name + ".json")
        if not meta_path.exists():
            raise CheckpointError(
                f"checkpoint {ckpt_id!r} has no tiles for matrix "
                f"{matrix!r} rank {rank} under {self.root}"
            )
        rects = [Rect(*r) for r in json.loads(meta_path.read_text())["rects"]]
        return [
            (rect, np.load(f"{base}.{i}.npy"))
            for i, rect in enumerate(rects)
        ]

    def put_manifest(self, manifest):
        line = json.dumps(manifest, sort_keys=True)
        with self._lock:
            with open(self.root / "manifests.jsonl", "a") as fh:
                fh.write(line + "\n")

    def manifests(self):
        path = self.root / "manifests.jsonl"
        if not path.exists():
            return []
        with self._lock:
            text = path.read_text()
        out = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                # A rank killed mid-append tears the trailing line; the
                # checkpoint it described was never published.
                continue
        return out
