"""Fault tolerance for CA3DMM on the virtual MPI runtime.

Two protection paths over the deterministic fault injector
(:mod:`repro.mpi.faults`), documented in ``docs/RECOVERY.md``:

* **rank-failure recovery** — :func:`resilient_multiply` wraps the
  engine in a ULFM-style revoke/agree/shrink loop with buddy-backed
  input redistribution and grid re-planning for the survivor count;
* **ABFT** — :class:`AbftPolicy`/:class:`AbftGuard` carry
  Huang-Abraham checksum borders through the Cannon stage so corrupted
  partial-C blocks are detected, located, and recomputed
  (:mod:`repro.ft.abft`).
"""

from .abft import AbftGuard, AbftPolicy, augment_a, augment_b, block_checksum_errors
from .errors import CorruptionError, FtError, UnrecoverableError
from .recovery import resilient_multiply

__all__ = [
    "AbftGuard",
    "AbftPolicy",
    "augment_a",
    "augment_b",
    "block_checksum_errors",
    "CorruptionError",
    "FtError",
    "UnrecoverableError",
    "resilient_multiply",
]
