"""ULFM-style shrink-replan-redistribute recovery for CA3DMM.

:func:`resilient_multiply` wraps the :class:`~repro.core.ca3dmm.Ca3dmm`
engine in the classic ULFM recovery loop.  Before each attempt every
rank backs up its input tiles to a *buddy* (the next rank around the
ring), so the inputs survive any single failure — and any wider failure
pattern that never takes out a rank and its buddy together.  Then:

1. **run** — the attempt executes normally; a rank killed by a
   ``RankFault(kill=True)`` rule dies silently, and the first survivor
   to touch it gets :class:`~repro.mpi.errors.RankFailedError`
   (``MPI_ERR_PROC_FAILED``).
2. **revoke** — the detector revokes the world
   (:meth:`~repro.mpi.comm.Comm.revoke`): every rank blocked in — or
   about to enter — a communication call unblocks with
   :class:`~repro.mpi.errors.CommRevokedError` (``MPI_ERR_REVOKED``),
   so nobody is left stranded in a half-finished collective.
3. **agree** — all survivors join :meth:`~repro.mpi.comm.Comm.agree`
   (``MPIX_Comm_agree``) and learn a consistent verdict plus survivor
   snapshot.  Success returns the result; failure proceeds to:
4. **shrink + re-plan + redistribute** —
   :meth:`~repro.mpi.comm.Comm.shrink` builds the survivor
   communicator; the CA3DMM grid optimizer re-solves eq. (4)-(7) for
   the new process count (the optimizer works for *any* P, which is
   what makes this recovery style viable); and the surviving input
   tiles — each dead rank's restored from its buddy — are re-expressed
   as an :class:`~repro.layout.distributions.Explicit` layout over the
   survivors.  The next attempt's engine redistributes them to its new
   native layout through the ordinary machinery.

The loop is bounded by ``max_recoveries``; exhausting it — or losing a
rank together with its buddy — raises a typed
:class:`~repro.ft.errors.UnrecoverableError`.

Note the recovered C is produced by a *different* grid (P' ranks), so
partial sums accumulate in a different order: the result matches the
clean run to numerical roundoff, not bit-for-bit (the ABFT path, which
re-runs the identical schedule, is bit-identical; see
``docs/RECOVERY.md``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.ca3dmm import Ca3dmm, _norm_op
from ..grid.optimizer import DEFAULT_L, GridSpec
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE
from ..mpi.errors import CommRevokedError, RankFailedError
from .abft import AbftPolicy
from .errors import FtError, UnrecoverableError

_TAG_BACKUP = INTERNAL_TAG_BASE + 501


def _exchange_backups(comm: Comm, mats: tuple[DistMatrix, ...]):
    """Ring backup: my tiles go to rank+1; rank-1's tiles come to me.

    Returns the left neighbour's ``[(rect, tile), ...]`` list per
    matrix, or None on a single-rank communicator.
    """
    if comm.size == 1:
        return None
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = [list(zip(m.owned_rects, m.tiles)) for m in mats]
    with comm.span("ft_backup", cat="ft"):
        return comm.sendrecv(payload, right, left, _TAG_BACKUP, _TAG_BACKUP)


def _survivor_layout(
    old_dist: Distribution,
    old_group: tuple[int, ...],
    survivors: tuple[int, ...],
    recoveries: int,
) -> tuple[Explicit, dict[int, int], list[int]]:
    """The post-shrink layout: every survivor derives it identically.

    Returns ``(dist, buddy_of, dead)`` where ``dist`` maps new local
    ranks to their old rects plus any dead left-neighbour's rects,
    ``buddy_of`` maps each dead world rank to the world rank holding
    its backup, and ``dead`` lists the casualties in old-rank order.
    """
    alive = set(survivors)
    dead = [w for w in old_group if w not in alive]
    w2old = {w: i for i, w in enumerate(old_group)}
    size = len(old_group)
    buddy_of: dict[int, int] = {}
    for d in dead:
        buddy = old_group[(w2old[d] + 1) % size]
        if buddy not in alive:
            raise UnrecoverableError(
                f"rank {d} and its backup buddy {buddy} both failed",
                recoveries=recoveries,
            )
        buddy_of[d] = buddy
    mapping = {}
    for new_local, w in enumerate(survivors):
        rects = list(old_dist.owned_rects(w2old[w]))
        for d in dead:
            if buddy_of[d] == w:
                rects.extend(old_dist.owned_rects(w2old[d]))
        mapping[new_local] = rects
    dist = Explicit.from_mapping(old_dist.shape, len(survivors), mapping)
    return dist, buddy_of, dead


def _recover_matrix(
    new_comm: Comm,
    old_mat: DistMatrix,
    backup,
    old_group: tuple[int, ...],
    survivors: tuple[int, ...],
    recoveries: int,
) -> DistMatrix:
    """Rebuild one input matrix over the shrunk communicator."""
    dist, buddy_of, dead = _survivor_layout(
        old_mat.dist, old_group, survivors, recoveries
    )
    me = new_comm.world_rank
    tiles = list(old_mat.tiles)
    for d in dead:
        if buddy_of[d] != me:
            continue
        # d is my left neighbour on the old ring; the backup I hold is
        # exactly its (rect, tile) list, already in rect order.
        n_rects = len(old_mat.dist.owned_rects(old_group.index(d)))
        if backup is None or len(backup) != n_rects:
            raise UnrecoverableError(
                f"backup for failed rank {d} is missing or incomplete "
                f"(rank died before the backup exchange finished)",
                recoveries=recoveries,
            )
        tiles.extend(tile for _rect, tile in backup)
    return DistMatrix(new_comm, dist, tiles)


def _resolve_c_dist(c_dist, comm: Comm):
    if c_dist is None:
        return None
    if callable(c_dist):
        return c_dist(comm)
    if c_dist.nranks != comm.size:
        raise FtError(
            f"c_dist spans {c_dist.nranks} ranks but the communicator "
            f"now has {comm.size}; pass a callable c_dist (comm -> "
            f"Distribution) so the output layout can follow recovery"
        )
    return c_dist


def resilient_multiply(
    comm: Comm,
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | Callable[[Comm], Distribution] | None = None,
    transa: bool | str = False,
    transb: bool | str = False,
    alpha: float = 1.0,
    grid: GridSpec | None = None,
    l: float = DEFAULT_L,
    shifts_per_gemm: int = 1,
    abft: bool | AbftPolicy = False,
    max_recoveries: int = 1,
) -> DistMatrix:
    """``C = alpha * op(A) x op(B)``, surviving rank deaths and corruption.

    Drop-in for the fault-free engines, with three differences:

    * ``c_dist`` may be a *callable* ``comm -> Distribution`` so the
      requested output layout can be rebuilt for the survivor count
      (a plain Distribution works only while no rank dies).
    * ``abft=True`` (or an :class:`AbftPolicy`) turns on checksum
      protection of the Cannon stage.
    * the returned matrix lives on the *final* communicator —
      ``result.comm`` is the shrunk comm after any recovery, and killed
      ranks never return at all.

    ``max_recoveries`` bounds the shrink-replan-redistribute rounds;
    one more failure raises :class:`UnrecoverableError` on every
    survivor (aborting the world, as an unhandled error does).
    """
    transa, _ = _norm_op(transa)
    transb, _ = _norm_op(transb)
    am, an = a.shape
    bm, bn = b.shape
    m, k = (an, am) if transa else (am, an)
    k2, n = (bn, bm) if transb else (bm, bn)
    if k != k2:
        raise ValueError(
            f"inner dimensions differ: op(A) is {m}x{k}, op(B) is {k2}x{n}"
        )
    abft_policy: AbftPolicy | None
    if abft is True:
        abft_policy = AbftPolicy()
    elif isinstance(abft, AbftPolicy):
        abft_policy = abft
    else:
        abft_policy = None

    cur_comm, cur_a, cur_b = comm, a, b
    cur_grid = grid
    recoveries = 0
    while True:
        backups = None
        c: DistMatrix | None = None
        ok = True
        try:
            # The ``ft_attempt`` phase is entered as the attempt's very
            # first action — nothing before it can raise — so its entry
            # count is a deterministic per-attempt anchor for
            # ``RankFault`` rules (a kill keyed on it dies *before* the
            # backup exchange, i.e. with its current tiles unprotected).
            with cur_comm.phase("ft_attempt", attempt=recoveries + 1):
                backups = _exchange_backups(cur_comm, (cur_a, cur_b))
                engine = Ca3dmm(
                    cur_comm, m, n, k,
                    grid=cur_grid, l=l,
                    shifts_per_gemm=shifts_per_gemm,
                    abft=abft_policy,
                )
                c = engine.multiply(
                    cur_a, cur_b,
                    c_dist=_resolve_c_dist(c_dist, cur_comm),
                    transa=transa, transb=transb, alpha=alpha,
                )
        except (RankFailedError, CommRevokedError):
            cur_comm.revoke()
            ok = False
        all_ok, survivors = cur_comm.agree(ok)
        if all_ok:
            return c  # type: ignore[return-value]  (all voted ok => c is set)
        recoveries += 1
        cur_comm.transport.add_ft(cur_comm.world_rank, recoveries=1)
        if recoveries > max_recoveries:
            raise UnrecoverableError(
                f"recovery budget max_recoveries={max_recoveries} exhausted",
                recoveries=recoveries,
            )
        with cur_comm.span(
            "ft_recover", cat="ft",
            attempt=recoveries, survivors=len(survivors),
        ):
            old_group = cur_comm.group
            new_comm = cur_comm.shrink(survivors)
            cur_a = _recover_matrix(
                new_comm, cur_a, backups[0] if backups else None,
                old_group, survivors, recoveries,
            )
            cur_b = _recover_matrix(
                new_comm, cur_b, backups[1] if backups else None,
                old_group, survivors, recoveries,
            )
            cur_comm = new_comm
            cur_grid = None  # re-run the grid optimizer for P' ranks
