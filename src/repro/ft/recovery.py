"""ULFM-style shrink-replan-redistribute recovery for CA3DMM.

:func:`resilient_multiply` wraps the :class:`~repro.core.ca3dmm.Ca3dmm`
engine in the classic ULFM recovery loop.  Before each attempt every
rank backs up its input tiles to a *buddy* (the next rank around the
ring), so the inputs survive any single failure — and any wider failure
pattern that never takes out a rank and its buddy together.  Then:

1. **run** — the attempt executes normally; a rank killed by a
   ``RankFault(kill=True)`` rule dies silently, and the first survivor
   to touch it gets :class:`~repro.mpi.errors.RankFailedError`
   (``MPI_ERR_PROC_FAILED``).
2. **revoke** — the detector revokes the world
   (:meth:`~repro.mpi.comm.Comm.revoke`).  Revocation is
   quiescence-gated (see :meth:`~repro.mpi.transport.Transport.revoke`):
   survivors keep draining deliverable messages and are unwound with
   :class:`~repro.mpi.errors.CommRevokedError` (``MPI_ERR_REVOKED``)
   only once nothing can make progress, so the virtual clock at which
   each survivor observes the failure is replay-deterministic.
3. **agree** — all survivors join :meth:`~repro.mpi.comm.Comm.agree`
   (``MPIX_Comm_agree``) and learn a consistent verdict plus survivor
   snapshot.  Success returns the result; failure proceeds to:
4. **shrink + re-plan + redistribute** —
   :meth:`~repro.mpi.comm.Comm.shrink` builds the survivor
   communicator; the CA3DMM grid optimizer re-solves eq. (4)-(7) for
   the new process count (the optimizer works for *any* P, which is
   what makes this recovery style viable); and the surviving input
   tiles — each dead rank's restored from its buddy — are re-expressed
   as an :class:`~repro.layout.distributions.Explicit` layout over the
   survivors.  The next attempt's engine redistributes them to its new
   native layout through the ordinary machinery.

**Partial-result reuse.**  A failed attempt is not a total loss: every
surviving active rank whose Cannon stage completed retains its verified
partial C block (the engine's ``on_partial`` hook fires after the ABFT
guard, before the k-group reduce-scatter).  After the shrink, the
survivors agree — one allgather — on exactly which ``(ik, i, j)`` cells
were retained.  K-task groups that survived *complete* (all ``pm x pn``
blocks of that k-slice) are reused wholesale: the missing k-slices are
multiplied as one compacted sub-problem and the retained group
contributions are redistributed and summed in.  Groups that survived
only *partially* are salvaged per cell: each truly missing
``(i, j, k)`` cell is recomputed as its own compacted sub-multiply
(rows ``i``, columns ``j``, k-slice ``ik`` of the inputs), and the
retained cells of the group ride along unrecomputed — so a multi-kill
round redoes only the work that actually died.  The round charges an
exact ``reused_flops``-vs-``recomputed_flops`` metrics pair (they sum
to ``2mnk`` by construction).  If the reuse attempt itself fails, the
retained partials are dropped and recovery falls back to a full
recompute — reuse is a one-shot optimization, never a correctness
dependency.

The loop is bounded by ``max_recoveries``; exhausting it — or losing a
rank together with its buddy — raises a typed
:class:`~repro.ft.errors.UnrecoverableError`.

Note the recovered C is produced by a *different* grid (P' ranks), so
partial sums accumulate in a different order: the result matches the
clean run to numerical roundoff, not bit-for-bit (the ABFT path, which
re-runs the identical schedule, is bit-identical; see
``docs/RECOVERY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.ca3dmm import Ca3dmm, _norm_op
from ..core.plan import Ca3dmmPlan
from ..grid.optimizer import DEFAULT_L, GridSpec
from ..layout.blocks import Rect
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE
from ..mpi.errors import CommRevokedError, RankFailedError, RankKilledError
from .abft import AbftPolicy
from .errors import FtError, UnrecoverableError

_TAG_BACKUP = INTERNAL_TAG_BASE + 501


def _exchange_backups(comm: Comm, mats: tuple[DistMatrix, ...]):
    """Ring backup: my tiles go to rank+1; rank-1's tiles come to me.

    Returns the left neighbour's ``[(rect, tile), ...]`` list per
    matrix, or None on a single-rank communicator.
    """
    if comm.size == 1:
        return None
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = [list(zip(m.owned_rects, m.tiles)) for m in mats]
    with comm.span("ft_backup", cat="ft"):
        return comm.sendrecv(payload, right, left, _TAG_BACKUP, _TAG_BACKUP)


def _survivor_layout(
    old_dist: Distribution,
    old_group: tuple[int, ...],
    survivors: tuple[int, ...],
    recoveries: int,
) -> tuple[Explicit, dict[int, int], list[int]]:
    """The post-shrink layout: every survivor derives it identically.

    Returns ``(dist, buddy_of, dead)`` where ``dist`` maps new local
    ranks to their old rects plus any dead left-neighbour's rects,
    ``buddy_of`` maps each dead world rank to the world rank holding
    its backup, and ``dead`` lists the casualties in old-rank order.
    """
    alive = set(survivors)
    dead = [w for w in old_group if w not in alive]
    w2old = {w: i for i, w in enumerate(old_group)}
    size = len(old_group)
    buddy_of: dict[int, int] = {}
    for d in dead:
        buddy = old_group[(w2old[d] + 1) % size]
        if buddy not in alive:
            raise UnrecoverableError(
                f"rank {d} and its backup buddy {buddy} both failed",
                recoveries=recoveries,
            )
        buddy_of[d] = buddy
    mapping = {}
    for new_local, w in enumerate(survivors):
        rects = list(old_dist.owned_rects(w2old[w]))
        for d in dead:
            if buddy_of[d] == w:
                rects.extend(old_dist.owned_rects(w2old[d]))
        mapping[new_local] = rects
    dist = Explicit.from_mapping(old_dist.shape, len(survivors), mapping)
    return dist, buddy_of, dead


def _recover_matrix(
    new_comm: Comm,
    old_mat: DistMatrix,
    backup,
    old_group: tuple[int, ...],
    survivors: tuple[int, ...],
    recoveries: int,
) -> DistMatrix:
    """Rebuild one input matrix over the shrunk communicator."""
    dist, buddy_of, dead = _survivor_layout(
        old_mat.dist, old_group, survivors, recoveries
    )
    me = new_comm.world_rank
    tiles = list(old_mat.tiles)
    for d in dead:
        if buddy_of[d] != me:
            continue
        # d is my left neighbour on the old ring; the backup I hold is
        # exactly its (rect, tile) list, already in rect order.  The
        # rects must match the dead rank's slots in the *current*
        # layout identically — a stale backup from an earlier attempt
        # with a different layout would pass a bare length check and
        # silently corrupt the restored matrix.
        expected = old_mat.dist.owned_rects(old_group.index(d))
        if backup is None or len(backup) != len(expected):
            raise UnrecoverableError(
                f"backup for failed rank {d} is missing or incomplete "
                f"(rank died before the backup exchange finished)",
                recoveries=recoveries,
            )
        got_rects = [rect for rect, _tile in backup]
        if got_rects != expected:
            raise UnrecoverableError(
                f"backup for failed rank {d} is stale: it covers rects "
                f"{got_rects} but the current layout assigns {expected} "
                f"(backup from a prior attempt with a different layout)",
                recoveries=recoveries,
            )
        tiles.extend(tile for _rect, tile in backup)
    return DistMatrix(new_comm, dist, tiles)


def _resolve_c_dist(c_dist, comm: Comm):
    if c_dist is None:
        return None
    if callable(c_dist):
        return c_dist(comm)
    if c_dist.nranks != comm.size:
        raise FtError(
            f"c_dist spans {c_dist.nranks} ranks but the communicator "
            f"now has {comm.size}; pass a callable c_dist (comm -> "
            f"Distribution) so the output layout can follow recovery"
        )
    return c_dist


# ------------------------------------------------------ partial reuse -- #
@dataclass
class _ReusePlan:
    """Everything the reuse attempt needs, derived identically everywhere.

    ``plan`` is the *failed* attempt's plan (its k-ranges and C blocks
    name what was retained); ``coords`` maps each new local rank to the
    ``(ik, i, j)`` coordinates of the partial it retained; ``mine`` is
    this rank's retained (verified, unscaled) partial body, if any.
    ``reusable`` lists k-groups retained *complete*; ``partial`` maps
    each incompletely-retained k-group to the frozen set of ``(i, j)``
    cells that survived (per-cell salvage).
    """

    plan: Ca3dmmPlan
    coords: dict[int, tuple[int, int, int]]
    mine: np.ndarray | None
    reusable: frozenset[int]
    partial: dict[int, frozenset[tuple[int, int]]]

    @property
    def k_reused(self) -> int:
        return sum(
            self.plan.k_range(ik)[1] - self.plan.k_range(ik)[0]
            for ik in self.reusable
        )

    @property
    def k_missing(self) -> int:
        return self.plan.k - self.k_reused

    def reused_flops(self) -> float:
        """Exact flops the retained cells save (2·|cell|·k per cell)."""
        plan = self.plan
        f = 2.0 * plan.m * plan.n * self.k_reused
        for ik, cells in self.partial.items():
            k0, k1 = plan.k_range(ik)
            for i, j in cells:
                blk = plan.c_block(i, j)
                f += 2.0 * (blk.r1 - blk.r0) * (blk.c1 - blk.c0) * (k1 - k0)
        return f

    def recomputed_flops(self) -> float:
        """Exact flops the reuse round redoes; sums with reused to 2mnk."""
        plan = self.plan
        return 2.0 * plan.m * plan.n * plan.k - self.reused_flops()


def _gather_reuse(
    new_comm: Comm, old_plan: Ca3dmmPlan, mine
) -> _ReusePlan | None:
    """Agree (one allgather) on exactly which ``(ik, i, j)`` cells survived.

    ``mine`` is this rank's retained ``(ik, i, j, body)`` from the
    failed attempt, or None.  K-groups with *all* ``pm x pn`` blocks
    retained are reused wholesale; groups with some blocks retained are
    salvaged per cell.  Returns None only when nothing at all was
    retained (full recompute).
    """
    payload = None if mine is None else (mine[0], mine[1], mine[2])
    coords_list = new_comm.allgather(payload)
    coords = {r: c for r, c in enumerate(coords_list) if c is not None}
    needed = {(i, j) for i in range(old_plan.pm) for j in range(old_plan.pn)}
    reusable = set()
    partial: dict[int, frozenset[tuple[int, int]]] = {}
    for ik in range(old_plan.pk):
        got = {(i, j) for rik, i, j in coords.values() if rik == ik}
        if got == needed:
            reusable.add(ik)
        elif got:
            partial[ik] = frozenset(got)
    if not reusable and not partial:
        return None
    return _ReusePlan(
        plan=old_plan,
        coords=coords,
        mine=None if mine is None else mine[3],
        reusable=frozenset(reusable),
        partial=partial,
    )


def _compact_k(mat: DistMatrix, k_ranges, axis: int) -> DistMatrix:
    """Slice a DistMatrix to the concatenation of ``k_ranges`` along
    ``axis`` (0 = rows, 1 = cols), renumbering coordinates monotonically.

    Every rank derives the same :class:`Explicit` layout (the remap is a
    pure function of the old layout), so the compacted matrix can feed
    the engine's ordinary redistribution directly.
    """
    offsets = []
    total = 0
    for k0, k1 in k_ranges:
        offsets.append((k0, k1, total))
        total += k1 - k0
    mapping: dict[int, list[Rect]] = {}
    my_tiles: list[np.ndarray] = []
    me = mat.comm.rank
    for rank in range(mat.dist.nranks):
        rects = mat.dist.owned_rects(rank)
        out_rects: list[Rect] = []
        for ri, rect in enumerate(rects):
            lo, hi = (rect.r0, rect.r1) if axis == 0 else (rect.c0, rect.c1)
            for k0, k1, off in offsets:
                s0, s1 = max(lo, k0), min(hi, k1)
                if s0 >= s1:
                    continue
                n0, n1 = s0 - k0 + off, s1 - k0 + off
                if axis == 0:
                    out_rects.append(Rect(n0, n1, rect.c0, rect.c1))
                else:
                    out_rects.append(Rect(rect.r0, rect.r1, n0, n1))
                if rank == me:
                    tile = mat.tiles[ri]
                    piece = (
                        tile[s0 - lo:s1 - lo, :]
                        if axis == 0
                        else tile[:, s0 - lo:s1 - lo]
                    )
                    my_tiles.append(np.ascontiguousarray(piece))
        mapping[rank] = out_rects
    shape = (
        (total, mat.shape[1]) if axis == 0 else (mat.shape[0], total)
    )
    dist = Explicit.from_mapping(shape, mat.dist.nranks, mapping)
    return DistMatrix(mat.comm, dist, my_tiles)


def _reuse_multiply(
    cur_comm: Comm,
    cur_a: DistMatrix,
    cur_b: DistMatrix,
    reuse: _ReusePlan,
    *,
    c_dist,
    transa,
    transb,
    ta: bool,
    tb: bool,
    alpha: float,
    l: float,
    shifts_per_gemm: int,
    abft_policy: AbftPolicy | None,
) -> DistMatrix:
    """Recompute only the truly missing ``(i, j, k)`` cells; fold in the rest.

    K-slices with *nothing* retained are multiplied together as one
    compacted sub-problem (``m x n x k_miss``) on the shrunk grid.  Each
    complete retained k-group is expressed as an :class:`Explicit` block
    layout over its holders, redistributed to the output layout, and
    summed in.  Each *partially* retained k-group is salvaged per cell:
    every missing ``(i, j)`` block becomes its own compacted
    sub-multiply (``mb x nb x kb`` — rows ``i``, columns ``j``, k-slice
    ``ik`` of the inputs), and the computed cells plus the retained
    cells tile the group's full ``(m, n)`` contribution, which is
    redistributed and summed in like a complete group.  Retained bodies
    and per-cell products are unscaled; ``alpha`` is applied at the
    final accumulation.
    """
    plan_old = reuse.plan
    m, n = plan_old.m, plan_old.n
    verify = abft_policy is not None
    missing = sorted(
        ik for ik in range(plan_old.pk)
        if ik not in reuse.reusable and ik not in reuse.partial
    )
    k_ranges = [plan_old.k_range(ik) for ik in missing]
    k_miss = sum(k1 - k0 for k0, k1 in k_ranges)
    needed = {(i, j) for i in range(plan_old.pm) for j in range(plan_old.pn)}
    with cur_comm.span(
        "ft_reuse", cat="ft",
        reused_groups=len(reuse.reusable),
        partial_groups=len(reuse.partial),
        k_reused=reuse.k_reused,
        k_recomputed=k_miss,
    ):
        if k_miss:
            a_sub = _compact_k(cur_a, k_ranges, axis=0 if ta else 1)
            b_sub = _compact_k(cur_b, k_ranges, axis=1 if tb else 0)
            engine = Ca3dmm(
                cur_comm, m, n, k_miss,
                grid=None, l=l, shifts_per_gemm=shifts_per_gemm,
                abft=abft_policy,
            )
            final_dist = _resolve_c_dist(c_dist, cur_comm)
            if final_dist is None:
                final_dist = engine.plan.c_dist
            c = engine.multiply(
                a_sub, b_sub, c_dist=final_dist,
                transa=transa, transb=transb, alpha=alpha,
            )
        else:
            # Everything survived (whole or per-cell): nothing to batch,
            # only to combine.
            final_dist = _resolve_c_dist(c_dist, cur_comm)
            if final_dist is None:
                final_dist = Ca3dmmPlan(
                    m, n, plan_old.k, cur_comm.size, l=l
                ).c_dist
            c = DistMatrix.zeros(
                cur_comm, final_dist,
                dtype=np.promote_types(cur_a.dtype, cur_b.dtype),
            )

        def _accumulate(part: DistMatrix) -> DistMatrix:
            got = redistribute(part, final_dist, phase="redist",
                               verify=verify)
            return DistMatrix(
                cur_comm, final_dist,
                [
                    t + alpha * g.astype(t.dtype, copy=False)
                    for t, g in zip(c.tiles, got.tiles)
                ],
            )

        for ik in sorted(reuse.reusable):
            mapping = {
                r: [plan_old.c_block(i, j)]
                for r, (rik, i, j) in reuse.coords.items()
                if rik == ik
            }
            dist_ik = Explicit.from_mapping((m, n), cur_comm.size, mapping)
            my = reuse.coords.get(cur_comm.rank)
            tiles = (
                [np.ascontiguousarray(reuse.mine)]
                if reuse.mine is not None and my is not None and my[0] == ik
                else []
            )
            c = _accumulate(DistMatrix(cur_comm, dist_ik, tiles))

        for ik in sorted(reuse.partial):
            k0, k1 = plan_old.k_range(ik)
            cells = reuse.partial[ik]
            mapping = {r: [] for r in range(cur_comm.size)}
            my_tiles: list[np.ndarray] = []
            for r, (rik, i, j) in sorted(reuse.coords.items()):
                if rik != ik:
                    continue
                mapping[r].append(plan_old.c_block(i, j))
                if r == cur_comm.rank and reuse.mine is not None:
                    my_tiles.append(np.ascontiguousarray(reuse.mine))
            for i, j in sorted(needed - cells):
                blk = plan_old.c_block(i, j)
                # Compact the inputs to this cell's (rows, cols, k-slice):
                # first along k, then along the block's own dimension.
                a_cell = _compact_k(
                    _compact_k(cur_a, [(k0, k1)], axis=0 if ta else 1),
                    [(blk.r0, blk.r1)], axis=1 if ta else 0,
                )
                b_cell = _compact_k(
                    _compact_k(cur_b, [(k0, k1)], axis=1 if tb else 0),
                    [(blk.c0, blk.c1)], axis=0 if tb else 1,
                )
                cell_engine = Ca3dmm(
                    cur_comm, blk.r1 - blk.r0, blk.c1 - blk.c0, k1 - k0,
                    grid=None, l=l, shifts_per_gemm=shifts_per_gemm,
                    abft=abft_policy,
                )
                c_cell = cell_engine.multiply(
                    a_cell, b_cell, transa=transa, transb=transb, alpha=1.0,
                )
                # Shift the cell-local result into (m, n) coordinates and
                # graft its rects into the group's layout.
                for r in range(cur_comm.size):
                    for rect in c_cell.dist.owned_rects(r):
                        if rect.is_empty():
                            continue
                        mapping[r].append(Rect(
                            rect.r0 + blk.r0, rect.r1 + blk.r0,
                            rect.c0 + blk.c0, rect.c1 + blk.c0,
                        ))
                for rect, tile in zip(c_cell.owned_rects, c_cell.tiles):
                    if rect.is_empty():
                        continue
                    my_tiles.append(tile)
            dist_ik = Explicit.from_mapping((m, n), cur_comm.size, mapping)
            c = _accumulate(DistMatrix(cur_comm, dist_ik, my_tiles))
    return c


def _fill_salvage_report(
    report: list, plan: Ca3dmmPlan, reuse: _ReusePlan | None
) -> None:
    """Per-(ik, i, j) cell table of what a recovery round reused vs redid.

    Derived from the agreed reuse plan, so every rank fills an identical
    table.  ``reuse=None`` means a full recompute.
    """
    report.clear()
    for ik in range(plan.pk):
        k0, k1 = plan.k_range(ik)
        for j in range(plan.pn):
            for i in range(plan.pm):
                blk = plan.c_block(i, j)
                reused = reuse is not None and (
                    ik in reuse.reusable
                    or (i, j) in reuse.partial.get(ik, frozenset())
                )
                report.append({
                    "ik": ik,
                    "i": i,
                    "j": j,
                    "rect": (blk.r0, blk.r1, blk.c0, blk.c1),
                    "flops": 2.0 * (blk.r1 - blk.r0) * (blk.c1 - blk.c0)
                    * (k1 - k0),
                    "status": "reused" if reused else "recomputed",
                })


def resilient_multiply(
    comm: Comm,
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | Callable[[Comm], Distribution] | None = None,
    transa: bool | str = False,
    transb: bool | str = False,
    alpha: float = 1.0,
    grid: GridSpec | None = None,
    l: float = DEFAULT_L,
    shifts_per_gemm: int = 1,
    abft: bool | AbftPolicy = False,
    max_recoveries: int = 1,
    salvage_report: list | None = None,
) -> DistMatrix:
    """``C = alpha * op(A) x op(B)``, surviving rank deaths and corruption.

    Drop-in for the fault-free engines, with three differences:

    * ``c_dist`` may be a *callable* ``comm -> Distribution`` so the
      requested output layout can be rebuilt for the survivor count
      (a plain Distribution works only while no rank dies).
    * ``abft=True`` (or an :class:`AbftPolicy`) turns on checksum
      protection of the Cannon stage.
    * the returned matrix lives on the *final* communicator —
      ``result.comm`` is the shrunk comm after any recovery, and killed
      ranks never return at all.

    A recovery round reuses surviving per-``(i, j)`` partials when it
    can (see the module docstring): `reused_flops` counts the work
    saved and `recomputed_flops` the work redone (global flops, charged
    once per round by the lowest surviving rank; the pair sums to
    ``2mnk`` exactly for a single-round recovery).  ``salvage_report``,
    when given a list, is cleared and filled — identically on every
    surviving rank — with one row per ``(ik, i, j)`` cell of the failed
    plan (``{"ik", "i", "j", "rect", "flops", "status"}``, status
    ``reused`` or ``recomputed``) describing what the recovery round
    salvaged; it stays empty when no recovery happens.

    ``max_recoveries`` bounds the shrink-replan-redistribute rounds;
    one more failure raises :class:`UnrecoverableError` on every
    survivor (aborting the world, as an unhandled error does).  A kill
    on a single-rank communicator is *immediately* unrecoverable — no
    survivor holds a backup and nobody is left to agree — and raises
    the same typed error instead of an untyped abort.
    """
    ta, _ = _norm_op(transa)
    tb, _ = _norm_op(transb)
    am, an = a.shape
    bm, bn = b.shape
    m, k = (an, am) if ta else (am, an)
    k2, n = (bn, bm) if tb else (bm, bn)
    if k != k2:
        raise ValueError(
            f"inner dimensions differ: op(A) is {m}x{k}, op(B) is {k2}x{n}"
        )
    abft_policy: AbftPolicy | None
    if abft is True:
        abft_policy = AbftPolicy()
    elif isinstance(abft, AbftPolicy):
        abft_policy = abft
    else:
        abft_policy = None

    cur_comm, cur_a, cur_b = comm, a, b
    cur_grid = grid
    recoveries = 0
    reuse: _ReusePlan | None = None
    while True:
        backups = None
        c: DistMatrix | None = None
        ok = True
        attempt_plan: Ca3dmmPlan | None = None
        retained: list = [None]  # this attempt's (ik, i, j, body), if any
        try:
            # The ``ft_attempt`` phase is entered as the attempt's very
            # first action — nothing before it can raise — so its entry
            # count is a deterministic per-attempt anchor for
            # ``RankFault`` rules (a kill keyed on it dies *before* the
            # backup exchange, i.e. with its current tiles unprotected).
            with cur_comm.phase("ft_attempt", attempt=recoveries + 1):
                backups = _exchange_backups(cur_comm, (cur_a, cur_b))
                if reuse is not None:
                    c = _reuse_multiply(
                        cur_comm, cur_a, cur_b, reuse,
                        c_dist=c_dist, transa=transa, transb=transb,
                        ta=ta, tb=tb, alpha=alpha, l=l,
                        shifts_per_gemm=shifts_per_gemm,
                        abft_policy=abft_policy,
                    )
                else:
                    # The plan is a pure local computation, identical on
                    # every rank, so each survivor can later name what
                    # the failed attempt retained.
                    attempt_plan = Ca3dmmPlan(
                        m, n, k, cur_comm.size, grid=cur_grid, l=l
                    )

                    def _keep(role, body, _plan=attempt_plan, _cell=retained):
                        blk = _plan.c_block(role.i, role.j)
                        if body.shape == blk.shape:
                            _cell[0] = (role.ik, role.i, role.j, body.copy())

                    engine = Ca3dmm(
                        cur_comm, m, n, k,
                        grid=cur_grid, l=l,
                        shifts_per_gemm=shifts_per_gemm,
                        abft=abft_policy,
                    )
                    c = engine.multiply(
                        cur_a, cur_b,
                        c_dist=_resolve_c_dist(c_dist, cur_comm),
                        transa=transa, transb=transb, alpha=alpha,
                        on_partial=_keep,
                    )
        except RankKilledError:
            if cur_comm.size == 1:
                raise UnrecoverableError(
                    "rank killed on a single-rank communicator: no "
                    "survivor holds a backup and nobody is left to agree",
                    recoveries=recoveries,
                ) from None
            raise  # multi-rank: the thread ends silently, world continues
        except (RankFailedError, CommRevokedError):
            cur_comm.revoke()
            ok = False
        all_ok, survivors = cur_comm.agree(ok)
        if all_ok:
            return c  # type: ignore[return-value]  (all voted ok => c is set)
        recoveries += 1
        cur_comm.transport.add_ft(cur_comm.world_rank, recoveries=1)
        if recoveries > max_recoveries:
            raise UnrecoverableError(
                f"recovery budget max_recoveries={max_recoveries} exhausted",
                recoveries=recoveries,
            )
        with cur_comm.span(
            "ft_recover", cat="ft",
            attempt=recoveries, survivors=len(survivors),
        ):
            old_group = cur_comm.group
            new_comm = cur_comm.shrink(survivors)
            cur_a = _recover_matrix(
                new_comm, cur_a, backups[0] if backups else None,
                old_group, survivors, recoveries,
            )
            cur_b = _recover_matrix(
                new_comm, cur_b, backups[1] if backups else None,
                old_group, survivors, recoveries,
            )
            if reuse is None and attempt_plan is not None:
                reuse = _gather_reuse(new_comm, attempt_plan, retained[0])
                if salvage_report is not None:
                    _fill_salvage_report(salvage_report, attempt_plan, reuse)
            else:
                # The reuse attempt itself failed: drop the retained
                # partials and fall back to a full recompute.
                reuse = None
                if salvage_report is not None and attempt_plan is not None:
                    _fill_salvage_report(salvage_report, attempt_plan, None)
            # Charge the round's reuse/recompute balance (global flops,
            # once per round, on the lowest surviving rank).
            if new_comm.rank == 0:
                if reuse is not None:
                    new_comm.transport.add_ft(
                        new_comm.world_rank,
                        recomputed_flops=reuse.recomputed_flops(),
                        reused_flops=reuse.reused_flops(),
                    )
                else:
                    new_comm.transport.add_ft(
                        new_comm.world_rank,
                        recomputed_flops=2.0 * m * n * k,
                    )
            cur_comm = new_comm
            cur_grid = None  # re-run the grid optimizer for P' ranks
