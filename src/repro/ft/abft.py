"""Huang-Abraham checksums for the CA3DMM pipeline (ABFT).

Algorithm-based fault tolerance protects the numerically dominant step
of CA3DMM — Cannon's algorithm — against silent payload corruption
(the ``corrupt`` link rules of :mod:`repro.mpi.faults`, or a flaky
interconnect in the real world), and the same checksums now travel
through the surrounding stages: operands are augmented *before*
replication (so the replicate allgather is covered by the operand's
own border, :func:`operand_checksum_errors`), the bordered C block is
carried *through* the k-reduction (a sum of checksummed partials is
itself checksummed; strips are verified per rank after the
reduce-scatter, :func:`strip_checksum_errors`), and the closing
redistribution gets a CRC envelope in
:mod:`repro.layout.redistribute`.  Each rank augments its unskewed
operand blocks before the skew:

* A gets a *checksum row* appended: ``[A; 1ᵀA]`` — shape ``(r+1, k)``,
* B gets a *checksum column* appended: ``[B, B·1]`` — shape ``(k, c+1)``.

Augmentation is linear and per-block, so it commutes with everything
Cannon does: blocks in one grid row keep a consistent row count, blocks
in one grid column a consistent column count, and the inner k-extents
are unchanged.  The group then computes, with **no change to the Cannon
kernel**,

    Σ_t [A_t; 1ᵀA_t] [B_t, B_t·1]  =  [ C,   C·1 ]
                                      [ 1ᵀC, 1ᵀC·1 ]

i.e. the partial C block bordered by its own row/column/total
checksums.  :func:`block_checksum_errors` recomputes the borders from
the body and flags rows/columns whose sums disagree — locating the
corruption.  A corrupted *message* poisons a full row (A payload) or
column (B payload) of C, which is beyond single-element correction, so
the response is collective: every rank of the Cannon group re-runs the
stage from its retained unskewed blocks (:class:`AbftGuard`), bounded
by :class:`AbftPolicy.max_recomputes`.  One-shot ``corrupt_at`` hits
are consumed by the first (corrupted) pass, so the re-run is clean and
the final C is bit-identical to an unfaulted run.

The detection vote is an ``allreduce(MAX)`` of a Python int — a payload
containing no float arrays, so the corruption machinery (which flips
elements of inexact-dtype arrays, whether sent raw or inside pickled
containers) has nothing to flip: the agreement is incorruptible by
construction, not by exemption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..mpi.comm import Comm
from ..mpi.datatypes import MAX
from .errors import CorruptionError


@dataclass(frozen=True)
class AbftPolicy:
    """Tolerance and budget of the checksum verification."""

    #: Checksum residuals above ``rel_tol * max(1, |C_f|_max)`` count as
    #: corruption.  Injected flips change an element by ``1 + |v|``,
    #: orders of magnitude above float64 summation roundoff.
    rel_tol: float = 1e-8
    #: Cannon-stage recomputations allowed before :class:`CorruptionError`.
    max_recomputes: int = 2

    def __post_init__(self) -> None:
        if self.rel_tol <= 0:
            raise ValueError("rel_tol must be > 0")
        if self.max_recomputes < 0:
            raise ValueError("max_recomputes must be >= 0")


def augment_a(a: np.ndarray) -> np.ndarray:
    """Append the checksum row: ``[A; 1ᵀA]``, shape ``(r+1, k)``."""
    return np.vstack([a, a.sum(axis=0, keepdims=True)])


def augment_b(b: np.ndarray) -> np.ndarray:
    """Append the checksum column: ``[B, B·1]``, shape ``(k, c+1)``."""
    return np.hstack([b, b.sum(axis=1, keepdims=True)])


def block_checksum_errors(
    c_f: np.ndarray, rel_tol: float
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Row/column indices of the body whose checksums disagree.

    ``c_f`` is the bordered ``(r+1, c+1)`` block.  Returns
    ``(bad_rows, bad_cols)``; both empty means the block verifies.  A
    mismatch only in the corner total is reported as ``((-1,), (-1,))``
    — it cannot be located further, but a recompute clears it.
    """
    body = c_f[:-1, :-1]
    scale = float(np.abs(c_f).max()) if c_f.size else 0.0
    tol = rel_tol * max(1.0, scale)
    bad_cols = np.flatnonzero(np.abs(body.sum(axis=0) - c_f[-1, :-1]) > tol)
    bad_rows = np.flatnonzero(np.abs(body.sum(axis=1) - c_f[:-1, -1]) > tol)
    if not bad_rows.size and not bad_cols.size:
        if abs(float(body.sum()) - float(c_f[-1, -1])) > tol:
            return (-1,), (-1,)
    return tuple(int(i) for i in bad_rows), tuple(int(i) for i in bad_cols)


def operand_checksum_errors(
    op_f: np.ndarray, row_checksum: bool, rel_tol: float
) -> tuple[int, ...]:
    """Indices along the checksummed axis where an operand border disagrees.

    ``op_f`` is an augmented operand: ``[A; 1ᵀA]`` when ``row_checksum``
    (the appended *row* holds per-column sums), ``[B, B·1]`` otherwise
    (the appended *column* holds per-row sums).  Verifying the border
    against the body detects corruption of the operand itself — e.g. a
    flipped element in a replicate allgather round — before it is
    multiplied into C.
    """
    scale = float(np.abs(op_f).max()) if op_f.size else 0.0
    tol = rel_tol * max(1.0, scale)
    if row_checksum:
        body = op_f[:-1, :]
        bad = np.flatnonzero(np.abs(body.sum(axis=0) - op_f[-1, :]) > tol)
    else:
        body = op_f[:, :-1]
        bad = np.flatnonzero(np.abs(body.sum(axis=1) - op_f[:, -1]) > tol)
    return tuple(int(i) for i in bad)


def strip_checksum_errors(
    strip: np.ndarray, by_cols: bool, rel_tol: float
) -> tuple[int, ...]:
    """Indices where a reduced strip's carried checksum disagrees.

    After the bordered k-reduction, each rank owns a strip of the
    summed C block that still carries one checksum border: the checksum
    *row* (per-column sums) when the block was split ``by_cols``, the
    checksum *column* (per-row sums) otherwise.  Linearity of the
    reduction means a clean strip's border still matches its body; a
    mismatch pinpoints corruption injected by the reduce-scatter wire
    traffic itself.
    """
    return operand_checksum_errors(strip, by_cols, rel_tol)


class AbftGuard:
    """Verification/recompute driver for one rank's bordered C block.

    Built by :class:`~repro.core.ca3dmm.Ca3dmm` when ABFT is on; handed
    to :func:`~repro.core.reduce_c.reduce_partial_c`, which calls
    :meth:`verified` before the reduce-scatter so only clean strips are
    combined.
    """

    def __init__(
        self,
        comm: Comm,
        group_comm: Comm | None,
        policy: AbftPolicy,
        recompute: Callable[[], np.ndarray],
        flops: float,
    ):
        self.comm = comm  #: the world comm (spans, metrics)
        self.group_comm = group_comm  #: the s x s Cannon group (the vote)
        self.policy = policy
        self.recompute = recompute  #: re-runs the Cannon stage, clean
        self.flops = flops  #: local flops charged per recompute

    def verified(self, c_f: np.ndarray) -> np.ndarray:
        """Verify checksums; recompute until clean; return the stripped body."""
        return np.ascontiguousarray(self.verified_bordered(c_f)[:-1, :-1])

    def verified_bordered(self, c_f: np.ndarray) -> np.ndarray:
        """Verify checksums; recompute until clean; return the bordered block.

        Collective over the Cannon group: detection anywhere forces the
        whole group back into the (communicating) Cannon stage, so the
        re-run's shifts stay matched.  Raises :class:`CorruptionError`
        when ``max_recomputes`` is exhausted.  The bordered return keeps
        the checksum row/column alive so downstream stages (the
        k-reduction) can re-verify after further linear combination.
        """
        rounds = 0
        while True:
            bad_rows, bad_cols = block_checksum_errors(c_f, self.policy.rel_tol)
            bad = bool(bad_rows or bad_cols)
            if bad:
                self.comm.transport.add_ft(
                    self.comm.world_rank, detected=1, phase="cannon"
                )
            if self.group_comm is not None and self.group_comm.size > 1:
                any_bad = self.group_comm.allreduce(int(bad), op=MAX)
            else:
                any_bad = int(bad)
            if not any_bad:
                return c_f
            rounds += 1
            if rounds > self.policy.max_recomputes:
                raise CorruptionError(
                    self.comm.world_rank,
                    rounds - 1,
                    bad_rows,
                    bad_cols,
                    phase="cannon",
                )
            with self.comm.span(
                "abft_recompute",
                cat="ft",
                round=rounds,
                bad_rows=len(bad_rows),
                bad_cols=len(bad_cols),
            ):
                # The recomputed bordered block coexists with the
                # corrupted one until the rebind below; charge that
                # second copy to the checksum span.
                with self.comm.mem("abft.checksum", c_f.nbytes):
                    c_f = self.recompute()
            self.comm.transport.add_ft(
                self.comm.world_rank, recomputed_flops=self.flops
            )
