"""Typed failures of the fault-tolerance layer.

These are *application-level* errors: they propagate out of the rank
function like any other exception (the runtime then aborts the world),
but carry enough structure for tests and drivers to distinguish "the
recovery budget ran out" from "the data could not be protected".
"""

from __future__ import annotations


class FtError(Exception):
    """Base class for fault-tolerance errors."""


class UnrecoverableError(FtError):
    """Recovery was attempted but cannot restore a correct computation.

    Raised when the retry budget (``max_recoveries``) is exhausted, or
    when the surviving ranks no longer hold (or back up) every piece of
    the input operands — e.g. a rank *and* its backup buddy both died.
    """

    def __init__(self, reason: str, recoveries: int = 0):
        self.reason = reason
        self.recoveries = recoveries
        super().__init__(
            f"unrecoverable after {recoveries} recovery attempt(s): {reason}"
        )


class CorruptionError(FtError):
    """A checksum guard detected corruption that correction could not clear.

    Raised on the detecting rank when verification still fails after the
    correction budget for the guarded stage — ``AbftPolicy.max_recomputes``
    recomputations of the Cannon stage, re-replication of an operand,
    re-reduction of the checksummed strips, or redistribution resend
    rounds (e.g. a ``corrupt_prob`` rule that keeps hitting).  ``phase``
    names the pipeline stage whose guard gave up (``replicate`` /
    ``cannon`` / ``reduce`` / ``redist``).
    """

    def __init__(
        self,
        rank: int,
        recomputes: int,
        bad_rows=(),
        bad_cols=(),
        phase: str | None = None,
    ):
        self.rank = rank
        self.recomputes = recomputes
        self.bad_rows = tuple(int(i) for i in bad_rows)
        self.bad_cols = tuple(int(i) for i in bad_cols)
        self.phase = phase
        where = f" in phase {phase!r}" if phase else ""
        super().__init__(
            f"rank {rank}: checksum mismatch{where} persists after "
            f"{recomputes} correction attempt(s) "
            f"(bad rows {self.bad_rows}, bad cols {self.bad_cols})"
        )
