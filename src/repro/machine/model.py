"""Machine models: the α-β-γ cost parameters driving simulated time.

A :class:`MachineModel` prices three things:

* a point-to-point message of ``n`` bytes between two ranks — node-aware:
  ranks are mapped to nodes contiguously (``ranks_per_node`` per node);
  intra-node messages move at shared memory-bus rates, inter-node
  messages share the node's NIC among the ranks placed on it (the
  mechanism behind the paper's pure-MPI vs MPI+OpenMP study, Fig. 4),
* local compute (``flops · γ``, γ = 1 / sustained per-rank GEMM rate),
* for the GPU variant, PCIe staging of operands around each local GEMM
  plus an MVAPICH2-style reduce-scatter degradation above a message-size
  threshold (the effect Section IV-C blames for the square / large-K
  GPU gap).

``peak_gamma`` (1 / nominal peak rate) is kept separate from ``gamma``
so "percentage of peak" plots match the paper's convention of dividing
by the hardware's theoretical peak rather than the sustained GEMM rate.

Presets approximate the paper's testbed (Georgia Tech PACE-Phoenix:
2 x Xeon Gold 6226, 24 cores/node, 100 Gb/s InfiniBand, NVIDIA V100).
Absolute seconds are not the point of the reproduction — the ratios
between phases and between algorithms are.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters for the simulated cluster.

    Attributes
    ----------
    alpha:
        Inter-node message latency (seconds).
    nic_beta:
        Inverse bandwidth of a node's NIC in seconds/byte (the wire
        rate; 8e-11 ≈ 100 Gb/s).
    alpha_intra / beta_intra:
        Latency and per-rank inverse bandwidth for two ranks on the
        same node (shared memory transport).
    gamma:
        Seconds per flop of sustained local GEMM on one rank.
    peak_gamma:
        Seconds per flop at the hardware's *nominal* peak (used only
        for percent-of-peak reporting).
    cores_per_node:
        Physical cores per node (the OpenMP width in hybrid mode).
    ranks_per_node:
        Ranks mapped to each node in the current mode: ``cores_per_node``
        for pure MPI, 1 for hybrid, GPUs-per-node for GPU runs.
    nic_share:
        Effective NIC efficiency multiplier.  Per-rank inter-node
        bandwidth is ``nic_share / (nic_beta * ranks_per_node)``:
        values > 1 model the paper's observation that concurrent
        streams from many ranks per node extract more of the NIC than
        one rank's single stream does.
    gpu / gpu_stage_beta:
        Accelerator mode and its PCIe staging rate (seconds/byte).
    rs_degrade_threshold / rs_degrade_factor:
        Reduce-scatter pieces larger than the threshold (bytes) have
        their bandwidth term multiplied by the factor (MVAPICH2
        behaviour reported in the paper's GPU experiments).
    overlap:
        Compute/communication overlap capability of the async comm
        engine: ``"none"`` (default — every transfer is charged to the
        rank clock exactly as before the engine existed), ``"full"``
        (posted transfers and nonblocking collectives progress on a
        per-rank comm timeline with unlimited concurrency; waits charge
        only the uncovered remainder), or ``"partial"`` (same engine,
        but inter-node transfers of one rank serialize on its shared
        NIC).  When the engine is on, the ``nic_share`` stream bonus is
        capped at 1 — concurrency is then modeled, not fudged — see
        :attr:`beta`.
    """

    alpha: float = 1.8e-6
    nic_beta: float = 8.0e-11
    alpha_intra: float = 5.0e-7
    beta_intra: float = 2.5e-10
    gamma: float = 1.0 / 45e9
    peak_gamma: float = 1.0 / 86.4e9
    cores_per_node: int = 24
    ranks_per_node: int = 24
    nic_share: float = 1.0
    gpu: bool = False
    gpu_stage_beta: float = 0.0
    rs_degrade_threshold: float = float("inf")
    rs_degrade_factor: float = 1.0
    overlap: str = "none"

    #: Recognised ``overlap`` capabilities.
    OVERLAP_MODES = ("none", "full", "partial")

    def __post_init__(self) -> None:
        if self.overlap not in self.OVERLAP_MODES:
            raise ValueError(
                f"unknown overlap mode {self.overlap!r}; "
                f"expected one of {self.OVERLAP_MODES}"
            )

    # ------------------------------------------------------------------ #
    @property
    def overlap_enabled(self) -> bool:
        """True when the async comm engine models overlap explicitly."""
        return self.overlap != "none"

    @property
    def beta(self) -> float:
        """Effective per-rank inter-node inverse bandwidth (s/byte).

        With the async comm engine on (``overlap != "none"``) the
        ``nic_share`` multiplier is capped at 1: values > 1 are a
        stand-in for concurrent-stream overlap, and the engine now
        models that concurrency explicitly — letting the bonus stack on
        top would double-count the same effect.
        """
        share = self.nic_share
        if self.overlap_enabled:
            share = min(share, 1.0)
        return self.nic_beta * max(1, self.ranks_per_node) / share

    @property
    def peak_rate(self) -> float:
        """Nominal peak flop rate of one rank (flops/s)."""
        return 1.0 / self.peak_gamma

    def node_of(self, world_rank: int) -> int:
        """Node index for a rank under contiguous block mapping."""
        return world_rank // max(1, self.ranks_per_node)

    def same_node(self, r0: int, r1: int) -> bool:
        return self.node_of(r0) == self.node_of(r1)

    def msg_time(self, nbytes: float, src: int = 0, dst: int = 1) -> float:
        """Simulated transfer time of one point-to-point message."""
        if self.same_node(src, dst):
            return self.alpha_intra + self.beta_intra * nbytes
        return self.alpha + self.beta * nbytes

    def compute_time(self, flops: float) -> float:
        """Simulated time of ``flops`` floating-point operations."""
        return flops * self.gamma

    def gemm_time(self, m: int, n: int, k: int, stage_bytes: int = 0) -> float:
        """Simulated time of a local ``m x k`` by ``k x n`` GEMM.

        ``stage_bytes`` adds PCIe staging time in GPU mode (operand +
        result traffic around the accelerator).
        """
        t = self.compute_time(2.0 * m * n * k)
        if self.gpu and self.gpu_stage_beta > 0.0 and stage_bytes:
            t += self.gpu_stage_beta * stage_bytes
        return t

    def with_mode(self, mode: str) -> "MachineModel":
        """Return a copy configured for a parallelization mode.

        ``"mpi"``: one rank per core, 24 ranks sharing the NIC (with the
        stream-overlap bonus).  ``"hybrid"``: one rank per node with
        node-aggregate compute at a modest OpenMP-efficiency haircut and
        a single NIC stream.
        """
        if mode == "mpi":
            # Concurrent streams from 24 ranks saturate the NIC wire rate
            # (the overlap effect of [31] cited in the paper).
            return replace(self, ranks_per_node=self.cores_per_node, nic_share=1.0)
        if mode == "hybrid":
            # Threaded MKL on one node-sized block is about as efficient
            # as 24 rank-local GEMMs, so the pure-vs-hybrid contrast is
            # carried by communication — the paper's own explanation of
            # Fig. 4 (inter-node volume and per-group collective sizes).
            # A single MPI stream cannot saturate the NIC (~60% of wire).
            return replace(
                self,
                ranks_per_node=1,
                gamma=self.gamma / self.cores_per_node,
                peak_gamma=self.peak_gamma / self.cores_per_node,
                nic_share=0.6,
            )
        raise ValueError(f"unknown mode {mode!r}")

    def with_overlap(self, mode: str) -> "MachineModel":
        """Return a copy with the async comm engine set to ``mode``.

        ``"none"`` restores the legacy fully-serialized charging;
        ``"full"``/``"partial"`` enable the engine (see the class
        docstring).  GPU PCIe staging (``gemm_time(stage_bytes=...)``)
        is unchanged by the engine: staging is compute-side bus time and
        is charged exactly once in every mode.
        """
        return replace(self, overlap=mode)


def pace_phoenix_cpu(mode: str = "mpi") -> MachineModel:
    """CPU preset approximating the paper's PACE-Phoenix nodes."""
    return MachineModel().with_mode(mode)


def pace_phoenix_gpu() -> MachineModel:
    """GPU preset: 2 V100s per node, one rank per GPU.

    V100 sustained DGEMM ≈ 6.2 TF (7.0 TF nominal); PCIe gen3 x16
    stages at ≈ 12 GB/s.  The reduce-scatter threshold models the
    large-message MVAPICH2 degradation the paper observed on square
    problems (Section IV-C).
    """
    return MachineModel(
        gamma=1.0 / 6.2e12,
        peak_gamma=1.0 / 7.0e12,
        cores_per_node=24,
        ranks_per_node=2,
        gpu=True,
        gpu_stage_beta=1.0 / 12e9,
        rs_degrade_threshold=8 * 2 ** 20,
        rs_degrade_factor=2.5,
        nic_share=1.0,
    )


def laptop() -> MachineModel:
    """A small uniform-link model for tests: easy to reason about."""
    return MachineModel(
        alpha=1e-6,
        nic_beta=1e-10,
        alpha_intra=1e-6,
        beta_intra=1e-10,
        gamma=1e-11,
        peak_gamma=1e-11,
        cores_per_node=10 ** 9,  # everything lands on one "node":
        ranks_per_node=10 ** 9,  # uniform links via the intra path
        nic_share=1.0,
    )
