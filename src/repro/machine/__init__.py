"""Machine models and analytic collective costs (DESIGN.md §2-3)."""

from .collcost import (
    CollCost,
    allgather_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    p2p_cost,
    reduce_scatter_cost,
)
from .model import MachineModel, laptop, pace_phoenix_cpu, pace_phoenix_gpu

__all__ = [
    "MachineModel",
    "laptop",
    "pace_phoenix_cpu",
    "pace_phoenix_gpu",
    "CollCost",
    "allgather_cost",
    "bcast_cost",
    "reduce_scatter_cost",
    "alltoall_cost",
    "barrier_cost",
    "p2p_cost",
]
