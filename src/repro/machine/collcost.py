"""Closed-form α-β costs of the collectives, as used by the paper.

Section III-D of the paper assumes butterfly-style collectives with the
costs of Thakur, Rabenseifner & Gropp (IJHPCA 2005):

.. math::

    T_{allgather}(n, P) &= α \\log_2 P + β n (P-1)/P \\\\
    T_{broadcast}(n, P) &= α(\\log_2 P + P - 1) + 2 β n (P-1)/P \\\\
    T_{reduce\\_scatter}(n, P) &= α(P-1) + β n (P-1)/P

where ``n`` is the *total* message size in bytes.  The functions here
return ``(time_seconds, messages, bytes_sent_per_rank)`` triples so the
analytic engine can report latency (message counts) and volume alongside
time, and so tests can check the *executed* collectives against these
formulas.

Message counts mirror the algorithms actually implemented in
:mod:`repro.mpi.collectives` (Bruck allgather: ``ceil(log2 P)`` messages;
pairwise reduce-scatter / alltoall: ``P-1`` messages; binomial bcast for
short messages, scatter+allgather for long).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import MachineModel


@dataclass(frozen=True)
class CollCost:
    """Cost of one collective from a single rank's point of view."""

    time: float  #: seconds in the α-β model
    msgs: int  #: messages sent by the rank
    bytes_sent: float  #: bytes sent by the rank

    def __add__(self, other: "CollCost") -> "CollCost":
        return CollCost(
            self.time + other.time,
            self.msgs + other.msgs,
            self.bytes_sent + other.bytes_sent,
        )


ZERO = CollCost(0.0, 0, 0.0)


def _log2ceil(p: int) -> int:
    return max(0, math.ceil(math.log2(p))) if p > 1 else 0


def allgather_cost(machine: MachineModel, nbytes: float, p: int) -> CollCost:
    """Bruck / recursive-doubling allgather of ``nbytes`` total."""
    if p <= 1:
        return ZERO
    steps = _log2ceil(p)
    vol = nbytes * (p - 1) / p
    return CollCost(machine.alpha * steps + machine.beta * vol, steps, vol)


def bcast_cost(machine: MachineModel, nbytes: float, p: int) -> CollCost:
    """van de Geijn broadcast (paper's ``T_broadcast``)."""
    if p <= 1:
        return ZERO
    steps = _log2ceil(p) + (p - 1)
    vol = 2.0 * nbytes * (p - 1) / p
    return CollCost(machine.alpha * steps + machine.beta * vol, steps, vol)


def reduce_scatter_cost(
    machine: MachineModel, nbytes: float, p: int, degraded: bool = True
) -> CollCost:
    """Pairwise-exchange reduce-scatter (paper's ``T_reduce_scatter``).

    When ``degraded`` and the per-step message exceeds the machine's
    MVAPICH2-style threshold, the bandwidth term is multiplied by the
    degradation factor (used for the GPU study, Table III).
    """
    if p <= 1:
        return ZERO
    vol = nbytes * (p - 1) / p
    beta = machine.beta
    if degraded and nbytes / p > machine.rs_degrade_threshold:
        beta *= machine.rs_degrade_factor
    return CollCost(machine.alpha * (p - 1) + beta * vol, p - 1, vol)


def alltoall_cost(machine: MachineModel, nbytes: float, p: int) -> CollCost:
    """Pairwise-exchange alltoall of ``nbytes`` local data."""
    if p <= 1:
        return ZERO
    vol = nbytes * (p - 1) / p
    return CollCost(machine.alpha * (p - 1) + machine.beta * vol, p - 1, vol)


def barrier_cost(machine: MachineModel, p: int) -> CollCost:
    if p <= 1:
        return ZERO
    steps = _log2ceil(p)
    return CollCost(machine.alpha * steps, steps, 0.0)


def p2p_cost(machine: MachineModel, nbytes: float) -> CollCost:
    """A single point-to-point message."""
    return CollCost(machine.alpha + machine.beta * nbytes, 1, nbytes)


def ca3dmm_phase_costs(plan, machine: MachineModel, item: int = 8) -> dict:
    """α-β cost of each CA3DMM communication phase for ``plan``.

    Maps the schedule's phases onto the collective formulas above, with
    the same block extents :func:`repro.obs.drift.expected_phase_traffic`
    uses (continuous ``m/pm`` etc., exact on divisible grids):

    - ``replicate``: allgather of the replicated operand block over the
      ``c`` k-groups sharing it,
    - ``cannon``: ``s`` rounds of two point-to-point shifts (A and B),
      covering the initial skew plus the ``s-1`` shift rounds,
    - ``reduce``: pairwise reduce-scatter of the C block over ``pk``.

    Returns ``{phase: CollCost}`` with per-rank critical costs; phases
    the plan does not schedule are absent.  ``item`` is the element size
    in bytes.  The audit layer (:mod:`repro.obs.audit`) compares these
    against the transport's measured per-phase counters.
    """
    pm, pn, pk, s, c = plan.pm, plan.pn, plan.pk, plan.s, plan.c
    mb, nb, kg = plan.m / pm, plan.n / pn, plan.k / pk
    kb = kg / s
    blk_a, blk_b = mb * kb, kb * nb

    out: dict[str, CollCost] = {}
    if c > 1:
        blk = blk_a if plan.replicates_a else blk_b
        out["replicate"] = allgather_cost(machine, blk * item, c)
    if s > 1:
        per_round = p2p_cost(machine, blk_a * item) + p2p_cost(machine, blk_b * item)
        cost = ZERO
        for _ in range(s):
            cost = cost + per_round
        out["cannon"] = cost
    if pk > 1:
        out["reduce"] = reduce_scatter_cost(machine, mb * nb * item, pk)
    return out
