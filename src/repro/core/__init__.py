"""CA3DMM — the paper's primary contribution (executed engine)."""

from .autotune import TunedChoice, TuneResult, tune
from .ca3dmm import Ca3dmm, ca3dmm_matmul
from .cannon import cannon_multiply
from .pdgemm import pdgemm
from .plan import Ca3dmmPlan, RankRole
from .plan_render import render_partitions
from .reduce_c import reduce_partial_c, split_block
from .replicate import replicate_block

__all__ = [
    "tune",
    "TuneResult",
    "TunedChoice",
    "Ca3dmm",
    "ca3dmm_matmul",
    "Ca3dmmPlan",
    "pdgemm",
    "render_partitions",
    "RankRole",
    "cannon_multiply",
    "replicate_block",
    "reduce_partial_c",
    "split_block",
]
