"""Operand replication across Cannon groups (Algorithm 1, step 5).

When ``c = max(pm,pn)/min(pm,pn) > 1``, one operand's Cannon blocks are
needed by all ``c`` Cannon groups of a k-task group.  The native initial
layout stores ``1/c`` of each such block on each replica (column pieces
of A, row pieces of B — see :class:`~repro.core.plan.Ca3dmmPlan`), and
this step reassembles the full block everywhere with a single allgather
over the ``c``-rank replica communicator.

Cost per rank (paper Section III-D): ``α·⌈log2 c⌉ + β·|blk|·(c-1)/c``.
"""

from __future__ import annotations

import numpy as np

from ..mpi.comm import Comm


def replicate_block(replica_comm: Comm, piece: np.ndarray, axis: int) -> np.ndarray:
    """Allgather the ``c`` pieces of a Cannon block and reassemble.

    ``axis=1`` concatenates column pieces (the A case), ``axis=0`` row
    pieces (the B case).  With ``c == 1`` this is a no-op.
    """
    if replica_comm.size == 1:
        return piece
    pieces = replica_comm.allgather(piece)
    # The gathered pieces are scratch that lives until the concatenated
    # block replaces them; charge that window to the replicate.buf span.
    with replica_comm.mem("replicate.buf", sum(p.nbytes for p in pieces)):
        return np.concatenate(pieces, axis=axis)
