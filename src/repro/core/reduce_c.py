"""Combining partial C results across k-task groups (Algorithm 1, step 7).

After Cannon's algorithm, the ``pk`` ranks at the same ``(i, j)`` grid
position each hold a partial result of the same C block (their k-group's
rank-``(k/pk)`` update).  A reduce-scatter sums them and leaves each rank
with one of ``pk`` strips of the final block — column strips when the
block is at least as wide as tall, row strips otherwise (Example 2 of
the paper: a square 16x16 block becomes four 16x4 column strips).

Cost per rank (paper Section III-D): ``α(pk-1) + β·|blk|·(pk-1)/pk`` —
the pairwise-exchange reduce-scatter formula.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..layout.blocks import block_range
from ..mpi.comm import Comm
from ..mpi.datatypes import MAX

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ft.abft import AbftGuard


def split_block(c_loc: np.ndarray, parts: int, by_cols: bool) -> list[np.ndarray]:
    """Split a partial C block into the ``parts`` reduce-scatter strips.

    The strips must round-trip: consecutive half-open ranges that tile
    ``[0, extent)`` exactly.  Empty strips are fine (``parts`` may exceed
    the extent — a k-replication factor larger than a thin block), but a
    gap or overlap would silently corrupt the reduce-scatter, so the
    tiling is validated here.
    """
    if parts < 1:
        raise ValueError(f"split_block needs parts >= 1, got {parts}")
    out = []
    extent = c_loc.shape[1] if by_cols else c_loc.shape[0]
    prev_hi = 0
    for r in range(parts):
        lo, hi = block_range(extent, parts, r)
        if lo != prev_hi or hi < lo or hi > extent:
            raise ValueError(
                f"strips do not tile extent {extent} into {parts} parts: "
                f"part {r} is [{lo}, {hi}) but [0, {prev_hi}) is covered"
            )
        prev_hi = hi
        out.append(c_loc[:, lo:hi] if by_cols else c_loc[lo:hi, :])
    if prev_hi != extent:
        raise ValueError(
            f"strips cover only [0, {prev_hi}) of extent {extent} "
            f"({parts} parts)"
        )
    return out


def reduce_partial_c(
    kred_comm: Comm,
    c_loc: np.ndarray,
    by_cols: bool,
    abft: "AbftGuard | None" = None,
    *,
    pre_verified: bool = False,
) -> np.ndarray:
    """Reduce-scatter this rank's partial C block; return its final strip.

    ``kred_comm`` orders its ``pk`` members by k-group index, so rank
    ``ik`` receives strip ``ik`` — matching
    :meth:`~repro.core.plan.Ca3dmmPlan.c_owned`.

    With an :class:`~repro.ft.abft.AbftGuard`, ``c_loc`` is the
    checksum-bordered Cannon result: it is verified — and the Cannon
    stage recomputed if corrupted — and then *one* checksum border is
    carried through the reduce-scatter (the checksum row when splitting
    by columns, the checksum column when splitting by rows; the other
    border would land on a single member and is dropped).  Because the
    reduction is linear, a clean reduced strip's border still matches
    its body, so each rank re-verifies its strip after the exchange —
    catching corruption injected into the reduce-scatter wire traffic
    itself — and a detection vote over ``kred_comm`` sends the whole
    group back into the exchange from their retained clean strips,
    bounded by ``AbftPolicy.max_recomputes``.
    """
    if abft is None:
        if kred_comm.size == 1:
            return c_loc
        strips = split_block(c_loc, kred_comm.size, by_cols)
        # The pairwise exchange accumulates into a private copy of this
        # rank's strip; charge that accumulator to the reduce.scratch
        # span.
        with kred_comm.mem("reduce.scratch", strips[kred_comm.rank].nbytes):
            return kred_comm.reduce_scatter(strips)

    from ..ft.abft import strip_checksum_errors
    from ..ft.errors import CorruptionError

    # ``pre_verified`` lets the engine verify the Cannon result itself
    # (it hands the clean body to the partial-retention hook first)
    # without a second, redundant group vote here.
    c_f = c_loc if pre_verified else abft.verified_bordered(c_loc)
    if kred_comm.size == 1:
        return np.ascontiguousarray(c_f[:-1, :-1])
    work = c_f[:, :-1] if by_cols else c_f[:-1, :]
    strips = split_block(work, kred_comm.size, by_cols)
    rel_tol = abft.policy.rel_tol
    rounds = 0
    with kred_comm.mem("reduce.scratch", strips[kred_comm.rank].nbytes):
        while True:
            strip = kred_comm.reduce_scatter(strips)
            bad = strip_checksum_errors(strip, by_cols, rel_tol)
            if bad:
                kred_comm.transport.add_ft(
                    kred_comm.world_rank, detected=1, phase="reduce"
                )
            any_bad = kred_comm.allreduce(int(bool(bad)), op=MAX)
            if not any_bad:
                body = strip[:-1, :] if by_cols else strip[:, :-1]
                return np.ascontiguousarray(body)
            rounds += 1
            if rounds > abft.policy.max_recomputes:
                raise CorruptionError(
                    kred_comm.world_rank,
                    rounds - 1,
                    () if by_cols else bad,
                    bad if by_cols else (),
                    phase="reduce",
                )
