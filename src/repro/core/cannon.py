"""Cannon's algorithm on an ``s x s`` process group (Algorithm 1, step 6).

The group computes one rank-``(k/pk)`` update: process ``(u, v)`` owns the
unskewed blocks ``A_{u, v}`` and ``B_{u, v}`` (in within-group indexing)
and must produce ``C_{u, v} = Σ_t A_{u,t} B_{t,v}``.

* **Initial skew** — each process sends its A block ``u`` positions left
  and its B block ``v`` positions up (one message each, the "initial
  skewing" of Section III-B), after which ``(u, v)`` holds
  ``A_{u,(u+v) mod s}`` and ``B_{(u+v) mod s, v}``.
* **s-1 shift steps** — circular shifts of A left and B up by one, each
  overlapped with the local GEMM through the dual-buffer idiom: the
  sends/receives for the next blocks are posted (``isend``/``irecv``)
  before computing with the current blocks, exactly the optimization the
  paper's implementation section describes.  How much the simulated
  clock actually hides depends on the machine's overlap capability
  (``MachineModel.overlap``): with ``"none"`` or ``"full"`` each posted
  transfer progresses as its own stream and the step completes at
  ``max(gemm, flight)``; with ``"partial"`` the rank's single NIC
  stream serializes the inter-node A and B sends, so the step completes
  at ``max(gemm, flight_a + flight_b)``.  (An earlier revision claimed
  unconditional ``max(gemm, comm)``; ``tests/core/test_cannon.py``
  pins the per-capability arithmetic.)  The shift waits drain in
  arrival order (:func:`repro.mpi.wait_all`), so an early block is
  never billed a late block's wait.
* **Multi-shift aggregation** — when Cannon blocks have a small
  k-extent, ``shifts_per_gemm > 1`` gathers several A/B block pairs and
  multiplies them as one concatenated local GEMM, the paper's "multiple
  shifts for one local matrix multiplication" optimization (same flops
  and traffic, fewer/bigger local GEMMs).

Block shapes may be ragged (balanced splitting) or empty (more processes
than matrix rows/columns); everything degrades gracefully because the
payload arrays carry their own shapes.
"""

from __future__ import annotations

import numpy as np

from ..mpi.datatypes import INTERNAL_TAG_BASE
from ..mpi.request import wait_all
from ..mpi.topology import Cart2D

_TAG_SKEW_A = INTERNAL_TAG_BASE + 101
_TAG_SKEW_B = INTERNAL_TAG_BASE + 102
_TAG_SHIFT_A = INTERNAL_TAG_BASE + 103
_TAG_SHIFT_B = INTERNAL_TAG_BASE + 104


def _skew(cart: Cart2D, a_blk: np.ndarray, b_blk: np.ndarray):
    """Initial alignment: A left by ``u``, B up by ``v``."""
    u, v = cart.row, cart.col
    if u > 0:
        a_blk = cart.comm.sendrecv(
            a_blk, cart.left(u), cart.right(u), _TAG_SKEW_A, _TAG_SKEW_A
        )
    if v > 0:
        b_blk = cart.comm.sendrecv(
            b_blk, cart.up(v), cart.down(v), _TAG_SKEW_B, _TAG_SKEW_B
        )
    return a_blk, b_blk


def cannon_multiply(
    cart: Cart2D,
    a_blk: np.ndarray,
    b_blk: np.ndarray,
    shifts_per_gemm: int = 1,
) -> np.ndarray:
    """Run Cannon's algorithm; return this process's (partial) C block.

    ``cart`` must be square (``s x s``).  ``a_blk``/``b_blk`` are the
    unskewed within-group blocks; the result has shape
    ``(a_blk.rows, b_blk.cols)`` and dtype of the promoted operands.
    """
    if cart.nrows != cart.ncols:
        raise ValueError(f"Cannon needs a square grid, got {cart.nrows}x{cart.ncols}")
    s = cart.nrows
    comm = cart.comm
    out_dtype = np.promote_types(a_blk.dtype, b_blk.dtype)
    c_loc = np.zeros((a_blk.shape[0], b_blk.shape[1]), dtype=out_dtype)
    # The partial-C accumulator lives through every shift — eq. (11)'s
    # ``pk·mn/used`` term.  Charged here, released on return; the caller
    # re-charges the returned block under the same purpose.
    comm.mem_alloc("tile.c", c_loc.nbytes)
    try:
        if s == 1:
            if a_blk.shape[1]:
                comm.gemm_tick(a_blk.shape[0], b_blk.shape[1], a_blk.shape[1])
                c_loc[:] = a_blk @ b_blk
            return c_loc

        a_cur, b_cur = _skew(cart, a_blk, b_blk)
        if a_cur.shape[0] != a_blk.shape[0] or b_cur.shape[1] != b_blk.shape[1]:
            raise AssertionError("skew changed the local C-facing extents")

        pending_a: list[np.ndarray] = []
        pending_b: list[np.ndarray] = []

        def flush() -> None:
            if not pending_a:
                return
            a_cat = pending_a[0] if len(pending_a) == 1 else np.concatenate(pending_a, axis=1)
            b_cat = pending_b[0] if len(pending_b) == 1 else np.concatenate(pending_b, axis=0)
            if a_cat.shape[1]:
                # A zero inner width means no flops AND no operand staging:
                # ticking here would charge phantom GEMM-call time (GPU mode
                # stages m*n result bytes even at k == 0).
                comm.gemm_tick(a_cat.shape[0], b_cat.shape[1], a_cat.shape[1])
                np.add(c_loc, a_cat @ b_cat, out=c_loc)
            pending_a.clear()
            pending_b.clear()

        for t in range(s):
            last = t == s - 1
            if not last:
                req_as = comm.isend(a_cur, cart.left(1), _TAG_SHIFT_A)
                req_ar = comm.irecv(cart.right(1), _TAG_SHIFT_A)
                req_bs = comm.isend(b_cur, cart.up(1), _TAG_SHIFT_B)
                req_br = comm.irecv(cart.down(1), _TAG_SHIFT_B)
                # The second buffer of the dual-buffer idiom: the
                # incoming next blocks coexist with the current blocks
                # until the waits complete.  Charged after the posts so
                # the transient send-copy spike (transport.inflight) is
                # absorbed into the same dual-buffer budget rather than
                # stacking on top of it.
                dblbuf = a_cur.nbytes + b_cur.nbytes
                comm.mem_alloc("cannon.dblbuf", dblbuf)
            pending_a.append(a_cur)
            pending_b.append(b_cur)
            if last or len(pending_a) >= shifts_per_gemm:
                flush()
            if not last:
                # Arrival-ordered drain: whichever transfer lands first
                # is charged first, so the A wait never absorbs B's
                # flight (or vice versa).
                vals = wait_all([req_ar, req_br, req_as, req_bs])
                a_cur = vals[0]
                b_cur = vals[1]
                comm.mem_free("cannon.dblbuf", dblbuf)
        flush()
        return c_loc
    finally:
        comm.mem_free("tile.c", c_loc.nbytes)
