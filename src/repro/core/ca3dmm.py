"""CA3DMM end-to-end — Algorithm 1 of the paper, executed engine.

:class:`Ca3dmm` sets up the grid, subcommunicators, and native layouts
once (the paper's one-time initialization, excluded from its timings) and
can then multiply any number of matrix pairs of the planned shape — the
pattern of its motivating applications (repeated density-matrix
purification, Rayleigh-Ritz projections in SCF iterations).

The steps, phase-tagged so executed runs yield the paper's runtime
breakdown (Fig. 5):

====== ============================== =========== =====================
step   operation                      phase        paper cost
====== ============================== =========== =====================
4      redistribute A and B            ``redist``   (excluded in paper)
5      allgather-replicate A or B      ``replicate`` α⌈log2 c⌉ + β|blk|(c-1)/c
6      Cannon's algorithm              ``cannon``    α·s + 2β|blk|·s (A and B)
7      reduce-scatter partial C        ``reduce``    α(pk-1) + β|blk|(pk-1)/pk
8      redistribute C                  ``redist``   (excluded in paper)
====== ============================== =========== =====================

Idle ranks (world size > ``pm*pn*pk``) take part only in steps 4 and 8.
"""

from __future__ import annotations

import numpy as np

from ..layout.distributions import Distribution
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.datatypes import MAX
from ..mpi.topology import Cart2D
from ..grid.optimizer import DEFAULT_L, GridSpec
from .cannon import cannon_multiply
from .plan import shared_plan
from .reduce_c import reduce_partial_c
from .replicate import replicate_block



def _norm_op(op) -> tuple[bool, bool]:
    """Normalize a BLAS-style op code to (transpose, conjugate).

    Accepts booleans (backward compatible: True means 'T') or the
    strings 'N'/'T'/'C' (case-insensitive).
    """
    if isinstance(op, bool):
        return op, False
    code = str(op).upper()
    if code in ("N", ""):
        return False, False
    if code == "T":
        return True, False
    if code == "C":
        return True, True
    raise ValueError(f"unknown op code {op!r}; expected 'N', 'T', 'C', or bool")


class Ca3dmm:
    """A planned CA3DMM multiplication engine for fixed (m, n, k, P)."""

    def __init__(
        self,
        comm: Comm,
        m: int,
        n: int,
        k: int,
        grid: GridSpec | None = None,
        l: float = DEFAULT_L,
        shifts_per_gemm: int = 1,
        memory_limit_words: float | None = None,
        abft=None,
    ):
        self.comm = comm
        # Shared (memoized) plan: every rank of the run would build the
        # identical plan, and its distribution tables are O(P) each.
        self.plan = shared_plan(
            m, n, k, comm.size, grid=grid, l=l,
            memory_limit_words=memory_limit_words,
        )
        self.shifts_per_gemm = shifts_per_gemm
        # ABFT: checksum-protect the Cannon stage (docs/RECOVERY.md).
        # ``True`` means the default policy; an AbftPolicy tunes it.
        if abft:
            from ..ft.abft import AbftPolicy  # deferred: repro.ft imports us

            self.abft = AbftPolicy() if abft is True else abft
        else:
            self.abft = None
        colors = self.plan.split_colors(comm.rank)
        # One split per subgroup kind; idle ranks pass color None and
        # receive no subcommunicator (they only join redistribution).
        self.active_comm = comm.split(*colors["active"])
        self.cannon_comm = comm.split(*colors["cannon"])
        self.replica_comm = comm.split(*colors["replica"])
        self.kred_comm = comm.split(*colors["kred"])
        self.role = self.plan.role(comm.rank)

    # ------------------------------------------------------------ helpers -- #
    def _native_tile(self, mat: DistMatrix, rect) -> np.ndarray:
        """The single native tile (an explicitly-empty array if degenerate)."""
        if rect is None:
            return np.zeros((0, 0), dtype=mat.dtype)
        if mat.tiles:
            return mat.tiles[0]
        return np.zeros(rect.shape, dtype=mat.dtype)

    def _replicate_verified(
        self, piece: np.ndarray, axis: int, row_checksum: bool
    ) -> np.ndarray:
        """Replicate an *augmented* operand piece and verify its border.

        The piece arrives carrying its own Huang-Abraham checksum (the
        border commutes bit-identically with the allgather
        concatenation), so a flipped element anywhere in the replicate
        wire traffic shows up as a border mismatch on some replica.  A
        detection vote over ``replica_comm`` sends the whole group back
        into the allgather from their retained local pieces — the
        one-shot corruption is consumed, the re-run is clean — bounded
        by ``AbftPolicy.max_recomputes``.
        """
        from ..ft.abft import operand_checksum_errors
        from ..ft.errors import CorruptionError

        comm = self.comm
        rounds = 0
        while True:
            full = replicate_block(self.replica_comm, piece, axis=axis)
            bad = operand_checksum_errors(full, row_checksum, self.abft.rel_tol)
            if bad:
                comm.transport.add_ft(
                    comm.world_rank, detected=1, phase="replicate"
                )
            any_bad = self.replica_comm.allreduce(int(bool(bad)), op=MAX)
            if not any_bad:
                return full
            rounds += 1
            if rounds > self.abft.max_recomputes:
                raise CorruptionError(
                    comm.world_rank,
                    rounds - 1,
                    () if row_checksum else bad,
                    bad if row_checksum else (),
                    phase="replicate",
                )

    # ------------------------------------------------------------ multiply -- #
    def multiply(
        self,
        a: DistMatrix,
        b: DistMatrix,
        c_dist: Distribution | None = None,
        transa: bool | str = False,
        transb: bool | str = False,
        alpha: float = 1.0,
        beta: float = 0.0,
        c_in: DistMatrix | None = None,
        on_partial=None,
    ) -> DistMatrix:
        """Compute ``C = alpha * op(A) x op(B) + beta * C_in`` (full GEMM).

        ``transa``/``transb`` accept BLAS op codes 'N'/'T'/'C'
        (booleans mean 'N'/'T'); 'C' is the conjugate transpose for
        complex operands, folded into the redistribution like 'T'.

        ``a`` and ``b`` may use any distribution; they are converted to
        the library-native layouts (folding in the transposes), the
        multiplication runs, and the result is returned in the native C
        layout — or converted to ``c_dist`` if given.

        ``c_in`` (required when ``beta != 0``) is the accumulation
        operand: it is redistributed to the native C layout and folded
        in after the reduce-scatter — the trailing-matrix-update pattern
        behind the paper's "flat" problem class (``C -= A x B`` in LU /
        Cholesky / QR panel factorizations).

        ``on_partial`` (``(role, c_loc) -> None``), when given, is
        called on every active rank with its verified partial C block —
        after the ABFT guard has stripped/validated it, before the
        k-group reduce-scatter consumes it.  The fault-tolerance layer
        uses this retention hook to keep surviving k-group partials
        across a failure (partial-result reuse, docs/RECOVERY.md); the
        block is *unscaled* (``alpha`` is applied after the reduce).
        """
        plan, comm = self.plan, self.comm
        m, n, k = plan.m, plan.n, plan.k
        transa, conja = _norm_op(transa)
        transb, conjb = _norm_op(transb)
        a_shape = (k, m) if transa else (m, k)
        b_shape = (n, k) if transb else (k, n)
        if tuple(a.shape) != a_shape:
            raise ValueError(f"A has shape {a.shape}, expected {a_shape} (transa={transa})")
        if tuple(b.shape) != b_shape:
            raise ValueError(f"B has shape {b.shape}, expected {b_shape} (transb={transb})")
        if beta != 0.0 and c_in is None:
            raise ValueError("beta != 0 requires the c_in accumulation operand")
        if c_in is not None and tuple(c_in.shape) != (m, n):
            raise ValueError(f"C_in has shape {c_in.shape}, expected {(m, n)}")

        # Steps 4: user layout -> native layout (transposes folded in).
        # With ABFT on, redistribution traffic travels under a per-tile
        # CRC envelope (corrupted transfers are re-requested).
        verify = self.abft is not None
        a_nat = redistribute(a, plan.a_dist, transpose=transa, phase="redist",
                             conjugate=conja, verify=verify)
        b_nat = redistribute(b, plan.b_dist, transpose=transb, phase="redist",
                             conjugate=conjb, verify=verify)

        out_dtype = np.promote_types(a.dtype, b.dtype)
        if self.role is None:
            # Idle rank: owns nothing of native C; still participates in
            # the closing redistribution.
            c_nat = DistMatrix(comm, plan.c_dist, [])
        else:
            role = self.role
            a_piece = self._native_tile(a_nat, plan.a_owned(comm.rank))
            b_piece = self._native_tile(b_nat, plan.b_owned(comm.rank))

            # Measured working set: tagged memtrace spans charged as the
            # engine's buffers come to life, freed together when the
            # multiply hands its result back.  The resident watermark
            # this produces is what the eq. (11) audit and the pebbling
            # bound consume (docs/OBSERVABILITY.md) — the analytic
            # estimate this replaces is recoverable as
            # ``plan.grid.memory_words(m, n, k)``.
            held: list[tuple[str, int]] = []

            def _hold(purpose: str, nbytes: int) -> None:
                comm.mem_alloc(purpose, nbytes)
                held.append((purpose, int(nbytes)))

            try:
                abft_on = self.abft is not None
                if abft_on:
                    from ..ft.abft import AbftGuard, augment_a, augment_b

                a_run, b_run = a_piece, b_piece
                # With ABFT and replication, augment *before* step 5: the
                # checksum border commutes bit-identically with the
                # allgather concatenation, so the replicated operand
                # arrives carrying its own checksums and the replicate
                # wire traffic itself is covered.
                early_aug = abft_on and plan.c > 1
                if early_aug:
                    a_run = a_run.astype(out_dtype, copy=False)
                    b_run = b_run.astype(out_dtype, copy=False)
                    pre = a_run.nbytes + b_run.nbytes
                    a_run = augment_a(a_run)
                    b_run = augment_b(b_run)
                    _hold("abft.checksum", a_run.nbytes + b_run.nbytes - pre)

                # Step 5: replicate the smaller operand across Cannon groups.
                with comm.phase("replicate", c=plan.c,
                                operand="A" if plan.replicates_a else "B"):
                    if plan.c > 1:
                        if plan.replicates_a:
                            if early_aug:
                                a_run = self._replicate_verified(
                                    a_run, axis=1, row_checksum=True
                                )
                            else:
                                a_run = replicate_block(
                                    self.replica_comm, a_run, axis=1
                                )
                        else:
                            if early_aug:
                                b_run = self._replicate_verified(
                                    b_run, axis=0, row_checksum=False
                                )
                            else:
                                b_run = replicate_block(
                                    self.replica_comm, b_run, axis=0
                                )

                a_blk = plan.a_cannon_block(role)
                b_blk = plan.b_cannon_block(role)
                border = 1 if early_aug else 0
                a_body_shape = (a_run.shape[0] - border, a_run.shape[1])
                b_body_shape = (b_run.shape[0], b_run.shape[1] - border)
                if a_body_shape != a_blk.shape:
                    raise AssertionError(
                        f"A block shape {a_body_shape} != planned {a_blk.shape}"
                    )
                if b_body_shape != b_blk.shape:
                    raise AssertionError(
                        f"B block shape {b_body_shape} != planned {b_blk.shape}"
                    )
                a_border_nbytes = border * a_run.shape[1] * a_run.itemsize
                b_border_nbytes = border * b_run.shape[0] * b_run.itemsize
                _hold("tile.a", a_run.nbytes - a_border_nbytes)
                _hold("tile.b", b_run.nbytes - b_border_nbytes)

                # Step 6: Cannon's algorithm inside the s x s group.  With
                # ABFT on, the unskewed blocks get Huang-Abraham checksum
                # borders first (already present when replication added
                # them early); the kernel itself is unchanged and the
                # bordered result is verified (and recomputed if
                # corrupted) before the reduce-scatter strips it.
                if not early_aug:
                    a_run = a_run.astype(out_dtype, copy=False)
                    b_run = b_run.astype(out_dtype, copy=False)
                guard = None
                with comm.phase("cannon", s=plan.s,
                                shifts_per_gemm=self.shifts_per_gemm,
                                abft=abft_on):
                    cart = Cart2D(self.cannon_comm, plan.s, plan.s)
                    if abft_on:
                        if not early_aug:
                            pre = a_run.nbytes + b_run.nbytes
                            a_run = augment_a(a_run)
                            b_run = augment_b(b_run)
                            _hold("abft.checksum",
                                  a_run.nbytes + b_run.nbytes - pre)
                        k0, k1 = plan.k_range(role.ik)
                        guard = AbftGuard(
                            comm=comm,
                            group_comm=self.cannon_comm,
                            policy=self.abft,
                            recompute=lambda: cannon_multiply(
                                cart, a_run, b_run,
                                shifts_per_gemm=self.shifts_per_gemm,
                            ),
                            flops=2.0 * a_run.shape[0] * b_run.shape[1] * (k1 - k0),
                        )
                    c_loc = cannon_multiply(
                        cart, a_run, b_run,
                        shifts_per_gemm=self.shifts_per_gemm,
                    )
                _hold("tile.c", c_loc.nbytes)

                # Step 7: reduce-scatter partial C blocks across k-groups.
                # Verification runs first so the retention hook only ever
                # sees a partial the ABFT guard has already vouched for;
                # the checksum border then rides *through* the reduction
                # and each reduced strip is re-verified on arrival.
                with comm.phase("reduce", pk=plan.pk):
                    if guard is not None:
                        c_loc = guard.verified_bordered(c_loc)
                        if on_partial is not None:
                            on_partial(
                                role, np.ascontiguousarray(c_loc[:-1, :-1])
                            )
                    elif on_partial is not None:
                        on_partial(role, c_loc)
                    # The operand tiles (and checksum borders) die once
                    # the partial is verified — the ABFT recompute can no
                    # longer fire — so release them before the
                    # reduce-scatter stages its scratch strip on top.
                    dead = [h for h in held
                            if h[0] in ("tile.a", "tile.b", "abft.checksum")]
                    for purpose, nbytes in dead:
                        comm.mem_free(purpose, nbytes)
                        held.remove((purpose, nbytes))
                    by_cols = plan.c_split_cols(role.i, role.j)
                    strip = reduce_partial_c(
                        self.kred_comm, c_loc, by_cols,
                        abft=guard, pre_verified=True,
                    )

                rect = plan.c_owned(comm.rank)
                if rect is None or rect.is_empty():
                    tiles = []
                else:
                    strip = np.ascontiguousarray(strip)
                    if alpha != 1.0:
                        strip = alpha * strip
                    tiles = [strip]
                c_nat = DistMatrix(comm, plan.c_dist, tiles)
            finally:
                for purpose, nbytes in held:
                    comm.mem_free(purpose, nbytes)

        # Accumulation operand: fold in beta * C_in (in the native layout,
        # where every rank holds exactly its strip).
        if beta != 0.0 and c_in is not None:
            c_prev = redistribute(c_in, plan.c_dist, phase="redist",
                                  verify=verify)
            tiles = [
                t + beta * p.astype(t.dtype, copy=False)
                for t, p in zip(c_nat.tiles, c_prev.tiles)
            ]
            c_nat = DistMatrix(comm, plan.c_dist, tiles)

        # Step 8: native layout -> user layout.
        if c_dist is None:
            return c_nat
        return redistribute(c_nat, c_dist, phase="redist", verify=verify)


def ca3dmm_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    transa: bool = False,
    transb: bool = False,
    grid: GridSpec | None = None,
    l: float = DEFAULT_L,
    shifts_per_gemm: int = 1,
    alpha: float = 1.0,
    beta: float = 0.0,
    c_in: DistMatrix | None = None,
) -> DistMatrix:
    """One-shot ``C = alpha * op(A) x op(B) + beta * C_in`` with CA3DMM."""
    am, an = a.shape
    bm, bn = b.shape
    ta, _ = _norm_op(transa)
    tb, _ = _norm_op(transb)
    m, k = (an, am) if ta else (am, an)
    k2, n = (bn, bm) if tb else (bm, bn)
    if k != k2:
        raise ValueError(f"inner dimensions differ: op(A) is {m}x{k}, op(B) is {k2}x{n}")
    engine = Ca3dmm(a.comm, m, n, k, grid=grid, l=l, shifts_per_gemm=shifts_per_gemm)
    return engine.multiply(
        a, b, c_dist=c_dist, transa=transa, transb=transb,
        alpha=alpha, beta=beta, c_in=c_in,
    )
