"""CA3DMM-S: the SUMMA-kernel variant of CA3DMM (Sections III-E and V).

Identical macro-structure to CA3DMM — ``pk`` k-task groups, each
computing a rank-``(k/pk)`` update, followed by the same reduce-scatter
of partial C — but each k-task group runs SUMMA on its full ``pm x pn``
grid instead of Cannon groups.  Consequences the paper derives:

* no divisibility constraint (7) on the grid, and no operand
  replication (memory drops by the ``c`` factor — the Section V
  memory-control proposal);
* latency grows: SUMMA broadcasts panels ``pm`` times, giving
  ``L_SUMMA = pm(log2(pm) + pm - 1) + (pk - 1) >= L_Cannon`` whenever a
  2D kernel is needed at all (the Section III-E inequality, asserted by
  tests and measured by the inner-kernel ablation bench).

The native layouts coincide with the COSMA-like baseline's
(:class:`repro.baselines.cosma._CosmaMaps`): A is 2D-blocked over
``(pm, pn)`` inside each k-slice, likewise B, and C ends in the same
``pk``-strip layout as CA3DMM.
"""

from __future__ import annotations

import numpy as np

from ..baselines.cosma import _CosmaMaps
from ..baselines.summa import DEFAULT_PANEL, summa_on_grid
from ..grid.optimizer import DEFAULT_L, GridSpec, cosma_grid
from ..layout.blocks import block_range
from ..layout.distributions import Distribution
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.topology import Cart2D


def ca3dmm_s_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: GridSpec | None = None,
    l: float = DEFAULT_L,
    panel: int = DEFAULT_PANEL,
) -> DistMatrix:
    """``C = A x B`` with the SUMMA-inner-kernel CA3DMM variant."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    g = grid if grid is not None else cosma_grid(m, n, k, comm.size, l)
    if g.nprocs != comm.size:
        raise ValueError("grid was built for a different world size")
    maps = _CosmaMaps(m, n, k, g, comm.size)
    pm, pn, pk = g.pm, g.pn, g.pk

    a_nat = redistribute(a, maps.a_dist, phase="redist")
    b_nat = redistribute(b, maps.b_dist, phase="redist")

    active = comm.rank < g.used
    if active:
        i = comm.rank % pm
        j = (comm.rank // pm) % pn
        ik = comm.rank // (pm * pn)
    kgroup_2d = comm.split(ik if active else None, (i + pm * j) if active else 0)
    kred = comm.split((i + pm * j) if active else None, ik if active else 0)

    tiles: list[np.ndarray] = []
    if active:
        mm = block_range(m, pm, i)
        nn = block_range(n, pn, j)
        kk = block_range(k, pk, ik)
        kg = kk[1] - kk[0]

        def tile(mat: DistMatrix, shape: tuple[int, int]) -> np.ndarray:
            return mat.tiles[0] if mat.tiles else np.zeros(shape, dtype=mat.dtype)

        ak = block_range(kg, pn, j)
        bk = block_range(kg, pm, i)
        a_loc = tile(a_nat, (mm[1] - mm[0], ak[1] - ak[0]))
        b_loc = tile(b_nat, (bk[1] - bk[0], nn[1] - nn[0]))

        with comm.phase("summa"):
            cart = Cart2D(kgroup_2d, pm, pn)
            c_part = summa_on_grid(cart, a_loc, b_loc, m, n, kg, panel=panel)

        with comm.phase("reduce"):
            if kred.size == 1:
                c_strip = c_part
            else:
                by_cols = (nn[1] - nn[0]) >= (mm[1] - mm[0])
                strips = []
                extent = c_part.shape[1] if by_cols else c_part.shape[0]
                for r in range(pk):
                    lo, hi = block_range(extent, pk, r)
                    strips.append(c_part[:, lo:hi] if by_cols else c_part[lo:hi, :])
                c_strip = kred.reduce_scatter(strips)
        if c_strip.shape[0] and c_strip.shape[1]:
            tiles = [np.ascontiguousarray(c_strip)]

    c_nat = DistMatrix(comm, maps.c_dist, tiles)
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
