"""The CA3DMM execution plan — who sits where and owns what.

A :class:`Ca3dmmPlan` is computed identically (and deterministically) on
every rank from ``(m, n, k, P)``; it encodes steps 1-3 of Algorithm 1:

* the ``pm x pn x pk`` grid (step 1), column-major rank order: rank
  ``r`` has in-k-group index ``q = r % (pm*pn)`` and k-group ``ik = r //
  (pm*pn)``; within the k-group, grid position ``(i, j) = (q % pm, q // pm)``.
  Ranks ``r >= pm*pn*pk`` are idle outside redistribution (step 2).
* Cannon groups (step 3): ``s = min(pm, pn)``, ``c = max(pm,pn)/s``
  (eq. 8).  When ``pn > pm`` groups tile the n-dimension and **A** is the
  replicated operand (Example 1); when ``pm > pn`` groups tile the
  m-dimension and **B** is replicated.
* the library-native initial distributions of A and B and final
  distribution of C.  The replicated operand's Cannon block is split
  into ``c`` equal pieces across its replica set, so A and B start as
  genuine 2D partitions over all active ranks and initial memory is
  balanced; C ends 2D-partitioned because each k-group's partial block
  is reduce-scattered into ``pk`` pieces (Example 2: the 16x16 block of
  ``C`` lands as four 16x4 column strips on ranks P1, P5, P9, P13).

All index ranges use the balanced ``floor(r*dim/p)`` splitting of
:mod:`repro.layout.blocks`, nested level by level (k into ``pk`` groups,
a group's range into ``s`` Cannon blocks, a block into ``c`` replica
pieces), so every rank derives identical rectangles with no
communication.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property, lru_cache

from ..grid.optimizer import (
    DEFAULT_L,
    GridSpec,
    MemLimitInfeasibleWarning,
    ca3dmm_grid,
)
from ..layout.blocks import Rect, block_range
from ..layout.distributions import Explicit


@dataclass(frozen=True)
class RankRole:
    """Where one active rank sits in the 3D grid / Cannon structure."""

    rank: int  #: world rank
    ik: int  #: k-task group index, 0 <= ik < pk
    i: int  #: m-dimension grid index, 0 <= i < pm
    j: int  #: n-dimension grid index, 0 <= j < pn
    group: int  #: Cannon group index within the k-task group, 0 <= group < c
    u: int  #: row within the s x s Cannon group
    v: int  #: column within the s x s Cannon group


class Ca3dmmPlan:
    """Partitioning and grouping decisions for one CA3DMM multiplication."""

    def __init__(
        self,
        m: int,
        n: int,
        k: int,
        nprocs: int,
        grid: GridSpec | None = None,
        l: float = DEFAULT_L,
        memory_limit_words: float | None = None,
    ):
        if min(m, n, k) < 1:
            raise ValueError(f"matrix dimensions must be positive, got {(m, n, k)}")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.m, self.n, self.k = m, n, k
        self.nprocs = nprocs
        self.memory_limit_words = memory_limit_words
        #: True when ``memory_limit_words`` excluded every candidate grid
        #: and the search fell back to the minimum-memory grid (the cap
        #: is then NOT honoured); surfaced as the ``mem_limit_infeasible``
        #: gauge and checked by the memprof gate.
        self.mem_limit_infeasible = False
        if grid is not None:
            self.grid = grid
        else:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                self.grid = ca3dmm_grid(
                    m, n, k, nprocs, l, memory_limit_words=memory_limit_words
                )
            for w in caught:  # flag the infeasible cap, re-emit everything
                if issubclass(w.category, MemLimitInfeasibleWarning):
                    self.mem_limit_infeasible = True
                warnings.warn_explicit(w.message, w.category, w.filename, w.lineno)
        if self.grid.nprocs != nprocs:
            raise ValueError("grid was built for a different world size")
        if not self.grid.cannon_compatible:
            raise ValueError(f"grid {self.grid} violates constraint (7)")

    # ------------------------------------------------------------- basics -- #
    @property
    def pm(self) -> int:
        return self.grid.pm

    @property
    def pn(self) -> int:
        return self.grid.pn

    @property
    def pk(self) -> int:
        return self.grid.pk

    @property
    def s(self) -> int:
        return self.grid.s

    @property
    def c(self) -> int:
        return self.grid.c

    @property
    def active(self) -> int:
        return self.grid.used

    @property
    def replicates_a(self) -> bool:
        """A is the replicated operand iff ``pn > pm`` (Example 1)."""
        return self.pn > self.pm

    def is_active(self, rank: int) -> bool:
        return rank < self.active

    # -------------------------------------------------------------- roles -- #
    def role(self, rank: int) -> RankRole | None:
        """Grid/Cannon coordinates of ``rank``; None for idle ranks."""
        if not self.is_active(rank):
            return None
        q, ik = rank % (self.pm * self.pn), rank // (self.pm * self.pn)
        i, j = q % self.pm, q // self.pm
        if self.replicates_a:  # groups tile the n-dimension
            group, v = divmod(j, self.s)
            u = i
        else:  # groups tile the m-dimension (or c == 1)
            group, u = divmod(i, self.s)
            v = j
        return RankRole(rank=rank, ik=ik, i=i, j=j, group=group, u=u, v=v)

    def rank_of(self, ik: int, i: int, j: int) -> int:
        """Inverse of :meth:`role` on grid coordinates."""
        return (i + self.pm * j) + (self.pm * self.pn) * ik

    # -------------------------------------------------------- index ranges -- #
    def k_range(self, ik: int) -> tuple[int, int]:
        """Global k-slice of k-task group ``ik``."""
        return block_range(self.k, self.pk, ik)

    def m_range(self, i: int) -> tuple[int, int]:
        return block_range(self.m, self.pm, i)

    def n_range(self, j: int) -> tuple[int, int]:
        return block_range(self.n, self.pn, j)

    def k_block_range(self, ik: int, t: int) -> tuple[int, int]:
        """Cannon-block ``t`` of group ``ik``'s k-slice (``0 <= t < s``)."""
        k0, k1 = self.k_range(ik)
        lo, hi = block_range(k1 - k0, self.s, t)
        return k0 + lo, k0 + hi

    # ------------------------------------------------ Cannon block rects -- #
    def a_block(self, ik: int, i: int, t: int) -> Rect:
        """The (unskewed) Cannon block ``A_{i,t}`` of k-group ``ik``."""
        r0, r1 = self.m_range(i)
        c0, c1 = self.k_block_range(ik, t)
        return Rect(r0, r1, c0, c1)

    def b_block(self, ik: int, t: int, j: int) -> Rect:
        """The (unskewed) Cannon block ``B_{t,j}`` of k-group ``ik``."""
        r0, r1 = self.k_block_range(ik, t)
        c0, c1 = self.n_range(j)
        return Rect(r0, r1, c0, c1)

    def c_block(self, i: int, j: int) -> Rect:
        """The ``C`` block computed at grid position ``(i, j)``."""
        r0, r1 = self.m_range(i)
        c0, c1 = self.n_range(j)
        return Rect(r0, r1, c0, c1)

    # --------------------------------------------- native A distribution -- #
    def a_cannon_block(self, role: RankRole) -> Rect:
        """The A block this rank holds *after* replication (unskewed)."""
        if self.replicates_a:
            return self.a_block(role.ik, role.u, role.v)
        return self.a_block(role.ik, role.i, role.v)

    def b_cannon_block(self, role: RankRole) -> Rect:
        """The B block this rank holds *after* replication (unskewed)."""
        if self.replicates_a:
            return self.b_block(role.ik, role.u, role.j)
        return self.b_block(role.ik, role.u, role.v)

    def a_owned(self, rank: int) -> Rect | None:
        """This rank's native *initial* piece of A (before replication).

        When A is replicated, the Cannon block is column-split into
        ``c`` pieces and this rank holds piece ``role.group``.
        """
        role = self.role(rank)
        if role is None:
            return None
        blk = self.a_cannon_block(role)
        if not self.replicates_a or self.c == 1:
            return blk
        lo, hi = block_range(blk.cols, self.c, role.group)
        return Rect(blk.r0, blk.r1, blk.c0 + lo, blk.c0 + hi)

    def b_owned(self, rank: int) -> Rect | None:
        """This rank's native *initial* piece of B (before replication).

        When B is replicated, the Cannon block is row-split into ``c``
        pieces and this rank holds piece ``role.group``.
        """
        role = self.role(rank)
        if role is None:
            return None
        blk = self.b_cannon_block(role)
        if self.replicates_a or self.c == 1:
            return blk
        lo, hi = block_range(blk.rows, self.c, role.group)
        return Rect(blk.r0 + lo, blk.r0 + hi, blk.c0, blk.c1)

    # --------------------------------------------- native C distribution -- #
    def c_split_cols(self, i: int, j: int) -> bool:
        """Whether the (i, j) C block is column-split across the pk group.

        Column-split when the block is at least as wide as tall
        (Example 2 splits a square 16x16 block into column strips).
        """
        blk = self.c_block(i, j)
        return blk.cols >= blk.rows

    def c_owned(self, rank: int) -> Rect | None:
        """This rank's final piece of C (after reduce-scatter)."""
        role = self.role(rank)
        if role is None:
            return None
        blk = self.c_block(role.i, role.j)
        if self.pk == 1:
            return blk
        if self.c_split_cols(role.i, role.j):
            lo, hi = block_range(blk.cols, self.pk, role.ik)
            return Rect(blk.r0, blk.r1, blk.c0 + lo, blk.c0 + hi)
        lo, hi = block_range(blk.rows, self.pk, role.ik)
        return Rect(blk.r0 + lo, blk.r0 + hi, blk.c0, blk.c1)

    # ----------------------------------------- distribution descriptors -- #
    def _explicit(self, shape: tuple[int, int], rect_of) -> Explicit:
        mapping = {}
        for r in range(self.active):
            rect = rect_of(r)
            if rect is not None and not rect.is_empty():
                mapping[r] = [rect]
        return Explicit.from_mapping(shape, self.nprocs, mapping)

    @cached_property
    def a_dist(self) -> Explicit:
        """Native initial distribution of A over the whole world."""
        return self._explicit((self.m, self.k), self.a_owned)

    @cached_property
    def b_dist(self) -> Explicit:
        """Native initial distribution of B over the whole world."""
        return self._explicit((self.k, self.n), self.b_owned)

    @cached_property
    def c_dist(self) -> Explicit:
        """Native final distribution of C over the whole world."""
        return self._explicit((self.m, self.n), self.c_owned)

    # ------------------------------------------------- communicator keys -- #
    def split_colors(self, rank: int) -> dict[str, tuple[int | None, int]]:
        """(color, key) pairs for the subcommunicators a rank joins.

        * ``"active"``  — all active ranks (idle ranks get color None).
        * ``"cannon"``  — this rank's s x s Cannon group, ordered
          column-major (local rank ``u + s*v``).
        * ``"replica"`` — the ``c`` ranks holding pieces of the same
          replicated block (ordered by group index).
        * ``"kred"``    — the ``pk`` ranks holding partial results of the
          same C block (ordered by ``ik``).
        """
        role = self.role(rank)
        if role is None:
            return {
                "active": (None, 0),
                "cannon": (None, 0),
                "replica": (None, 0),
                "kred": (None, 0),
            }
        cannon_color = role.ik * self.c + role.group
        replica_color = role.ik * (self.s * self.s) + role.u * self.s + role.v
        kred_color = role.i + self.pm * role.j
        return {
            "active": (0, rank),
            "cannon": (cannon_color, role.u + self.s * role.v),
            "replica": (replica_color, role.group),
            "kred": (kred_color, role.ik),
        }

    # ------------------------------------------------------------ summary -- #
    def describe(self) -> str:
        """Human-readable plan summary (mirrors the artifact's output)."""
        mb, nb, kb = (
            -(-self.m // self.pm),
            -(-self.n // self.pn),
            -(-self.k // self.pk),
        )
        lines = [
            f"Process grid pm x pn x pk : {self.pm} x {self.pn} x {self.pk}",
            f"Work cuboid  mb x nb x kb : {mb} x {nb} x {kb}",
            f"Cannon groups per k-group : {self.c} (s = {self.s}, "
            f"replicates {'A' if self.replicates_a else 'B' if self.c > 1 else 'nothing'})",
            f"Process utilization       : {100.0 * self.active / self.nprocs:.2f} %",
        ]
        return "\n".join(lines)


@lru_cache(maxsize=64)
def _shared_plan_cached(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    grid: "GridSpec | None",
    l: float,
    memory_limit_words: float | None,
) -> Ca3dmmPlan:
    return Ca3dmmPlan(
        m, n, k, nprocs, grid=grid, l=l, memory_limit_words=memory_limit_words
    )


def shared_plan(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    grid: "GridSpec | None" = None,
    l: float = DEFAULT_L,
    memory_limit_words: float | None = None,
) -> Ca3dmmPlan:
    """Memoized :class:`Ca3dmmPlan` shared across the ranks of a run.

    Every rank of an SPMD run plans the *identical* multiplication, and
    a plan is immutable once built, so per-rank construction only
    multiplies work: the distribution tables (:attr:`Ca3dmmPlan.a_dist`
    and friends) enumerate all ``P`` ranks, which made building them on
    each rank an O(P^2) startup cost — the dominant term at the
    1024-rank scale the DES backend targets.  Sharing one instance per
    parameter set makes those tables world-level work again.
    """
    return _shared_plan_cached(m, n, k, nprocs, grid, l, memory_limit_words)
