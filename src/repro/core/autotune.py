"""Model-driven variant selection (an extension the paper invites).

Section V sketches two memory-control levers — the SUMMA inner kernel
and fewer k-task groups — and Section IV-B shows that grids chosen by
pure volume analysis are not always the fastest in practice.  This
module closes the loop: it prices the candidate configurations with the
analytic engine on the *actual* machine model and returns the best
plan, optionally under a per-process memory cap.

Candidates considered:

* CA3DMM-C on its constrained-optimal grid (eqs. 4-8),
* CA3DMM-C on memory-capped grids (Section V lever 2),
* CA3DMM-S (SUMMA kernel, no constraint (7), no replication — lever 1),

and, for Table-II-style situations, a handful of near-optimal grids
around the volume optimum (sometimes a "suboptimal" grid with a
collective-friendlier ``pk`` wins, as the paper observed for pk=341).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..analysis.costs import ITEM, CostReport, ca3dmm_cost
from ..grid.optimizer import (
    DEFAULT_L,
    GridSpec,
    MemLimitInfeasibleWarning,
    ca3dmm_grid,
    cosma_grid,
    enumerate_grids,
)
from ..machine.model import MachineModel
from .ca3dmm import Ca3dmm


@dataclass(frozen=True)
class TunedChoice:
    """One evaluated candidate configuration."""

    inner: str  #: "cannon" or "summa"
    grid: GridSpec
    report: CostReport

    @property
    def time(self) -> float:
        return self.report.t_total

    @property
    def mem_words(self) -> float:
        return self.report.mem_words

    def describe(self) -> str:
        return (
            f"{self.inner:6s} grid {self.grid.pm}x{self.grid.pn}x{self.grid.pk}"
            f"  t={self.time:.4g}s  mem={self.mem_words * ITEM / 2 ** 20:.0f}MB"
        )


@dataclass
class TuneResult:
    """The winner plus the full ranked candidate list."""

    best: TunedChoice
    candidates: list[TunedChoice]

    def build(self, comm) -> Ca3dmm:
        """Instantiate the winning engine on a communicator.

        Only Cannon-kernel winners build a :class:`Ca3dmm`; for a SUMMA
        winner call :func:`repro.core.summa_variant.ca3dmm_s_matmul`
        with ``result.best.grid``.
        """
        if self.best.inner != "cannon":
            raise ValueError(
                "the winner uses the SUMMA kernel; call ca3dmm_s_matmul "
                "with best.grid instead of building a Ca3dmm engine"
            )
        return Ca3dmm(comm, self.best.report.m, self.best.report.n,
                      self.best.report.k, grid=self.best.grid)


def _near_optimal_grids(
    m: int, n: int, k: int, nprocs: int, l: float, count: int = 4
) -> list[GridSpec]:
    """The few lowest per-process-volume grids satisfying (5) and (7)."""
    cands = enumerate_grids(nprocs, l, require_divisible=True)
    cands.sort(key=lambda g: (g.surface(m, n, k) / g.used, -g.used))
    return cands[:count]


def tune(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    machine: MachineModel,
    memory_limit_words: float | None = None,
    l: float = DEFAULT_L,
    consider_summa: bool = True,
    near_optimal: int = 4,
) -> TuneResult:
    """Pick the fastest CA3DMM configuration for a problem and machine.

    Returns every evaluated candidate, ranked; candidates violating
    ``memory_limit_words`` are excluded (unless nothing fits, in which
    case the lowest-memory candidate wins — the call always succeeds).
    """
    candidates: list[TunedChoice] = []
    seen: set[tuple[str, int, int, int]] = set()

    def add(inner: str, grid: GridSpec) -> None:
        key = (inner, grid.pm, grid.pn, grid.pk)
        if key in seen:
            return
        seen.add(key)
        rep = ca3dmm_cost(m, n, k, nprocs, machine, grid=grid, inner=inner)
        candidates.append(TunedChoice(inner=inner, grid=grid, report=rep))

    for g in _near_optimal_grids(m, n, k, nprocs, l, count=near_optimal):
        add("cannon", g)
    if memory_limit_words is not None:
        add("cannon", ca3dmm_grid(m, n, k, nprocs, l, memory_limit_words=memory_limit_words))
    if consider_summa:
        add("summa", cosma_grid(m, n, k, nprocs, l))

    if memory_limit_words is not None:
        fitting = [c for c in candidates if c.mem_words <= memory_limit_words]
        if not fitting:
            floor = min(candidates, key=lambda c: c.mem_words)
            warnings.warn(
                MemLimitInfeasibleWarning(
                    f"memory_limit_words={memory_limit_words:g} excludes every "
                    f"tuning candidate for (m={m}, n={n}, k={k}, P={nprocs}); "
                    f"using the minimum-memory candidate "
                    f"({floor.inner}, {floor.grid.pm}x{floor.grid.pn}x"
                    f"{floor.grid.pk}) at {floor.mem_words:.0f} words, "
                    f"over the cap"
                ),
                stacklevel=2,
            )
            pool = [floor]
        else:
            pool = fitting
    else:
        pool = candidates
    ranked = sorted(pool, key=lambda c: c.time)
    return TuneResult(best=ranked[0], candidates=ranked)
