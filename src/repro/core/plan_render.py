"""Fig.-2-style ASCII rendering of CA3DMM's native partitionings.

The paper's Fig. 2 shows, for two worked examples, which process owns
which block of A, B, and C in the library-native layouts.  This module
regenerates those diagrams for *any* plan: each matrix is drawn as a
grid of cells labelled with the owning process (1-based ``P<r>``, as in
the paper).  Blocks are drawn at the granularity of the distinct row
and column boundaries of the layout, so the diagram is exact, not
sampled.

>>> from repro.core.plan import Ca3dmmPlan
>>> print(render_partitions(Ca3dmmPlan(32, 32, 64, 16)))   # Fig. 2b
"""

from __future__ import annotations

from ..layout.distributions import Explicit
from .plan import Ca3dmmPlan


def _grid_of(dist: Explicit) -> tuple[list[int], list[int], dict[tuple[int, int], str]]:
    """Cut lines and per-cell owner labels for an explicit layout."""
    rows = {0, dist.shape[0]}
    cols = {0, dist.shape[1]}
    rects = []
    for rank in range(dist.nranks):
        for rect in dist.owned_rects(rank):
            rows.update((rect.r0, rect.r1))
            cols.update((rect.c0, rect.c1))
            rects.append((rank, rect))
    row_cuts = sorted(rows)
    col_cuts = sorted(cols)
    owners: dict[tuple[int, int], str] = {}
    for i, r0 in enumerate(row_cuts[:-1]):
        for j, c0 in enumerate(col_cuts[:-1]):
            label = ""
            for rank, rect in rects:
                if rect.r0 <= r0 < rect.r1 and rect.c0 <= c0 < rect.c1:
                    label = f"P{rank + 1}"
                    break
            owners[(i, j)] = label
    return row_cuts, col_cuts, owners


def _render_one(name: str, dist: Explicit) -> str:
    row_cuts, col_cuts, owners = _grid_of(dist)
    nrows = len(row_cuts) - 1
    ncols = len(col_cuts) - 1
    if nrows <= 0 or ncols <= 0:
        return f"{name}: (empty)"
    width = max(4, max((len(v) for v in owners.values()), default=2) + 2)
    sep = "+" + "+".join("-" * width for _ in range(ncols)) + "+"
    lines = [f"{name} ({dist.shape[0]} x {dist.shape[1]}), blocks show owner:"]
    for i in range(nrows):
        lines.append(sep)
        cells = [owners.get((i, j), "").center(width) for j in range(ncols)]
        lines.append("|" + "|".join(cells) + "|")
    lines.append(sep)
    # annotate the column boundaries underneath
    bounds = " ".join(str(c) for c in col_cuts)
    lines.append(f"col cuts: {bounds}")
    lines.append(f"row cuts: {' '.join(str(r) for r in row_cuts)}")
    return "\n".join(lines)


def render_partitions(plan: Ca3dmmPlan, which: str = "ABC") -> str:
    """Render the native initial A/B and final C layouts of a plan.

    ``which`` selects any subset of "A", "B", "C".  Mirrors Fig. 2 of
    the paper (which shows A and B after step 2's redistribution and C
    before step 8's).
    """
    header = (
        f"CA3DMM native partitionings — m={plan.m} n={plan.n} k={plan.k} "
        f"P={plan.nprocs}, grid {plan.pm} x {plan.pn} x {plan.pk}"
        + (f", c={plan.c} Cannon groups/k-group" if plan.c > 1 else "")
        + (f", {plan.nprocs - plan.active} idle" if plan.active < plan.nprocs else "")
    )
    parts = [header]
    if "A" in which.upper():
        parts.append(_render_one("A (initial)", plan.a_dist))
    if "B" in which.upper():
        parts.append(_render_one("B (initial)", plan.b_dist))
    if "C" in which.upper():
        parts.append(_render_one("C (final)", plan.c_dist))
    return "\n\n".join(parts)
