"""A ScaLAPACK-flavoured PDGEMM facade over CA3DMM.

Real applications reach PGEMM through ScaLAPACK's calling convention —
op codes, scalars, and block-cyclic matrices.  This facade accepts
exactly that shape of call and runs CA3DMM underneath, converting
to/from the caller's layouts through the redistribution machinery (the
integration path the paper's Section V discusses for adopting
library-native layouts in existing codes):

    c = pdgemm("N", "T", alpha, a, b, beta, c)

Unlike the raw engine, ``pdgemm`` infers (m, n, k) from the operands
and always returns C in the same distribution as the ``c`` operand
(or, when ``c`` is None and beta is 0, in a caller-chosen ``c_dist``).
"""

from __future__ import annotations

from ..layout.distributions import Distribution
from ..layout.matrix import DistMatrix
from .ca3dmm import Ca3dmm, _norm_op


def pdgemm(
    transa: str,
    transb: str,
    alpha: float,
    a: DistMatrix,
    b: DistMatrix,
    beta: float = 0.0,
    c: DistMatrix | None = None,
    c_dist: Distribution | None = None,
    engine: Ca3dmm | None = None,
    abft=None,
) -> DistMatrix:
    """``C = alpha * op(A) op(B) + beta * C`` in the caller's layouts.

    ``transa``/``transb`` are 'N', 'T', or 'C'.  When ``c`` is given its
    distribution defines the output layout; otherwise ``c_dist`` (or the
    library-native layout if neither is given).  ``engine`` may carry a
    pre-planned :class:`Ca3dmm` for repeated same-shape calls.
    ``abft`` (True or an :class:`~repro.ft.abft.AbftPolicy`) turns on
    checksum protection of the Cannon stage when no pre-planned engine
    is given.
    """
    ta, _ = _norm_op(transa)
    tb, _ = _norm_op(transb)
    am, an = a.shape
    bm, bn = b.shape
    m, k = (an, am) if ta else (am, an)
    k2, n = (bn, bm) if tb else (bm, bn)
    if k != k2:
        raise ValueError(
            f"inner dimensions differ: op(A) is {m}x{k}, op(B) is {k2}x{n}"
        )
    if alpha != alpha or beta != beta:  # NaN (also complex NaN)
        raise ValueError(f"alpha/beta must not be NaN, got alpha={alpha}, beta={beta}")
    if beta != 0.0 and c is None:
        raise ValueError("beta != 0 requires the C operand")
    if c is not None and c_dist is not None and c_dist != c.dist:
        raise ValueError(
            "c and c_dist conflict: the C operand's distribution defines "
            "the output layout; drop c_dist or pass one equal to c.dist"
        )
    out_dist = c.dist if c is not None else c_dist
    eng = engine if engine is not None else Ca3dmm(a.comm, m, n, k, abft=abft)
    if (eng.plan.m, eng.plan.n, eng.plan.k) != (m, n, k):
        raise ValueError(
            f"engine planned for {(eng.plan.m, eng.plan.n, eng.plan.k)}, "
            f"call needs {(m, n, k)}"
        )
    return eng.multiply(
        a, b,
        c_dist=out_dist,
        transa=transa,
        transb=transb,
        alpha=alpha,
        beta=beta,
        c_in=c if beta != 0.0 else None,
    )
