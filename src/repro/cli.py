"""The artifact's example program, re-created (``example_AB``).

The SC22 artifact ships ``example_AB.exe``, run as::

    mpirun -np <nprocs> ./example_AB.exe <M> <N> <K> <transA> <transB>
        <validation> <ntest> <dtype> [mp np kp]

This module reproduces it on the virtual runtime (``-np`` becomes a
flag, ``dtype`` 0/1 selects the CPU or GPU machine model) and prints the
same report structure: the partition info block, per-phase timings over
``ntest`` runs, and a correctness check against the serial product.

Run as ``python -m repro.cli ...`` or via the ``ca3dmm-example``
console script.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.verify import eq9_lower_bound, theoretical_metrics
from .core.ca3dmm import Ca3dmm
from .core.plan import Ca3dmmPlan
from .grid.optimizer import GridSpec
from .layout.distributions import BlockCol1D
from .layout.matrix import DistMatrix, dense_random
from .machine.model import pace_phoenix_cpu, pace_phoenix_gpu
from .mpi.runtime import run_spmd


def _parse(argv: list[str] | None) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="example_AB",
        description="CA3DMM example: C = op(A) x op(B) on the virtual MPI runtime",
    )
    ap.add_argument("-np", "--nprocs", type=int, default=8, help="number of ranks")
    ap.add_argument("M", type=int)
    ap.add_argument("N", type=int)
    ap.add_argument("K", type=int)
    ap.add_argument("transA", type=int, choices=(0, 1), nargs="?", default=0)
    ap.add_argument("transB", type=int, choices=(0, 1), nargs="?", default=0)
    ap.add_argument("validation", type=int, choices=(0, 1), nargs="?", default=1)
    ap.add_argument("ntest", type=int, nargs="?", default=3)
    ap.add_argument(
        "dtype", type=int, choices=(0, 1), nargs="?", default=0,
        help="device: 0 = CPU machine model, 1 = GPU machine model",
    )
    ap.add_argument("mp", type=int, nargs="?", default=0)
    ap.add_argument("np_", metavar="np", type=int, nargs="?", default=0)
    ap.add_argument("kp", type=int, nargs="?", default=0)
    return ap.parse_args(argv)


def _rank_main(comm, args, grid):
    m, n, k = args.M, args.N, args.K
    a_shape = (k, m) if args.transA else (m, k)
    b_shape = (n, k) if args.transB else (k, n)
    a = DistMatrix.from_global(
        comm, BlockCol1D(a_shape, comm.size), dense_random(*a_shape, seed=7)
    )
    b = DistMatrix.from_global(
        comm, BlockCol1D(b_shape, comm.size), dense_random(*b_shape, seed=8)
    )
    eng = Ca3dmm(comm, m, n, k, grid=grid)
    out_dist = BlockCol1D((m, n), comm.size)

    timings = []
    c = None
    for _ in range(max(1, args.ntest)):
        before = comm.transport.trace(comm.world_rank)
        c = eng.multiply(
            a, b, c_dist=out_dist, transa=bool(args.transA), transb=bool(args.transB)
        )
        after = comm.transport.trace(comm.world_rank)
        delta = {
            name: after.phases[name].time
            - (before.phases[name].time if name in before.phases else 0.0)
            for name in after.phases
        }
        delta["total"] = after.time - before.time
        timings.append(delta)

    errors = 0
    if args.validation:
        got = c.to_global()
        a_g = a.to_global()
        b_g = b.to_global()
        ref = (a_g.T if args.transA else a_g) @ (b_g.T if args.transB else b_g)
        scale = max(1.0, float(np.abs(ref).max()))
        errors = int(np.sum(np.abs(got - ref) > 1e-9 * scale))
    peak = comm.transport.trace(comm.world_rank).peak_live_bytes
    return timings, errors, peak


def main(argv: list[str] | None = None) -> int:
    args = _parse(argv)
    m, n, k, p = args.M, args.N, args.K, args.nprocs
    machine = pace_phoenix_gpu() if args.dtype else pace_phoenix_cpu("mpi")

    grid = None
    if args.mp and args.np_ and args.kp:
        if args.mp * args.np_ * args.kp > p:
            print("mp * np * kp must be <= nprocs", file=sys.stderr)
            return 2
        grid = GridSpec(pm=args.mp, pn=args.np_, pk=args.kp, nprocs=p)

    plan = Ca3dmmPlan(m, n, k, p, grid=grid)
    metrics = theoretical_metrics(plan)
    mb = -(-m // plan.pm)
    nb = -(-n // plan.pn)
    kb = -(-k // plan.pk)

    print(f"Test problem size m * n * k : {m} * {n} * {k}")
    print(f"Transpose A / B             : {args.transA} / {args.transB}")
    print(f"Number of tests             : {args.ntest}")
    print(f"Check result correctness    : {args.validation}")
    print(f"Device type                 : {args.dtype}")
    print("CA3DMM partition info:")
    print(f"Process grid mp * np * kp   : {plan.pm} * {plan.pn} * {plan.pk}")
    print(f"Work cuboid  mb * nb * kb   : {mb} * {nb} * {kb}")
    print(f"Process utilization         : {100.0 * plan.active / p:.2f} %")
    ratio = metrics.q_words / max(eq9_lower_bound(m, n, k, p), 1e-300)
    print(f"Comm. volume / lower bound  : {ratio:.2f}")

    result = run_spmd(p, _rank_main, args=(args, grid), machine=machine)
    timings, errors, peak = result.results[0]
    print(f"Rank 0 work buffer size     : {peak / 2 ** 20:.2f} MBytes")
    print()

    def avg(key: str) -> float:
        return 1e3 * sum(t.get(key, 0.0) for t in timings) / len(timings)

    print("================== CA3DMM algorithm engine ==================")
    print(f"* Number of executions   : {len(timings)}")
    print(f"* Execution time (avg)   : {avg('total'):.3f} ms (simulated)")
    print(f"* Redistribute A, B, C   : {avg('redist'):.3f} ms")
    print(f"* Allgather A or B       : {avg('replicate'):.3f} ms")
    print(f"* 2D Cannon execution    : {avg('cannon'):.3f} ms")
    print(f"* Reduce-scatter C       : {avg('reduce'):.3f} ms")
    print("==============================================================")
    if args.validation:
        print(f"CA3DMM output : {errors} error(s)")
    return 0 if errors == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
