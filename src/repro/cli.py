"""The artifact's example program (``example_AB``) plus obs subcommands.

The SC22 artifact ships ``example_AB.exe``, run as::

    mpirun -np <nprocs> ./example_AB.exe <M> <N> <K> <transA> <transB>
        <validation> <ntest> <dtype> [mp np kp]

This module reproduces it on the virtual runtime (``-np`` becomes a
flag, ``dtype`` 0/1 selects the CPU or GPU machine model) and prints the
same report structure: the partition info block, per-phase timings over
``ntest`` runs, and a correctness check against the serial product.
``transA``/``transB`` accept the artifact's 0/1 or BLAS op codes
``N``/``T``/``C``; ``--json`` emits the whole report as one
schema-validated JSON document (``repro.obs.export.RUN_JSON_SCHEMA``)
for scripting.

Ten observability subcommands front the :mod:`repro.obs` subsystem::

    python -m repro.cli trace 64 64 64 -np 8 -o run.trace.json
    python -m repro.cli stats 64 64 64 -np 8 --json
    python -m repro.cli audit 64 64 64 -np 64 --strict
    python -m repro.cli memprof 64 64 64 -np 8 --json
    python -m repro.cli ledger --last 10
    python -m repro.cli critpath 64 64 64 -np 8 --timeline
    python -m repro.cli perfdiff --baseline-dir benchmarks/baselines
    python -m repro.cli faults 64 64 64 -np 8 --plan drop.json
    python -m repro.cli recover 64 64 64 -np 8 --kill-rank 3 --corrupt
    python -m repro.cli checkpoint 48 48 48 -np 8 --kill-rank 1

``trace`` executes one multiplication with event recording and exports a
Chrome-trace/Perfetto JSON (plus an optional JSONL structured log);
``stats`` prints the run's metrics snapshot and drift-guard report;
``critpath`` reconstructs the binding chain that bounds the makespan
(per-phase blame, per-rank idle decomposition, stragglers); ``perfdiff``
re-executes the fixed workload matrix and diffs it against committed
perf baselines, exiting nonzero on a regression (the CI perf gate);
``faults`` runs the same workload clean and under a deterministic fault
plan (:mod:`repro.mpi.faults`, see ``docs/FAULTS.md``) and reports the
makespan delta, retry counters, result correctness, and the critical-path
chain through the injected fault; ``recover`` demonstrates the
fault-*tolerance* layer (:mod:`repro.ft`, see ``docs/RECOVERY.md``):
ULFM-style rank-failure recovery and/or ABFT corruption protection,
exiting nonzero unless the faulted run recovers a correct result;
``checkpoint`` runs a multi-call pipeline under :mod:`repro.ckpt`
checkpoint/restart — a rank is killed mid-pipeline, the survivors
restart from the newest checkpoint, and partial-result reuse keeps the
recomputed work below one full call; ``audit`` runs the transport-truth
communication audit (:mod:`repro.obs.audit`): measured bytes-on-the-wire
vs the eq. (4) schedule, the α-β collective accounting, and the
red-blue pebbling lower bound, with a committed-baseline gate (the CI
audit gate); ``memprof`` profiles each rank's measured resident memory
(tagged allocation spans, :mod:`repro.obs.memtrace`) against the paper's
eq. (11) footprint prediction — per-purpose breakdown, top-offender
ranks, and a committed-baseline gate (the CI memory gate); ``ledger``
renders and queries the append-only run history
(:mod:`repro.obs.ledger`).  Every executing subcommand accepts
``--ledger [PATH]`` (or the ``REPRO_LEDGER`` environment variable) to
append its run record to the history.

Run as ``python -m repro.cli ...`` or via the ``ca3dmm-example``
console script.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .analysis.verify import eq9_lower_bound, theoretical_metrics
from .core.ca3dmm import Ca3dmm
from .core.plan import Ca3dmmPlan
from .grid.optimizer import GridSpec
from .layout.distributions import BlockCol1D
from .layout.matrix import DistMatrix, dense_random
from .machine.model import pace_phoenix_cpu, pace_phoenix_gpu
from .mpi.runtime import run_spmd
from .obs.critpath import critpath_report
from .obs.drift import drift_report
from .obs.export import (
    validate_run_json,
    write_chrome_trace,
    write_jsonl,
)
from .obs.metrics import format_metrics, snapshot_run

#: CLI op-code spellings accepted for transA/transB.
_OP_CODES = {"0": "N", "1": "T", "N": "N", "T": "T", "C": "C"}


def _op_arg(value: str) -> str:
    code = _OP_CODES.get(str(value).upper())
    if code is None:
        raise argparse.ArgumentTypeError(
            f"invalid op code {value!r}; expected 0, 1, N, T, or C"
        )
    return code


def _parse(argv: list[str] | None) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="example_AB",
        description="CA3DMM example: C = op(A) x op(B) on the virtual MPI runtime",
    )
    ap.add_argument("-np", "--nprocs", type=int, default=8, help="number of ranks")
    ap.add_argument("--backend", choices=("threads", "des"), default=None,
                    help="virtual-MPI execution backend (default: "
                         "$REPRO_MPI_BACKEND or threads)")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as one JSON document (no text output)")
    ap.add_argument("--ledger", nargs="?", const="", default=None,
                    metavar="PATH",
                    help="append this run's record to the JSONL run ledger")
    ap.add_argument("M", type=int)
    ap.add_argument("N", type=int)
    ap.add_argument("K", type=int)
    ap.add_argument("transA", type=_op_arg, nargs="?", default="N",
                    help="0/N, 1/T, or C (conjugate transpose)")
    ap.add_argument("transB", type=_op_arg, nargs="?", default="N")
    ap.add_argument("validation", type=int, choices=(0, 1), nargs="?", default=1)
    ap.add_argument("ntest", type=int, nargs="?", default=3)
    ap.add_argument(
        "dtype", type=int, choices=(0, 1), nargs="?", default=0,
        help="device: 0 = CPU machine model, 1 = GPU machine model",
    )
    ap.add_argument("mp", type=int, nargs="?", default=0)
    ap.add_argument("np_", metavar="np", type=int, nargs="?", default=0)
    ap.add_argument("kp", type=int, nargs="?", default=0)
    return ap.parse_args(argv)


def _rank_main(comm, args, grid):
    m, n, k = args.M, args.N, args.K
    transa, transb = args.transA != "N", args.transB != "N"
    a_shape = (k, m) if transa else (m, k)
    b_shape = (n, k) if transb else (k, n)
    a = DistMatrix.from_global(
        comm, BlockCol1D(a_shape, comm.size), dense_random(*a_shape, seed=7)
    )
    b = DistMatrix.from_global(
        comm, BlockCol1D(b_shape, comm.size), dense_random(*b_shape, seed=8)
    )
    eng = Ca3dmm(comm, m, n, k, grid=grid)
    out_dist = BlockCol1D((m, n), comm.size)

    timings = []
    c = None
    for _ in range(max(1, args.ntest)):
        before = comm.transport.trace(comm.world_rank)
        c = eng.multiply(a, b, c_dist=out_dist, transa=args.transA, transb=args.transB)
        after = comm.transport.trace(comm.world_rank)
        delta = {
            name: after.phases[name].time
            - (before.phases[name].time if name in before.phases else 0.0)
            for name in after.phases
        }
        delta["total"] = after.time - before.time
        timings.append(delta)

    errors = 0
    if args.validation:
        got = c.to_global()
        a_g = a.to_global()
        b_g = b.to_global()
        op_a = a_g.conj().T if args.transA == "C" else a_g.T if transa else a_g
        op_b = b_g.conj().T if args.transB == "C" else b_g.T if transb else b_g
        ref = op_a @ op_b
        scale = max(1.0, float(np.abs(ref).max()))
        errors = int(np.sum(np.abs(got - ref) > 1e-9 * scale))
    peak = comm.transport.trace(comm.world_rank).peak_live_bytes
    return timings, errors, peak


def _partition_doc(args, plan, metrics) -> dict:
    m, n, k, p = args.M, args.N, args.K, args.nprocs
    mb = -(-m // plan.pm)
    nb = -(-n // plan.pn)
    kb = -(-k // plan.pk)
    return {
        "pm": plan.pm,
        "pn": plan.pn,
        "pk": plan.pk,
        "s": plan.s,
        "c": plan.c,
        "work_cuboid": [mb, nb, kb],
        "utilization_pct": 100.0 * plan.active / p,
        "q_over_lower_bound": metrics.q_words
        / max(eq9_lower_bound(m, n, k, p), 1e-300),
    }


# -------------------------------------------------------------- example_AB -- #
def _example_main(argv: list[str] | None) -> int:
    args = _parse(argv)
    m, n, k, p = args.M, args.N, args.K, args.nprocs
    machine = pace_phoenix_gpu() if args.dtype else pace_phoenix_cpu("mpi")

    grid = None
    if args.mp and args.np_ and args.kp:
        if args.mp * args.np_ * args.kp > p:
            print("mp * np * kp must be <= nprocs", file=sys.stderr)
            return 2
        grid = GridSpec(pm=args.mp, pn=args.np_, pk=args.kp, nprocs=p)

    plan = Ca3dmmPlan(m, n, k, p, grid=grid)
    metrics = theoretical_metrics(plan)
    part = _partition_doc(args, plan, metrics)

    if not args.json:
        print(f"Test problem size m * n * k : {m} * {n} * {k}")
        print(f"Transpose A / B             : "
              f"{int(args.transA != 'N')} / {int(args.transB != 'N')}")
        print(f"Number of tests             : {args.ntest}")
        print(f"Check result correctness    : {args.validation}")
        print(f"Device type                 : {args.dtype}")
        print("CA3DMM partition info:")
        print(f"Process grid mp * np * kp   : {plan.pm} * {plan.pn} * {plan.pk}")
        wc = part["work_cuboid"]
        print(f"Work cuboid  mb * nb * kb   : {wc[0]} * {wc[1]} * {wc[2]}")
        print(f"Process utilization         : {part['utilization_pct']:.2f} %")
        print(f"Comm. volume / lower bound  : {part['q_over_lower_bound']:.2f}")

    result = run_spmd(
        p, _rank_main, args=(args, grid), machine=machine,
        record_events=args.json, backend=args.backend,
    )
    timings, errors, peak = result.results[0]
    nruns = max(1, args.ntest)
    _append_ledger(args, result, plan, "cli.example", nruns=nruns)

    def avg(key: str) -> float:
        return 1e3 * sum(t.get(key, 0.0) for t in timings) / len(timings)

    if args.json:
        from .obs.audit import audit_run

        phase_names = sorted({name for t in timings for name in t})
        doc = {
            "schema_version": 1,
            "problem": {
                "m": m, "n": n, "k": k, "nprocs": p,
                "transA": args.transA, "transB": args.transB,
                "device": "gpu" if args.dtype else "cpu",
            },
            "partition": part,
            "phases": {name: {"avg_ms": avg(name)} for name in phase_names},
            "runs": [
                {name: 1e3 * t.get(name, 0.0) for name in phase_names}
                for t in timings
            ],
            "correctness": {"validated": bool(args.validation), "errors": errors},
            "peak_bytes": int(peak),
            "metrics": snapshot_run(result, plan).to_dict(),
            "drift": drift_report(result, plan, nruns=nruns).to_dict(),
            "audit": audit_run(result, plan, machine=machine,
                               nruns=nruns).to_dict(),
        }
        validate_run_json(doc)
        print(json.dumps(doc, indent=2))
        return 0 if errors == 0 else 1

    print(f"Rank 0 work buffer size     : {peak / 2 ** 20:.2f} MBytes")
    print()
    print("================== CA3DMM algorithm engine ==================")
    print(f"* Number of executions   : {len(timings)}")
    print(f"* Execution time (avg)   : {avg('total'):.3f} ms (simulated)")
    print(f"* Redistribute A, B, C   : {avg('redist'):.3f} ms")
    print(f"* Allgather A or B       : {avg('replicate'):.3f} ms")
    print(f"* 2D Cannon execution    : {avg('cannon'):.3f} ms")
    print(f"* Reduce-scatter C       : {avg('reduce'):.3f} ms")
    print("==============================================================")
    if args.validation:
        print(f"CA3DMM output : {errors} error(s)")
    return 0 if errors == 0 else 1


# ------------------------------------------------------- obs subcommands -- #
def _obs_parser(name: str, description: str) -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog=f"python -m repro.cli {name}",
                                 description=description)
    ap.add_argument("M", type=int)
    ap.add_argument("N", type=int)
    ap.add_argument("K", type=int)
    ap.add_argument("-np", "--nprocs", type=int, default=8)
    ap.add_argument("--backend", choices=("threads", "des"), default=None,
                    help="virtual-MPI execution backend (default: "
                         "$REPRO_MPI_BACKEND or threads)")
    ap.add_argument("--dtype", type=int, choices=(0, 1), default=0,
                    help="0 = CPU machine model, 1 = GPU machine model")
    ap.add_argument("--overlap", choices=("none", "partial", "full"),
                    default=None,
                    help="async comm engine capability of the machine "
                         "model (default: the model's own, i.e. 'none'; "
                         "see docs/VIRTUAL_MPI.md)")
    ap.add_argument("--grid", type=int, nargs=3, metavar=("MP", "NP", "KP"),
                    help="force the process grid pm pn pk")
    ap.add_argument("--tol", type=float, default=0.05,
                    help="drift-guard byte tolerance (relative)")
    ap.add_argument("--ledger", nargs="?", const="", default=None,
                    metavar="PATH",
                    help="append this run's record to the JSONL run ledger "
                         "(default path benchmarks/history/ledger.jsonl; "
                         "REPRO_LEDGER=<path|1> enables it globally)")
    return ap


def _ledger_target(args) -> "object | None":
    """The ledger path selected by --ledger / REPRO_LEDGER, or None."""
    from .obs.ledger import DEFAULT_LEDGER_PATH, ledger_path_from_env

    flag = getattr(args, "ledger", None)
    if flag is not None:
        return flag or DEFAULT_LEDGER_PATH
    return ledger_path_from_env()


def _append_ledger(args, result, plan, kind: str, nruns: int = 1,
                   audit_ok: bool | None = None,
                   extra: dict | None = None) -> None:
    """Append one run record when the ledger is enabled (else no-op)."""
    target = _ledger_target(args)
    if target is None:
        return
    from .obs.ledger import Ledger, ledger_record

    rec = ledger_record(result, plan, kind, nruns=nruns,
                        audit_ok=audit_ok, extra=extra)
    ledger = Ledger(target)
    ledger.append(rec)
    if not getattr(args, "json", False):
        print(f"ledger: appended {rec['run_id'][:12]} ({kind}) to {ledger.path}")


def _run_traced(m: int, n: int, k: int, p: int, machine, grid,
                memory_limit_words: float | None = None,
                backend: str | None = None):
    """One native-layout multiplication with event recording."""
    plan = Ca3dmmPlan(m, n, k, p, grid=grid,
                      memory_limit_words=memory_limit_words)

    def f(comm):
        eng = Ca3dmm(comm, m, n, k, grid=grid if grid is not None else plan.grid)
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 7))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 8))
        eng.multiply(a, b)

    result = run_spmd(p, f, machine=machine, record_events=True, backend=backend)
    return plan, result


def _obs_common(args):
    machine = pace_phoenix_gpu() if args.dtype else pace_phoenix_cpu("mpi")
    if getattr(args, "overlap", None):
        machine = machine.with_overlap(args.overlap)
    grid = None
    if args.grid:
        mp, np_, kp = args.grid
        if mp * np_ * kp > args.nprocs:
            raise SystemExit("grid mp * np * kp must be <= nprocs")
        grid = GridSpec(pm=mp, pn=np_, pk=kp, nprocs=args.nprocs)
    return machine, grid


def _trace_main(argv: list[str]) -> int:
    ap = _obs_parser(
        "trace", "Execute one CA3DMM multiplication and export its trace"
    )
    ap.add_argument("-o", "--output", default="ca3dmm.trace.json",
                    help="Chrome-trace output path (load in Perfetto)")
    ap.add_argument("--jsonl", default=None,
                    help="also write a JSONL structured log to this path")
    ap.add_argument("--no-transport-events", action="store_true",
                    help="export only spans (phases/collectives), not "
                         "per-message slices")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero when the drift guard fails")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    plan, result = _run_traced(args.M, args.N, args.K, args.nprocs, machine,
                               grid, backend=args.backend)

    try:
        doc = write_chrome_trace(
            result, args.output,
            include_transport_events=not args.no_transport_events,
            label=f"ca3dmm {args.M}x{args.N}x{args.K} P={args.nprocs}",
        )
        print(f"wrote {args.output}: {len(doc['traceEvents'])} events, "
              f"{len(result.spans)} spans, makespan "
              f"{result.time * 1e3:.3f} ms (simulated)")
        if args.jsonl:
            n = write_jsonl(result, args.jsonl)
            print(f"wrote {args.jsonl}: {n} records")
    except OSError as exc:
        raise SystemExit(f"cannot write trace: {exc}")
    report = drift_report(result, plan, byte_tol=args.tol, machine=machine)
    print(report.format())
    _append_ledger(args, result, plan, "cli.trace")
    return 1 if (args.strict and not report.ok) else 0


def _critpath_main(argv: list[str]) -> int:
    ap = _obs_parser(
        "critpath",
        "Execute one CA3DMM multiplication and analyze the dependency "
        "chain that bounds its simulated makespan",
    )
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--timeline", action="store_true",
                    help="also render the per-rank timeline with the "
                         "binding chain highlighted (upper-case glyphs)")
    ap.add_argument("--max-segments", type=int, default=12,
                    help="chain segments shown in text mode")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    _plan, result = _run_traced(args.M, args.N, args.K, args.nprocs, machine,
                               grid, backend=args.backend)
    report = critpath_report(result)
    _append_ledger(args, result, _plan, "cli.critpath")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format(max_segments=args.max_segments))
        if args.timeline:
            from .analysis.timeline import render_timeline

            print()
            print(render_timeline(result, highlight_critical=True))
    return 0 if report.path.complete else 1


def _perfdiff_main(argv: list[str]) -> int:
    from dataclasses import replace as _dc_replace

    from .bench.harness import TRACE_WORKLOADS, executed_workload
    from .obs.baseline import BaselineStore, PerfTolerance, capture_baseline

    ap = argparse.ArgumentParser(
        prog="python -m repro.cli perfdiff",
        description="Re-execute the fixed workload matrix and diff makespan, "
                    "per-phase critical time, and traffic against committed "
                    "perf baselines",
    )
    ap.add_argument("names", nargs="*",
                    help=f"workloads to check (default: all of "
                         f"{' '.join(sorted(TRACE_WORKLOADS))})")
    ap.add_argument("--baseline-dir", default="benchmarks/baselines",
                    help="directory of committed <name>.json baselines")
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baselines from this run instead of comparing")
    ap.add_argument("--verbose", action="store_true",
                    help="list every compared metric, not only changes")
    ap.add_argument("--time-tol", type=float, default=None,
                    help="relative makespan tolerance (default 0.03)")
    ap.add_argument("--phase-tol", type=float, default=None,
                    help="relative per-phase critical-time tolerance (default 0.10)")
    ap.add_argument("--bytes-tol", type=float, default=None,
                    help="relative traffic tolerance (default 0.02)")
    ap.add_argument("--backend", choices=("threads", "des"), default=None,
                    help="virtual-MPI execution backend (default: "
                         "$REPRO_MPI_BACKEND or threads)")
    ap.add_argument("--inject-latency", type=float, default=1.0, metavar="X",
                    help="scale the machine model's link latency/bandwidth "
                         "costs by X before running (gate self-test; 1.0 = off)")
    args = ap.parse_args(argv)

    names = args.names or sorted(TRACE_WORKLOADS)
    unknown = [n for n in names if n not in TRACE_WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {' '.join(unknown)}", file=sys.stderr)
        return 2
    tol = PerfTolerance()
    if args.time_tol is not None:
        tol = _dc_replace(tol, time_rel=args.time_tol)
    if args.phase_tol is not None:
        tol = _dc_replace(tol, phase_rel=args.phase_tol)
    if args.bytes_tol is not None:
        tol = _dc_replace(tol, bytes_rel=args.bytes_tol)
    machine = pace_phoenix_cpu("mpi")
    if args.inject_latency != 1.0:
        x = args.inject_latency
        machine = _dc_replace(
            machine,
            alpha=machine.alpha * x,
            nic_beta=machine.nic_beta * x,
            alpha_intra=machine.alpha_intra * x,
            beta_intra=machine.beta_intra * x,
        )

    store = BaselineStore(args.baseline_dir)
    diffs, missing = [], []
    for name in names:
        m, n, k, p = TRACE_WORKLOADS[name]
        _plan, result = executed_workload(name, machine=machine,
                                          backend=args.backend)
        doc = capture_baseline(
            result, name,
            workload={"m": m, "n": n, "k": k, "nprocs": p},
            machine_label="pace_phoenix_cpu(mpi)",
        )
        if args.update:
            path = store.save(name, doc)
            if not args.json:
                print(f"baseline refreshed: {path}")
            continue
        diff = store.compare(name, doc, tol)
        if diff is None:
            missing.append(name)
        else:
            diffs.append(diff)

    if args.update:
        return 0
    ok = not missing and all(d.ok for d in diffs)
    if args.json:
        print(json.dumps({
            "schema_version": 1,
            "baseline_dir": args.baseline_dir,
            "ok": ok,
            "missing": missing,
            "workloads": [d.to_dict() for d in diffs],
        }, indent=2))
    else:
        for d in diffs:
            print(d.format(verbose=args.verbose))
        for name in missing:
            print(f"{name}: NO BASELINE (run with --update and commit "
                  f"{store.path(name)})")
        print("perfdiff: " + ("OK" if ok else "FAIL")
              + f" ({len(diffs)} compared, {len(missing)} missing)")
    return 0 if ok else 1


def _faults_main(argv: list[str]) -> int:
    from .mpi.faults import FaultPlan, LinkFault

    ap = _obs_parser(
        "faults",
        "Execute one CA3DMM multiplication clean and under a deterministic "
        "fault plan; report the makespan delta, retry counters, result "
        "correctness, and the critical-path chain through the injected fault",
    )
    ap.add_argument("--plan", default=None, metavar="FILE",
                    help="fault-plan JSON (docs/FAULTS.md); default: a "
                         "seeded demo plan dropping the first Cannon-phase "
                         "message on every link")
    ap.add_argument("--seed", type=int, default=0,
                    help="seed for the default demo plan (ignored with --plan)")
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--timeline", action="store_true",
                    help="also render the faulted run's timeline "
                         "('!' marks injected intervals)")
    ap.add_argument("--max-segments", type=int, default=12,
                    help="chain segments shown in text mode")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)

    if args.plan:
        fault_plan = FaultPlan.load(args.plan)
    else:
        fault_plan = FaultPlan(
            seed=args.seed, links=(LinkFault(phase="cannon", drop_at=(0,)),)
        )

    m, n, k, p = args.M, args.N, args.K, args.nprocs
    plan = Ca3dmmPlan(m, n, k, p, grid=grid)

    def f(comm):
        eng = Ca3dmm(comm, m, n, k, grid=grid)
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 7))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 8))
        c = eng.multiply(a, b)
        full = c.to_global()
        return full if comm.rank == 0 else None

    clean = run_spmd(p, f, machine=machine, record_events=True,
                     backend=args.backend)
    faulted = run_spmd(
        p, f, machine=machine, record_events=True, faults=fault_plan,
        backend=args.backend,
    )
    correct = np.array_equal(clean.results[0], faulted.results[0])
    report = critpath_report(faulted)
    _append_ledger(args, faulted, plan, "cli.faults")
    fm = faulted.metrics
    delta = faulted.time - clean.time
    ok = correct and report.path.complete

    if args.json:
        doc = {
            "schema_version": 1,
            "problem": {"m": m, "n": n, "k": k, "nprocs": p},
            "plan": fault_plan.to_dict(),
            "clean_makespan_s": clean.time,
            "faulted_makespan_s": faulted.time,
            "delta_s": delta,
            "correct": correct,
            "total_retries": fm.total_retries,
            "total_timeouts": fm.total_timeouts,
            "injected_wait_s": fm.injected_wait_s,
            "critpath": report.to_dict(),
        }
        print(json.dumps(doc, indent=2))
        return 0 if ok else 1

    print(f"fault plan        : {args.plan or 'demo (drop first cannon msg/link)'}"
          f" seed={fault_plan.seed}")
    print(f"clean makespan    : {clean.time * 1e3:.6f} ms")
    print(f"faulted makespan  : {faulted.time * 1e3:.6f} ms "
          f"(+{delta * 1e3:.6f} ms)")
    print(f"retries/timeouts  : {fm.total_retries}/{fm.total_timeouts}")
    print(f"injected wait     : {fm.injected_wait_s * 1e3:.6f} ms")
    print(f"result            : {'bit-identical to clean run' if correct else 'MISMATCH'}")
    print()
    print(report.format(max_segments=args.max_segments))
    if args.timeline:
        from .analysis.timeline import render_timeline

        print()
        print(render_timeline(faulted, highlight_critical=True))
    return 0 if ok else 1


def _recover_main(argv: list[str]) -> int:
    from .ft import resilient_multiply
    from .mpi.faults import FaultPlan, LinkFault, RankFault

    ap = _obs_parser(
        "recover",
        "Execute one CA3DMM multiplication under rank kills and/or payload "
        "corruption and demonstrate the fault-tolerance layer: ULFM-style "
        "shrink-replan-redistribute recovery and ABFT checksum "
        "detect-and-recompute (docs/RECOVERY.md)",
    )
    ap.add_argument("--plan", default=None, metavar="FILE",
                    help="fault-plan JSON; default: a demo plan built from "
                         "--kill-rank / --corrupt")
    ap.add_argument("--kill-rank", type=int, default=None, metavar="R",
                    help="permanently kill rank R at its first Cannon entry "
                         "(default demo when neither --corrupt nor --plan "
                         "is given: rank 1)")
    ap.add_argument("--corrupt", action="store_true",
                    help="corrupt the first Cannon-phase message on every "
                         "link (caught by ABFT)")
    ap.add_argument("--corrupt-phase", default=None,
                    choices=("replicate", "cannon", "reduce", "redist"),
                    help="corrupt the first message of this algorithm phase "
                         "on every link instead (end-to-end ABFT/CRC "
                         "coverage; pick shapes whose plan has replicate "
                         "traffic (c>1) or reduce traffic (pk>1) when "
                         "targeting those phases, e.g. 64 64 64 -np 16)")
    ap.add_argument("--salvage-report", action="store_true",
                    help="print the per-(i,j) salvage table of the recovery "
                         "round: which C cells were reused from retained "
                         "ABFT-verified partials and which were recomputed")
    ap.add_argument("--seed", type=int, default=0,
                    help="seed for the demo plan (ignored with --plan)")
    ap.add_argument("--max-recoveries", type=int, default=2,
                    help="shrink-replan rounds allowed before giving up")
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--timeline", action="store_true",
                    help="also render the faulted run's timeline")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    m, n, k, p = args.M, args.N, args.K, args.nprocs

    if args.plan:
        fault_plan = FaultPlan.load(args.plan)
    else:
        kill = args.kill_rank
        if kill is None and not args.corrupt and args.corrupt_phase is None:
            kill = 1 if p > 1 else None
        ranks = ()
        if kill is not None:
            if not 0 <= kill < p:
                print(f"--kill-rank must be in [0, {p})", file=sys.stderr)
                return 2
            ranks = (RankFault(rank=kill, phase="cannon", occurrence=1,
                               kill=True),)
        if args.corrupt_phase is not None:
            links = (LinkFault(corrupt_phase=args.corrupt_phase,
                               corrupt_at=(0,)),)
        elif args.corrupt:
            links = (LinkFault(phase="cannon", corrupt_at=(0,)),)
        else:
            links = ()
        fault_plan = FaultPlan(seed=args.seed, ranks=ranks, links=links)

    kills = any(r.kill for r in fault_plan.ranks)
    corrupts = any(r.corrupt_at or r.corrupt_prob for r in fault_plan.links)
    abft = corrupts  # checksum protection on whenever corruption is scripted

    want_salvage = args.salvage_report

    def f(comm):
        a = DistMatrix.from_global(
            comm, BlockCol1D((m, k), comm.size), dense_random(m, k, seed=7)
        )
        b = DistMatrix.from_global(
            comm, BlockCol1D((k, n), comm.size), dense_random(k, n, seed=8)
        )
        salvage = [] if want_salvage else None
        c = resilient_multiply(
            comm, a, b,
            c_dist=lambda cm: BlockCol1D((m, n), cm.size),
            grid=grid, abft=abft, max_recoveries=args.max_recoveries,
            salvage_report=salvage,
        )
        return {"c": c.to_global(), "salvage": salvage}

    clean = run_spmd(p, f, machine=machine, record_events=True,
                     backend=args.backend)
    try:
        faulted = run_spmd(
            p, f, machine=machine, record_events=True, faults=fault_plan,
            backend=args.backend,
        )
    except RuntimeError as exc:
        print(f"recovery failed: {exc.__cause__ or exc}", file=sys.stderr)
        return 1

    got = next((r for r in faulted.results if r is not None), None)
    if got is None:
        print("recovery failed: no surviving rank returned a result",
              file=sys.stderr)
        return 1
    salvage = got["salvage"]
    got = got["c"]
    _append_ledger(args, faulted, Ca3dmmPlan(m, n, k, p, grid=grid),
                   "cli.recover")
    ref = dense_random(m, k, seed=7) @ dense_random(k, n, seed=8)
    scale = max(1.0, float(np.abs(ref).max()))
    max_err = float(np.abs(got - ref).max())
    numeric_ok = max_err <= 1e-9 * scale
    # Corruption-only runs re-execute the identical schedule, so the
    # recovered C must match the clean run bit for bit.  A rank loss
    # re-plans the grid for P' ranks (different summation order), so
    # there only the numeric check applies.
    bit_identical = None
    if corrupts and not kills:
        bit_identical = all(
            np.array_equal(x["c"], y["c"])
            for x, y in zip(faulted.results, clean.results)
        )
    fm = faulted.metrics
    ok = numeric_ok
    if kills:
        ok = ok and fm.recoveries >= 1 and bool(faulted.failed_ranks)
    if corrupts and not kills:
        # With kills in the same plan, detection may legitimately stay
        # zero: a corrupted attempt can be discarded wholesale by the
        # rank-failure recovery before its checksums are ever read.
        ok = ok and fm.corruptions_detected >= 1
    if bit_identical is not None:
        ok = ok and bit_identical

    if args.json:
        doc = {
            "schema_version": 1,
            "problem": {"m": m, "n": n, "k": k, "nprocs": p},
            "plan": fault_plan.to_dict(),
            "abft": abft,
            "max_recoveries": args.max_recoveries,
            "clean_makespan_s": clean.time,
            "faulted_makespan_s": faulted.time,
            "failed_ranks": faulted.failed_ranks,
            "recoveries": fm.recoveries,
            "corruptions_injected": fm.corruptions_injected,
            "corruptions_detected": fm.corruptions_detected,
            "corruptions_injected_by_phase": dict(
                sorted(fm.corruptions_injected_by_phase.items())
            ),
            "corruptions_detected_by_phase": dict(
                sorted(fm.corruptions_detected_by_phase.items())
            ),
            "recomputed_flops": fm.recomputed_flops,
            "reused_flops": fm.reused_flops,
            "max_abs_error": max_err,
            "tolerance": 1e-9 * scale,
            "bit_identical_to_clean": bit_identical,
            "correct": ok,
        }
        if salvage is not None:
            doc["salvage"] = [
                {**row, "rect": list(row["rect"])} for row in salvage
            ]
        print(json.dumps(doc, indent=2))
        return 0 if ok else 1

    print(f"fault plan        : "
          f"{args.plan or 'demo'} seed={fault_plan.seed} "
          f"({len(fault_plan.ranks)} rank rule(s), "
          f"{len(fault_plan.links)} link rule(s), abft={'on' if abft else 'off'})")
    print(f"clean makespan    : {clean.time * 1e3:.6f} ms")
    print(f"faulted makespan  : {faulted.time * 1e3:.6f} ms "
          f"(+{(faulted.time - clean.time) * 1e3:.6f} ms)")
    print(f"failed ranks      : {faulted.failed_ranks or 'none'}")
    print(f"recoveries        : {fm.recoveries}")
    print(f"corruption (ABFT) : {fm.corruptions_injected} injected, "
          f"{fm.corruptions_detected} detected, "
          f"{fm.recomputed_flops:.0f} flops recomputed")
    for ph in sorted(set(fm.corruptions_injected_by_phase)
                     | set(fm.corruptions_detected_by_phase)):
        print(f"    {ph:<14}: "
              f"{fm.corruptions_injected_by_phase.get(ph, 0)} injected, "
              f"{fm.corruptions_detected_by_phase.get(ph, 0)} detected")
    print(f"max |C - ref|     : {max_err:.3e} (tol {1e-9 * scale:.3e})")
    if bit_identical is not None:
        print(f"vs clean run      : "
              f"{'bit-identical' if bit_identical else 'MISMATCH'}")
    if salvage is not None:
        if not salvage:
            print("salvage           : none "
                  "(no recovery round reused partial results)")
        else:
            reused = [r for r in salvage if r["status"] == "reused"]
            redone = [r for r in salvage if r["status"] == "recomputed"]
            print(f"salvage           : {len(reused)}/{len(salvage)} "
                  f"(i,j,k)-cells reused "
                  f"({sum(r['flops'] for r in reused):.0f} flops), "
                  f"{len(redone)} recomputed "
                  f"({sum(r['flops'] for r in redone):.0f} flops)")
            print("    ik   i   j  rect (r0,r1,c0,c1)      flops  status")
            for row in salvage:
                r0, r1, c0, c1 = row["rect"]
                print(f"    {row['ik']:>2} {row['i']:>3} {row['j']:>3}  "
                      f"({r0:>4},{r1:>4},{c0:>4},{c1:>4}) "
                      f"{row['flops']:>10.0f}  {row['status']}")
    print(f"result            : {'recovered OK' if ok else 'FAILED'}")
    if args.timeline:
        from .analysis.timeline import render_timeline

        print()
        print(render_timeline(faulted, highlight_critical=True))
    return 0 if ok else 1


def _checkpoint_main(argv: list[str]) -> int:
    from .apps.pipeline import matmul_chain, matmul_chain_reference
    from .ckpt import CheckpointPolicy, DirStore, MemoryStore
    from .mpi.faults import FaultPlan, RankFault

    ap = _obs_parser(
        "checkpoint",
        "Run a multi-call matmul pipeline (X <- op(A) @ X, alternating op) "
        "under checkpoint/restart (docs/RECOVERY.md): kill a rank "
        "mid-pipeline, restart from the newest checkpoint on the surviving "
        "ranks, and verify the final iterate against numpy.  Exits 0 only "
        "when the faulted pipeline recovers, matches the serial reference, "
        "and partial-result reuse saved work (reused_flops > 0, recomputed "
        "< one full call).",
    )
    ap.add_argument("--calls", type=int, default=4,
                    help="pipeline length (matmul calls)")
    ap.add_argument("--ckpt-every", type=int, default=1, metavar="N",
                    help="checkpoint after every N calls")
    ap.add_argument("--kill-rank", type=int, default=1, metavar="R",
                    help="rank to kill (permanently) mid-pipeline")
    ap.add_argument("--kill-call", type=int, default=2, metavar="C",
                    help="0-based call index whose Cannon stage kills the rank")
    ap.add_argument("--store", choices=("mem", "dir"), default="mem",
                    help="checkpoint store backend: in-memory disk or a "
                         "real directory of .npy tiles")
    ap.add_argument("--store-dir", default=None, metavar="PATH",
                    help="directory for --store dir (default: a temp dir)")
    ap.add_argument("--escaped", action="store_true",
                    help="use non-resilient steps so the failure escapes to "
                         "the pipeline restart path instead of being healed "
                         "in-call (no partial-result reuse)")
    ap.add_argument("--max-restarts", type=int, default=2,
                    help="pipeline restarts allowed before giving up")
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    args = ap.parse_args(argv)
    machine, _grid = _obs_common(args)
    m, n, k, p = args.M, args.N, args.K, args.nprocs
    if not 0 <= args.kill_rank < p:
        print(f"--kill-rank must be in [0, {p})", file=sys.stderr)
        return 2
    if not 0 <= args.kill_call < args.calls:
        print(f"--kill-call must be in [0, {args.calls})", file=sys.stderr)
        return 2

    fault_plan = FaultPlan(ranks=(RankFault(
        rank=args.kill_rank, phase="cannon",
        occurrence=args.kill_call + 1, kill=True,
    ),))
    policy = CheckpointPolicy(every_calls=args.ckpt_every)
    resilient = not args.escaped

    import tempfile

    tmp = None
    if args.store == "dir" and args.store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ckpt-")

    def make_store():
        if args.store == "mem":
            return MemoryStore()
        root = args.store_dir or tmp.name
        import os
        import uuid

        return DirStore(os.path.join(root, uuid.uuid4().hex[:8]))

    def run(faults):
        store = make_store()

        def f(comm):
            res = matmul_chain(
                comm, m, n, k, calls=args.calls,
                store=store, policy=policy, resilient=resilient,
                max_restarts=args.max_restarts,
            )
            return {
                "x": res.state["X"].to_global(),
                "restarts": res.restarts,
                "checkpoints": res.checkpoints,
            }

        result = run_spmd(p, f, machine=machine, record_events=True,
                          faults=faults, backend=args.backend)
        return result, store

    try:
        clean, clean_store = run(None)
        try:
            faulted, faulted_store = run(fault_plan)
        except RuntimeError as exc:
            print(f"checkpoint/restart failed: {exc.__cause__ or exc}",
                  file=sys.stderr)
            return 1
        ckpt_kinds = [man.get("kind", "full")
                      for man in faulted_store.manifests()]
        bytes_written = faulted_store.bytes_written
    finally:
        if tmp is not None:
            tmp.cleanup()

    got = next((r for r in faulted.results if r is not None), None)
    if got is None:
        print("checkpoint/restart failed: no surviving rank returned",
              file=sys.stderr)
        return 1
    _append_ledger(args, faulted, Ca3dmmPlan(m, n, k, p),
                   "cli.checkpoint", nruns=args.calls)
    ref = matmul_chain_reference(m, n, k, calls=args.calls)
    scale = max(1.0, float(np.abs(ref).max()))
    max_err = float(np.abs(got["x"] - ref).max())
    numeric_ok = max_err <= 1e-8 * scale

    fm = faulted.metrics
    one_call = 2.0 * m * n * k
    recovered = got["restarts"] >= 1 or fm.recoveries >= 1
    reuse_ok = fm.reused_flops > 0 and fm.recomputed_flops < one_call
    ok = (
        numeric_ok and recovered and bool(faulted.failed_ranks)
        and (reuse_ok or args.escaped)
    )
    if args.escaped:
        # No in-call healing: the pipeline restart preserves checkpointed
        # calls instead (counted in the same reused_flops metric).
        ok = ok and fm.reused_flops > 0

    if args.json:
        doc = {
            "schema_version": 1,
            "problem": {"m": m, "n": n, "k": k, "nprocs": p},
            "calls": args.calls,
            "ckpt_every": args.ckpt_every,
            "store": args.store,
            "resilient_steps": resilient,
            "plan": fault_plan.to_dict(),
            "clean_makespan_s": clean.time,
            "faulted_makespan_s": faulted.time,
            "failed_ranks": faulted.failed_ranks,
            "checkpoints": got["checkpoints"],
            "checkpoint_kinds": ckpt_kinds,
            "store_bytes_written": bytes_written,
            "pipeline_restarts": got["restarts"],
            "recoveries": fm.recoveries,
            "reused_flops": fm.reused_flops,
            "recomputed_flops": fm.recomputed_flops,
            "one_call_flops": one_call,
            "max_abs_error": max_err,
            "tolerance": 1e-8 * scale,
            "correct": ok,
        }
        print(json.dumps(doc, indent=2))
        return 0 if ok else 1

    mode = "escaped (pipeline restart)" if args.escaped else "in-call (partial reuse)"
    print(f"pipeline          : {args.calls} calls of {m}x{n}x{k} on {p} ranks, "
          f"checkpoint every {args.ckpt_every}")
    print(f"fault             : kill rank {args.kill_rank} in call "
          f"{args.kill_call}'s cannon stage; recovery mode: {mode}")
    print(f"clean makespan    : {clean.time * 1e3:.6f} ms")
    print(f"faulted makespan  : {faulted.time * 1e3:.6f} ms "
          f"(+{(faulted.time - clean.time) * 1e3:.6f} ms)")
    print(f"failed ranks      : {faulted.failed_ranks or 'none'}")
    print(f"checkpoints       : {len(got['checkpoints'])} "
          f"({', '.join(got['checkpoints'][:3])}"
          f"{', ...' if len(got['checkpoints']) > 3 else ''})")
    print(f"checkpoint kinds  : "
          f"{ckpt_kinds.count('full')} full + "
          f"{ckpt_kinds.count('delta')} delta, "
          f"{bytes_written} store bytes written")
    print(f"restarts/recoveries: {got['restarts']}/{fm.recoveries}")
    print(f"flops accounting  : {fm.reused_flops:.0f} reused, "
          f"{fm.recomputed_flops:.0f} recomputed "
          f"(one full call = {one_call:.0f})")
    print(f"max |X - ref|     : {max_err:.3e} (tol {1e-8 * scale:.3e})")
    print(f"result            : {'recovered OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _stats_main(argv: list[str]) -> int:
    ap = _obs_parser(
        "stats", "Execute one CA3DMM multiplication and print its metrics"
    )
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero when the drift guard fails")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    plan, result = _run_traced(args.M, args.N, args.K, args.nprocs, machine,
                               grid, backend=args.backend)
    metrics = snapshot_run(result, plan)
    report = drift_report(result, plan, byte_tol=args.tol, machine=machine)
    analytic_q = theoretical_metrics(plan).q_words
    q_over_analytic = metrics.q_words / analytic_q if analytic_q > 0 else None
    _append_ledger(args, result, plan, "cli.stats")
    if args.json:
        print(json.dumps({
            "metrics": metrics.to_dict(),
            "drift": report.to_dict(),
            # legacy name kept for consumers; this counter is transport
            # in-flight / self-reported peak, NOT the resident footprint
            "peak_live_bytes": int(metrics.peak_live_words * 8),
            "transport_inflight_peak_bytes": int(metrics.peak_live_words * 8),
            "resident_peak_bytes": int(metrics.resident_peak_words * 8),
            "mem_by_purpose_words": dict(metrics.mem_by_purpose),
            "overlap_by_phase": dict(metrics.overlap_by_phase),
            "q_over_analytic": q_over_analytic,
        }, indent=2))
    else:
        print(format_metrics(metrics))
        if q_over_analytic is not None:
            print(f"  measured/analytic Q : {q_over_analytic:.4f}")
        print(report.format())
    return 1 if (args.strict and not report.ok) else 0


def _audit_main(argv: list[str]) -> int:
    from .obs.audit import audit_run

    ap = _obs_parser(
        "audit",
        "Execute one CA3DMM multiplication and audit its measured "
        "bytes-on-the-wire against the eq. (4) schedule, the α-β "
        "collective accounting, and the red-blue pebbling lower bound "
        "(2mnk/(P√M) with measured M)",
    )
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero when measured traffic leaves the "
                         "tolerance band")
    ap.add_argument("--gate", default=None, metavar="FILE",
                    help="compare measured optimality ratios against this "
                         "committed baseline JSON and exit nonzero on "
                         "regression (the CI audit gate)")
    ap.add_argument("--gate-tol", type=float, default=0.02,
                    help="allowed relative worsening of the gated ratios")
    ap.add_argument("--update-gate", default=None, metavar="FILE",
                    help="write the gate baseline from this run instead of "
                         "comparing")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    plan, result = _run_traced(args.M, args.N, args.K, args.nprocs, machine,
                               grid, backend=args.backend)
    report = audit_run(result, plan, machine=machine, byte_tol=args.tol)
    _append_ledger(args, result, plan, "cli.audit", audit_ok=report.ok)

    gate_doc = None
    if args.update_gate:
        gate_doc = {
            "schema_version": 1,
            "workload": {"m": args.M, "n": args.N, "k": args.K,
                         "nprocs": args.nprocs},
            "q_over_eq9": report.q_over_eq9,
            "q_over_pebbling": report.q_over_pebbling,
            "max_rel_err": report.max_rel_err,
        }
        with open(args.update_gate, "w", encoding="utf-8") as fh:
            json.dump(gate_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"audit gate baseline written: {args.update_gate}")

    gate_ok = True
    gate_result: dict | None = None
    if args.gate:
        try:
            with open(args.gate, encoding="utf-8") as fh:
                base = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read audit gate baseline: {exc}")
        checks = []
        for key, measured in (
            ("q_over_eq9", report.q_over_eq9),
            ("q_over_pebbling", report.q_over_pebbling),
        ):
            expected = base.get(key)
            if expected is None or measured is None:
                continue
            ok = measured <= expected * (1.0 + args.gate_tol)
            checks.append({"ratio": key, "measured": measured,
                           "baseline": expected, "ok": ok})
        gate_ok = bool(checks) and all(c["ok"] for c in checks)
        gate_result = {"baseline": args.gate, "tol": args.gate_tol,
                       "ok": gate_ok, "checks": checks}

    if args.json:
        doc = report.to_dict()
        if gate_result is not None:
            doc["gate"] = gate_result
        print(json.dumps(doc, indent=2))
    else:
        print(report.format())
        if gate_result is not None:
            for c in gate_result["checks"]:
                print(f"  gate {c['ratio']:<16}: measured {c['measured']:.4f} "
                      f"vs baseline {c['baseline']:.4f} "
                      f"(tol {100 * args.gate_tol:.1f}%)  "
                      + ("ok" if c["ok"] else "REGRESSION"))
            print("audit gate: " + ("OK" if gate_ok else "FAIL"))
    if args.gate and not gate_ok:
        return 1
    return 1 if (args.strict and not report.ok) else 0


def _memprof_main(argv: list[str]) -> int:
    from .obs.memtrace import memprof_run

    ap = _obs_parser(
        "memprof",
        "Execute one CA3DMM multiplication and profile each rank's "
        "measured resident memory (tagged allocation spans) against the "
        "eq. (11) footprint prediction and any memory_limit_words cap",
    )
    ap.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ap.add_argument("--mem-tol", type=float, default=0.10,
                    help="relative headroom allowed over eq. (11) / the cap")
    ap.add_argument("--top", type=int, default=3,
                    help="top-offender ranks listed in text mode")
    ap.add_argument("--memory-limit", type=float, default=None,
                    metavar="WORDS",
                    help="plan under a Section V memory cap (words/process)")
    ap.add_argument("--gate", default=None, metavar="FILE",
                    help="compare the measured resident peak against this "
                         "committed baseline JSON and exit nonzero on "
                         "regression (the CI memory gate)")
    ap.add_argument("--gate-tol", type=float, default=0.02,
                    help="allowed relative worsening of the gated quantities")
    ap.add_argument("--update-gate", default=None, metavar="FILE",
                    help="write the gate baseline from this run instead of "
                         "comparing")
    args = ap.parse_args(argv)
    machine, grid = _obs_common(args)
    plan, result = _run_traced(args.M, args.N, args.K, args.nprocs, machine,
                               grid, memory_limit_words=args.memory_limit,
                               backend=args.backend)
    report = memprof_run(result, plan, tol=args.mem_tol)
    _append_ledger(args, result, plan, "cli.memprof")

    if args.update_gate:
        gate_doc = {
            "schema_version": 1,
            "workload": {"m": args.M, "n": args.N, "k": args.K,
                         "nprocs": args.nprocs},
            "eq11_words": report.eq11_words,
            "resident_peak_words": report.resident_peak_words,
            "peak_over_eq11": report.peak_over_eq11,
        }
        with open(args.update_gate, "w", encoding="utf-8") as fh:
            json.dump(gate_doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"memory gate baseline written: {args.update_gate}")

    gate_ok = True
    gate_result: dict | None = None
    if args.gate:
        try:
            with open(args.gate, encoding="utf-8") as fh:
                base = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read memory gate baseline: {exc}")
        checks = []
        for key, measured in (
            ("resident_peak_words", report.resident_peak_words),
            ("peak_over_eq11", report.peak_over_eq11),
        ):
            expected = base.get(key)
            if expected is None or measured is None:
                continue
            ok = measured <= expected * (1.0 + args.gate_tol)
            checks.append({"quantity": key, "measured": measured,
                           "baseline": expected, "ok": ok})
        gate_ok = bool(checks) and all(c["ok"] for c in checks)
        gate_result = {"baseline": args.gate, "tol": args.gate_tol,
                       "ok": gate_ok, "checks": checks}

    if args.json:
        doc = report.to_dict()
        if gate_result is not None:
            doc["gate"] = gate_result
        print(json.dumps(doc, indent=2))
    else:
        print(report.format(top=args.top))
        if gate_result is not None:
            for c in gate_result["checks"]:
                print(f"  gate {c['quantity']:<20}: measured "
                      f"{c['measured']:.4f} vs baseline {c['baseline']:.4f} "
                      f"(tol {100 * args.gate_tol:.1f}%)  "
                      + ("ok" if c["ok"] else "REGRESSION"))
            print("memory gate: " + ("OK" if gate_ok else "FAIL"))
    if args.gate and not gate_ok:
        return 1
    return 0 if report.ok else 1


def _ledger_main(argv: list[str]) -> int:
    from .bench.report import format_ledger
    from .obs.ledger import DEFAULT_LEDGER_PATH, Ledger, ledger_path_from_env

    ap = argparse.ArgumentParser(
        prog="python -m repro.cli ledger",
        description="Render and query the append-only run ledger "
                    "(see docs/OBSERVABILITY.md)",
    )
    ap.add_argument("--path", default=None,
                    help=f"ledger file (default: $REPRO_LEDGER or "
                         f"{DEFAULT_LEDGER_PATH})")
    ap.add_argument("--kind", default=None,
                    help="only records from this producer (e.g. cli.audit)")
    ap.add_argument("--shape", type=int, nargs=3, metavar=("M", "N", "K"),
                    help="only records for this problem shape")
    ap.add_argument("-np", "--nprocs", type=int, default=None,
                    help="only records for this world size")
    ap.add_argument("--last", type=int, default=None, metavar="N",
                    help="only the newest N matching records")
    ap.add_argument("--json", action="store_true",
                    help="emit the matching records as a JSON array")
    args = ap.parse_args(argv)

    path = args.path or ledger_path_from_env() or DEFAULT_LEDGER_PATH
    ledger = Ledger(path)
    shape = args.shape or (None, None, None)
    records = ledger.query(kind=args.kind, m=shape[0], n=shape[1], k=shape[2],
                           nprocs=args.nprocs, last=args.last)
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    if not records:
        print(f"no matching records in {ledger.path}")
        return 0
    print(format_ledger(
        records,
        title=f"run ledger: {ledger.path} ({len(records)} record(s))",
    ))
    return 0


_SUBCOMMANDS = {
    "trace": _trace_main,
    "stats": _stats_main,
    "audit": _audit_main,
    "memprof": _memprof_main,
    "ledger": _ledger_main,
    "critpath": _critpath_main,
    "perfdiff": _perfdiff_main,
    "faults": _faults_main,
    "recover": _recover_main,
    "checkpoint": _checkpoint_main,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    return _example_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
