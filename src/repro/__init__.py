"""repro — a Python reproduction of CA3DMM (Huang & Chow, SC 2022).

Communication-Avoiding 3D Matrix Multiplication on a virtual MPI
substrate: every rank is a thread, traffic is measured, and an α-β-γ
machine model turns the measured schedules into simulated time.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Typical use::

    import numpy as np
    from repro import run_spmd, DistMatrix, BlockCol1D, ca3dmm_matmul

    def rank_main(comm):
        a = DistMatrix.random(comm, BlockCol1D((600, 800), comm.size), seed=0)
        b = DistMatrix.random(comm, BlockCol1D((800, 400), comm.size), seed=1)
        c = ca3dmm_matmul(a, b)          # C = A @ B, library-native layout
        return c.to_global()             # gather for inspection

    result = run_spmd(16, rank_main)
    print(result.time, result.max_bytes_sent)
"""

from .core.ca3dmm import Ca3dmm, ca3dmm_matmul
from .core.plan import Ca3dmmPlan
from .core.summa_variant import ca3dmm_s_matmul
from .grid.optimizer import GridSpec, ca3dmm_grid, cosma_grid, ctf_grid
from .layout.distributions import (
    Block2D,
    BlockCol1D,
    BlockCyclic2D,
    BlockRow1D,
    Distribution,
    Explicit,
)
from .layout.matrix import DistMatrix, dense_random
from .layout.redistribute import redistribute
from .machine.model import MachineModel, laptop, pace_phoenix_cpu, pace_phoenix_gpu
from .mpi.comm import Comm
from .mpi.runtime import SpmdResult, run_spmd

__version__ = "1.0.0"

__all__ = [
    "Ca3dmm",
    "ca3dmm_matmul",
    "ca3dmm_s_matmul",
    "Ca3dmmPlan",
    "GridSpec",
    "ca3dmm_grid",
    "cosma_grid",
    "ctf_grid",
    "Distribution",
    "BlockRow1D",
    "BlockCol1D",
    "Block2D",
    "BlockCyclic2D",
    "Explicit",
    "DistMatrix",
    "dense_random",
    "redistribute",
    "MachineModel",
    "laptop",
    "pace_phoenix_cpu",
    "pace_phoenix_gpu",
    "Comm",
    "run_spmd",
    "SpmdResult",
    "__version__",
]
