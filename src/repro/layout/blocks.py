"""Balanced block ranges and rectangle algebra.

Everything that partitions a matrix dimension in this package uses the
same balanced splitting rule, so partitions computed independently on
different ranks always agree:

    ``start(r) = floor(r * n / p)``

which gives every part either ``floor(n/p)`` or ``ceil(n/p)`` elements —
the ⌈·⌉/⌊·⌋ block sizes assumed in Section III-A of the paper — and
degenerates gracefully (empty parts) when ``p > n``.

:class:`Rect` is a half-open rectangle ``[r0, r1) x [c0, c1)`` in global
matrix coordinates; redistribution is built entirely on rectangle
intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


def block_start(n: int, p: int, r: int) -> int:
    """Start index of part ``r`` when splitting ``n`` items into ``p`` parts."""
    if not 0 <= r <= p:
        raise ValueError(f"part index {r} out of range for {p} parts")
    return (r * n) // p


def block_range(n: int, p: int, r: int) -> tuple[int, int]:
    """Half-open index range ``[lo, hi)`` of part ``r`` of ``n`` items in ``p``."""
    return block_start(n, p, r), block_start(n, p, r + 1)


def block_size(n: int, p: int, r: int) -> int:
    lo, hi = block_range(n, p, r)
    return hi - lo


def block_owner(n: int, p: int, i: int) -> int:
    """Inverse of :func:`block_range`: which part owns item ``i``.

    With ``start(r) = floor(r n / p)``, item ``i`` belongs to the largest
    ``r`` with ``floor(r n / p) <= i``, i.e. ``r = floor(((i+1)*p - 1)/n)``.
    """
    if not 0 <= i < n:
        raise ValueError(f"index {i} out of range for dimension {n}")
    r = ((i + 1) * p - 1) // n
    lo, hi = block_range(n, p, r)
    assert lo <= i < hi, "block_owner arithmetic broke"
    return r


@dataclass(frozen=True, order=True)
class Rect:
    """Half-open rectangle ``[r0, r1) x [c0, c1)``; empty if degenerate."""

    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def rows(self) -> int:
        return max(0, self.r1 - self.r0)

    @property
    def cols(self) -> int:
        return max(0, self.c1 - self.c0)

    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def area(self) -> int:
        return self.rows * self.cols

    def is_empty(self) -> bool:
        return self.rows == 0 or self.cols == 0

    def intersect(self, other: "Rect") -> "Rect":
        """Intersection (possibly empty) of two rectangles."""
        return Rect(
            max(self.r0, other.r0),
            min(self.r1, other.r1),
            max(self.c0, other.c0),
            min(self.c1, other.c1),
        )

    def contains(self, other: "Rect") -> bool:
        return (
            other.is_empty()
            or (
                self.r0 <= other.r0
                and other.r1 <= self.r1
                and self.c0 <= other.c0
                and other.c1 <= self.c1
            )
        )

    def transposed(self) -> "Rect":
        """The same region seen in the transposed matrix."""
        return Rect(self.c0, self.c1, self.r0, self.r1)

    def shifted(self, dr: int, dc: int) -> "Rect":
        return Rect(self.r0 + dr, self.r1 + dr, self.c0 + dc, self.c1 + dc)

    def local_slice(self, inner: "Rect") -> tuple[slice, slice]:
        """Slices of ``inner`` within an array holding exactly this rect."""
        if not self.contains(inner):
            raise ValueError(f"{inner} not contained in {self}")
        return (
            slice(inner.r0 - self.r0, inner.r1 - self.r0),
            slice(inner.c0 - self.c0, inner.c1 - self.c0),
        )

    def __iter__(self) -> Iterator[int]:
        return iter((self.r0, self.r1, self.c0, self.c1))


def rects_cover_exactly(rects: list[Rect], whole: Rect) -> bool:
    """True if ``rects`` tile ``whole`` disjointly and completely.

    Checked by area accounting plus pairwise-disjointness — sufficient
    when total area matches and every rect lies inside ``whole``.
    """
    total = 0
    nonempty = [r for r in rects if not r.is_empty()]
    for r in nonempty:
        if not whole.contains(r):
            return False
        total += r.area
    if total != whole.area:
        return False
    for i, a in enumerate(nonempty):
        for b in nonempty[i + 1 :]:
            if not a.intersect(b).is_empty():
                return False
    return True
