"""Generic any-to-any matrix redistribution (Algorithm 1, steps 4 and 8).

CA3DMM (like COSMA and CARMA) has library-native partitionings, so user
matrices must be converted on entry and exit.  The paper implements this
with block pack/unpack plus ``MPI_Neighbor_alltoallv`` and explicitly does
not optimize it further; we do the same: every rank intersects its owned
rectangles with every destination rank's needed rectangles, exchanges the
pieces with one alltoall, and reassembles.

Transposition (``op(A)`` in the paper) is folded into the conversion:
when ``transpose=True`` the destination distribution describes
``src.T``, pieces travel untransposed, and each piece is transposed
during reassembly — matching the paper's note that CA3DMM "utilizes the
redistribution steps of A and B" to implement the ``op()`` modes.

With ``verify=True`` every cross-rank batch travels inside a CRC
envelope: the sender CRCs each piece's bytes (``zlib.crc32`` — exact,
magnitude-independent, and an *integer* payload the corruption walker
cannot flip), the receiver re-CRCs on arrival, and a detection vote
lets receivers nack corrupted batches back to their sources for a
bit-identical resend.  A bounded number of resend rounds separates a
transient wire fault from a persistent one
(:class:`~repro.ft.errors.CorruptionError`).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE, MAX
from .blocks import Rect
from .distributions import Distribution
from .matrix import DistMatrix

_TAG_REDIST = INTERNAL_TAG_BASE + 401
_TAG_REDIST_NACK = INTERNAL_TAG_BASE + 402
_TAG_REDIST_RESEND = INTERNAL_TAG_BASE + 403

#: Resend rounds allowed before a persistent corruption becomes typed.
MAX_RESEND_ROUNDS = 2


def _batch_crcs(batch: list[tuple[Rect, np.ndarray]]) -> list[int]:
    return [zlib.crc32(data.tobytes()) for _rect, data in batch]


def _batch_bad(envelope: list[int], batch: list[tuple[Rect, np.ndarray]]) -> bool:
    if len(envelope) != len(batch):
        return True
    return any(
        zlib.crc32(np.ascontiguousarray(data).tobytes()) != crc
        for crc, (_rect, data) in zip(envelope, batch)
    )


def _plan_sends(
    my_rects: list[Rect],
    my_tiles: list[np.ndarray],
    dst_dist: Distribution,
    transpose: bool,
) -> list[list[tuple[Rect, np.ndarray]]]:
    """For each destination rank, the (src-coord rect, data) pieces to send."""
    out: list[list[tuple[Rect, np.ndarray]]] = [[] for _ in range(dst_dist.nranks)]
    if not my_rects:
        return out
    # Vectorized destination prefilter: a destination is a candidate
    # only if one of its wanted rects (taken in source coordinates)
    # meets the bounding box of what this rank holds.  The bbox test
    # over the flat rect index replaces an O(P) Python scan per source
    # rank — the difference between minutes and seconds at 1024 ranks.
    # np.unique keeps destinations ascending, so the send plan (and
    # every message ordering downstream) is unchanged.
    br0 = min(r.r0 for r in my_rects)
    br1 = max(r.r1 for r in my_rects)
    bc0 = min(r.c0 for r in my_rects)
    bc1 = max(r.c1 for r in my_rects)
    ranks, w_r0, w_r1, w_c0, w_c1 = dst_dist.rect_index()
    if transpose:
        w_r0, w_r1, w_c0, w_c1 = w_c0, w_c1, w_r0, w_r1
    hit = (w_r0 < br1) & (w_r1 > br0) & (w_c0 < bc1) & (w_c1 > bc0)
    for dst_rank in np.unique(ranks[hit]):
        dst_rank = int(dst_rank)
        for want in dst_dist.owned_rects(dst_rank):
            want_src = want.transposed() if transpose else want
            for mine, tile in zip(my_rects, my_tiles):
                piece = mine.intersect(want_src)
                if piece.is_empty():
                    continue
                rs, cs = mine.local_slice(piece)
                out[dst_rank].append((piece, np.ascontiguousarray(tile[rs, cs])))
    return out


def _verify_batches(
    comm: Comm,
    phase: str,
    sends: list[list[tuple[Rect, np.ndarray]]],
    send_dsts: list[int],
    recv_sources: list[int],
    got: dict[int, tuple[list[int], list]],
) -> None:
    """CRC-verify received batches; nack and re-request corrupted ones.

    Collective over ``comm``.  Each round: receivers check every
    batch's envelope, a MAX vote establishes whether anyone saw
    corruption, then receivers isend a nack bool to each of their
    sources, sources answer nacks with a bit-identical resend (from
    the retained ``sends`` batch), and the replacements are
    re-verified next round.  All isends are posted before any blocking
    recv, so the exchange cannot deadlock.  Nack payloads carry no
    float arrays, hence are incorruptible by construction.  After
    ``MAX_RESEND_ROUNDS`` unsuccessful rounds the persistent fault
    surfaces as a typed :class:`~repro.ft.errors.CorruptionError`.
    """
    from ..ft.errors import CorruptionError

    rounds = 0
    while True:
        bad = {s for s in recv_sources if _batch_bad(*got[s])}
        if bad:
            comm.transport.add_ft(
                comm.world_rank, detected=len(bad), phase=phase
            )
        any_bad = comm.allreduce(int(bool(bad)), op=MAX)
        if not any_bad:
            return
        rounds += 1
        if rounds > MAX_RESEND_ROUNDS:
            raise CorruptionError(
                comm.world_rank, rounds - 1, phase=phase
            )
        nack_pending = [
            comm.isend(s in bad, s, _TAG_REDIST_NACK) for s in recv_sources
        ]
        resend_pending = []
        for dst_rank in send_dsts:
            if comm.recv(source=dst_rank, tag=_TAG_REDIST_NACK):
                batch = sends[dst_rank]
                resend_pending.append(
                    comm.isend(
                        (_batch_crcs(batch), batch),
                        dst_rank,
                        _TAG_REDIST_RESEND,
                    )
                )
        for src_rank in recv_sources:
            if src_rank in bad:
                got[src_rank] = comm.recv(
                    source=src_rank, tag=_TAG_REDIST_RESEND
                )
        for req in nack_pending + resend_pending:
            req.wait()


def redistribute(
    src: DistMatrix,
    dst_dist: Distribution,
    transpose: bool = False,
    phase: str = "redist",
    conjugate: bool = False,
    verify: bool = False,
) -> DistMatrix:
    """Convert ``src`` to ``dst_dist`` (optionally (conjugate-)transposing).

    Collective over ``src.comm``; both distributions must span the same
    communicator size.  ``conjugate`` applies elementwise conjugation
    during reassembly (combined with ``transpose`` this implements the
    BLAS 'C' op; alone it is the rarely-used 'R').  ``verify`` wraps
    every cross-rank batch in a CRC envelope with nack/resend
    correction (see the module docstring); the ``verify=False`` wire
    format is byte-for-byte what it always was.  Returns the converted
    :class:`DistMatrix`.
    """
    comm: Comm = src.comm
    if dst_dist.nranks != comm.size:
        raise ValueError(
            f"destination spans {dst_dist.nranks} ranks, communicator has {comm.size}"
        )
    sm, sn = src.shape
    dm, dn = dst_dist.shape
    if (transpose and (dm, dn) != (sn, sm)) or (not transpose and (dm, dn) != (sm, sn)):
        raise ValueError(
            f"shape mismatch: src {src.shape}, dst {dst_dist.shape}, transpose={transpose}"
        )

    with comm.phase(phase):
        sends = _plan_sends(src.owned_rects, src.tiles, dst_dist, transpose)

        # Like MPI_Neighbor_alltoallv, only pairs with actual overlap
        # exchange messages.  Both sides derive the neighbourhood from
        # the (globally known) distributions, so no handshaking and no
        # empty messages are needed — a native-to-native conversion
        # sends nothing at all.
        my_needs = [
            (w.transposed() if transpose else w)
            for w in dst_dist.owned_rects(comm.rank)
        ]
        recv_sources = []
        if my_needs:
            # Same vectorized bbox prefilter as _plan_sends, applied to
            # the receive side: only sources whose holdings can touch
            # this rank's needs get the exact (pairwise) overlap check.
            nr0 = min(w.r0 for w in my_needs)
            nr1 = max(w.r1 for w in my_needs)
            nc0 = min(w.c0 for w in my_needs)
            nc1 = max(w.c1 for w in my_needs)
            ranks, o_r0, o_r1, o_c0, o_c1 = src.dist.rect_index()
            hit = (o_r0 < nr1) & (o_r1 > nr0) & (o_c0 < nc1) & (o_c1 > nc0)
            for src_rank in np.unique(ranks[hit]):
                src_rank = int(src_rank)
                if src_rank == comm.rank:
                    continue
                overlap = any(
                    not owned.intersect(need).is_empty()
                    for owned in src.dist.owned_rects(src_rank)
                    for need in my_needs
                )
                if overlap:
                    recv_sources.append(src_rank)

        send_dsts = [
            d for d, batch in enumerate(sends) if d != comm.rank and batch
        ]
        pending = []
        for dst_rank in send_dsts:
            batch = sends[dst_rank]
            payload = (_batch_crcs(batch), batch) if verify else batch
            pending.append(comm.isend(payload, dst_rank, _TAG_REDIST))
        if not verify:
            received = [sends[comm.rank]]
            for src_rank in recv_sources:
                received.append(comm.recv(source=src_rank, tag=_TAG_REDIST))
            for req in pending:
                req.wait()
        else:
            got: dict[int, tuple[list[int], list]] = {}
            for src_rank in recv_sources:
                got[src_rank] = comm.recv(source=src_rank, tag=_TAG_REDIST)
            for req in pending:
                req.wait()
            _verify_batches(comm, phase, sends, send_dsts, recv_sources, got)
            received = [sends[comm.rank]]
            received.extend(got[s][1] for s in recv_sources)

        my_rects = dst_dist.owned_rects(comm.rank)
        tiles = [np.zeros(r.shape, dtype=src.dtype) for r in my_rects]
        # Destination tiles coexist with the received pieces until
        # reassembly finishes; charge that window to redist.tiles.
        staged = sum(t.nbytes for t in tiles) + sum(
            data.nbytes for batch in received for _rect, data in batch
        )
        with comm.mem("redist.tiles", staged):
            filled = [np.zeros(r.shape, dtype=bool) for r in my_rects]
            for batch in received:
                for src_rect, data in batch:
                    dst_rect = src_rect.transposed() if transpose else src_rect
                    payload = data.T if transpose else data
                    if conjugate:
                        payload = np.conj(payload)
                    placed = False
                    for rect, tile, mask in zip(my_rects, tiles, filled):
                        piece = rect.intersect(dst_rect)
                        if piece.is_empty():
                            continue
                        rs, cs = rect.local_slice(piece)
                        prs, pcs = dst_rect.local_slice(piece)
                        tile[rs, cs] = payload[prs, pcs]
                        mask[rs, cs] = True
                        placed = True
                    assert placed, "received a piece no local rect wants"
            for mask in filled:
                assert mask.all(), "redistribution left holes in a local tile"
    return DistMatrix(comm, dst_dist, tiles)
