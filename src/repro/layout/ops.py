"""Elementwise and reduction operations on distributed matrices.

The application layer (:mod:`repro.apps`) composes PGEMMs with cheap
local operations — AXPY-style updates, scaling, traces, norms, identity
construction.  All of these act tile-wise with at most one small
allreduce, so they cost O(local size) compute and O(1) messages —
negligible next to the multiplications, exactly as in the real driver
algorithms the paper cites.

All binary operations require operands on the same communicator with
the same distribution (use :func:`repro.layout.redistribute` first if
they differ); this keeps the semantics unambiguous and the cost model
honest.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mpi.datatypes import SUM
from .distributions import Distribution
from .matrix import DistMatrix


def _check_compatible(a: DistMatrix, b: DistMatrix) -> None:
    if a.comm is not b.comm:
        raise ValueError("operands live on different communicators")
    if a.dist != b.dist:
        raise ValueError(
            "operands use different distributions; redistribute one first"
        )


def elementwise(a: DistMatrix, b: DistMatrix, fn: Callable) -> DistMatrix:
    """Apply a binary numpy callable tile-by-tile; returns a new matrix."""
    _check_compatible(a, b)
    tiles = [fn(x, y) for x, y in zip(a.tiles, b.tiles)]
    return DistMatrix(a.comm, a.dist, tiles)


def add(a: DistMatrix, b: DistMatrix, alpha: float = 1.0, beta: float = 1.0) -> DistMatrix:
    """``alpha * A + beta * B`` (same distribution)."""
    return elementwise(a, b, lambda x, y: alpha * x + beta * y)


def scale(a: DistMatrix, alpha: float) -> DistMatrix:
    """``alpha * A``."""
    return DistMatrix(a.comm, a.dist, [alpha * t for t in a.tiles])


def apply(a: DistMatrix, fn: Callable[[np.ndarray], np.ndarray]) -> DistMatrix:
    """Apply a unary elementwise callable to every tile."""
    tiles = [np.asarray(fn(t)) for t in a.tiles]
    return DistMatrix(a.comm, a.dist, tiles)


def identity(comm, dist: Distribution, dtype=np.float64) -> DistMatrix:
    """The identity matrix in the given (square-matrix) distribution."""
    m, n = dist.shape
    if m != n:
        raise ValueError(f"identity needs a square shape, got {dist.shape}")
    tiles = []
    for rect in dist.owned_rects(comm.rank):
        t = np.zeros(rect.shape, dtype=dtype)
        # global diagonal indices falling inside this rect
        lo = max(rect.r0, rect.c0)
        hi = min(rect.r1, rect.c1)
        if hi > lo:
            idx = np.arange(lo, hi)
            t[idx - rect.r0, idx - rect.c0] = 1.0
        tiles.append(t)
    return DistMatrix(comm, dist, tiles)


def trace(a: DistMatrix) -> float:
    """Global trace (collective: one small allreduce)."""
    m, n = a.shape
    if m != n:
        raise ValueError("trace needs a square matrix")
    local = 0.0
    for rect, tile in zip(a.owned_rects, a.tiles):
        lo = max(rect.r0, rect.c0)
        hi = min(rect.r1, rect.c1)
        if hi > lo:
            idx = np.arange(lo, hi)
            local += float(np.sum(tile[idx - rect.r0, idx - rect.c0].real))
    return float(a.comm.allreduce(np.array([local]), SUM)[0])


def frobenius_norm(a: DistMatrix) -> float:
    """Global Frobenius norm (collective)."""
    local = sum(float(np.sum(np.abs(t) ** 2)) for t in a.tiles)
    total = a.comm.allreduce(np.array([local]), SUM)
    return float(np.sqrt(total[0]))


def max_abs(a: DistMatrix) -> float:
    """Global max-absolute-entry (collective)."""
    from ..mpi.datatypes import MAX

    local = max((float(np.max(np.abs(t))) for t in a.tiles if t.size), default=0.0)
    return float(a.comm.allreduce(np.array([local]), MAX)[0])


def distance(a: DistMatrix, b: DistMatrix) -> float:
    """Frobenius distance between two same-distribution matrices."""
    _check_compatible(a, b)
    local = sum(
        float(np.sum(np.abs(x - y) ** 2)) for x, y in zip(a.tiles, b.tiles)
    )
    total = a.comm.allreduce(np.array([local]), SUM)
    return float(np.sqrt(total[0]))
