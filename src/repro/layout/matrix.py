"""Distributed matrices for the executed engine.

A :class:`DistMatrix` is a rank-local view of a global matrix: the
distribution descriptor plus this rank's tiles (one numpy array per owned
rectangle).  Construction helpers keep tests honest: matrices built with
:meth:`DistMatrix.random` have globally deterministic content, so any rank
(or the driver) can reconstruct the reference global matrix and check
results exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mpi.comm import Comm
from .blocks import Rect
from .distributions import Distribution


def dense_random(m: int, n: int, seed: int, dtype=np.float64) -> np.ndarray:
    """The deterministic global random matrix used across the package."""
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        return (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))).astype(
            dtype
        )
    return rng.standard_normal((m, n)).astype(dtype)


class DistMatrix:
    """One rank's share of a distributed matrix."""

    def __init__(self, comm: Comm, dist: Distribution, tiles: Sequence[np.ndarray]):
        self.comm = comm
        self.dist = dist
        self.tiles = list(tiles)
        rects = dist.owned_rects(comm.rank)
        if len(rects) != len(self.tiles):
            raise ValueError(
                f"rank {comm.rank}: {len(self.tiles)} tiles for {len(rects)} rects"
            )
        for rect, tile in zip(rects, self.tiles):
            if tuple(tile.shape) != rect.shape:
                raise ValueError(f"tile shape {tile.shape} != rect shape {rect.shape}")

    # ------------------------------------------------------ constructors -- #
    @classmethod
    def from_global(cls, comm: Comm, dist: Distribution, global_mat: np.ndarray) -> "DistMatrix":
        """Slice a globally known array into this rank's tiles (test helper)."""
        if tuple(global_mat.shape) != tuple(dist.shape):
            raise ValueError(f"global shape {global_mat.shape} != dist shape {dist.shape}")
        tiles = [
            np.ascontiguousarray(global_mat[r.r0 : r.r1, r.c0 : r.c1])
            for r in dist.owned_rects(comm.rank)
        ]
        return cls(comm, dist, tiles)

    @classmethod
    def random(cls, comm: Comm, dist: Distribution, seed: int, dtype=np.float64) -> "DistMatrix":
        """Deterministic random matrix; same content for a given seed.

        Note: generates the full global matrix on each rank before
        slicing — fine at the executed engine's test scale, and it
        guarantees the distributed content exactly matches
        :func:`dense_random`.
        """
        m, n = dist.shape
        return cls.from_global(comm, dist, dense_random(m, n, seed, dtype))

    @classmethod
    def zeros(cls, comm: Comm, dist: Distribution, dtype=np.float64) -> "DistMatrix":
        tiles = [np.zeros(r.shape, dtype=dtype) for r in dist.owned_rects(comm.rank)]
        return cls(comm, dist, tiles)

    # ----------------------------------------------------------- queries -- #
    @property
    def shape(self) -> tuple[int, int]:
        return self.dist.shape

    @property
    def dtype(self):
        if self.tiles:
            return self.tiles[0].dtype
        return np.dtype(np.float64)

    @property
    def owned_rects(self) -> list[Rect]:
        return self.dist.owned_rects(self.comm.rank)

    def local_bytes(self) -> int:
        return sum(t.nbytes for t in self.tiles)

    # -------------------------------------------------------- collectives -- #
    def to_global(self) -> np.ndarray:
        """Allgather the full matrix on every rank (test/debug helper)."""
        m, n = self.dist.shape
        mine = list(zip(self.owned_rects, self.tiles))
        everyone = self.comm.allgather(mine)
        out = np.zeros((m, n), dtype=self.dtype)
        seen = np.zeros((m, n), dtype=bool)
        for contrib in everyone:
            for rect, tile in contrib:
                out[rect.r0 : rect.r1, rect.c0 : rect.c1] = tile
                assert not seen[rect.r0 : rect.r1, rect.c0 : rect.c1].any(), (
                    "overlapping ownership while gathering"
                )
                seen[rect.r0 : rect.r1, rect.c0 : rect.c1] = True
        assert seen.all() or (m * n == 0), "distribution did not cover the matrix"
        return out
