"""Distribution descriptors: who owns which rectangles of a global matrix.

A :class:`Distribution` is a *pure description* — it holds no data and no
communicator, only the mapping ``rank -> list of owned Rects`` over a
fixed number of participating ranks.  The same descriptor object is used
by the executed engine (to slice local tiles and plan redistribution)
and by the analytic engine (to size layout-conversion traffic).

Provided layouts, matching the ones discussed in the paper:

* :class:`BlockRow1D` / :class:`BlockCol1D` — the "natural" 1D layouts
  applications use (the paper's "custom layout" experiments use 1D
  column).
* :class:`Block2D` — a ``pr x pc`` 2D block layout (column-major rank
  order to match the paper's grid convention).
* :class:`BlockCyclic2D` — ScaLAPACK-style 2D block-cyclic.
* :class:`Explicit` — arbitrary per-rank rectangle lists; CA3DMM's
  library-native partitionings are expressed with this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .blocks import Rect, block_range


class Distribution:
    """Base class; subclasses implement :meth:`owned_rects`."""

    shape: tuple[int, int]
    nranks: int

    def owned_rects(self, rank: int) -> list[Rect]:
        """Rectangles owned by ``rank`` (possibly empty), in a fixed order."""
        raise NotImplementedError

    def whole(self) -> Rect:
        m, n = self.shape
        return Rect(0, m, 0, n)

    def owned_elements(self, rank: int) -> int:
        return sum(r.area for r in self.owned_rects(rank))

    def all_rects(self) -> dict[int, list[Rect]]:
        return {r: self.owned_rects(r) for r in range(self.nranks)}

    def rect_index(self) -> tuple:
        """Flat arrays over every (rank, rect) pair: ``(ranks, r0, r1, c0, c1)``.

        Built once per descriptor and cached on the instance (safe: the
        index is derived state, so it never affects the frozen
        dataclass's equality or hash).  Redistribution planning uses it
        to bbox-test one rank's holdings against *all* destinations in
        a single vectorized pass instead of an O(P) Python scan.
        """
        cached = self.__dict__.get("_rect_index")
        if cached is None:
            import numpy as np

            ranks: list[int] = []
            bounds: list[tuple[int, int, int, int]] = []
            for rk in range(self.nranks):
                for r in self.owned_rects(rk):
                    ranks.append(rk)
                    bounds.append((r.r0, r.r1, r.c0, r.c1))
            arr = (
                np.array(bounds, dtype=np.int64).reshape(-1, 4)
                if bounds
                else np.empty((0, 4), dtype=np.int64)
            )
            cached = (
                np.asarray(ranks, dtype=np.int64),
                arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3],
            )
            self.__dict__["_rect_index"] = cached
        return cached

    def validate(self) -> None:
        """Assert the layout tiles the matrix disjointly and completely."""
        from .blocks import rects_cover_exactly

        rects = [r for rk in range(self.nranks) for r in self.owned_rects(rk)]
        if not rects_cover_exactly(rects, self.whole()):
            raise ValueError(f"{self!r} does not tile the matrix exactly")


@dataclass(frozen=True)
class BlockRow1D(Distribution):
    """Row-block 1D layout: rank ``r`` owns a contiguous band of rows."""

    shape: tuple[int, int]
    nranks: int

    def owned_rects(self, rank: int) -> list[Rect]:
        m, n = self.shape
        lo, hi = block_range(m, self.nranks, rank)
        rect = Rect(lo, hi, 0, n)
        return [] if rect.is_empty() else [rect]


@dataclass(frozen=True)
class BlockCol1D(Distribution):
    """Column-block 1D layout: rank ``r`` owns a contiguous band of columns."""

    shape: tuple[int, int]
    nranks: int

    def owned_rects(self, rank: int) -> list[Rect]:
        m, n = self.shape
        lo, hi = block_range(n, self.nranks, rank)
        rect = Rect(0, m, lo, hi)
        return [] if rect.is_empty() else [rect]


@dataclass(frozen=True)
class Block2D(Distribution):
    """``pr x pc`` block layout, ranks numbered column-major.

    Rank ``r`` sits at grid position ``(r % pr, r // pr)`` and owns the
    corresponding row/column band intersection.  Ranks beyond
    ``pr * pc`` own nothing (allowed so a 2D layout can live inside a
    larger world, as CA3DMM's idle-rank handling requires).
    """

    shape: tuple[int, int]
    nranks: int
    pr: int
    pc: int

    def __post_init__(self) -> None:
        if self.pr * self.pc > self.nranks:
            raise ValueError("Block2D grid larger than communicator")

    def owned_rects(self, rank: int) -> list[Rect]:
        if rank >= self.pr * self.pc:
            return []
        m, n = self.shape
        i, j = rank % self.pr, rank // self.pr
        r0, r1 = block_range(m, self.pr, i)
        c0, c1 = block_range(n, self.pc, j)
        rect = Rect(r0, r1, c0, c1)
        return [] if rect.is_empty() else [rect]


@dataclass(frozen=True)
class BlockCyclic2D(Distribution):
    """ScaLAPACK-style 2D block-cyclic layout with ``bs x bs`` tiles.

    Rank order is column-major over the ``pr x pc`` grid.  Each rank may
    own many small rectangles; redistribution handles them generically.
    """

    shape: tuple[int, int]
    nranks: int
    pr: int
    pc: int
    bs: int = 32

    def __post_init__(self) -> None:
        if self.pr * self.pc > self.nranks:
            raise ValueError("BlockCyclic2D grid larger than communicator")
        if self.bs < 1:
            raise ValueError("block size must be >= 1")

    def owned_rects(self, rank: int) -> list[Rect]:
        if rank >= self.pr * self.pc:
            return []
        m, n = self.shape
        i, j = rank % self.pr, rank // self.pr
        out: list[Rect] = []
        for br in range(i, -(-m // self.bs), self.pr):
            r0, r1 = br * self.bs, min((br + 1) * self.bs, m)
            for bc in range(j, -(-n // self.bs), self.pc):
                c0, c1 = bc * self.bs, min((bc + 1) * self.bs, n)
                out.append(Rect(r0, r1, c0, c1))
        return out


@dataclass(frozen=True)
class Explicit(Distribution):
    """An arbitrary mapping ``rank -> rectangles`` (hashable, frozen).

    Used for CA3DMM's library-native partitionings, whose block
    boundaries depend on the 3D grid and Cannon-group structure.
    """

    shape: tuple[int, int]
    nranks: int
    rects: tuple[tuple[Rect, ...], ...] = field(default=())

    @staticmethod
    def from_mapping(
        shape: tuple[int, int], nranks: int, mapping: Mapping[int, Sequence[Rect]]
    ) -> "Explicit":
        table = tuple(
            tuple(mapping.get(rk, ())) for rk in range(nranks)
        )
        return Explicit(shape=shape, nranks=nranks, rects=table)

    def owned_rects(self, rank: int) -> list[Rect]:
        if rank >= len(self.rects):
            return []
        return [r for r in self.rects[rank] if not r.is_empty()]
