"""Distributed matrix layouts, tiles, and redistribution."""

from .blocks import Rect, block_owner, block_range, block_size, block_start, rects_cover_exactly
from .distributions import (
    Block2D,
    BlockCol1D,
    BlockCyclic2D,
    BlockRow1D,
    Distribution,
    Explicit,
)
from .matrix import DistMatrix, dense_random
from .redistribute import redistribute

__all__ = [
    "Rect",
    "block_range",
    "block_size",
    "block_start",
    "block_owner",
    "rects_cover_exactly",
    "Distribution",
    "BlockRow1D",
    "BlockCol1D",
    "Block2D",
    "BlockCyclic2D",
    "Explicit",
    "DistMatrix",
    "dense_random",
    "redistribute",
]
