"""Plain 2D Cannon's algorithm (Cannon 1969) as a standalone baseline.

Requires a square ``s x s`` grid.  This is exactly what CA3DMM runs
inside each Cannon group; here it is exposed directly (with its own
native 2D block layouts) so the 2D special case can be benchmarked and
tested in isolation — CA3DMM with ``pk = 1, c = 1`` must match it
message-for-message.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.cannon import cannon_multiply
from ..layout.blocks import block_range
from ..layout.distributions import Block2D, Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.topology import Cart2D
from ..layout.blocks import Rect


def cannon_native_dists(
    m: int, n: int, k: int, s: int, nranks: int
) -> tuple[Explicit, Explicit, Block2D]:
    """Unskewed native layouts for an ``s x s`` Cannon grid.

    Rank order is column-major (position ``(u, v)`` is rank ``u + s*v``),
    matching :class:`~repro.mpi.topology.Cart2D`.
    """
    a_map: dict[int, list[Rect]] = {}
    b_map: dict[int, list[Rect]] = {}
    for v in range(s):
        for u in range(s):
            rank = u + s * v
            am = block_range(m, s, u)
            ak = block_range(k, s, v)
            bk = block_range(k, s, u)
            bn = block_range(n, s, v)
            a_map[rank] = [Rect(am[0], am[1], ak[0], ak[1])]
            b_map[rank] = [Rect(bk[0], bk[1], bn[0], bn[1])]
    return (
        Explicit.from_mapping((m, k), nranks, a_map),
        Explicit.from_mapping((k, n), nranks, b_map),
        Block2D((m, n), nranks, s, s),
    )


def cannon_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    shifts_per_gemm: int = 1,
) -> DistMatrix:
    """2D Cannon over the whole communicator (must be a perfect square)."""
    comm: Comm = a.comm
    s = math.isqrt(comm.size)
    if s * s != comm.size:
        raise ValueError(f"Cannon needs a square process count, got {comm.size}")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")

    a_dist, b_dist, c_nat_dist = cannon_native_dists(m, n, k, s, comm.size)
    a_nat = redistribute(a, a_dist, phase="redist")
    b_nat = redistribute(b, b_dist, phase="redist")

    def tile(mat: DistMatrix, rect: Rect) -> np.ndarray:
        return mat.tiles[0] if mat.tiles else np.zeros(rect.shape, dtype=mat.dtype)

    u, v = comm.rank % s, comm.rank // s
    am = block_range(m, s, u)
    ak = block_range(k, s, v)
    bk = block_range(k, s, u)
    bn = block_range(n, s, v)
    a_loc = tile(a_nat, Rect(am[0], am[1], ak[0], ak[1]))
    b_loc = tile(b_nat, Rect(bk[0], bk[1], bn[0], bn[1]))

    with comm.phase("cannon"):
        cart = Cart2D(comm, s, s)
        c_loc = cannon_multiply(cart, a_loc, b_loc, shifts_per_gemm=shifts_per_gemm)

    c_nat = DistMatrix(
        comm, c_nat_dist, [c_loc] if c_loc.shape[0] and c_loc.shape[1] else []
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
