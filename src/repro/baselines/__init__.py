"""Baseline PGEMM algorithms the paper situates CA3DMM against."""

from .algo1d import matmul_1d, matmul_1d_k, matmul_1d_m, matmul_1d_n
from .algo25d import algo25d_matmul, grid_25d
from .algo3d import algo3d_matmul, cube_side
from .cannon2d import cannon_matmul
from .carma import carma_matmul, carma_native_dists
from .cosma import SplitStep, cosma_matmul, cosma_strategy
from .ctf_like import ctf_matmul
from .summa import summa_auto_matmul, summa_matmul, summa_on_grid
from .summa_stationary import (
    summa_stationary_a_matmul,
    summa_stationary_b_matmul,
)

__all__ = [
    "matmul_1d",
    "matmul_1d_m",
    "matmul_1d_n",
    "matmul_1d_k",
    "summa_matmul",
    "summa_auto_matmul",
    "summa_stationary_a_matmul",
    "summa_stationary_b_matmul",
    "summa_on_grid",
    "cannon_matmul",
    "algo3d_matmul",
    "cube_side",
    "algo25d_matmul",
    "grid_25d",
    "carma_matmul",
    "carma_native_dists",
    "cosma_matmul",
    "cosma_strategy",
    "SplitStep",
    "ctf_matmul",
]
