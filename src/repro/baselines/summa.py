"""SUMMA (van de Geijn & Watts 1997) — the workhorse 2D algorithm.

Stationary-C SUMMA on a ``pr x pc`` grid: A, B, and C are 2D
block-partitioned; the k-dimension is walked in panels of width ``<= b``
and each panel's A strip is broadcast along grid rows while its B strip
is broadcast along grid columns, followed by a local GEMM accumulate.

Panels are the common refinement of A's column partition (over ``pc``)
and B's row partition (over ``pr``) chopped to the panel width, so each
panel has a unique owner column and owner row even on ragged grids.

This is both a standalone baseline (what ScaLAPACK/SLATE provide) and
the inner kernel of the CA3DMM-S variant (Section III-E / Section V of
the paper).
"""

from __future__ import annotations

import numpy as np

from ..grid.factorize import near_square_pair
from ..layout.blocks import block_range, block_owner
from ..layout.distributions import Block2D, Distribution
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.topology import Cart2D

#: Default maximum panel width (elements of k per broadcast round).
DEFAULT_PANEL = 256


def panel_ranges(k: int, pr: int, pc: int, b: int) -> list[tuple[int, int]]:
    """k-panels: refinement of the pr- and pc-splits, chopped to width b."""
    cuts = {0, k}
    for r in range(pr):
        cuts.add(block_range(k, pr, r)[0])
    for c in range(pc):
        cuts.add(block_range(k, pc, c)[0])
    edges = sorted(cuts)
    out: list[tuple[int, int]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        start = lo
        while start < hi:
            stop = min(start + b, hi)
            out.append((start, stop))
            start = stop
    return out


def summa_on_grid(
    cart: Cart2D,
    a_loc: np.ndarray,
    b_loc: np.ndarray,
    m: int,
    n: int,
    k: int,
    panel: int = DEFAULT_PANEL,
    pipeline: bool | None = None,
) -> np.ndarray:
    """Run SUMMA on an existing grid; returns this rank's C block.

    ``a_loc`` is the ``(m_i, k_j)`` block of A at grid position
    ``(i, j)``; ``b_loc`` the ``(k_i, n_j)`` block of B.  The result is
    the ``(m_i, n_j)`` block of C.

    ``pipeline`` selects the pipelined-multicast schedule: panel
    ``p + 1``'s A/B broadcasts are posted as nonblocking collectives
    (``ibcast``) before panel ``p``'s GEMM, so their transfer time hides
    under the running compute on machines whose async comm engine is on.
    Defaults to ``machine.overlap != "none"`` — with the engine off the
    synchronous loop runs bit-for-bit as before (a pre-completed request
    charges exactly like the blocking call it wraps).
    """
    comm = cart.comm
    pr, pc = cart.nrows, cart.ncols
    i, j = cart.row, cart.col
    row = cart.row_comm()
    col = cart.col_comm()

    m0, m1 = block_range(m, pr, i)
    n0, n1 = block_range(n, pc, j)
    ak0, _ = block_range(k, pc, j)  # my A block's k-offset
    bk0, _ = block_range(k, pr, i)  # my B block's k-offset

    out_dtype = np.promote_types(a_loc.dtype, b_loc.dtype)
    c_loc = np.zeros((m1 - m0, n1 - n0), dtype=out_dtype)

    if pipeline is None:
        pipeline = comm.machine.overlap_enabled

    if not pipeline:
        for lo, hi in panel_ranges(k, pr, pc, panel):
            if hi <= lo:
                continue
            a_owner = block_owner(k, pc, lo)  # grid column holding this A panel
            b_owner = block_owner(k, pr, lo)  # grid row holding this B panel
            a_panel = a_loc[:, lo - ak0 : hi - ak0] if j == a_owner else None
            b_panel = b_loc[lo - bk0 : hi - bk0, :] if i == b_owner else None
            # row communicator is ordered by grid column; broadcast A panel.
            a_panel = row.bcast(a_panel, root=a_owner)
            # column communicator is ordered by grid row; broadcast B panel.
            b_panel = col.bcast(b_panel, root=b_owner)
            comm.gemm_tick(c_loc.shape[0], c_loc.shape[1], hi - lo)
            if a_panel.size and b_panel.size:
                np.add(c_loc, a_panel @ b_panel, out=c_loc)
        return c_loc

    # Pipelined multicast: panel 0's broadcasts are an exposed prologue;
    # from then on panel p+1's broadcasts ride the async comm engine
    # under panel p's GEMM.  Posting *is* the data movement, so the
    # posts stay SPMD-ordered exactly like the blocking loop.
    ranges = [(lo, hi) for lo, hi in panel_ranges(k, pr, pc, panel) if hi > lo]
    if not ranges:
        return c_loc

    def post(lo: int, hi: int):
        a_owner = block_owner(k, pc, lo)
        b_owner = block_owner(k, pr, lo)
        a_panel = a_loc[:, lo - ak0 : hi - ak0] if j == a_owner else None
        b_panel = b_loc[lo - bk0 : hi - bk0, :] if i == b_owner else None
        return (
            row.ibcast(a_panel, root=a_owner),
            col.ibcast(b_panel, root=b_owner),
        )

    reqs = post(*ranges[0])
    for idx, (lo, hi) in enumerate(ranges):
        ra, rb = reqs
        a_panel = ra.wait()
        b_panel = rb.wait()
        if idx + 1 < len(ranges):
            reqs = post(*ranges[idx + 1])
        comm.gemm_tick(c_loc.shape[0], c_loc.shape[1], hi - lo)
        if a_panel.size and b_panel.size:
            np.add(c_loc, a_panel @ b_panel, out=c_loc)
    return c_loc


def summa_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: tuple[int, int] | None = None,
    panel: int = DEFAULT_PANEL,
) -> DistMatrix:
    """Standalone SUMMA: redistribute to 2D blocks, multiply, convert back.

    ``grid`` defaults to the most-square factorization of the world
    size; all ranks participate (SUMMA has no idle-rank concept).
    """
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    pr, pc = grid if grid is not None else near_square_pair(comm.size)
    if pr * pc != comm.size:
        raise ValueError(f"grid {pr}x{pc} does not use all {comm.size} ranks")

    a_nat = redistribute(a, Block2D((m, k), comm.size, pr, pc), phase="redist")
    b_nat = redistribute(b, Block2D((k, n), comm.size, pr, pc), phase="redist")
    cart = Cart2D(comm, pr, pc)

    def tile(mat: DistMatrix, shape: tuple[int, int]) -> np.ndarray:
        return mat.tiles[0] if mat.tiles else np.zeros(shape, dtype=mat.dtype)

    i, j = cart.row, cart.col
    am = block_range(m, pr, i)
    ak = block_range(k, pc, j)
    bk = block_range(k, pr, i)
    bn = block_range(n, pc, j)
    a_loc = tile(a_nat, (am[1] - am[0], ak[1] - ak[0]))
    b_loc = tile(b_nat, (bk[1] - bk[0], bn[1] - bn[0]))

    with comm.phase("summa"):
        c_loc = summa_on_grid(cart, a_loc, b_loc, m, n, k, panel=panel)

    c_nat = DistMatrix(
        comm,
        Block2D((m, n), comm.size, pr, pc),
        [c_loc] if c_loc.shape[0] and c_loc.shape[1] else [],
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")


def summa_auto_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: tuple[int, int] | None = None,
    panel: int = DEFAULT_PANEL,
    variant: str = "auto",
) -> DistMatrix:
    """Dispatch among the SUMMA family by the stationary operand.

    ``variant`` is "C", "A", "B", or "auto" (keep the largest operand
    stationary — the van de Geijn selection rule).
    """
    m, k = a.shape
    _, n = b.shape
    v = variant.upper()
    if v == "AUTO":
        areas = {"A": m * k, "B": k * n, "C": m * n}
        v = max(areas, key=areas.get)
    if v == "C":
        return summa_matmul(a, b, c_dist=c_dist, grid=grid, panel=panel)
    from .summa_stationary import (
        summa_stationary_a_matmul,
        summa_stationary_b_matmul,
    )

    if v == "A":
        return summa_stationary_a_matmul(a, b, c_dist=c_dist, grid=grid, panel=panel)
    if v == "B":
        return summa_stationary_b_matmul(a, b, c_dist=c_dist, grid=grid, panel=panel)
    raise ValueError(f"unknown SUMMA variant {variant!r}")
