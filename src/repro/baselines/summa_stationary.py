"""Stationary-A and stationary-B SUMMA variants.

van de Geijn & Watts' SUMMA family has three members, named for the
operand that never moves:

* **stationary-C** (`repro.baselines.summa`) — A and B panels broadcast,
  C accumulates in place; best when C is the largest operand
  (the paper's *flat* class — trailing updates);
* **stationary-A** — B panels stream through the grid and partial C
  panels are *reduced* back to their owners; A never moves.  Best when
  A dominates (m·k >> k·n, m·n);
* **stationary-B** — the mirror image; best when B dominates.

Per n-panel of width b, stationary-A performs:

1. *repartition*: the grid column owning the panel re-splits it from
   B's row partition (over pr) to A's column partition (over pc) — a
   small alltoall inside that column;
2. *route + broadcast*: piece j travels to grid column j and is
   broadcast down it;
3. local GEMM ``A_loc @ piece`` on every rank;
4. *reduce*: the row communicator sums the partial C panel onto the
   owner column.

Stationary-B is obtained by transposition of the whole schedule:
``C = A·B  <=>  Cᵀ = Bᵀ·Aᵀ`` with A and B swapping the moving role, so
it is implemented literally that way (operands transposed through the
redistribution machinery, stationary-A applied, result transposed
back) — one code path, two variants.
"""

from __future__ import annotations

import numpy as np

from ..grid.factorize import near_square_pair
from ..layout.blocks import block_range
from ..layout.distributions import Block2D, Distribution
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE
from ..mpi.topology import Cart2D
from .summa import DEFAULT_PANEL

_TAG_ROUTE = INTERNAL_TAG_BASE + 501


def _tile(mat: DistMatrix, shape: tuple[int, int]) -> np.ndarray:
    return mat.tiles[0] if mat.tiles else np.zeros(shape, dtype=mat.dtype)


def summa_stationary_a_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: tuple[int, int] | None = None,
    panel: int = DEFAULT_PANEL,
) -> DistMatrix:
    """``C = A x B`` with A stationary on a ``pr x pc`` grid."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    pr, pc = grid if grid is not None else near_square_pair(comm.size)
    if pr * pc != comm.size:
        raise ValueError(f"grid {pr}x{pc} does not use all {comm.size} ranks")

    a_nat = redistribute(a, Block2D((m, k), comm.size, pr, pc), phase="redist")
    b_nat = redistribute(b, Block2D((k, n), comm.size, pr, pc), phase="redist")
    cart = Cart2D(comm, pr, pc)
    i, j = cart.row, cart.col
    row = cart.row_comm()  # pc ranks, ordered by grid column
    col = cart.col_comm()  # pr ranks, ordered by grid row

    mm = block_range(m, pr, i)
    ak = block_range(k, pc, j)  # my A block's k-range (pc split)
    bk = block_range(k, pr, i)  # my B block's k-range (pr split)
    nn = block_range(n, pc, j)

    a_loc = _tile(a_nat, (mm[1] - mm[0], ak[1] - ak[0]))
    b_loc = _tile(b_nat, (bk[1] - bk[0], nn[1] - nn[0]))

    out_dtype = np.promote_types(a.dtype, b.dtype)
    c_loc = np.zeros((mm[1] - mm[0], nn[1] - nn[0]), dtype=out_dtype)

    with comm.phase("summa"):
        # Panels refine B's column partition (over pc) so each panel has
        # a unique owner column; they also refine nothing else.
        cuts = {0, n}
        for r in range(pc):
            cuts.add(block_range(n, pc, r)[0])
        edges = sorted(cuts)
        panels: list[tuple[int, int]] = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            start = lo
            while start < hi:
                stop = min(start + panel, hi)
                panels.append((start, stop))
                start = stop

        from ..layout.blocks import block_owner

        for lo, hi in panels:
            if hi <= lo:
                continue
            jc = block_owner(n, pc, lo)  # owner grid column of this panel
            width = hi - lo

            # (1) repartition inside the owner column: each of its pr
            # ranks holds rows bk of the panel; alltoall re-splits the
            # rows by the pc partition.
            pieces: list[np.ndarray | None] = [None] * pc
            if j == jc:
                my_panel = b_loc[:, lo - nn[0] : hi - nn[0]]
                sendbufs = []
                for jj in range(pc):
                    t0, t1 = block_range(k, pc, jj)
                    lo_r = max(bk[0], t0)
                    hi_r = min(bk[1], t1)
                    if hi_r > lo_r:
                        sendbufs.append(
                            (lo_r, np.ascontiguousarray(my_panel[lo_r - bk[0] : hi_r - bk[0], :]))
                        )
                    else:
                        sendbufs.append((lo_r, np.zeros((0, width), dtype=my_panel.dtype)))
                # column-comm alltoall would re-split among pr ranks; we
                # need pc pieces, so route directly: rank (σ(jj), jc)
                # assembles piece jj, where σ(jj) = jj % pr round-robins
                # the assembly work over the column.
                gathered = col.allgather(sendbufs)
                for jj in range(pc):
                    if jj % pr == i:
                        t0, t1 = block_range(k, pc, jj)
                        buf = np.zeros((t1 - t0, width), dtype=b_loc.dtype)
                        for contrib in gathered:
                            lo_r, data = contrib[jj]
                            if data.shape[0]:
                                buf[lo_r - t0 : lo_r - t0 + data.shape[0], :] = data
                        pieces[jj] = buf

            # (2) route piece jj from (jj % pr, jc) to (jj % pr, jj),
            # then broadcast it down grid column jj.
            my_piece: np.ndarray | None = None
            src_row = j % pr
            if j == jc and (j % pr) == i:
                my_piece = pieces[j]  # already home
            # senders: ranks in column jc holding pieces for other columns
            if j == jc:
                for jj in range(pc):
                    if jj % pr == i and jj != jc:
                        comm.send(pieces[jj], cart.rank_of(jj % pr, jj), _TAG_ROUTE)
            if j != jc and (j % pr) == i:
                my_piece = comm.recv(
                    source=cart.rank_of(j % pr, jc), tag=_TAG_ROUTE
                )
            my_piece = col.bcast(my_piece, root=src_row)

            # (3) local GEMM: contribution to C(m_i, panel).
            comm.gemm_tick(a_loc.shape[0], width, a_loc.shape[1])
            contrib = (
                a_loc @ my_piece
                if a_loc.shape[1]
                else np.zeros((a_loc.shape[0], width), dtype=out_dtype)
            )

            # (4) reduce the partial panel onto the owner column.
            summed = row.reduce(contrib, root=jc)
            if j == jc and summed is not None:
                c_loc[:, lo - nn[0] : hi - nn[0]] += summed.astype(out_dtype, copy=False)

    c_nat = DistMatrix(
        comm,
        Block2D((m, n), comm.size, pr, pc),
        [c_loc] if c_loc.shape[0] and c_loc.shape[1] else [],
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")


def summa_stationary_b_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: tuple[int, int] | None = None,
    panel: int = DEFAULT_PANEL,
) -> DistMatrix:
    """``C = A x B`` with B stationary: ``Cᵀ = Bᵀ Aᵀ`` under stationary-A."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    pr, pc = grid if grid is not None else near_square_pair(comm.size)
    # Transpose the whole problem through the redistribution machinery.
    bt = redistribute(b, Block2D((n, k), comm.size, pr, pc), transpose=True, phase="redist")
    at = redistribute(a, Block2D((k, m), comm.size, pr, pc), transpose=True, phase="redist")
    ct = summa_stationary_a_matmul(bt, at, grid=(pr, pc), panel=panel)
    target = c_dist if c_dist is not None else Block2D((m, n), comm.size, pr, pc)
    return redistribute(ct, target, transpose=True, phase="redist")
