"""A COSMA-like PGEMM (Kwasniewski et al., SC 2019), per Section III-C.

The paper analyses what the COSMA *source code* actually does (its
published description being high-level) and contrasts it with CA3DMM:

1. find a near-optimal grid ``pm x pn x pk`` with
   ``m/pm ≈ k/pk ≈ n/pn`` (we reuse the same surface-area minimization
   as CA3DMM, *without* the Cannon divisibility constraint — eq. (4)
   with only eq. (5));
2. derive a multi-step split *strategy* by factorizing the grid
   dimensions — at each step the dimension with the largest current
   local extent is split (``cosma_strategy`` reports this schedule; for
   the paper's Example 2 it is exactly ``k:4, m:2, n:2``);
3. execute: **complete all replications of A and B before any
   compute** — allgathers over the n-groups (for A) and m-groups (for
   B) — then one local GEMM, then a reduce-scatter over the k-groups.

Chaining the per-factor allgathers of step 2 moves exactly the same
volume with the same total ⌈log2⌉ message count as one allgather over
the whole group, so the executed engine performs one collective per
operand; the strategy object documents the schedule.

The contrast with CA3DMM (Section III-C): here replication is fully
materialized up front (more memory, no pipelining), whereas CA3DMM
streams blocks through Cannon shifts overlapped with compute.  The
reduce-scatter of partial C is identical in both.

Rank order is column-major: ``rank = i + pm*j + pm*pn*ik``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.optimizer import DEFAULT_L, GridSpec, cosma_grid
from ..layout.blocks import Rect, block_range
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm


@dataclass(frozen=True)
class SplitStep:
    """One strategy step: split ``dim`` ('m'/'n'/'k') into ``parts``."""

    dim: str
    parts: int


def cosma_strategy(grid: GridSpec, m: int, n: int, k: int) -> list[SplitStep]:
    """The ordered split schedule: largest current extent first.

    Whole grid dimensions are taken in one step (matching the paper's
    reading of Example 2: "(1) k-dimension splitting of size 4, (2)
    m-dimension splitting of size 2, (3) n-dimension splitting of 2").
    """
    remaining = {"m": grid.pm, "n": grid.pn, "k": grid.pk}
    extents = {"m": float(m), "n": float(n), "k": float(k)}
    steps: list[SplitStep] = []
    while any(p > 1 for p in remaining.values()):
        dim = max(
            (d for d in ("m", "n", "k") if remaining[d] > 1),
            key=lambda d: (extents[d], d == "m", d == "n"),
        )
        steps.append(SplitStep(dim, remaining[dim]))
        extents[dim] /= remaining[dim]
        remaining[dim] = 1
    return steps


class _CosmaMaps:
    """Native initial layouts: balanced pieces of the replicated blocks."""

    def __init__(self, m: int, n: int, k: int, grid: GridSpec, nranks: int):
        self.m, self.n, self.k, self.grid = m, n, k, grid
        pm, pn, pk = grid.pm, grid.pn, grid.pk
        a_map: dict[int, list[Rect]] = {}
        b_map: dict[int, list[Rect]] = {}
        c_map: dict[int, list[Rect]] = {}
        for ik in range(pk):
            kk = block_range(k, pk, ik)
            for j in range(pn):
                nn = block_range(n, pn, j)
                for i in range(pm):
                    mm = block_range(m, pm, i)
                    rank = i + pm * j + pm * pn * ik
                    # A block (i, ik): the pn ranks sharing it each hold a
                    # column piece.
                    lo, hi = block_range(kk[1] - kk[0], pn, j)
                    a_map[rank] = [Rect(mm[0], mm[1], kk[0] + lo, kk[0] + hi)]
                    # B block (ik, j): the pm ranks sharing it each hold a
                    # row piece.
                    lo, hi = block_range(kk[1] - kk[0], pm, i)
                    b_map[rank] = [Rect(kk[0] + lo, kk[0] + hi, nn[0], nn[1])]
                    # C block (i, j): strip ik after the reduce-scatter.
                    by_cols = (nn[1] - nn[0]) >= (mm[1] - mm[0])
                    if by_cols:
                        lo, hi = block_range(nn[1] - nn[0], pk, ik)
                        c_map[rank] = [Rect(mm[0], mm[1], nn[0] + lo, nn[0] + hi)]
                    else:
                        lo, hi = block_range(mm[1] - mm[0], pk, ik)
                        c_map[rank] = [Rect(mm[0] + lo, mm[0] + hi, nn[0], nn[1])]
        self.a_dist = Explicit.from_mapping((m, k), nranks, a_map)
        self.b_dist = Explicit.from_mapping((k, n), nranks, b_map)
        self.c_dist = Explicit.from_mapping((m, n), nranks, c_map)


def cosma_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    grid: GridSpec | None = None,
    l: float = DEFAULT_L,
) -> DistMatrix:
    """Run the COSMA-like schedule; returns C (native strips or ``c_dist``)."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    g = grid if grid is not None else cosma_grid(m, n, k, comm.size, l)
    if g.nprocs != comm.size:
        raise ValueError("grid was built for a different world size")
    maps = _CosmaMaps(m, n, k, g, comm.size)
    pm, pn, pk = g.pm, g.pn, g.pk

    a_nat = redistribute(a, maps.a_dist, phase="redist")
    b_nat = redistribute(b, maps.b_dist, phase="redist")

    active = comm.rank < g.used
    if active:
        i = comm.rank % pm
        j = (comm.rank // pm) % pn
        ik = comm.rank // (pm * pn)
    ngroup = comm.split((i + pm * ik) if active else None, j if active else 0)
    mgroup = comm.split((j + pn * ik) if active else None, i if active else 0)
    kgroup = comm.split((i + pm * j) if active else None, ik if active else 0)

    tiles: list[np.ndarray] = []
    if active:
        mm = block_range(m, pm, i)
        nn = block_range(n, pn, j)
        kk = block_range(k, pk, ik)

        def tile(mat: DistMatrix, shape: tuple[int, int]) -> np.ndarray:
            return mat.tiles[0] if mat.tiles else np.zeros(shape, dtype=mat.dtype)

        a_piece = tile(a_nat, (mm[1] - mm[0], 0))
        b_piece = tile(b_nat, (0, nn[1] - nn[0]))

        # Replicate A and B fully before computing (the COSMA schedule).
        with comm.phase("replicate"):
            a_blk = (
                a_piece
                if ngroup.size == 1
                else np.concatenate(ngroup.allgather(a_piece), axis=1)
            )
            b_blk = (
                b_piece
                if mgroup.size == 1
                else np.concatenate(mgroup.allgather(b_piece), axis=0)
            )
        comm.note_live_bytes(
            a_blk.nbytes + b_blk.nbytes
            + (mm[1] - mm[0]) * (nn[1] - nn[0]) * a_blk.dtype.itemsize
        )

        with comm.phase("compute"):
            comm.gemm_tick(mm[1] - mm[0], nn[1] - nn[0], kk[1] - kk[0])
            out_dtype = np.promote_types(a.dtype, b.dtype)
            if a_blk.shape[1]:
                c_part = (a_blk @ b_blk).astype(out_dtype, copy=False)
            else:
                c_part = np.zeros((mm[1] - mm[0], nn[1] - nn[0]), dtype=out_dtype)

        with comm.phase("reduce"):
            if kgroup.size == 1:
                c_strip = c_part
            else:
                by_cols = (nn[1] - nn[0]) >= (mm[1] - mm[0])
                strips = []
                extent = c_part.shape[1] if by_cols else c_part.shape[0]
                for r in range(pk):
                    lo, hi = block_range(extent, pk, r)
                    strips.append(c_part[:, lo:hi] if by_cols else c_part[lo:hi, :])
                c_strip = kgroup.reduce_scatter(strips)
        if c_strip.shape[0] and c_strip.shape[1]:
            tiles = [np.ascontiguousarray(c_strip)]

    c_nat = DistMatrix(comm, maps.c_dist, tiles)
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
