"""The 2.5D algorithm (Solomonik & Demmel, Euro-Par 2011).

A ``sq x sq x c`` grid: ``c`` replica layers, each a square 2D grid.
A and B live on layer 0 (natural 2D blocks) and are broadcast down the
layer fibers; layer ``l`` then runs the slice ``block_range(sq, c, l)``
of the ``sq`` Cannon steps (starting from an alignment offset equal to
its slice start), and the per-layer partial C blocks are reduced back
to layer 0.  With ``c = 1`` this *is* Cannon's algorithm; with
``c = P^{1/3}`` it matches the original 3D algorithm's costs — the
"bridge" role the paper describes in Section II.

This module is also the engine for the CTF-like baseline
(:mod:`repro.baselines.ctf_like`), which differs only in grid choice.
Rank order is column-major: ``rank = u + sq*v + sq²*l``.
"""

from __future__ import annotations

import numpy as np

from ..layout.blocks import Rect, block_range
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE
from ..mpi.topology import Cart2D

_TAG_ALIGN_A = INTERNAL_TAG_BASE + 201
_TAG_ALIGN_B = INTERNAL_TAG_BASE + 202
_TAG_SHIFT_A = INTERNAL_TAG_BASE + 203
_TAG_SHIFT_B = INTERNAL_TAG_BASE + 204


def grid_25d(nprocs: int, c: int | None = None) -> tuple[int, int]:
    """Pick ``(sq, c)`` with ``sq*sq*c <= nprocs`` maximizing utilization.

    When ``c`` is given it is honoured (sq maximal for that c); otherwise
    the utilization-maximal pair with the largest c at most ``sq`` wins.
    """
    if c is not None:
        sq = 1
        while (sq + 1) ** 2 * c <= nprocs:
            sq += 1
        return sq, c
    best: tuple[int, int, int] | None = None  # (used, c, sq)
    for cc in range(1, nprocs + 1):
        sq = int((nprocs // cc) ** 0.5)
        if sq < 1 or cc > sq:
            continue
        used = sq * sq * cc
        cand = (used, cc, sq)
        if best is None or cand > best:
            best = cand
    if best is None:
        return 1, 1
    return best[2], best[1]


def algo25d_native_dists(
    m: int, n: int, k: int, sq: int, nranks: int
) -> tuple[Explicit, Explicit, Explicit]:
    """Layer-0 block layouts for A, B, and C."""
    a_map: dict[int, list[Rect]] = {}
    b_map: dict[int, list[Rect]] = {}
    c_map: dict[int, list[Rect]] = {}
    for v in range(sq):
        for u in range(sq):
            rank = u + sq * v
            am = block_range(m, sq, u)
            ak = block_range(k, sq, v)
            bk = block_range(k, sq, u)
            bn = block_range(n, sq, v)
            a_map[rank] = [Rect(am[0], am[1], ak[0], ak[1])]
            b_map[rank] = [Rect(bk[0], bk[1], bn[0], bn[1])]
            c_map[rank] = [Rect(am[0], am[1], bn[0], bn[1])]
    return (
        Explicit.from_mapping((m, k), nranks, a_map),
        Explicit.from_mapping((k, n), nranks, b_map),
        Explicit.from_mapping((m, n), nranks, c_map),
    )


def algo25d_matmul(
    a: DistMatrix,
    b: DistMatrix,
    c_dist: Distribution | None = None,
    c_factor: int | None = None,
    sq: int | None = None,
) -> DistMatrix:
    """Run the 2.5D algorithm with ``c_factor`` replica layers."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    if sq is None:
        sq, c = grid_25d(comm.size, c_factor)
    else:
        c = c_factor if c_factor is not None else 1
    if sq * sq * c > comm.size:
        raise ValueError(f"grid {sq}x{sq}x{c} exceeds {comm.size} ranks")

    a_dist, b_dist, c_nat_dist = algo25d_native_dists(m, n, k, sq, comm.size)
    a_nat = redistribute(a, a_dist, phase="redist")
    b_nat = redistribute(b, b_dist, phase="redist")

    active = comm.rank < sq * sq * c
    if active:
        u = comm.rank % sq
        v = (comm.rank // sq) % sq
        l = comm.rank // (sq * sq)
    layer = comm.split(l if active else None, (u + sq * v) if active else 0)
    fiber = comm.split((u + sq * v) if active else None, l if active else 0)

    tiles: list[np.ndarray] = []
    if active:
        am = block_range(m, sq, u)
        ak = block_range(k, sq, v)
        bk = block_range(k, sq, u)
        bn = block_range(n, sq, v)
        with comm.phase("replicate"):
            a_blk = a_nat.tiles[0] if (l == 0 and a_nat.tiles) else None
            b_blk = b_nat.tiles[0] if (l == 0 and b_nat.tiles) else None
            a_blk = fiber.bcast(a_blk, root=0)
            b_blk = fiber.bcast(b_blk, root=0)
        if a_blk is None:
            a_blk = np.zeros((am[1] - am[0], ak[1] - ak[0]), dtype=a.dtype)
        if b_blk is None:
            b_blk = np.zeros((bk[1] - bk[0], bn[1] - bn[0]), dtype=b.dtype)

        cart = Cart2D(layer, sq, sq)
        t0, t1 = block_range(sq, c, l)  # this layer's Cannon-step slice
        out_dtype = np.promote_types(a.dtype, b.dtype)
        c_part = np.zeros((am[1] - am[0], bn[1] - bn[0]), dtype=out_dtype)

        with comm.phase("cannon"):
            # Alignment: A left by (u + t0), B up by (v + t0).
            if (u + t0) % sq:
                a_blk = layer.sendrecv(
                    a_blk, cart.left(u + t0), cart.right(u + t0), _TAG_ALIGN_A, _TAG_ALIGN_A
                )
            if (v + t0) % sq:
                b_blk = layer.sendrecv(
                    b_blk, cart.up(v + t0), cart.down(v + t0), _TAG_ALIGN_B, _TAG_ALIGN_B
                )
            for t in range(t0, t1):
                comm.gemm_tick(c_part.shape[0], c_part.shape[1], a_blk.shape[1])
                if a_blk.shape[1]:
                    np.add(c_part, a_blk @ b_blk, out=c_part)
                if t < t1 - 1:
                    a_blk = layer.sendrecv(
                        a_blk, cart.left(1), cart.right(1), _TAG_SHIFT_A, _TAG_SHIFT_A
                    )
                    b_blk = layer.sendrecv(
                        b_blk, cart.up(1), cart.down(1), _TAG_SHIFT_B, _TAG_SHIFT_B
                    )
        with comm.phase("reduce"):
            c_sum = fiber.reduce(c_part, root=0)
        if l == 0 and c_sum is not None and c_sum.shape[0] and c_sum.shape[1]:
            tiles = [c_sum]

    c_nat = DistMatrix(comm, c_nat_dist, tiles)
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
