"""1D matrix-multiplication algorithms (paper Section II).

1D algorithms partition a single dimension:

* ``m``-partition — every rank owns a row band of A and computes the
  matching row band of C; B is **replicated** (assembled with one
  allgather from its 1D-distributed storage).
* ``n``-partition — symmetric: column bands of B and C; A replicated.
* ``k``-partition — every rank owns a column band of A and a row band
  of B, computes a full-size partial C, and a **reduce-scatter** sums
  and distributes the result.

These are the algorithms tall-and-skinny multiplications actually use,
and the cases CA3DMM's unified view degenerates to when the optimal
grid has two unit dimensions (e.g. ``1 x 1 x P`` for an inner product).
"""

from __future__ import annotations

import numpy as np

from ..layout.blocks import block_range
from ..layout.distributions import BlockCol1D, BlockRow1D, Distribution
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm


def matmul_1d_m(a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None) -> DistMatrix:
    """1D algorithm partitioning the m-dimension (B replicated)."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    a_nat = redistribute(a, BlockRow1D((m, k), comm.size), phase="redist")
    b_nat = redistribute(b, BlockRow1D((k, n), comm.size), phase="redist")
    with comm.phase("replicate"):
        b_full = np.concatenate(
            [p for p in comm.allgather(_tile_or_empty(b_nat, (0, n)))], axis=0
        )
    a_loc = _tile_or_empty(a_nat, (0, k))
    with comm.phase("compute"):
        comm.gemm_tick(a_loc.shape[0], n, k)
        c_loc = a_loc @ b_full
    c_nat = DistMatrix(
        comm,
        BlockRow1D((m, n), comm.size),
        [c_loc] if c_loc.shape[0] else [],
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")


def matmul_1d_n(a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None) -> DistMatrix:
    """1D algorithm partitioning the n-dimension (A replicated)."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    a_nat = redistribute(a, BlockCol1D((m, k), comm.size), phase="redist")
    b_nat = redistribute(b, BlockCol1D((k, n), comm.size), phase="redist")
    with comm.phase("replicate"):
        a_full = np.concatenate(
            [p for p in comm.allgather(_tile_or_empty(a_nat, (m, 0)))], axis=1
        )
    b_loc = _tile_or_empty(b_nat, (k, 0))
    with comm.phase("compute"):
        comm.gemm_tick(m, b_loc.shape[1], k)
        c_loc = a_full @ b_loc
    c_nat = DistMatrix(
        comm,
        BlockCol1D((m, n), comm.size),
        [c_loc] if c_loc.shape[1] else [],
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")


def matmul_1d_k(a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None) -> DistMatrix:
    """1D algorithm partitioning the k-dimension (C reduce-scattered)."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    a_nat = redistribute(a, BlockCol1D((m, k), comm.size), phase="redist")
    b_nat = redistribute(b, BlockRow1D((k, n), comm.size), phase="redist")
    a_loc = _tile_or_empty(a_nat, (m, 0))
    b_loc = _tile_or_empty(b_nat, (0, n))
    with comm.phase("compute"):
        comm.gemm_tick(m, n, a_loc.shape[1])
        c_part = a_loc @ b_loc if a_loc.shape[1] else np.zeros((m, n), a_loc.dtype)
    with comm.phase("reduce"):
        strips = []
        for r in range(comm.size):
            lo, hi = block_range(m, comm.size, r)
            strips.append(c_part[lo:hi, :])
        c_loc = comm.reduce_scatter(strips)
    c_nat = DistMatrix(
        comm,
        BlockRow1D((m, n), comm.size),
        [c_loc] if c_loc.shape[0] else [],
    )
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")


def matmul_1d(
    a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None
) -> DistMatrix:
    """Pick the 1D variant by the largest dimension (the usual heuristic)."""
    m, k = a.shape
    _, n = b.shape
    if m >= max(n, k):
        return matmul_1d_m(a, b, c_dist)
    if n >= k:
        return matmul_1d_n(a, b, c_dist)
    return matmul_1d_k(a, b, c_dist)


def _tile_or_empty(mat: DistMatrix, empty_shape: tuple[int, int]) -> np.ndarray:
    """This rank's single tile, or a correctly-typed empty placeholder."""
    if mat.tiles:
        return mat.tiles[0]
    return np.zeros(empty_shape, dtype=mat.dtype)
