"""CARMA (Demmel et al., IPDPS 2013): recursive communication-avoiding MM.

CARMA bisects the largest dimension of the current subproblem at every
level, assigning each half-problem to half of the processes, until one
process remains per subproblem.  Each bisection costs:

* ``m``-split — the two halves need the same B: pairwise exchange of B
  holdings (a replication),
* ``n``-split — pairwise exchange of A holdings,
* ``k``-split — nothing on the way down; on the way back up the paired
  processes exchange-and-sum *halves* of their partial C blocks (a
  pairwise reduce-scatter).

As the paper notes, CARMA "requires the number of processes to be a
power of two and requires special matrix distributions": we honour
both.  Only the largest ``2^t <= P`` ranks are active (the rest join
redistribution only), and the native layouts — computed by a dry-run of
the same recursion — give each rank exactly the A/B rectangle its leaf
first touches, so descending performs only the replication exchanges
CARMA's cost model counts.

To keep the recursion *structurally* identical across sibling halves
(required so paired ranks hold congruent C blocks at k-unwinds), split
decisions use exact fractional extents, halved identically for both
children; integer index ranges use the usual balanced splitting, whose
floor-of-halves arithmetic nests exactly for power-of-two groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.blocks import Rect, block_range
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm
from ..mpi.datatypes import INTERNAL_TAG_BASE

_TAG_XCHG = INTERNAL_TAG_BASE + 301
_TAG_CRED = INTERNAL_TAG_BASE + 302


def active_count(nprocs: int) -> int:
    """Largest power of two not exceeding the world size."""
    t = 1
    while t * 2 <= nprocs:
        t *= 2
    return t


@dataclass(frozen=True)
class _Prob:
    """A subproblem: global index ranges plus exact fractional extents."""

    m0: int
    m1: int
    n0: int
    n1: int
    k0: int
    k1: int
    fm: float
    fn: float
    fk: float

    @staticmethod
    def root(m: int, n: int, k: int) -> "_Prob":
        return _Prob(0, m, 0, n, 0, k, float(m), float(n), float(k))

    def split_dim(self) -> str:
        """Bisect the largest (fractional) dimension; ties: m, then n."""
        if self.fm >= self.fn and self.fm >= self.fk:
            return "m"
        if self.fn >= self.fk:
            return "n"
        return "k"

    def child(self, dim: str, side: int) -> "_Prob":
        if dim == "m":
            lo, hi = block_range(self.m1 - self.m0, 2, side)
            return _Prob(
                self.m0 + lo, self.m0 + hi, self.n0, self.n1, self.k0, self.k1,
                self.fm / 2.0, self.fn, self.fk,
            )
        if dim == "n":
            lo, hi = block_range(self.n1 - self.n0, 2, side)
            return _Prob(
                self.m0, self.m1, self.n0 + lo, self.n0 + hi, self.k0, self.k1,
                self.fm, self.fn / 2.0, self.fk,
            )
        lo, hi = block_range(self.k1 - self.k0, 2, side)
        return _Prob(
            self.m0, self.m1, self.n0, self.n1, self.k0 + lo, self.k0 + hi,
            self.fm, self.fn, self.fk / 2.0,
        )


# --------------------------------------------------------------- planning -- #
def _plan(
    prob: _Prob,
    lo: int,
    size: int,
    a_rect: tuple[int, int],
    b_rect: tuple[int, int],
    a_map: dict[int, list[Rect]],
    b_map: dict[int, list[Rect]],
) -> dict[int, Rect]:
    """Assign initial A/B rects; return final C rect per rank (this subtree).

    ``a_rect`` is the k-column ownership span of A for this group
    (halved at every n- and k-split); ``b_rect`` the k-row span of B
    (halved at every m- and k-split).
    """
    if size == 1:
        a_map[lo] = [Rect(prob.m0, prob.m1, a_rect[0], a_rect[1])]
        b_map[lo] = [Rect(b_rect[0], b_rect[1], prob.n0, prob.n1)]
        return {lo: Rect(prob.m0, prob.m1, prob.n0, prob.n1)}
    dim = prob.split_dim()
    h = size // 2
    out: dict[int, Rect] = {}
    for side, glo in ((0, lo), (1, lo + h)):
        child = prob.child(dim, side)
        a_sub, b_sub = a_rect, b_rect
        if dim == "k":
            # Ownership follows the k-halves exactly, so descending a
            # k-split moves no data (CARMA's cost model) — at the price
            # of the unbalanced "special" initial distribution the paper
            # criticizes.
            a_sub = (max(a_rect[0], child.k0), min(a_rect[1], child.k1))
            b_sub = (max(b_rect[0], child.k0), min(b_rect[1], child.k1))
            a_sub = a_sub if a_sub[0] < a_sub[1] else (child.k0, child.k0)
            b_sub = b_sub if b_sub[0] < b_sub[1] else (child.k0, child.k0)
        elif dim == "n":
            s0, s1 = block_range(a_rect[1] - a_rect[0], 2, side)
            a_sub = (a_rect[0] + s0, a_rect[0] + s1)
        else:  # dim == "m"
            s0, s1 = block_range(b_rect[1] - b_rect[0], 2, side)
            b_sub = (b_rect[0] + s0, b_rect[0] + s1)
        out.update(_plan(child, glo, h, a_sub, b_sub, a_map, b_map))
    if dim == "k":
        # Unwind: paired ranks keep complementary halves of their C rects.
        for idx in range(h):
            for side, r in ((0, lo + idx), (1, lo + h + idx)):
                rect = out[r]
                by_cols = rect.cols >= rect.rows
                if by_cols:
                    s0, s1 = block_range(rect.cols, 2, side)
                    out[r] = Rect(rect.r0, rect.r1, rect.c0 + s0, rect.c0 + s1)
                else:
                    s0, s1 = block_range(rect.rows, 2, side)
                    out[r] = Rect(rect.r0 + s0, rect.r0 + s1, rect.c0, rect.c1)
    return out


def carma_native_dists(
    m: int, n: int, k: int, nranks: int
) -> tuple[Explicit, Explicit, Explicit]:
    """CARMA's native initial A/B and final C layouts."""
    act = active_count(nranks)
    a_map: dict[int, list[Rect]] = {}
    b_map: dict[int, list[Rect]] = {}
    c_map = _plan(_Prob.root(m, n, k), 0, act, (0, k), (0, k), a_map, b_map)
    return (
        Explicit.from_mapping((m, k), nranks, a_map),
        Explicit.from_mapping((k, n), nranks, b_map),
        Explicit.from_mapping((m, n), nranks, {r: [rc] for r, rc in c_map.items()}),
    )


# -------------------------------------------------------------- execution -- #
_Piece = tuple[int, int, np.ndarray]  # (span lo, span hi, slab)


def _filter_spans(pieces: list[_Piece], lo: int, hi: int) -> tuple[list[_Piece], list[_Piece]]:
    """Partition pieces into (inside [lo,hi), outside); spans never straddle."""
    inside, outside = [], []
    for p in pieces:
        if p[0] >= lo and p[1] <= hi:
            inside.append(p)
        elif p[1] <= lo or p[0] >= hi:
            outside.append(p)
        else:  # pragma: no cover - the nesting argument rules this out
            raise AssertionError(f"piece span {p[:2]} straddles [{lo},{hi})")
    return inside, outside


def _assemble(pieces: list[_Piece], axis: int, other_extent: int, dtype) -> np.ndarray:
    """Sort pieces by span and concatenate into a dense operand."""
    pieces = sorted(pieces, key=lambda p: p[0])
    if not pieces:
        shape = (other_extent, 0) if axis == 1 else (0, other_extent)
        return np.zeros(shape, dtype=dtype)
    return np.concatenate([p[2] for p in pieces], axis=axis)


def _recurse(
    comm: Comm,
    prob: _Prob,
    lo: int,
    size: int,
    a_pieces: list[_Piece],
    b_pieces: list[_Piece],
    dtype,
) -> tuple[Rect, np.ndarray]:
    if size == 1:
        a_loc = _assemble(a_pieces, 1, prob.m1 - prob.m0, dtype)
        b_loc = _assemble(b_pieces, 0, prob.n1 - prob.n0, dtype)
        with comm.phase("compute"):
            comm.gemm_tick(a_loc.shape[0], b_loc.shape[1], a_loc.shape[1])
            c = a_loc @ b_loc if a_loc.shape[1] else np.zeros(
                (prob.m1 - prob.m0, prob.n1 - prob.n0), dtype=dtype
            )
        return Rect(prob.m0, prob.m1, prob.n0, prob.n1), c

    dim = prob.split_dim()
    h = size // 2
    side = 0 if comm.rank < lo + h else 1
    partner = comm.rank + h if side == 0 else comm.rank - h
    child = prob.child(dim, side)

    if dim == "m":
        # Replicate B: pairwise exchange of all B holdings.
        with comm.phase("replicate"):
            got = comm.sendrecv(b_pieces, partner, partner, _TAG_XCHG, _TAG_XCHG)
        b_pieces = b_pieces + got
    elif dim == "n":
        with comm.phase("replicate"):
            got = comm.sendrecv(a_pieces, partner, partner, _TAG_XCHG, _TAG_XCHG)
        a_pieces = a_pieces + got
    else:
        # k-split: ownership was planned to follow the k-halves exactly,
        # so descending moves no data — every held piece already lies in
        # this side's half (checked; a violation would be a planning bug).
        a_in, a_out = _filter_spans(a_pieces, child.k0, child.k1)
        b_in, b_out = _filter_spans(b_pieces, child.k0, child.k1)
        if a_out or b_out:  # pragma: no cover - guarded invariant
            raise AssertionError("CARMA k-split found out-of-half pieces")
        a_pieces, b_pieces = a_in, b_in

    rect, c_loc = _recurse(comm, child, lo if side == 0 else lo + h, h, a_pieces, b_pieces, dtype)

    if dim == "k":
        # Pairwise reduce-scatter of the congruent partial C blocks.
        by_cols = rect.cols >= rect.rows
        extent = rect.cols if by_cols else rect.rows
        keep_lo, keep_hi = block_range(extent, 2, side)
        send_lo, send_hi = block_range(extent, 2, 1 - side)
        if by_cols:
            mine, theirs = c_loc[:, keep_lo:keep_hi], c_loc[:, send_lo:send_hi]
            new_rect = Rect(rect.r0, rect.r1, rect.c0 + keep_lo, rect.c0 + keep_hi)
        else:
            mine, theirs = c_loc[keep_lo:keep_hi, :], c_loc[send_lo:send_hi, :]
            new_rect = Rect(rect.r0 + keep_lo, rect.r0 + keep_hi, rect.c0, rect.c1)
        with comm.phase("reduce"):
            got = comm.sendrecv(
                np.ascontiguousarray(theirs), partner, partner, _TAG_CRED, _TAG_CRED
            )
        return new_rect, mine + got
    return rect, c_loc


def carma_matmul(
    a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None
) -> DistMatrix:
    """Run CARMA on the largest power-of-two subset of the communicator."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    act = active_count(comm.size)
    a_dist, b_dist, c_nat_dist = carma_native_dists(m, n, k, comm.size)
    a_nat = redistribute(a, a_dist, phase="redist")
    b_nat = redistribute(b, b_dist, phase="redist")

    dtype = np.promote_types(a.dtype, b.dtype)
    tiles: list[np.ndarray] = []
    if comm.rank < act:
        a0 = a_dist.owned_rects(comm.rank)
        b0 = b_dist.owned_rects(comm.rank)
        a_pieces = [
            (r.c0, r.c1, a_nat.tiles[i].astype(dtype, copy=False))
            for i, r in enumerate(a0)
        ]
        b_pieces = [
            (r.r0, r.r1, b_nat.tiles[i].astype(dtype, copy=False))
            for i, r in enumerate(b0)
        ]
        rect, c_loc = _recurse(
            comm, _Prob.root(m, n, k), 0, act, a_pieces, b_pieces, dtype
        )
        expected = c_nat_dist.owned_rects(comm.rank)
        if expected and expected[0] != rect:  # pragma: no cover - plan/exec skew
            raise AssertionError(f"final C rect {rect} != planned {expected[0]}")
        if rect.rows and rect.cols:
            tiles = [np.ascontiguousarray(c_loc)]
    c_nat = DistMatrix(comm, c_nat_dist, tiles)
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
