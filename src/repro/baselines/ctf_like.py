"""A CTF-like baseline: the 2.5D engine with CTF-style grid selection.

The Cyclops Tensor Framework implements 2.5D matrix multiplication for
any process count but — as the paper notes, citing [18] — "its process
grid and matrix decomposition may be far from optimal" for matrix
multiplication, because the grid is chosen square-ish regardless of the
matrix aspect ratio.  This baseline reproduces that behaviour: grid from
:func:`repro.grid.optimizer.ctf_grid` (square 2D face, replication
factor c), executed by :func:`repro.baselines.algo25d.algo25d_matmul`.
"""

from __future__ import annotations

from ..grid.optimizer import ctf_grid
from ..layout.distributions import Distribution
from ..layout.matrix import DistMatrix
from .algo25d import algo25d_matmul


def ctf_matmul(
    a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None
) -> DistMatrix:
    """2.5D multiplication on a CTF-style (aspect-blind) grid."""
    m, k = a.shape
    _, n = b.shape
    g = ctf_grid(m, n, k, a.comm.size)
    # ctf_grid returns pm == pn == sq with pk as the replication factor;
    # the 2.5D engine needs c <= sq, which ctf_grid guarantees for all
    # P >= 4 (c <= ~2 * P^(1/3) <= sq); clamp defensively for tiny P.
    c = min(g.pk, g.pm) if g.pm > 0 else 1
    return algo25d_matmul(a, b, c_dist=c_dist, c_factor=max(1, c), sq=g.pm)
