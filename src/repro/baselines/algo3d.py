"""The original 3D algorithm (Agarwal et al., 1995).

A cubic ``q x q x q`` grid (``q = floor(P^{1/3})``; surplus ranks idle).
A and B live as natural 2D block layouts on one face each, C ends on a
face:

* A block ``(i, l)`` on process ``(i, 0, l)`` — broadcast along the
  n-fibers so every ``(i, j, l)`` gets it,
* B block ``(l, j)`` on process ``(0, j, l)`` — broadcast along the
  m-fibers,
* every process computes one local GEMM, and the partial C blocks are
  summed along the k-fibers onto the ``l = 0`` face.

Communication per process is O(N²/P^{2/3}) for square problems — the
paper's reference point for the memory/communication trade-off — but,
as Demmel et al. observed and the paper recounts, the fixed cubic grid
performs poorly when one dimension dominates.  Rank order is
column-major: ``rank = i + q*j + q²*l``.
"""

from __future__ import annotations

import numpy as np

from ..layout.blocks import Rect, block_range
from ..layout.distributions import Distribution, Explicit
from ..layout.matrix import DistMatrix
from ..layout.redistribute import redistribute
from ..mpi.comm import Comm


def cube_side(nprocs: int) -> int:
    """Largest q with q³ <= nprocs."""
    q = max(1, round(nprocs ** (1.0 / 3.0)))
    while q ** 3 > nprocs:
        q -= 1
    while (q + 1) ** 3 <= nprocs:
        q += 1
    return q


def algo3d_native_dists(
    m: int, n: int, k: int, q: int, nranks: int
) -> tuple[Explicit, Explicit, Explicit]:
    """Face layouts of A (j=0), B (i=0), and C (l=0)."""
    a_map: dict[int, list[Rect]] = {}
    b_map: dict[int, list[Rect]] = {}
    c_map: dict[int, list[Rect]] = {}
    for l in range(q):
        k0, k1 = block_range(k, q, l)
        for i in range(q):
            m0, m1 = block_range(m, q, i)
            a_map[i + q * 0 + q * q * l] = [Rect(m0, m1, k0, k1)]
        for j in range(q):
            n0, n1 = block_range(n, q, j)
            b_map[0 + q * j + q * q * l] = [Rect(k0, k1, n0, n1)]
    for i in range(q):
        m0, m1 = block_range(m, q, i)
        for j in range(q):
            n0, n1 = block_range(n, q, j)
            c_map[i + q * j] = [Rect(m0, m1, n0, n1)]
    return (
        Explicit.from_mapping((m, k), nranks, a_map),
        Explicit.from_mapping((k, n), nranks, b_map),
        Explicit.from_mapping((m, n), nranks, c_map),
    )


def algo3d_matmul(
    a: DistMatrix, b: DistMatrix, c_dist: Distribution | None = None
) -> DistMatrix:
    """Run the original 3D algorithm; returns C (face layout or ``c_dist``)."""
    comm: Comm = a.comm
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    q = cube_side(comm.size)
    a_dist, b_dist, c_nat_dist = algo3d_native_dists(m, n, k, q, comm.size)

    a_nat = redistribute(a, a_dist, phase="redist")
    b_nat = redistribute(b, b_dist, phase="redist")

    active = comm.rank < q ** 3
    if active:
        i = comm.rank % q
        j = (comm.rank // q) % q
        l = comm.rank // (q * q)
    # Fiber communicators (idle ranks pass None).
    nfiber = comm.split((i + q * l) if active else None, j if active else 0)
    mfiber = comm.split((j + q * l) if active else None, i if active else 0)
    kfiber = comm.split((i + q * j) if active else None, l if active else 0)

    tiles: list[np.ndarray] = []
    if active:
        m0, m1 = block_range(m, q, i)
        n0, n1 = block_range(n, q, j)
        k0, k1 = block_range(k, q, l)
        with comm.phase("replicate"):
            a_blk = a_nat.tiles[0] if (j == 0 and a_nat.tiles) else None
            a_blk = nfiber.bcast(a_blk, root=0)
            b_blk = b_nat.tiles[0] if (i == 0 and b_nat.tiles) else None
            b_blk = mfiber.bcast(b_blk, root=0)
        if a_blk is None:
            a_blk = np.zeros((m1 - m0, k1 - k0), dtype=a.dtype)
        if b_blk is None:
            b_blk = np.zeros((k1 - k0, n1 - n0), dtype=b.dtype)
        with comm.phase("compute"):
            comm.gemm_tick(m1 - m0, n1 - n0, k1 - k0)
            c_part = a_blk @ b_blk
        with comm.phase("reduce"):
            c_sum = kfiber.reduce(c_part, root=0)
        if l == 0 and c_sum is not None and c_sum.shape[0] and c_sum.shape[1]:
            tiles = [c_sum]

    c_nat = DistMatrix(comm, c_nat_dist, tiles)
    return c_nat if c_dist is None else redistribute(c_nat, c_dist, phase="redist")
