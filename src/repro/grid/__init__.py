"""Process-grid selection (paper Section III-A/B)."""

from .factorize import (
    divisors,
    factor_triples,
    is_pow2,
    near_square_pair,
    perfect_square_part,
    prime_factors,
)
from .optimizer import (
    DEFAULT_L,
    GridSpec,
    ca3dmm_grid,
    cosma_grid,
    ctf_grid,
    enumerate_grids,
)

__all__ = [
    "divisors",
    "prime_factors",
    "factor_triples",
    "is_pow2",
    "near_square_pair",
    "perfect_square_part",
    "GridSpec",
    "DEFAULT_L",
    "enumerate_grids",
    "ca3dmm_grid",
    "cosma_grid",
    "ctf_grid",
]
