"""Process-grid selection — Section III-A/B of the paper.

The central object is :class:`GridSpec`, the ``pm x pn x pk`` grid plus
derived quantities (Cannon group count ``c``, square side ``s``, idle
ranks).  Three selectors are provided:

* :func:`ca3dmm_grid` — the paper's search: enumerate all grids with
  ``l·P <= pm·pk·pn <= P`` (eq. 5, ``l = 0.95``), require
  ``max(pm,pn) mod min(pm,pn) == 0`` (eq. 7, Cannon compatibility),
  minimize ``S_total = 2(pm·kn + pn·mk + pk·mn)`` (eq. 4), tie-break by
  maximizing process utilization (eq. 6).
* :func:`cosma_grid` — what Section III-C reports the COSMA source does:
  the same surface-area minimization *without* the divisibility
  constraint.
* :func:`ctf_grid` — a CTF/2.5D-style grid: a square 2D grid with a
  replication factor ``c``, with no rectangular-problem optimization
  (the reason the paper's CTF numbers trail on rectangular problems).

All selectors are deterministic; ties resolve lexicographically, so
every rank computes the same grid independently.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from .factorize import divisors, perfect_square_part

#: The paper's default utilization lower bound (eq. 5).
DEFAULT_L = 0.95


class MemLimitInfeasibleWarning(UserWarning):
    """``memory_limit_words`` excluded every candidate grid.

    The search falls back to the minimum-memory grid rather than
    failing, but the cap is **not** honoured: the returned grid's
    eq. (11) footprint exceeds the requested limit.  Raise the limit,
    raise the process count, or switch to the SUMMA kernel (Section V
    lever 1) to make the cap feasible.
    """


@dataclass(frozen=True, order=True)
class GridSpec:
    """A ``pm x pn x pk`` process grid over a world of ``nprocs`` ranks."""

    pm: int
    pn: int
    pk: int
    nprocs: int

    def __post_init__(self) -> None:
        if min(self.pm, self.pn, self.pk) < 1:
            raise ValueError("grid dimensions must be positive")
        if self.used > self.nprocs:
            raise ValueError(
                f"grid {self.pm}x{self.pn}x{self.pk} needs {self.used} > {self.nprocs} ranks"
            )

    # ------------------------------------------------------------ derived -- #
    @property
    def used(self) -> int:
        """Active processes: ``pm * pn * pk``."""
        return self.pm * self.pn * self.pk

    @property
    def idle(self) -> int:
        """Ranks that only participate in redistribution."""
        return self.nprocs - self.used

    @property
    def s(self) -> int:
        """Cannon-group side: ``min(pm, pn)``."""
        return min(self.pm, self.pn)

    @property
    def c(self) -> int:
        """Cannon groups per k-task group: ``max(pm,pn) / min(pm,pn)`` (eq. 8)."""
        q, r = divmod(max(self.pm, self.pn), min(self.pm, self.pn))
        if r:
            raise ValueError(f"grid {self} violates the divisibility constraint (7)")
        return q

    @property
    def cannon_compatible(self) -> bool:
        """Whether constraint (7) holds."""
        return max(self.pm, self.pn) % min(self.pm, self.pn) == 0

    @property
    def replicates_a(self) -> bool:
        """True when A is the replicated operand (``pn > pm``, Example 1)."""
        return self.pn > self.pm

    def surface(self, m: int, n: int, k: int) -> float:
        """``S_total`` of eq. (4): total elements moved across all processes."""
        return 2.0 * (self.pm * k * n + self.pn * m * k + self.pk * m * n)

    def block_dims(self, m: int, n: int, k: int) -> tuple[float, float, float]:
        """Nominal per-process work-cuboid dimensions (may be fractional)."""
        return m / self.pm, n / self.pn, k / self.pk

    def utilization(self) -> float:
        return self.used / self.nprocs

    def memory_words(self, m: int, n: int, k: int) -> float:
        """Eq. (11): peak matrix words per active process under CA3DMM.

        ``2(fa·mk + fb·kn)/used + pk·mn/used`` where the replication
        factor ``c`` applies to A when ``pn > pm`` and to B otherwise
        (dual-buffered Cannon operands plus the partial-C block).
        Requires constraint (7); raises otherwise.
        """
        fa = self.c if self.pn > self.pm else 1
        fb = 1 if self.pn > self.pm else self.c
        return (
            2.0 * (fa * m * k + fb * k * n) / self.used
            + self.pk * m * n / self.used
        )

    def latency_ca3dmm(self) -> int:
        """Eq. (10): ``L = log2(c) + s + pk - 1`` messages on the critical rank."""
        c = self.c
        lat = math.ceil(math.log2(c)) if c > 1 else 0  # allgather replication
        lat += self.s if self.s > 1 else 0  # skew + (s-1) shifts
        return lat + (self.pk - 1)  # reduce-scatter

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pm}x{self.pn}x{self.pk} (P={self.nprocs}, idle={self.idle})"


def _sorted_key(m: int, n: int, k: int, use_latency: bool = True):
    """Ordering used to pick a grid.

    Primary objective: *per-process* communication volume,
    ``S_total / used``.  Eq. (4) of the paper states the total surface,
    but the grids the paper reports (512x2x2 for large-M at P=2048,
    2x2x512 for large-K, 39x39x2 for flat at 3072) are exactly the
    per-process optima — minimizing the raw total under constraint (5)
    would instead drift to minimum-utilization grids (e.g. 488x2x2),
    which neither the reference implementation nor the stated
    ``l``-insensitivity (Section IV-A) exhibits.  Dividing by the
    process count folds the sub-target (6) into the objective, with
    ``-used`` kept as the explicit tie-break.
    """

    def key(spec: GridSpec):
        lat = spec.latency_ca3dmm() if (use_latency and spec.cannon_compatible) else 0
        return (
            spec.surface(m, n, k) / spec.used,  # per-process volume
            -spec.used,  # eq. (6)
            lat,  # then fewer messages
            (spec.pm, spec.pn, spec.pk),  # then deterministic
        )

    return key


def enumerate_grids(
    nprocs: int,
    l: float = DEFAULT_L,
    require_divisible: bool = True,
) -> list[GridSpec]:
    """All grids satisfying eq. (5) (and optionally eq. (7)).

    Mirrors the reference implementation's search: for each ``(pm, pn)``
    pair the k-extent is maximal, ``pk = floor(P / (pm*pn))``, and the
    utilization bound is ``pm*pn*pk >= floor(l*P)``.  (The maximal-pk
    rule is why the paper reports grids like 2x2x512 at P=2048 rather
    than the marginally lower-surface 2x2x487; Example 3 of the paper,
    P=17 -> 2x2x4 with one idle rank, fixes the bound as the floor.)
    """
    lo = max(1, math.floor(l * nprocs + 1e-9))
    out: list[GridSpec] = []
    for pm in range(1, nprocs + 1):
        for pn in range(1, nprocs // pm + 1):
            if require_divisible and max(pm, pn) % min(pm, pn) != 0:
                continue
            pk = nprocs // (pm * pn)
            if pm * pn * pk < lo:
                continue
            out.append(GridSpec(pm=pm, pn=pn, pk=pk, nprocs=nprocs))
    return out


def ca3dmm_grid(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    l: float = DEFAULT_L,
    memory_limit_words: float | None = None,
) -> GridSpec:
    """The paper's grid choice (eqs. 4-8).

    ``memory_limit_words`` implements the Section V extension: cap the
    eq. (11) per-process memory, trading communication for footprint.
    Candidates over the limit are dropped (the search then drifts toward
    2D-like grids — fewer k-task groups, less replication — exactly the
    paper's proposed mechanism); if *no* candidate fits, the
    minimum-memory grid is returned so the call still succeeds.

    If no grid satisfies eq. (5) with the given ``l`` (possible only for
    pathological ``l`` close to 1), the bound is relaxed geometrically —
    a grid using at least one process always exists (1x1xP).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    bound = l
    while True:
        cands = enumerate_grids(nprocs, bound, require_divisible=True)
        if cands:
            if memory_limit_words is not None:
                fitting = [
                    c for c in cands if c.memory_words(m, n, k) <= memory_limit_words
                ]
                if not fitting:
                    fallback = min(
                        cands,
                        key=lambda c: (c.memory_words(m, n, k), _sorted_key(m, n, k)(c)),
                    )
                    warnings.warn(
                        MemLimitInfeasibleWarning(
                            f"memory_limit_words={memory_limit_words:g} excludes "
                            f"every candidate grid for (m={m}, n={n}, k={k}, "
                            f"P={nprocs}); using the minimum-memory grid "
                            f"{fallback} whose eq. (11) footprint "
                            f"{fallback.memory_words(m, n, k):.0f} words "
                            f"exceeds the cap"
                        ),
                        stacklevel=2,
                    )
                    return fallback
                cands = fitting
            return min(cands, key=_sorted_key(m, n, k))
        bound *= 0.5  # pragma: no cover - 1x1xP always satisfies l <= 1

def cosma_grid(
    m: int,
    n: int,
    k: int,
    nprocs: int,
    l: float = DEFAULT_L,
) -> GridSpec:
    """COSMA-source-style grid: eq. (4) minimized without constraint (7)."""
    bound = l
    while True:
        cands = enumerate_grids(nprocs, bound, require_divisible=False)
        if cands:
            return min(cands, key=_sorted_key(m, n, k, use_latency=False))
        bound *= 0.5  # pragma: no cover


def ctf_grid(m: int, n: int, k: int, nprocs: int) -> GridSpec:
    """A 2.5D/CTF-style grid: square 2D grid, replication factor ``c``.

    Picks the largest ``c <= P^(1/3)`` such that ``P / c`` has a large
    perfect-square part, then arranges ``sqrt(P/c) x sqrt(P/c) x c``.
    Deliberately ignores the matrix aspect ratio, reproducing CTF's
    behaviour on rectangular problems reported in the paper (Section
    IV-A, citing [18]).
    """
    best: tuple[tuple[int, int], GridSpec] | None = None
    c_max = max(1, round(nprocs ** (1.0 / 3.0)))
    for c in divisors(nprocs):
        if c > c_max * 2:
            continue
        rest = nprocs // c
        s = perfect_square_part(rest)
        if c > s:  # 2.5D validity: at most one replica layer per grid row
            continue
        used = s * s * c
        spec = GridSpec(pm=s, pn=s, pk=c, nprocs=nprocs)
        score = (used, c)
        if best is None or score > best[0]:
            best = (score, spec)
    if best is None:
        return GridSpec(pm=1, pn=1, pk=1, nprocs=nprocs)
    return best[1]
