"""Small integer-factorization utilities for process-grid search."""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=4096)
def divisors(n: int) -> tuple[int, ...]:
    """All positive divisors of ``n``, ascending."""
    if n < 1:
        raise ValueError("n must be positive")
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


@lru_cache(maxsize=4096)
def prime_factors(n: int) -> tuple[int, ...]:
    """Prime factorization of ``n`` with multiplicity, ascending."""
    if n < 1:
        raise ValueError("n must be positive")
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        out.append(n)
    return tuple(out)


def factor_triples(n: int):
    """Yield all ordered triples ``(a, b, c)`` with ``a*b*c == n``."""
    for a in divisors(n):
        rest = n // a
        for b in divisors(rest):
            yield a, b, rest // b


def is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def near_square_pair(n: int) -> tuple[int, int]:
    """The divisor pair ``(a, b)``, ``a <= b``, ``a*b == n`` with minimal b-a."""
    best = (1, n)
    for d in divisors(n):
        if d * d > n:
            break
        best = (d, n // d)
    return best


def perfect_square_part(n: int) -> int:
    """Largest ``s`` such that ``s*s`` divides ``n``."""
    s = 1
    for d in range(1, int(n ** 0.5) + 1):
        if n % (d * d) == 0:
            s = d
    return s
