"""Executed strong scaling: Fig. 3's shape on the threaded engine.

The paper-scale Fig. 3 runs on the analytic engine; this bench runs the
real thing — threads, numpy data, measured traffic, simulated clocks —
across the four problem classes at P = 8 and P = 32 on the paper's CPU
machine model, and asserts the strong-scaling shape survives execution:

* simulated time drops substantially from P=8 to P=32 for every class
  and every library,
* CA3DMM tracks the COSMA-like schedule throughout,
* the verification (C == A@B) holds at every point.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import cosma_matmul, ctf_matmul
from repro.bench import SMALL_PROBLEMS
from repro.bench.report import format_table
from repro.core import ca3dmm_matmul
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import MachineModel
from repro.mpi import run_spmd

#: The paper's network parameters with 4 ranks/node (so the node
#: structure is exercised even at P=8) and γ slowed to ~0.55 GF/rank:
#: at 1/500-scale matrices the real γ would leave the runs entirely
#: latency-bound, so γ is scaled to preserve the paper-scale
#: compute:communication balance (~10:1 at the strong-scaling start).
MACHINE = MachineModel(ranks_per_node=4, gamma=1.8e-9)

ALGOS = {"ca3dmm": ca3dmm_matmul, "cosma": cosma_matmul, "ctf": ctf_matmul}
PROCS = (8, 32)


def _run(fn, m, n, k, P):
    def f(comm):
        a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), dense_random(m, k, 1))
        b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), dense_random(k, n, 2))
        t0 = comm.now()
        c = fn(a, b)
        dt = comm.now() - t0
        ok = np.allclose(c.to_global(), dense_random(m, k, 1) @ dense_random(k, n, 2), atol=1e-8)
        return ok, dt

    res = run_spmd(P, f, machine=MACHINE, deadlock_timeout=120.0)
    assert all(ok for ok, _ in res.results)
    return max(dt for _, dt in res.results)


def _sweep():
    rows, data = [], {}
    for p in SMALL_PROBLEMS:
        entry = {}
        for name, fn in ALGOS.items():
            entry[name] = {P: _run(fn, *p.dims, P) for P in PROCS}
        data[p.cls] = entry
        rows.append(
            [p.label()]
            + [f"{entry[a][P] * 1e6:.1f}" for a in ALGOS for P in PROCS]
        )
    headers = ["problem"] + [f"{a} P={P} (us)" for a in ALGOS for P in PROCS]
    text = format_table(
        headers, rows, title="Executed strong scaling (simulated time, threaded engine)"
    )
    return text, data


def test_executed_strong_scaling(benchmark):
    text, data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "executed_scaling.txt").write_text(text + "\n")

    for cls, entry in data.items():
        for algo, times in entry.items():
            # 4x the ranks buys a clear simulated speedup
            assert times[32] < times[8] / 1.7, (cls, algo, times)
        # the two communication-optimal schedules track each other
        for P in PROCS:
            a, c = entry["ca3dmm"][P], entry["cosma"][P]
            assert a <= c * 1.15, (cls, P, a, c)
    # At miniature scale latency terms matter more than at paper scale,
    # so no cross-assertion against CTF here (its smaller-pk grids can
    # win the latency game on large-K); the framework overheads that
    # dominate its Fig. 3 position are time, not traffic, and are
    # asserted in the analytic benches instead.
