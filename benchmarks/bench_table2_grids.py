"""Table II: runtimes with the paper's forced process grids.

Reproduces the two observations of Section IV-B: (1) on a *shared*
optimal grid CA3DMM is at least as fast as COSMA (communication patterns
matter beyond grid choice); (2) for large-K at 3072 cores the
"suboptimal" 4x2x384 grid beats the theoretically optimal 3x3x341
because pk = 341 is collective-unfriendly.
"""

from __future__ import annotations

import math

from repro.bench import table2_grids


def test_table2_forced_grids(benchmark, emit):
    result = benchmark.pedantic(table2_grids, rounds=1, iterations=1)
    emit(result)

    # (1) shared optimal grids at 2048 cores: CA3DMM <= COSMA.
    for key in (
        ("square", 2048, (8, 16, 16)),
        ("large-K", 2048, (2, 2, 512)),
        ("large-M", 2048, (512, 2, 2)),
        ("flat", 2048, (32, 32, 2)),
    ):
        row = result.data[key]
        assert row["ca3dmm"] <= row["cosma"] * 1.01, key

    # (2) the paper's pk=341 anomaly.
    opt = result.data[("large-K", 3072, (3, 3, 341))]["ca3dmm"]
    sub = result.data[("large-K", 3072, (4, 2, 384))]["ca3dmm"]
    assert sub < opt

    # Grids violating constraint (7) are COSMA-only (NaN for CA3DMM).
    assert math.isnan(result.data[("square", 3072, (12, 16, 16))]["ca3dmm"])
