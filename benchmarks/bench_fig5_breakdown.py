"""Figure 5: normalized runtime breakdowns at 2048 cores.

COSMA's total is normalized to 1 per problem class.  Asserts the
paper's reading: similar local-compute and total-communication costs
for both libraries, with "reduce C" dominating communication for
large-K and "replicate A, B" for large-M.
"""

from __future__ import annotations

import pytest

from repro.bench import CPU_PROBLEMS, fig5_breakdown


def test_fig5_runtime_breakdown(benchmark, emit):
    result = benchmark.pedantic(fig5_breakdown, rounds=1, iterations=1)
    emit(result)

    for p in CPU_PROBLEMS:
        co = result.data[p.cls]["cosma"]
        ca = result.data[p.cls]["ca3dmm"]
        assert co.total == pytest.approx(1.0)
        # similar local computation costs (same grids, same flops)
        assert ca.local_compute == pytest.approx(co.local_compute, rel=0.10)
        # CA3DMM's total never exceeds COSMA's by much
        assert ca.total <= co.total * 1.05

    bk = result.data["large-K"]["ca3dmm"]
    bm = result.data["large-M"]["ca3dmm"]
    assert bk.reduce_c > bk.replicate_ab  # C reduction dominates large-K
    assert bm.replicate_ab > bm.reduce_c  # B replication dominates large-M
