"""Figure 3: strong scaling of COSMA / CA3DMM / CTF, native and custom layouts.

Regenerates the four panels (square, large-K, large-M, flat) as % -of-peak
series over P = 192..3072, using the analytic engine on the PACE-Phoenix
CPU machine model.  Asserts the paper's qualitative findings hold.
"""

from __future__ import annotations

from repro.bench import CPU_PROBLEMS, SCALING_PROCS, fig3_scaling


def test_fig3_strong_scaling(benchmark, emit):
    result = benchmark.pedantic(fig3_scaling, rounds=1, iterations=1)
    emit(result)

    for p in CPU_PROBLEMS:
        s = result.data[p.cls]
        # Both tuned libraries keep good efficiency across the sweep...
        assert min(s["CA3DMM native"]) > 25.0
        assert min(s["COSMA native"]) > 25.0
        # ...while CTF trails badly everywhere (paper Fig. 3).
        assert max(s["CTF native"]) < min(s["CA3DMM native"])

    # CA3DMM matches or beats COSMA on square and flat problems and is
    # equal on large-K / large-M (Section IV-A).
    for cls in ("square", "flat"):
        s = result.data[cls]
        # within one percentage point everywhere, ahead on most points
        assert all(c >= o - 1.0 for c, o in zip(s["CA3DMM native"], s["COSMA native"]))
        wins = sum(c >= o for c, o in zip(s["CA3DMM native"], s["COSMA native"]))
        assert wins >= len(SCALING_PROCS) - 1

    # Unfavourable 1D layouts hurt, most severely for tall-and-skinny.
    for cls in ("large-K", "large-M"):
        s = result.data[cls]
        last = len(SCALING_PROCS) - 1
        assert s["CA3DMM custom"][last] < s["CA3DMM native"][last] * 0.9
