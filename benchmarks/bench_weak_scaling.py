"""Extension bench: weak scaling (the paper only shows strong scaling).

Per-rank work is held at the 3072-core operating point of each Fig.-3
problem class while P grows; a communication-optimal algorithm should
hold its percent-of-peak nearly flat (the per-rank volume
``3 (mnk/P)^(2/3)`` is constant under this scaling), with only the
latency terms (log/linear in P) eroding it.  CTF's handicap stays a
constant factor, as in the strong-scaling figure.
"""

from __future__ import annotations

from repro.analysis.costs import ca3dmm_cost, cosma_cost, ctf_cost
from repro.bench import CPU_PROBLEMS
from repro.bench.report import format_series
from repro.machine.model import pace_phoenix_cpu

PROCS = (192, 384, 768, 1536, 3072)
BASE_P = 3072


def _scaled_dims(p, P):
    """Scale all three dimensions so mnk/P stays constant vs BASE_P."""
    f = (P / BASE_P) ** (1.0 / 3.0)
    return (
        max(1, round(p.m * f)),
        max(1, round(p.n * f)),
        max(1, round(p.k * f)),
    )


def _sweep():
    mach = pace_phoenix_cpu("mpi")
    blocks, data = [], {}
    for p in CPU_PROBLEMS:
        series = {"CA3DMM": [], "COSMA": [], "CTF": []}
        for P in PROCS:
            dims = _scaled_dims(p, P)
            series["CA3DMM"].append(ca3dmm_cost(*dims, P, mach).pct_peak())
            series["COSMA"].append(cosma_cost(*dims, P, mach).pct_peak())
            series["CTF"].append(ctf_cost(*dims, P, mach).pct_peak())
        data[p.cls] = series
        blocks.append(
            format_series("procs", PROCS, series,
                          title=f"Weak scaling — {p.cls} (% of peak, fixed work/rank)")
        )
    return "\n\n".join(blocks), data


def test_weak_scaling(benchmark):
    text, data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "weak_scaling.txt").write_text(text + "\n")

    for cls, series in data.items():
        eff = series["CA3DMM"]
        # Near-flat: the 16x process growth costs < 25% relative efficiency.
        assert min(eff) > 0.75 * max(eff), (cls, eff)
        # CTF's constant-factor handicap persists under weak scaling.
        assert all(c < a for c, a in zip(series["CTF"], series["CA3DMM"]))
