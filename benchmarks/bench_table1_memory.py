"""Table I: per-process memory (MB) of COSMA and CA3DMM.

CA3DMM's model is the paper's eq. (11) (dual-buffered Cannon blocks plus
pk partial-C strips); COSMA's is its fully-materialized replicated
operands.  Asserts the paper's two headline observations: CA3DMM is
always leaner on square problems, and its memory falls faster with P so
it crosses below COSMA by P = 1536 on the rectangular classes.

The companion test executes the thread-simulator stand-ins and puts the
*measured* per-rank resident watermark (memtrace allocation spans) next
to the analytic eq. (11) column, asserting they agree within tolerance
— the eq. (11) model is validated by measurement, not assumed.
"""

from __future__ import annotations

from repro.bench import SCALING_PROCS, table1_measured, table1_memory

#: Measured resident peak must stay within this band of eq. (11):
#: no more than 10% over (the memory gate), and at least the operand
#: tiles' share below (floor-division slack on small stand-ins).
MEASURED_TOL = 0.10


def test_table1_memory(benchmark, emit):
    result = benchmark.pedantic(table1_memory, rounds=1, iterations=1)
    emit(result)

    co_sq = result.data[("COSMA", "square")]
    ca_sq = result.data[("CA3DMM", "square")]
    assert all(c < x for c, x in zip(ca_sq, co_sq))

    for cls in ("large-K", "large-M", "flat"):
        co = result.data[("COSMA", cls)]
        ca = result.data[("CA3DMM", cls)]
        i1536 = SCALING_PROCS.index(1536)
        assert all(ca[i] < co[i] for i in range(i1536, len(SCALING_PROCS)))
        # faster decay: CA3DMM's 192->3072 reduction factor exceeds COSMA's
        assert ca[0] / ca[-1] > co[0] / co[-1] * 0.9


def test_table1_measured_vs_eq11(benchmark, emit):
    result = benchmark.pedantic(table1_measured, rounds=1, iterations=1)
    emit(result)

    for name, row in result.data.items():
        assert row["measured_words"] > 0, f"{name}: no memtrace data"
        # measured peak within the gate band of the analytic prediction
        assert row["ratio"] <= 1.0 + MEASURED_TOL, (
            f"{name}: measured {row['measured_words']:.0f} words exceeds "
            f"eq. (11) = {row['eq11_words']:.0f} by more than "
            f"{100 * MEASURED_TOL:.0f}%"
        )
        # and not implausibly small: the operand/output tiles alone are
        # a large fraction of eq. (11) = 2(A+B) + C blocks
        assert row["ratio"] >= 0.5, (
            f"{name}: measured {row['measured_words']:.0f} words is under "
            f"half of eq. (11) = {row['eq11_words']:.0f} — spans missing?"
        )
