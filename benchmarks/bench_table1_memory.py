"""Table I: per-process memory (MB) of COSMA and CA3DMM.

CA3DMM's model is the paper's eq. (11) (dual-buffered Cannon blocks plus
pk partial-C strips); COSMA's is its fully-materialized replicated
operands.  Asserts the paper's two headline observations: CA3DMM is
always leaner on square problems, and its memory falls faster with P so
it crosses below COSMA by P = 1536 on the rectangular classes.
"""

from __future__ import annotations

from repro.bench import SCALING_PROCS, table1_memory


def test_table1_memory(benchmark, emit):
    result = benchmark.pedantic(table1_memory, rounds=1, iterations=1)
    emit(result)

    co_sq = result.data[("COSMA", "square")]
    ca_sq = result.data[("CA3DMM", "square")]
    assert all(c < x for c, x in zip(ca_sq, co_sq))

    for cls in ("large-K", "large-M", "flat"):
        co = result.data[("COSMA", cls)]
        ca = result.data[("CA3DMM", cls)]
        i1536 = SCALING_PROCS.index(1536)
        assert all(ca[i] < co[i] for i in range(i1536, len(SCALING_PROCS)))
        # faster decay: CA3DMM's 192->3072 reduction factor exceeds COSMA's
        assert ca[0] / ca[-1] > co[0] / co[-1] * 0.9
