"""Executed-engine verification bench.

The table/figure benches run at paper scale on the analytic engine;
this bench backs them with *executed* runs (threads, real numpy data,
measured traffic) at small scale: the four problem classes shrunk to
P = 16, CA3DMM vs COSMA vs CTF on the same machine model, checking

* exact numerical correctness against the serial product,
* measured per-rank send volume against the schedule's theoretical Q
  (paper eq. 9 form, Section III-D), and
* the cross-algorithm ordering on *measured* traffic: CA3DMM's
  schedule never moves more words than the CTF-style 2.5D one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.verify import theoretical_metrics
from repro.baselines import cosma_matmul, ctf_matmul
from repro.bench import SMALL_PROBLEMS
from repro.bench.report import format_table
from repro.core import Ca3dmm
from repro.core.plan import Ca3dmmPlan
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd

P = 16


def _measure(problem, algo):
    m, n, k = problem.dims

    def f(comm):
        A, B = dense_random(m, k, 1), dense_random(k, n, 2)
        if algo == "ca3dmm":
            plan = Ca3dmmPlan(m, n, k, comm.size)
            a = DistMatrix.from_global(comm, plan.a_dist, A)
            b = DistMatrix.from_global(comm, plan.b_dist, B)
            eng = Ca3dmm(comm, m, n, k)
            before = comm.transport.trace(comm.world_rank)
            c = eng.multiply(a, b)
        else:
            a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), A)
            b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), B)
            fn = {"cosma": cosma_matmul, "ctf": ctf_matmul}[algo]
            before = comm.transport.trace(comm.world_rank)
            c = fn(a, b)
        after = comm.transport.trace(comm.world_rank)
        ok = np.allclose(c.to_global(), A @ B, atol=1e-8 * max(m, n, k))
        return ok, after.bytes_sent - before.bytes_sent, after.time - before.time

    res = run_spmd(P, f, machine=laptop(), deadlock_timeout=60.0)
    assert all(ok for ok, _, _ in res.results)
    return (
        max(b for _, b, _ in res.results) / 8.0,  # words
        max(t for _, _, t in res.results),
    )


def _run_all():
    rows = []
    data = {}
    for p in SMALL_PROBLEMS:
        entry = {}
        for algo in ("ca3dmm", "cosma", "ctf"):
            q_words, t = _measure(p, algo)
            entry[algo] = (q_words, t)
        plan = Ca3dmmPlan(*p.dims, P)
        q_theory = theoretical_metrics(plan).q_words
        data[p.cls] = (entry, q_theory)
        rows.append(
            [
                p.label(),
                f"{q_theory:.0f}",
                f"{entry['ca3dmm'][0]:.0f}",
                f"{entry['cosma'][0]:.0f}",
                f"{entry['ctf'][0]:.0f}",
                f"{entry['ca3dmm'][1] * 1e6:.1f}",
                f"{entry['cosma'][1] * 1e6:.1f}",
            ]
        )
    text = format_table(
        [
            "problem", "Q theory (w)", "Q ca3dmm", "Q cosma", "Q ctf",
            "t ca3dmm (us)", "t cosma (us)",
        ],
        rows,
        title=f"Executed verification at P={P} (native layouts, measured traffic)",
    )
    return text, data


def test_executed_verification(benchmark):
    text, data = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "executed_verification.txt").write_text(text + "\n")

    for cls, (entry, q_theory) in data.items():
        # measured CA3DMM volume matches the Section III-D schedule Q
        # (pickle wrapping of the replication allgather adds a little).
        # Small replica pieces travel as pickled lists in the allgather,
        # adding per-entry headers on top of the raw words.
        assert entry["ca3dmm"][0] == pytest.approx(q_theory, rel=0.35, abs=128)
