"""Ablation: multi-shift aggregation in Cannon's algorithm.

The paper's implementation "performs multiple shifts for one local
matrix multiplication if A and B blocks do not have a large enough
k-dimension size".  Executed at small scale: aggregation must keep the
result and the traffic identical while cutting the number of local GEMM
invocations (visible here as fewer, larger compute phases — we assert
the invariants the optimization relies on).
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd

M, N, K, P = 32, 32, 64, 16  # grid 2x2x4: s = 2, small k-blocks


def _run(shifts_per_gemm):
    plan = Ca3dmmPlan(M, N, K, P)

    def f(comm):
        A, B = dense_random(M, K, 1), dense_random(K, N, 2)
        a = DistMatrix.from_global(comm, plan.a_dist, A)
        b = DistMatrix.from_global(comm, plan.b_dist, B)
        before = comm.transport.trace(comm.world_rank)
        c = ca3dmm_matmul(a, b, shifts_per_gemm=shifts_per_gemm)
        after = comm.transport.trace(comm.world_rank)
        ok = np.allclose(c.to_global(), A @ B, atol=1e-9)
        return ok, after.bytes_sent - before.bytes_sent
    res = run_spmd(P, f, machine=laptop(), deadlock_timeout=60.0)
    assert all(ok for ok, _ in res.results)
    return max(b for _, b in res.results)


def test_multishift_ablation(benchmark):
    def sweep():
        return {g: _run(g) for g in (1, 2, 4)}

    traffic = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["shifts per GEMM", "max bytes sent"],
        [[g, b] for g, b in traffic.items()],
        title="Ablation — Cannon multi-shift aggregation (traffic invariant)",
    )
    print()
    print(text)
    # Aggregation is a compute-granularity knob: traffic is unchanged.
    values = set(traffic.values())
    assert len(values) == 1
