"""Extension bench: which algorithm wins where in shape space.

The paper's introduction frames CA3DMM as the algorithm that adapts to
*any* matrix shape where fixed-strategy algorithms (1D, SUMMA/2D,
cubic 2.5D/3D) each own only a region.  This bench sweeps the aspect
ratio from k-dominant through cube to m-dominant at fixed total work
and P = 768 (deliberately not a power of two), prices every algorithm
family with the analytic engine, and reports the per-shape winner.

Assertions (the paper's crossover structure):

* CA3DMM beats every *fixed-strategy* algorithm (1D, SUMMA, 2.5D) at
  every shape — the adaptivity claim;
* SUMMA and 2.5D each lose badly somewhere; 1D loses at the cube;
* CA3DMM stays within 1.5x of the overall winner everywhere.

A note on CARMA: in a pure α-β model its recursive pairwise exchanges
look slightly cheaper than CA3DMM's collectives at the shape extremes
(its largest C exchanges land on node-local partners, and it touches
each operand word once where Cannon streams blocks s times).  The
practical comparison in [18] — CARMA slower than COSMA despite equal
theoretical cost, which the paper leans on — lives outside the α-β
model, so the bench reports CARMA's numbers without asserting against
them, and CARMA pays its real power-of-two penalty here (512 of 768
ranks active).
"""

from __future__ import annotations

from repro.analysis.baseline_costs import algo1d_cost, algo25d_cost, carma_cost, summa_cost
from repro.analysis.costs import ca3dmm_cost, cosma_cost
from repro.bench.report import format_table
from repro.machine.model import pace_phoenix_cpu

P = 768
TOTAL = 4096 ** 3  # fixed mnk

ALGOS = ("ca3dmm", "cosma", "1d", "summa", "2.5d", "carma")


def _shapes():
    out = []
    for r in (64, 16, 4):
        s = round((TOTAL / r) ** (1 / 3))
        out.append(("k-dom", s, s, s * r))
    s = round(TOTAL ** (1 / 3))
    out.append(("cube", s, s, s))
    for r in (4, 16, 64):
        s = round((TOTAL / r) ** (1 / 3))
        out.append(("m-dom", s * r, s, s))
    return out


def _sweep():
    mach = pace_phoenix_cpu("mpi")
    rows, data = [], []
    for cls, m, n, k in _shapes():
        times = {
            "ca3dmm": ca3dmm_cost(m, n, k, P, mach).t_total,
            "cosma": cosma_cost(m, n, k, P, mach).t_total,
            "1d": algo1d_cost(m, n, k, P, mach).t_total,
            "summa": summa_cost(m, n, k, P, mach).t_total,
            "2.5d": algo25d_cost(m, n, k, P, mach).t_total,
            "carma": carma_cost(m, n, k, P, mach).t_total,
        }
        winner = min(times, key=times.get)
        rows.append([f"{m}x{n}x{k}", winner] + [f"{times[a]:.4f}" for a in ALGOS])
        data.append((cls, times, winner))
    text = format_table(
        ["shape (m x n x k)", "winner"] + list(ALGOS),
        rows,
        title=f"Crossover map — modeled runtime (s) at P={P}, fixed mnk",
    )
    return text, data


def test_crossover_map(benchmark):
    text, data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "crossover_map.txt").write_text(text + "\n")

    for cls, times, winner in data:
        # adaptivity: CA3DMM beats every fixed-strategy algorithm
        for fixed in ("1d", "summa", "2.5d"):
            assert times["ca3dmm"] <= times[fixed] * 1.001, (cls, fixed, times)
        # and is never far from the overall winner
        assert times["ca3dmm"] <= times[winner] * 1.5, (cls, times)
    # each fixed strategy owns at most a region: it loses badly somewhere
    for algo in ("summa", "2.5d"):
        assert max(t[algo] / t["ca3dmm"] for _, t, _ in data) > 1.3, algo
    cube = next(t for cls, t, _ in data if cls == "cube")
    assert cube["1d"] > 3 * cube["ca3dmm"]
