"""Table III: GPU runtimes of COSMA, CA3DMM, and CTF (16 and 32 V100s).

Runs the analytic engine on the GPU machine model (V100 flop rate, PCIe
staging, MVAPICH2 reduce-scatter threshold).  Asserts the paper's
ordering: COSMA wins square and large-K (where the k-dimension
reduction hits the MPI reduce-scatter threshold that COSMA's own
collectives dodge), near-parity on large-M and flat, and CTF far behind
everywhere.
"""

from __future__ import annotations

import pytest

from repro.bench import GPU_COUNTS, GPU_PROBLEMS, table3_gpu


def test_table3_gpu(benchmark, emit):
    result = benchmark.pedantic(table3_gpu, rounds=1, iterations=1)
    emit(result)

    for P in GPU_COUNTS:
        for cls in ("square", "large-K"):
            row = result.data[(P, cls)]
            assert row["cosma"] <= row["ca3dmm"]
        row = result.data[(P, "large-M")]
        assert row["ca3dmm"] == pytest.approx(row["cosma"], rel=0.15)
        for cls in ("square", "large-K", "large-M", "flat"):
            row = result.data[(P, cls)]
            assert row["ctf"] > 1.5 * max(row["cosma"], row["ca3dmm"])

    # Doubling the GPUs buys meaningful speedup on every problem.
    for p in GPU_PROBLEMS:
        t16 = result.data[(16, p.cls)]["ca3dmm"]
        t32 = result.data[(32, p.cls)]["ca3dmm"]
        assert t32 < t16
