"""Figure 2: the worked partitioning examples, regenerated exactly.

Renders Examples 1 and 2 as owner-labelled block diagrams and asserts
the specific placements the paper spells out (P1-P5 replica pairing in
Example 1; the C strips of P1/P5/P9/P13 in Example 2).
"""

from __future__ import annotations

from repro.bench import fig2_partitions


def test_fig2_partitions(benchmark, emit):
    result = benchmark.pedantic(fig2_partitions, rounds=1, iterations=1)
    emit(result)

    ex1, ex2 = result.data["ex1"], result.data["ex2"]
    # Example 1: grid 2x4x1, c = 2, A replicated across the P1/P5 pair.
    assert (ex1.pm, ex1.pn, ex1.pk, ex1.c) == (2, 4, 1, 2)
    assert ex1.split_colors(0)["replica"][0] == ex1.split_colors(4)["replica"][0]
    # Example 2: grid 2x2x4; the paper's exact C strips.
    from repro.layout.blocks import Rect

    assert ex2.c_owned(0) == Rect(0, 16, 0, 4)
    assert ex2.c_owned(4) == Rect(0, 16, 4, 8)
    assert ex2.c_owned(8) == Rect(0, 16, 8, 12)
    assert ex2.c_owned(12) == Rect(0, 16, 12, 16)
    # the rendering itself names the processes
    assert "P13" in result.text and "P5" in result.text
