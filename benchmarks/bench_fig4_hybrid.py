"""Figure 4: pure-MPI vs MPI+OpenMP hybrid strong scaling.

Same four problem classes; the hybrid rows use one rank per 24-core node
with node-aggregate compute.  The model carries the paper's explanation
mechanisms (per-group collective sizes, intra- vs inter-node links,
single-stream NIC efficiency); see EXPERIMENTS.md for which directions
match the paper exactly and which are near-ties.
"""

from __future__ import annotations

from repro.bench import CPU_PROBLEMS, fig4_hybrid


def test_fig4_hybrid_vs_pure(benchmark, emit):
    result = benchmark.pedantic(fig4_hybrid, rounds=1, iterations=1)
    emit(result)

    for p in CPU_PROBLEMS:
        s = result.data[p.cls]
        # Both modes remain within a modest band of each other: the mode
        # choice changes communication, not the dominant compute.
        for a, b in zip(s["CA3DMM pure MPI"], s["CA3DMM hybrid"]):
            assert 0.5 < a / b < 2.0

    # The paper's strongest hybrid wins are the tall-skinny classes at
    # scale, where one collective in a small group dominates.
    for cls in ("large-K", "large-M"):
        s = result.data[cls]
        assert s["CA3DMM hybrid"][-1] >= s["CA3DMM pure MPI"][-1] * 0.97
