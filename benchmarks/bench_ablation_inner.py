"""Ablation: Cannon vs SUMMA inner kernel (Section III-E).

DESIGN.md calls out the inner-2D-algorithm choice as CA3DMM's key
design decision.  This bench compares CA3DMM-C and CA3DMM-S on the
paper's problems, both analytically (message rounds, modeled time) and
with the executed engine at small scale, confirming the paper's
latency argument for choosing Cannon — and its Section V observation
that the SUMMA variant needs less memory.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.costs import ca3dmm_cost
from repro.bench import CPU_PROBLEMS, SMALL_PROBLEMS
from repro.bench.report import format_table
from repro.core.summa_variant import ca3dmm_s_matmul
from repro.core import ca3dmm_matmul
from repro.grid.optimizer import cosma_grid
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop, pace_phoenix_cpu
from repro.mpi import run_spmd


def _analytic():
    mach = pace_phoenix_cpu("mpi")
    rows, data = [], {}
    for p in CPU_PROBLEMS:
        grid = cosma_grid(*p.dims, 2048)
        if not grid.cannon_compatible:
            continue
        c = ca3dmm_cost(*p.dims, 2048, mach, grid=grid)
        s = ca3dmm_cost(
            *p.dims, 2048, mach, grid=grid, inner="summa", summa_panel_frac=0.25
        )
        rows.append(
            [p.label(), c.grid, c.l_msgs, s.l_msgs, f"{c.t_total:.3f}",
             f"{s.t_total:.3f}", f"{c.mem_mb:.0f}", f"{s.mem_mb:.0f}"]
        )
        data[p.cls] = (c, s)
    text = format_table(
        ["problem", "grid", "L cannon", "L summa", "t cannon (s)",
         "t summa (s)", "mem C (MB)", "mem S (MB)"],
        rows,
        title="Ablation — inner 2D kernel (shared grid, 2048 ranks)",
    )
    return text, data


def test_inner_kernel_ablation_analytic(benchmark, emit):
    text, data = benchmark.pedantic(_analytic, rounds=1, iterations=1)
    print()
    print(text)
    for cls, (c, s) in data.items():
        assert c.l_msgs <= s.l_msgs  # Section III-E inequality
        assert s.mem_words <= c.mem_words * 1.01  # Section V memory note


def test_inner_kernel_executed_equivalence(benchmark):
    """Both variants must compute identical results on real data."""
    m, n, k, P = 48, 40, 64, 12

    def f(comm):
        A, B = dense_random(m, k, 1), dense_random(k, n, 2)
        a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), A)
        b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), B)
        c1 = ca3dmm_matmul(a, b)
        c2 = ca3dmm_s_matmul(a, b)
        return np.allclose(c1.to_global(), A @ B, atol=1e-9) and np.allclose(
            c2.to_global(), A @ B, atol=1e-9
        )

    res = benchmark.pedantic(
        lambda: run_spmd(P, f, machine=laptop(), deadlock_timeout=60.0),
        rounds=1, iterations=1,
    )
    assert all(res.results)
