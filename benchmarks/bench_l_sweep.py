"""Section IV-A's l-parameter sweep.

The paper: "using other l values gives the same 3D process grid as
using the value l = 0.95 in almost all cases (detailed results
omitted)".  Regenerates the sweep over l in [0.85, 0.99] for the four
problem classes and five process counts.
"""

from __future__ import annotations

from repro.bench import l_sweep


def test_l_sweep_stability(benchmark, emit):
    result = benchmark.pedantic(l_sweep, rounds=1, iterations=1)
    emit(result)
    assert result.data["same"] >= result.data["total"] * 0.9
