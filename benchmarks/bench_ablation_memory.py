"""Ablation: the Section V memory/communication trade-off frontier.

The paper's first future-work topic: "controlling the usage of extra
memory in CA3DMM while minimizing communication costs", by reducing the
number of k-task groups (toward 2D) and/or replacing Cannon with SUMMA.
This bench sweeps a per-process memory cap and reports, for each point,
the chosen grid, its eq.-(11) memory, and its per-process communication
volume — the frontier both mechanisms trade along — plus the SUMMA
variant's memory at the free optimum for comparison.
"""

from __future__ import annotations

from repro.analysis.costs import ITEM, ca3dmm_cost
from repro.bench.report import format_table
from repro.grid.optimizer import ca3dmm_grid, cosma_grid
from repro.machine.model import pace_phoenix_cpu

DIMS = (50000, 50000, 50000)
P = 1536
FRACTIONS = (1.0, 0.8, 0.6, 0.45, 0.35)


def _sweep():
    mach = pace_phoenix_cpu("mpi")
    free = ca3dmm_grid(*DIMS, P)
    base_mem = free.memory_words(*DIMS)
    rows, series = [], []
    for frac in FRACTIONS:
        g = ca3dmm_grid(*DIMS, P, memory_limit_words=base_mem * frac)
        mem_mb = g.memory_words(*DIMS) * ITEM / 2 ** 20
        q = g.surface(*DIMS) / g.used
        t = ca3dmm_cost(*DIMS, P, mach, grid=g).t_total
        rows.append(
            [f"{frac:.2f}", f"{g.pm}x{g.pn}x{g.pk}", f"{mem_mb:.0f}",
             f"{q / 1e6:.2f}", f"{t:.3f}"]
        )
        series.append((frac, mem_mb, q, t))
    # Section V's other lever: the SUMMA kernel needs no replication.
    gs = cosma_grid(*DIMS, P)
    s = ca3dmm_cost(*DIMS, P, mach, grid=gs, inner="summa")
    rows.append(
        ["summa", s.grid, f"{s.mem_mb:.0f}", "-", f"{s.t_total:.3f}"]
    )
    text = format_table(
        ["mem cap (x free)", "grid", "mem (MB)", "Q/proc (Mwords)", "t model (s)"],
        rows,
        title=f"Ablation — memory cap frontier, square 50k^3, P={P}",
    )
    return text, series


def test_memory_frontier(benchmark):
    text, series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "ablation_memory.txt").write_text(text + "\n")

    # Frontier monotonicity: less memory allowed -> no less communication.
    mems = [mem for _, mem, _, _ in series]
    qs = [q for _, _, q, _ in series]
    assert all(a >= b * 0.999 for a, b in zip(mems[:-1], mems[1:]))
    assert all(b >= a * 0.999 for a, b in zip(qs[:-1], qs[1:]))
