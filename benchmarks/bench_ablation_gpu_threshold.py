"""Ablation: the MVAPICH2 reduce-scatter threshold behind Table III.

Section IV-C attributes CA3DMM's GPU losses on square and large-K to an
MVAPICH2 reduce-scatter degradation above a message-size threshold that
COSMA's hand-rolled collectives dodge ("We leave the optimization of
the reduce-scatter step for future study").  This bench sweeps the
threshold from "always degraded" to "never degraded" and shows the
COSMA/CA3DMM gap closing — isolating the mechanism the paper blames.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.costs import ca3dmm_cost, cosma_cost
from repro.bench.report import format_table
from repro.machine.model import pace_phoenix_gpu

DIMS = (50000, 50000, 50000)  # Table III's square problem
P = 16

# the square partial-C piece is ~1.25 GiB; bracket it
THRESHOLDS = (0.0, 256 * 2 ** 20, 1024 * 2 ** 20, 4096 * 2 ** 20, float("inf"))


def _sweep():
    rows, gaps = [], []
    for thr in THRESHOLDS:
        mach = replace(pace_phoenix_gpu(), rs_degrade_threshold=thr)
        ca = ca3dmm_cost(*DIMS, P, mach).t_total
        co = cosma_cost(*DIMS, P, mach).t_total
        gap = ca / co
        gaps.append(gap)
        label = (
            "0 (always)" if thr == 0.0
            else ("inf (never)" if thr == float("inf") else f"{thr / 2 ** 20:.0f} MiB")
        )
        rows.append([label, f"{co:.3f}", f"{ca:.3f}", f"{gap:.3f}"])
    text = format_table(
        ["rs threshold", "COSMA (s)", "CA3DMM (s)", "CA3DMM/COSMA"],
        rows,
        title=f"Ablation — MVAPICH2 reduce-scatter threshold, square 50k^3, {P} GPUs",
    )
    return text, gaps


def test_gpu_threshold_mechanism(benchmark):
    text, gaps = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "ablation_gpu_threshold.txt").write_text(text + "\n")

    # The gap is monotone in the threshold and vanishes when the
    # degradation never triggers — the Table III mechanism in isolation.
    assert all(a >= b - 1e-9 for a, b in zip(gaps[:-1], gaps[1:]))
    # Removing the degradation closes most of the gap (the remainder is
    # COSMA's pipelined-replication overlap) — the Table III mechanism
    # in isolation.
    assert gaps[0] > 1.10  # always-degraded: CA3DMM clearly behind
    assert gaps[0] - gaps[-1] > 0.05  # the threshold carries the bulk of it
