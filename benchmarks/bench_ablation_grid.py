"""Ablation: the divisibility constraint (7) and idle-rank policy.

Quantifies what CA3DMM gives up for Cannon compatibility: across the
strong-scaling sweep, compare the per-process communication volume of
the constrained optimum (eq. 7 enforced) against the unconstrained one,
and report process utilization.  The paper's design bet is that the gap
is small — a couple of percent — which this bench checks.
"""

from __future__ import annotations

from repro.bench import CPU_PROBLEMS, SCALING_PROCS
from repro.bench.report import format_table
from repro.grid.optimizer import ca3dmm_grid, cosma_grid


def _sweep():
    rows, worst = [], 0.0
    for p in CPU_PROBLEMS:
        for P in SCALING_PROCS:
            g7 = ca3dmm_grid(*p.dims, P)
            g0 = cosma_grid(*p.dims, P)
            q7 = g7.surface(*p.dims) / g7.used
            q0 = g0.surface(*p.dims) / g0.used
            gap = q7 / q0 - 1.0
            worst = max(worst, gap)
            rows.append(
                [
                    p.label(), P,
                    f"{g7.pm}x{g7.pn}x{g7.pk}", f"{100 * g7.utilization():.1f}%",
                    f"{g0.pm}x{g0.pn}x{g0.pk}",
                    f"{100 * gap:.2f}%",
                ]
            )
    text = format_table(
        ["problem", "P", "grid (eq.7)", "util", "grid (free)", "volume gap"],
        rows,
        title="Ablation — cost of the Cannon divisibility constraint (7)",
    )
    return text, worst


def test_constraint7_cost(benchmark):
    text, worst = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "ablation_grid.txt").write_text(text + "\n")
    # The paper's bet: constraint (7) usually costs little; the worst
    # isolated (problem, P) pair in this sweep stays within ~20%.
    assert worst < 0.25
