"""Extension bench: the SUMMA family's stationary-operand crossovers.

van de Geijn's rule — keep the largest operand stationary — measured on
the executed engine: for each of three operand-dominance regimes, the
matching stationary variant must move the least data.  (CA3DMM's
unified view makes the same adaptation through its grid; this bench
shows the 2D family needs an explicit variant switch to do it.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    summa_matmul,
    summa_stationary_a_matmul,
    summa_stationary_b_matmul,
)
from repro.bench.report import format_table
from repro.layout import Block2D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd

P = 4
REGIMES = {
    "A-dominant (96x96x8)": (96, 8, 96),
    "B-dominant (8x96x96)": (8, 96, 96),
    "C-dominant (96x96x8k)": (96, 96, 8),
}
VARIANTS = {
    "stationary-A": summa_stationary_a_matmul,
    "stationary-B": summa_stationary_b_matmul,
    "stationary-C": summa_matmul,
}


def _traffic(fn, m, n, k):
    """Bytes inside the algorithm's compute phase only: the stationary-B
    wrapper reaches stationary-A through transposing redistributions,
    so layout-conversion traffic is excluded to compare the schedules
    themselves (the paper excludes steps 4/8 the same way)."""

    def f(comm):
        A, B = dense_random(m, k, 1), dense_random(k, n, 2)
        a = DistMatrix.from_global(comm, Block2D((m, k), comm.size, 2, 2), A)
        b = DistMatrix.from_global(comm, Block2D((k, n), comm.size, 2, 2), B)
        c = fn(a, b)
        ph = comm.transport.trace(comm.world_rank).phases.get("summa")
        sent = ph.bytes_sent if ph else 0
        ok = np.allclose(c.to_global(), A @ B, atol=1e-9)
        return ok, sent

    res = run_spmd(P, f, machine=laptop(), deadlock_timeout=60.0)
    assert all(ok for ok, _ in res.results)
    return max(s for _, s in res.results)


def _sweep():
    rows, winners = [], {}
    for label, (m, n, k) in REGIMES.items():
        traffic = {name: _traffic(fn, m, n, k) for name, fn in VARIANTS.items()}
        winner = min(traffic, key=traffic.get)
        winners[label] = winner
        rows.append(
            [label, winner]
            + [f"{traffic[v]:,}" for v in ("stationary-A", "stationary-B", "stationary-C")]
        )
    text = format_table(
        ["regime", "winner", "A bytes", "B bytes", "C bytes"],
        rows,
        title=f"SUMMA family — measured max bytes/rank at P={P} (2x2 grid)",
    )
    return text, winners


def test_summa_family_crossover(benchmark):
    text, winners = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(text)
    import pathlib

    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "summa_family.txt").write_text(text + "\n")

    assert winners["A-dominant (96x96x8)"] == "stationary-A"
    assert winners["B-dominant (8x96x96)"] == "stationary-B"
    assert winners["C-dominant (96x96x8k)"] == "stationary-C"
