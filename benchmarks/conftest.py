"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables or figures and prints
it (run with ``-s`` to see the rendered tables inline; they are also
written to ``benchmarks/out/``).  ``benchmark.pedantic`` with a single
round keeps the suite quick — the interesting output is the table data,
not the harness's own wall time.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """Print a BenchResult and persist it under benchmarks/out/."""

    def _emit(result):
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{result.name}.txt"
        path.write_text(result.text + "\n")
        print()
        print(result.text)
        return result

    return _emit
