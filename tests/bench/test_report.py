"""ASCII rendering helpers used by every bench."""

from __future__ import annotations

from repro.bench.report import _fmt, format_series, format_table


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1], ["beta-long-name", 22]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert set(lines[2]) <= {"-", " "}
        # all rows share the same width
        assert len({len(l) for l in lines[1:]}) == 1

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_cells_right_justified(self):
        text = format_table(["col"], [["x"], ["yyyy"]])
        lines = text.splitlines()
        assert lines[-2].endswith("   x") or lines[-2].endswith("x")
        assert lines[-1].endswith("yyyy")


class TestFormatSeries:
    def test_series_rows(self):
        text = format_series(
            "P", [1, 2, 4], {"algo-a": [1.0, 2.0, 3.0], "algo-b": [4.0, 5.0, 6.0]}
        )
        assert "algo-a" in text and "algo-b" in text
        assert text.splitlines()[0].startswith("P")

    def test_unit_suffix(self):
        text = format_series("P", [1], {"x": [2.0]}, unit="s")
        assert "x [s]" in text


class TestFmt:
    def test_float_formats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1.5) == "1.5"
        assert _fmt(0.125) == "0.125"
        assert _fmt(12345.0) == "1.23e+04"
        assert _fmt(0.0001234) == "0.000123"

    def test_non_float_passthrough(self):
        assert _fmt(7) == "7"
        assert _fmt("x") == "x"
