"""Golden structure of every bench generator's rendered output."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import GENERATORS


@pytest.fixture(scope="module")
def rendered():
    return {name: gen() for name, gen in GENERATORS.items()}


class TestRenderedStructure:
    def test_every_generator_produces_text_and_data(self, rendered):
        for name, result in rendered.items():
            assert result.text.strip(), name
            assert result.data, name
            assert result.name in name or name in ("l_sweep",)

    def test_fig2_names_the_examples(self, rendered):
        text = rendered["fig2"].text
        assert "Example 1" in text and "Example 2" in text
        assert "grid 2 x 4 x 1" in text and "grid 2 x 2 x 4" in text

    def test_fig3_has_all_classes_and_procs(self, rendered):
        text = rendered["fig3"].text
        for cls in ("square", "large-K", "large-M", "flat"):
            assert cls in text
        for p in ("192", "3072"):
            assert p in text

    def test_fig4_has_both_modes(self, rendered):
        text = rendered["fig4"].text
        assert "pure MPI" in text and "hybrid" in text

    def test_table1_units(self, rendered):
        assert "memory per process (MB)" in rendered["table1"].text

    def test_table2_marks_grids(self, rendered):
        text = rendered["table2"].text
        for grid in ("8x16x16", "2x2x512", "512x2x2", "32x32x2", "3x3x341", "39x39x2"):
            assert grid in text
        assert "nan" in text  # the constraint-(7)-violating COSMA-only grid

    def test_fig5_normalized(self, rendered):
        text = rendered["fig5"].text
        assert "COSMA total = 1" in text
        assert "replicate A,B" in text

    def test_table3_gpu_columns(self, rendered):
        text = rendered["table3"].text
        assert "GPUs" in text and "CTF (s)" in text

    def test_l_sweep_counts(self, rendered):
        r = rendered["l_sweep"]
        assert f"{r.data['same']}/{r.data['total']}" in r.text
