"""Benchmark harness: every table/figure generator runs and its data
carries the paper's qualitative claims."""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    CPU_PROBLEMS,
    GPU_PROBLEMS,
    SCALING_PROCS,
    SMALL_PROBLEMS,
    Problem,
    fig3_scaling,
    fig4_hybrid,
    fig5_breakdown,
    l_sweep,
    scaled_problem,
    table1_memory,
    table2_grids,
    table3_gpu,
)


class TestWorkloads:
    def test_paper_dimensions(self):
        classes = {p.cls: p.dims for p in CPU_PROBLEMS}
        assert classes["square"] == (50000, 50000, 50000)
        assert classes["large-K"] == (6000, 6000, 1200000)
        assert classes["large-M"] == (1200000, 6000, 6000)
        assert classes["flat"] == (100000, 100000, 5000)
        assert SCALING_PROCS == (192, 384, 768, 1536, 3072)

    def test_gpu_dimensions(self):
        classes = {p.cls: p.dims for p in GPU_PROBLEMS}
        assert classes["large-K"] == (10000, 10000, 300000)
        assert classes["flat"] == (50000, 50000, 10000)

    def test_scaled_problem_keeps_aspect(self):
        p = scaled_problem(Problem("large-K", 6000, 6000, 1200000), 250)
        assert p.dims == (24, 24, 4800)

    def test_labels(self):
        assert Problem("square", 50000, 50000, 50000).label() == "square(50k,50k,50k)"
        assert Problem("x", 7, 7, 7).label() == "x(7,7,7)"

    def test_small_problems_match_classes(self):
        for small, big in zip(SMALL_PROBLEMS, CPU_PROBLEMS):
            assert small.cls == big.cls


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_scaling()

    def test_all_series_present(self, result):
        for p in CPU_PROBLEMS:
            series = result.data[p.cls]
            assert set(series) == {
                "CA3DMM native", "CA3DMM custom", "COSMA native",
                "COSMA custom", "CTF native",
            }
            assert all(len(v) == len(SCALING_PROCS) for v in series.values())

    def test_ctf_below_tuned_libraries(self, result):
        for p in CPU_PROBLEMS:
            s = result.data[p.cls]
            for ctf, ca in zip(s["CTF native"], s["CA3DMM native"]):
                assert ctf < ca

    def test_custom_layout_never_faster(self, result):
        for p in CPU_PROBLEMS:
            s = result.data[p.cls]
            for cu, na in zip(s["CA3DMM custom"], s["CA3DMM native"]):
                assert cu <= na + 1e-9

    def test_conversion_hurts_tall_skinny_most(self, result):
        def gap(cls, i=-1):
            s = result.data[cls]
            return s["CA3DMM native"][i] / max(s["CA3DMM custom"][i], 1e-9)

        assert gap("large-K") > gap("square")
        assert gap("large-M") > gap("square")

    def test_text_rendered(self, result):
        assert "Fig 3" in result.text and "square" in result.text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_hybrid()

    def test_series_shape(self, result):
        for p in CPU_PROBLEMS:
            assert len(result.data[p.cls]["CA3DMM hybrid"]) == len(SCALING_PROCS)

    def test_large_k_prefers_hybrid_at_scale(self, result):
        s = result.data["large-K"]
        assert s["CA3DMM hybrid"][-1] >= s["CA3DMM pure MPI"][-1] * 0.98

    def test_all_positive(self, result):
        for p in CPU_PROBLEMS:
            for series in result.data[p.cls].values():
                assert all(v > 0 for v in series)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_memory()

    def test_square_ca3dmm_always_leaner(self, result):
        """Paper: for the square class CA3DMM always uses less memory."""
        co = result.data[("COSMA", "square")]
        ca = result.data[("CA3DMM", "square")]
        assert all(c < x for c, x in zip(ca, co))

    def test_crossover_for_rectangular(self, result):
        """Paper: CA3DMM's memory falls faster; it wins at P >= 1536."""
        for cls in ("large-K", "large-M"):
            co = result.data[("COSMA", cls)]
            ca = result.data[("CA3DMM", cls)]
            assert ca[-1] < co[-1]
            assert ca[-2] < co[-2]

    def test_memory_decreases_with_p(self, result):
        for key, series in result.data.items():
            assert all(a >= b * 0.8 for a, b in zip(series[:-1], series[1:]))


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_grids()

    def test_shared_grid_ca3dmm_wins_square(self, result):
        row = result.data[("square", 2048, (8, 16, 16))]
        assert row["ca3dmm"] <= row["cosma"]

    def test_suboptimal_grid_beats_optimal_large_k(self, result):
        """The paper's Table II observation: 4x2x384 beats 3x3x341 for
        CA3DMM because pk = 341 is collective-unfriendly."""
        opt = result.data[("large-K", 3072, (3, 3, 341))]["ca3dmm"]
        sub = result.data[("large-K", 3072, (4, 2, 384))]["ca3dmm"]
        assert sub <= opt

    def test_incompatible_grid_is_nan_for_ca3dmm(self, result):
        row = result.data[("square", 3072, (12, 16, 16))]
        assert math.isnan(row["ca3dmm"])
        assert row["cosma"] > 0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_breakdown()

    def test_cosma_normalized_to_one(self, result):
        for p in CPU_PROBLEMS:
            assert result.data[p.cls]["cosma"].total == pytest.approx(1.0)

    def test_ca3dmm_total_close_to_cosma(self, result):
        for p in CPU_PROBLEMS:
            assert result.data[p.cls]["ca3dmm"].total == pytest.approx(1.0, abs=0.25)

    def test_dominant_comm_phase_per_class(self, result):
        bk = result.data["large-K"]["ca3dmm"]
        bm = result.data["large-M"]["ca3dmm"]
        assert bk.reduce_c > bk.replicate_ab
        assert bm.replicate_ab > bm.reduce_c


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_gpu()

    def test_cosma_wins_square_and_large_k(self, result):
        for P in (16, 32):
            for cls in ("square", "large-K"):
                row = result.data[(P, cls)]
                assert row["cosma"] <= row["ca3dmm"]

    def test_large_m_parity(self, result):
        for P in (16, 32):
            row = result.data[(P, "large-M")]
            assert row["ca3dmm"] == pytest.approx(row["cosma"], rel=0.15)

    def test_ctf_slowest_everywhere(self, result):
        for row in result.data.values():
            assert row["ctf"] > row["ca3dmm"]
            assert row["ctf"] > row["cosma"]


class TestLSweep:
    def test_grids_stable_across_l(self):
        result = l_sweep()
        assert result.data["same"] >= result.data["total"] * 0.9
