"""Bench trace artifacts: every generator has an executed stand-in."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import GENERATORS, main
from repro.bench.harness import TRACE_WORKLOADS, trace_artifact
from repro.machine.model import laptop
from repro.obs.export import validate_chrome_trace


class TestTraceWorkloads:
    def test_every_generator_has_a_workload(self):
        # "overlap" executes its own sync-vs-engine workload pair and
        # needs no separate trace stand-in.
        assert set(TRACE_WORKLOADS) == set(GENERATORS) - {"overlap"}

    def test_workloads_are_simulator_sized(self):
        for m, n, k, p in TRACE_WORKLOADS.values():
            assert m * n * k <= 10**6
            assert p <= 32


class TestTraceArtifact:
    def test_writes_schema_valid_trace(self, tmp_path):
        path = trace_artifact("fig5", tmp_path, machine=laptop())
        assert path == tmp_path / "fig5.trace.json"
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert doc["otherData"]["nprocs"] == TRACE_WORKLOADS["fig5"][3]
        names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert {"cannon", "reduce"} <= names

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(KeyError):
            trace_artifact("fig99", tmp_path)

    def test_cli_trace_dir_flag(self, tmp_path, capsys):
        rc = main(["fig2", "--trace-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace artifact:" in out
        assert (tmp_path / "fig2.trace.json").exists()
