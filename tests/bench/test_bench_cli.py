"""The bench command-line front-end (python -m repro.bench)."""

from __future__ import annotations

import subprocess
import sys

from repro.bench.__main__ import main


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available:" in capsys.readouterr().out

    def test_single_generator(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_multiple_generators(self, capsys):
        assert main(["fig5", "l_sweep"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out and "l-sweep" in out

    def test_unknown_name(self, capsys):
        assert main(["nope"]) == 2

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "table3"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Table III" in proc.stdout
