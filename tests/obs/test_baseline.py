"""Perf baselines: capture, store round-trips, tolerance classification."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.harness import baseline_artifact, executed_workload
from repro.machine.model import laptop
from repro.obs.baseline import (
    BaselineStore,
    PerfTolerance,
    capture_baseline,
    compare_baseline,
    validate_baseline_json,
)
from repro.obs.export import TraceSchemaError


def _captured():
    _plan, result = executed_workload("fig2", machine=laptop())
    return capture_baseline(
        result, "fig2", workload={"m": 32, "n": 64, "k": 16, "nprocs": 8},
        machine_label="laptop",
    )


class TestCapture:
    def test_document_is_schema_valid(self):
        doc = _captured()
        validate_baseline_json(doc)
        assert doc["name"] == "fig2"
        assert doc["makespan_s"] > 0
        assert doc["traffic"]["total_bytes"] > 0
        assert doc["path_segments"] > 0

    def test_phase_critical_sums_to_makespan(self):
        doc = _captured()
        total = sum(doc["phase_critical_s"].values())
        assert total == pytest.approx(doc["makespan_s"], rel=1e-12)

    def test_capture_is_deterministic(self):
        assert _captured() == _captured()


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path)
        doc = _captured()
        path = store.save("fig2", doc)
        assert path == tmp_path / "fig2.json"
        assert store.names() == ["fig2"]
        assert store.load("fig2") == doc

    def test_missing_baseline_is_none(self, tmp_path):
        store = BaselineStore(tmp_path)
        assert store.load("nope") is None
        assert store.compare("nope", _captured()) is None
        assert store.names() == []

    def test_save_rejects_invalid_documents(self, tmp_path):
        with pytest.raises(TraceSchemaError):
            BaselineStore(tmp_path).save("bad", {"schema_version": 1})

    def test_load_rejects_corrupt_files(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"nope": 1}))
        with pytest.raises(TraceSchemaError):
            BaselineStore(tmp_path).load("bad")

    def test_compare_against_self_is_ok(self, tmp_path):
        store = BaselineStore(tmp_path)
        doc = _captured()
        store.save("fig2", doc)
        diff = store.compare("fig2", doc)
        assert diff is not None and diff.ok
        assert diff.regressions == [] and diff.improvements == []


class TestClassification:
    def _pair(self):
        base = _captured()
        return base, copy.deepcopy(base)

    def test_slower_makespan_regresses(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 1.10  # 10% > 3% tolerance
        diff = compare_baseline(base, cur)
        assert not diff.ok
        assert [d.metric for d in diff.regressions] == ["makespan_s"]

    def test_faster_makespan_improves_without_failing(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 0.80
        diff = compare_baseline(base, cur)
        assert diff.ok
        assert any(d.metric == "makespan_s" for d in diff.improvements)
        assert diff.deltas[0].verdict == "improved"

    def test_within_tolerance_is_ok(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 1.01  # under the 3% default
        assert compare_baseline(base, cur).ok

    def test_phase_regression_is_named(self):
        base, cur = self._pair()
        phase = max(cur["phase_critical_s"], key=cur["phase_critical_s"].get)
        cur["phase_critical_s"][phase] *= 2.0
        diff = compare_baseline(base, cur)
        metrics = [d.metric for d in diff.regressions]
        assert f"phase_critical_s[{phase}]" in metrics

    def test_tiny_phase_shifts_under_abs_floor_pass(self):
        base, cur = self._pair()
        base["phase_critical_s"]["ghost"] = 1e-9
        cur["phase_critical_s"]["ghost"] = 3e-9  # 3x, but << phase_abs_s
        assert compare_baseline(base, cur).ok

    def test_msg_count_regresses_in_both_directions(self):
        for factor in (2, 0):
            base, cur = self._pair()
            cur["traffic"]["max_msgs_sent"] = (
                base["traffic"]["max_msgs_sent"] * factor + 1
            )
            diff = compare_baseline(base, cur)
            assert any(
                d.metric == "traffic[max_msgs_sent]" for d in diff.regressions
            )

    def test_traffic_bytes_regress(self):
        base, cur = self._pair()
        cur["traffic"]["total_bytes"] = int(base["traffic"]["total_bytes"] * 1.5)
        assert not compare_baseline(base, cur).ok

    def test_custom_tolerance_loosens_the_gate(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 1.10
        tol = PerfTolerance(time_rel=0.25)
        assert compare_baseline(base, cur, tol).ok

    def test_format_reports_verdicts(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 2.0
        diff = compare_baseline(base, cur)
        text = diff.format()
        assert "REGRESSION" in text and "makespan_s" in text
        assert "REGRESSED" in text
        verbose = diff.format(verbose=True)
        assert "traffic[total_bytes]" in verbose

    def test_to_dict_round_trips_through_json(self):
        base, cur = self._pair()
        cur["makespan_s"] *= 2.0
        doc = json.loads(json.dumps(compare_baseline(base, cur).to_dict()))
        assert doc["ok"] is False
        assert any(d["verdict"] == "REGRESSED" for d in doc["deltas"])


class TestBenchArtifact:
    def test_baseline_artifact_writes_valid_json(self, tmp_path):
        path = baseline_artifact("fig2", tmp_path, machine=laptop())
        assert path == tmp_path / "fig2.json"
        doc = json.loads(path.read_text())
        validate_baseline_json(doc)
        assert doc["workload"] == {"m": 32, "n": 64, "k": 16, "nprocs": 8}
