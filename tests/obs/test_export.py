"""Chrome-trace / JSONL exporters and the golden trace-schema test."""

from __future__ import annotations

import json

import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.export import (
    CHROME_TRACE_SCHEMA,
    TraceSchemaError,
    _validate_fallback,
    chrome_trace,
    jsonl_records,
    validate_chrome_trace,
    validate_run_json,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import CAT_PHASE


@pytest.fixture(scope="module")
def golden():
    """The fixed golden run: P=8, m=n=k=64, native layouts."""
    m = n = k = 64
    P = 8
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    res = run_spmd(P, f, machine=laptop(), record_events=True)
    return plan, res


class TestGoldenTrace:
    """Acceptance: the fixed run's export is schema-valid and complete."""

    def test_schema_valid_with_jsonschema(self, golden):
        jsonschema = pytest.importorskip("jsonschema")
        _, res = golden
        doc = chrome_trace(res)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)

    def test_one_span_per_phase_per_rank(self, golden):
        plan, res = golden
        phase_spans = [s for s in res.spans if s.cat == CAT_PHASE]
        per_rank: dict[int, list[str]] = {}
        for s in phase_spans:
            per_rank.setdefault(s.rank, []).append(s.name)
        assert set(per_rank) == set(range(8))
        for rank, names in per_rank.items():
            # exactly one replicate/cannon/reduce span; two redists (A, B)
            assert names.count("replicate") == 1
            assert names.count("cannon") == 1
            assert names.count("reduce") == 1
            assert names.count("redist") == 2

    def test_events_cover_metadata_spans_and_transport(self, golden):
        _, res = golden
        doc = chrome_trace(res)
        phs = {}
        for ev in doc["traceEvents"]:
            phs.setdefault(ev["ph"], []).append(ev)
        # process_name + one thread_name per rank
        assert len(phs["M"]) == 1 + 8
        cats = {ev["cat"] for ev in phs["X"]}
        assert {"phase", "collective", "transport"} <= cats

    def test_timestamps_rezeroed_and_nonnegative(self, golden):
        _, res = golden
        doc = chrome_trace(res)
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert min(ev["ts"] for ev in xs) == 0.0
        assert all(ev["ts"] >= 0 and ev["dur"] >= 0 for ev in xs)
        assert all(0 <= ev["tid"] < 8 for ev in xs)

    def test_span_events_carry_byte_deltas(self, golden):
        _, res = golden
        doc = chrome_trace(res)
        cannon = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "cannon"
        ]
        assert len(cannon) == 8
        for ev in cannon:
            assert ev["args"]["bytes_sent"] > 0
            assert not any(k.startswith("_") for k in ev["args"])

    def test_other_data_headline(self, golden):
        _, res = golden
        doc = chrome_trace(res)
        assert doc["otherData"]["nprocs"] == 8
        assert doc["otherData"]["q_words"] > 0
        assert doc["displayTimeUnit"] == "ms"

    def test_written_file_roundtrips(self, golden, tmp_path):
        _, res = golden
        path = tmp_path / "golden.trace.json"
        doc = write_chrome_trace(res, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        validate_chrome_trace(loaded)

    def test_transport_events_can_be_dropped(self, golden):
        _, res = golden
        full = chrome_trace(res)
        lean = chrome_trace(res, include_transport_events=False)
        assert len(lean["traceEvents"]) < len(full["traceEvents"])
        assert all(
            ev.get("cat") != "transport" for ev in lean["traceEvents"]
        )


class TestValidation:
    def test_missing_trace_events_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_x_event_without_ts_rejected(self):
        doc = {
            "traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "x", "cat": "c"}],
            "displayTimeUnit": "ms",
        }
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace(doc)

    def test_fallback_validator_matches_on_basics(self):
        with pytest.raises(TraceSchemaError):
            _validate_fallback({"traceEvents": "nope"}, CHROME_TRACE_SCHEMA)
        with pytest.raises(TraceSchemaError):
            _validate_fallback(
                {"traceEvents": [{"ph": "X", "name": "x"}], "displayTimeUnit": "ms"},
                CHROME_TRACE_SCHEMA,
            )
        _validate_fallback(
            {"traceEvents": [], "displayTimeUnit": "ms"}, CHROME_TRACE_SCHEMA
        )

    def test_run_json_schema_rejects_bad_op(self):
        doc = {
            "schema_version": 1,
            "problem": {"m": 1, "n": 1, "k": 1, "nprocs": 1,
                        "transA": "X", "transB": "N", "device": "cpu"},
            "partition": {"pm": 1, "pn": 1, "pk": 1, "s": 1, "c": 1,
                          "utilization_pct": 100.0},
            "phases": {},
            "correctness": {"validated": True, "errors": 0},
        }
        pytest.importorskip("jsonschema")
        with pytest.raises(TraceSchemaError):
            validate_run_json(doc)
        doc["problem"]["transA"] = "T"
        validate_run_json(doc)


class TestJsonl:
    def test_records_structure(self, golden):
        _, res = golden
        recs = list(jsonl_records(res))
        kinds = [r["type"] for r in recs]
        assert kinds[0] == "run"
        assert kinds.count("rank") == 8
        assert kinds.count("span") == len(res.spans)
        run = recs[0]
        assert run["nprocs"] == 8 and run["record_events"] is True
        rank_recs = [r for r in recs if r["type"] == "rank"]
        assert all("cannon" in r["phases"] for r in rank_recs)

    def test_write_jsonl(self, golden, tmp_path):
        _, res = golden
        path = tmp_path / "run.jsonl"
        n = write_jsonl(res, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == n
        for line in lines:
            json.loads(line)
