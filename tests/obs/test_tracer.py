"""Span tracer unit tests (nesting, unwinding, attributes, ordering)."""

from __future__ import annotations

import threading

from repro.obs.tracer import CAT_COLLECTIVE, CAT_PHASE, CAT_USER, Span, Tracer


class TestSpanBasics:
    def test_duration_and_closed(self):
        s = Span(sid=0, parent=-1, rank=0, name="x", t0=1.0, t1=3.5)
        assert s.duration == 2.5
        assert s.closed
        open_span = Span(sid=1, parent=-1, rank=0, name="y", t0=2.0)
        assert open_span.duration == 0.0
        assert not open_span.closed

    def test_categories_are_distinct(self):
        assert len({CAT_PHASE, CAT_COLLECTIVE, CAT_USER}) == 3


class TestTracerNesting:
    def test_parent_pointers_follow_the_stack(self):
        tr = Tracer(enabled=True)
        a = tr.begin(0, "outer", 0.0)
        b = tr.begin(0, "inner", 1.0)
        tr.end(0, b, 2.0)
        tr.end(0, a, 3.0)
        spans = {s.name: s for s in tr.spans}
        assert spans["outer"].parent == -1
        assert spans["inner"].parent == a
        assert tr.children(a) == [spans["inner"]]

    def test_stacks_are_per_rank(self):
        tr = Tracer(enabled=True)
        a0 = tr.begin(0, "r0", 0.0)
        a1 = tr.begin(1, "r1", 0.0)
        # rank 1's span is not a child of rank 0's open span
        assert tr._spans[a1].parent == -1
        tr.end(1, a1, 1.0)
        tr.end(0, a0, 1.0)

    def test_end_closes_abandoned_deeper_spans(self):
        """A non-local exit (exception) may skip inner end() calls; ending
        the outer span must close the abandoned inner ones too."""
        tr = Tracer(enabled=True)
        outer = tr.begin(0, "outer", 0.0)
        inner = tr.begin(0, "inner", 1.0)
        deepest = tr.begin(0, "deepest", 2.0)
        tr.end(0, outer, 5.0)  # skips inner/deepest ends
        spans = {s.sid: s for s in tr.spans}
        assert spans[inner].closed and spans[inner].t1 == 5.0
        assert spans[deepest].closed and spans[deepest].t1 == 5.0
        # the stack fully unwound: a new span is a root again
        fresh = tr.begin(0, "fresh", 6.0)
        assert spans is not tr._spans or tr._spans[fresh].parent == -1
        tr.end(0, fresh, 7.0)

    def test_end_clamps_negative_durations(self):
        tr = Tracer(enabled=True)
        sid = tr.begin(0, "x", 5.0)
        tr.end(0, sid, 4.0)  # clock cannot run backwards; clamp to t0
        (span,) = tr.spans
        assert span.t1 == span.t0 == 5.0


class TestTracerAttributes:
    def test_begin_attrs_copied_and_end_attrs_merged(self):
        tr = Tracer(enabled=True)
        attrs = {"k": 1}
        sid = tr.begin(0, "x", 0.0, attrs=attrs)
        attrs["k"] = 99  # caller's dict must not alias the span's
        tr.end(0, sid, 1.0, attrs={"bytes": 64})
        (span,) = tr.spans
        assert span.attrs == {"k": 1, "bytes": 64}

    def test_annotate_and_take_attr(self):
        tr = Tracer(enabled=True)
        sid = tr.begin(0, "x", 0.0)
        tr.annotate(sid, _snap={"bytes": 10})
        assert tr.take_attr(sid, "_snap") == {"bytes": 10}
        assert tr.take_attr(sid, "_snap") is None
        tr.end(0, sid, 1.0)


class TestTracerQueries:
    def _populated(self):
        tr = Tracer(enabled=True)
        a = tr.begin(0, "phase", 1.0, cat=CAT_PHASE)
        b = tr.begin(0, "coll", 2.0, cat=CAT_COLLECTIVE)
        tr.end(0, b, 3.0)
        tr.end(0, a, 4.0)
        c = tr.begin(1, "phase", 0.5, cat=CAT_PHASE)
        tr.end(1, c, 2.0)
        return tr

    def test_spans_sorted_by_start_time(self):
        tr = self._populated()
        starts = [s.t0 for s in tr.spans]
        assert starts == sorted(starts)

    def test_epoch_is_earliest_start(self):
        tr = self._populated()
        assert tr.epoch() == 0.5
        assert Tracer().epoch() == 0.0

    def test_named_and_spans_of_and_roots(self):
        tr = self._populated()
        assert len(tr.named("phase")) == 2
        assert [s.rank for s in tr.spans_of(1)] == [1]
        assert all(s.parent == -1 for s in tr.roots())
        assert [s.rank for s in tr.roots(rank=1)] == [1]

    def test_len(self):
        assert len(self._populated()) == 3


class TestThreadSafety:
    def test_concurrent_begin_end_from_many_ranks(self):
        tr = Tracer(enabled=True)
        n, per = 8, 50

        def worker(rank):
            for i in range(per):
                sid = tr.begin(rank, f"s{i}", float(i))
                tr.end(rank, sid, float(i) + 0.5)

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr) == n * per
        assert all(s.closed for s in tr.spans)
        sids = [s.sid for s in tr.spans]
        assert len(set(sids)) == len(sids)


class TestStaleSidEnd:
    """Ending a sid that is not on the stack must not unwind live spans."""

    def test_double_end_leaves_open_spans_alone(self):
        tr = Tracer(enabled=True)
        outer = tr.begin(0, "outer", 0.0)
        inner = tr.begin(0, "inner", 1.0)
        tr.end(0, inner, 2.0)
        tr.end(0, inner, 3.0)  # stale: inner already closed and popped
        spans = {s.name: s for s in tr.spans}
        assert spans["inner"].t1 == 2.0  # first close wins
        assert spans["outer"].t1 is None  # outer survived the stale end
        # the stack is intact: a new span still nests under outer
        child = tr.begin(0, "child", 4.0)
        assert tr._spans[child].parent == outer
        tr.end(0, child, 5.0)
        tr.end(0, outer, 6.0)

    def test_stale_open_sid_is_closed_in_place(self):
        """A sid evicted from the stack by an outer unwind but never
        explicitly ended gets a t1 without disturbing other ranks."""
        tr = Tracer(enabled=True)
        outer = tr.begin(0, "outer", 0.0)
        inner = tr.begin(0, "inner", 1.0)
        tr.end(0, outer, 2.0)  # unwinds inner too
        other = tr.begin(0, "other", 3.0)
        tr.end(0, inner, 4.0)  # stale and already closed: no-op
        assert tr._spans[inner].t1 == 2.0
        assert tr._spans[other].t1 is None
        tr.end(0, other, 5.0)

    def test_unknown_sid_is_a_noop(self):
        tr = Tracer(enabled=True)
        a = tr.begin(0, "a", 0.0)
        tr.end(0, 999, 1.0)
        assert tr._spans[a].t1 is None
        tr.end(0, a, 2.0)
        assert tr._spans[a].t1 == 2.0


class TestSortedViewCache:
    def test_spans_returns_a_fresh_list(self):
        tr = Tracer(enabled=True)
        a = tr.begin(0, "a", 0.0)
        view = tr.spans
        view.clear()  # caller mutation must not corrupt the tracer
        assert [s.sid for s in tr.spans] == [a]
        tr.end(0, a, 1.0)

    def test_cache_invalidated_by_begin(self):
        tr = Tracer(enabled=True)
        tr.begin(1, "late", 5.0)
        assert [s.t0 for s in tr.spans] == [5.0]
        tr.begin(0, "early", 1.0)
        assert [s.t0 for s in tr.spans] == [1.0, 5.0]

    def test_order_is_stable_across_ends(self):
        tr = Tracer(enabled=True)
        a = tr.begin(0, "a", 0.0)
        b = tr.begin(1, "b", 0.0)  # same t0: sid breaks the tie
        before = [s.sid for s in tr.spans]
        tr.end(1, b, 9.0)
        tr.end(0, a, 1.0)
        assert [s.sid for s in tr.spans] == before == [a, b]
