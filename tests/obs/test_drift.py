"""Drift guard: measured per-phase traffic vs the analytic predictions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.drift import (
    DriftError,
    check_drift,
    drift_report,
    expected_phase_traffic,
)


def _executed(m, n, k, P, nruns=1):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        for _ in range(nruns):
            ca3dmm_matmul(a, b)

    return plan, run_spmd(P, f, machine=laptop(), record_events=False)


class TestExpectedTraffic:
    def test_closed_forms_on_balanced_cube(self):
        plan = Ca3dmmPlan(64, 64, 64, 8)  # 2 x 2 x 2, s=2, c=1
        exp = expected_phase_traffic(plan)
        mb, nb, kb = 32.0, 32.0, 16.0
        assert "replicate" not in exp  # c == 1
        assert exp["cannon"].words == (mb * kb + kb * nb) * plan.s
        assert exp["cannon"].msgs == 2 * plan.s
        assert exp["reduce"].words == mb * nb * (plan.pk - 1) / plan.pk
        assert exp["reduce"].msgs == plan.pk - 1

    def test_replication_appears_when_c_gt_1(self):
        plan = Ca3dmmPlan(64, 64, 64, 16)  # 2 x 4 x 2 grid: c = 2
        assert plan.c > 1
        exp = expected_phase_traffic(plan)
        assert exp["replicate"].msgs == math.ceil(math.log2(plan.c))
        assert exp["replicate"].words > 0

    def test_degenerate_phases_absent(self):
        plan = Ca3dmmPlan(64, 64, 16, 4)
        exp = expected_phase_traffic(plan)
        if plan.pk == 1:
            assert "reduce" not in exp
        if plan.s == 1:
            assert "cannon" not in exp


class TestDriftReport:
    def test_balanced_grid_is_exact(self):
        plan, res = _executed(64, 64, 64, 8)
        report = drift_report(res, plan)
        assert report.ok
        by_phase = {p.phase: p for p in report.phases}
        assert by_phase["cannon"].words_rel_err == 0.0
        assert by_phase["reduce"].words_rel_err == 0.0
        assert by_phase["cannon"].measured_msgs == by_phase["cannon"].expected_msgs
        assert by_phase["reduce"].measured_msgs == by_phase["reduce"].expected_msgs

    def test_acceptance_balanced_p64_within_tolerance(self):
        """ISSUE acceptance: balanced P=64, m=n=k — measured per-phase
        communication volume matches the analytic model within 5%
        (exactly, for the divisible cube)."""
        plan, res = _executed(64, 64, 64, 64)
        report = check_drift(res, plan, byte_tol=0.05)  # must not raise
        assert report.max_rel_err <= 0.05
        for p in report.phases:
            if p.expected_words > 0:
                assert p.measured_words == p.expected_words  # exact volume
            assert p.measured_msgs == p.expected_msgs

    def test_nruns_normalizes_accumulated_counters(self):
        plan, res = _executed(64, 64, 64, 8, nruns=3)
        assert drift_report(res, plan, nruns=3).ok
        # the same counters read as a single run drift by ~3x
        assert not drift_report(res, plan, nruns=1, abs_tol_words=0.0).ok

    def test_nruns_must_be_positive(self):
        plan, res = _executed(64, 64, 64, 8)
        with pytest.raises(ValueError):
            drift_report(res, plan, nruns=0)

    def test_unscheduled_phase_traffic_is_drift(self, spmd):
        plan = Ca3dmmPlan(32, 32, 32, 2)  # s == 1: no cannon scheduled
        assert plan.s == 1

        def f(comm):
            with comm.phase("cannon"):
                comm.allgather(np.zeros(8))

        res = spmd(2, f)
        report = drift_report(res, plan)
        assert not report.ok
        assert report.max_rel_err == math.inf
        with pytest.raises(DriftError):
            report.check()

    def test_mismatched_plan_trips_the_guard(self):
        plan, res = _executed(64, 64, 64, 8)
        other = Ca3dmmPlan(128, 128, 128, 8)
        report = drift_report(res, other, abs_tol_words=0.0)
        assert not report.ok
        with pytest.raises(DriftError):
            check_drift(res, other, abs_tol_words=0.0)

    def test_report_serializes_and_formats(self):
        plan, res = _executed(64, 64, 64, 8)
        report = drift_report(res, plan, machine=laptop())
        doc = report.to_dict()
        assert doc["ok"] is True
        assert {p["phase"] for p in doc["phases"]} == {"replicate", "cannon", "reduce"}
        assert doc["times"]  # machine given -> timing buckets present
        text = report.format()
        assert "Drift guard" in text and "OK" in text
        assert "report-only" in text

    def test_time_tol_enforces_timing(self):
        plan, res = _executed(64, 64, 64, 8)
        # a huge tolerance passes; an absurdly small one fails
        assert drift_report(res, plan, machine=laptop(), time_tol=100.0).ok
        tight = drift_report(res, plan, machine=laptop(), time_tol=1e-12)
        assert not tight.ok
