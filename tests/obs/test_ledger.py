"""Append-only run ledger (`repro.obs.ledger`)."""

from __future__ import annotations

import json

import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_ENV,
    Ledger,
    LedgerError,
    canonical_json,
    ledger_path_from_env,
    ledger_record,
    validate_ledger_record,
)


def _executed(m=32, n=32, k=64, P=8):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    return plan, run_spmd(P, f, machine=laptop(), record_events=False)


class TestRecord:
    def test_record_validates_and_carries_measurements(self):
        plan, res = _executed()
        rec = ledger_record(res, plan, "test.unit")
        validate_ledger_record(rec)  # must not raise
        assert rec["kind"] == "test.unit"
        assert rec["problem"] == {"m": 32, "n": 32, "k": 64, "nprocs": 8, "nruns": 1}
        assert rec["grid"]["pm"] == plan.pm and rec["grid"]["active"] == plan.active
        assert rec["traffic"]["q_words"] > 0
        assert rec["schema_version"] == 3
        assert rec["memory"]["peak_live_words"] > 0
        # v2: resident watermark from memtrace spans, with breakdown
        assert rec["memory"]["resident_peak_words"] > 0
        assert rec["memory"]["by_purpose_words"]["tile.a"] > 0
        assert rec["optimality"]["q_over_eq9"] > 0
        assert rec["faults"]["retries"] == 0

    def test_audit_ok_and_extra_ride_along(self):
        plan, res = _executed()
        rec = ledger_record(
            res, plan, "test.unit", audit_ok=True, extra={"note": "x"}
        )
        assert rec["audit_ok"] is True
        assert rec["extra"] == {"note": "x"}

    def test_deterministic_modulo_run_id(self):
        plan_a, res_a = _executed()
        plan_b, res_b = _executed()
        a = ledger_record(res_a, plan_a, "test.det", run_id="0" * 32)
        b = ledger_record(res_b, plan_b, "test.det", run_id="0" * 32)
        assert canonical_json(a) == canonical_json(b)

    def test_invalid_record_rejected(self):
        plan, res = _executed()
        rec = ledger_record(res, plan, "test.unit")
        rec["run_id"] = "not-hex"
        with pytest.raises(LedgerError):
            validate_ledger_record(rec)

    def test_nruns_must_be_positive(self):
        plan, res = _executed()
        with pytest.raises(ValueError):
            ledger_record(res, plan, "test.unit", nruns=0)


class TestLedgerFile:
    def test_append_read_roundtrip(self, tmp_path):
        plan, res = _executed()
        led = Ledger(tmp_path / "ledger.jsonl")
        rec = led.append(ledger_record(res, plan, "test.rt"))
        got = list(led.records())
        assert got == [rec]
        assert len(led) == 1

    def test_missing_file_is_empty(self, tmp_path):
        led = Ledger(tmp_path / "absent.jsonl")
        assert list(led.records()) == []
        assert len(led) == 0

    def test_lines_are_canonical_json(self, tmp_path):
        plan, res = _executed()
        led = Ledger(tmp_path / "ledger.jsonl")
        rec = led.append(ledger_record(res, plan, "test.canon"))
        raw = (tmp_path / "ledger.jsonl").read_text().splitlines()
        assert raw == [canonical_json(rec)]

    def test_corrupt_line_raises_with_location(self, tmp_path):
        plan, res = _executed()
        path = tmp_path / "ledger.jsonl"
        led = Ledger(path)
        led.append(ledger_record(res, plan, "test.bad"))
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(LedgerError, match=r"ledger\.jsonl:2"):
            list(led.records())

    def test_schema_violating_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"schema_version": 1}) + "\n")
        with pytest.raises(LedgerError, match=":1"):
            list(Ledger(path).records())

    def test_append_refuses_invalid(self, tmp_path):
        led = Ledger(tmp_path / "ledger.jsonl")
        with pytest.raises(LedgerError):
            led.append({"schema_version": 1})
        assert not (tmp_path / "ledger.jsonl").exists()

    def test_query_filters(self, tmp_path):
        plan, res = _executed()
        plan2, res2 = _executed(m=48, n=48, k=48, P=8)
        led = Ledger(tmp_path / "ledger.jsonl")
        led.append(ledger_record(res, plan, "kind.a"))
        led.append(ledger_record(res2, plan2, "kind.b"))
        led.append(ledger_record(res, plan, "kind.a"))
        assert len(led.query(kind="kind.a")) == 2
        assert len(led.query(kind="kind.b")) == 1
        assert len(led.query(m=48, n=48, k=48)) == 1
        assert len(led.query(nprocs=8)) == 3
        assert len(led.query(last=2)) == 2
        assert led.query(kind="kind.a", last=1)[0]["kind"] == "kind.a"


class TestEnvOptIn:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert ledger_path_from_env() is None

    def test_literal_one_selects_default(self, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "1")
        assert str(ledger_path_from_env()) == DEFAULT_LEDGER_PATH

    def test_value_is_a_path(self, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "/tmp/my.jsonl")
        assert str(ledger_path_from_env()) == "/tmp/my.jsonl"
