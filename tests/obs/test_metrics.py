"""Metrics registry instruments and executed-run snapshots."""

from __future__ import annotations

import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.metrics import (
    ITEM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _overlap_ratio,
    format_metrics,
    overlap_by_phase,
    snapshot_run,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.5) == 2.5
        assert h.quantile(0.0) == 1.0 and h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram_is_explicit(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.quantile(0.5)
        assert h.summary() == {"count": 0.0, "empty": True}


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", rank=0, phase="cannon")
        b = reg.counter("bytes", phase="cannon", rank=0)  # label order irrelevant
        c = reg.counter("bytes", rank=1, phase="cannon")
        assert a is b and a is not c

    def test_to_dict_and_find(self):
        reg = MetricsRegistry()
        reg.counter("msgs", rank=0).inc(3)
        reg.gauge("clock", rank=0).set(1.5)
        reg.histogram("lat").observe(0.1)
        doc = reg.to_dict()
        assert doc["counters"][0] == {"name": "msgs", "labels": {"rank": 0}, "value": 3.0}
        assert doc["gauges"][0]["value"] == 1.5
        assert doc["histograms"][0]["count"] == 1.0
        (labels, inst) = reg.find("msgs")[0]
        assert labels == {"rank": 0} and inst.value == 3.0


def _executed(m=32, n=32, k=64, P=8, record_events=True):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    return plan, run_spmd(P, f, machine=laptop(), record_events=record_events)


class TestSnapshot:
    def test_headline_numbers_match_traces(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        assert m.makespan == res.time
        assert m.q_words == max(t.bytes_sent for t in res.traces) / ITEM
        assert m.total_words == sum(t.bytes_sent for t in res.traces) / ITEM
        assert m.max_msgs == max(t.msgs_sent for t in res.traces)

    def test_per_phase_q_gauges(self):
        plan, res = _executed(m=64, n=64, k=64, P=16)  # c > 1: replication runs
        m = snapshot_run(res, plan)
        phases = {labels["phase"] for labels, _ in m.registry.find("phase_q_words")}
        assert {"replicate", "cannon", "reduce"} <= phases
        for labels, gauge in m.registry.find("phase_q_words"):
            expect = max(
                (t.phases[labels["phase"]].bytes_sent
                 for t in res.traces if labels["phase"] in t.phases),
                default=0,
            ) / ITEM
            assert gauge.value == expect

    def test_shift_latency_histogram_populated(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        hist = m.registry.histogram("cannon_shift_seconds")
        assert hist.count > 0
        assert hist.min > 0

    def test_overlap_ratio_in_unit_interval(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        assert m.cannon_overlap_ratio is not None
        assert 0.0 <= m.cannon_overlap_ratio <= 1.0

    def test_k_group_imbalance_needs_plan_and_pk(self):
        plan, res = _executed(m=32, n=32, k=64, P=8)
        assert plan.pk > 1
        m = snapshot_run(res, plan)
        assert m.k_group_imbalance is not None
        assert 0.0 <= m.k_group_imbalance <= 1.0
        assert snapshot_run(res).k_group_imbalance is None

    def test_snapshot_without_events(self):
        plan, res = _executed(record_events=False)
        m = snapshot_run(res, plan)
        assert m.registry.histogram("cannon_shift_seconds").count == 0
        assert m.q_words > 0

    def test_result_metrics_property_cached(self):
        _, res = _executed()
        assert res.metrics is res.metrics

    def test_format_metrics_renders(self):
        plan, res = _executed()
        text = format_metrics(snapshot_run(res, plan))
        assert "makespan" in text
        assert "per-phase Q" in text
        assert "cannon" in text

    def test_cannon_overlap_is_volume_weighted(self):
        plan, res = _executed()
        num = den = 0.0
        for t in res.traces:
            st = t.phases.get("cannon")
            if st is None or st.time <= 0:
                continue
            ratio = max(0.0, min(1.0, 1.0 - st.comm_time / st.time))
            weight = float(st.bytes_sent + st.bytes_recv)
            num += ratio * weight
            den += weight
        assert den > 0
        expect = num / den
        assert _overlap_ratio(res) == pytest.approx(expect)
        assert overlap_by_phase(res)["cannon"] == pytest.approx(expect)
        assert snapshot_run(res, plan).cannon_overlap_ratio == pytest.approx(expect)

    def test_cannon_overlap_critical_rank_variant(self):
        plan, res = _executed()
        crit = max(res.traces, key=lambda t: t.time)
        st = crit.phases["cannon"]
        expect = max(0.0, min(1.0, 1.0 - st.comm_time / st.time))
        assert _overlap_ratio(res, critical_rank=True) == pytest.approx(expect)
        m = snapshot_run(res, plan)
        assert m.cannon_overlap_critical_rank == pytest.approx(expect)

    def test_phase_overlap_gauges_match_aggregate(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        ov = overlap_by_phase(res)
        assert ov and all(0.0 <= v <= 1.0 for v in ov.values())
        gauges = {
            labels["phase"]: g.value
            for labels, g in m.registry.find("phase_overlap_ratio")
        }
        assert gauges == pytest.approx(ov)
        assert m.overlap_by_phase == pytest.approx(ov)
        assert m.to_dict()["overlap_by_phase"] == pytest.approx(ov)

    def test_to_dict_is_json_ready(self):
        import json

        plan, res = _executed()
        doc = snapshot_run(res, plan).to_dict()
        json.dumps(doc)  # must not raise
        assert doc["q_words"] > 0
        assert "registry" in doc


class TestShrunkWorld:
    """Faulted/shrunk worlds: dead ranks must not skew the gauges."""

    def _killed_run(self):
        from repro.ft import resilient_multiply
        from repro.layout import BlockCol1D
        from repro.mpi import FaultPlan, RankFault

        m, n, k, nprocs = 24, 20, 28, 8

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((m, k), comm.size), dense_random(m, k, seed=7)
            )
            b = DistMatrix.from_global(
                comm, BlockCol1D((k, n), comm.size), dense_random(k, n, seed=8)
            )
            resilient_multiply(
                comm, a, b,
                c_dist=lambda cm: BlockCol1D((m, n), cm.size),
                max_recoveries=1,
            )

        faults = FaultPlan(seed=0, ranks=(
            RankFault(rank=3, phase="cannon", occurrence=1, kill=True),
        ))
        return run_spmd(
            nprocs, f, machine=laptop(), record_events=True, faults=faults
        )

    def test_live_traces_exclude_dead_ranks(self):
        res = self._killed_run()
        assert set(res.transport.dead_ranks()) == {3}
        assert {t.rank for t in res.live_traces} == {0, 1, 2, 4, 5, 6, 7}

    def test_overlap_and_snapshot_ignore_dead_ranks(self):
        import json

        res = self._killed_run()
        ov = overlap_by_phase(res)
        num = den = 0.0
        for t in res.traces:
            if t.rank == 3:
                continue
            st = t.phases.get("cannon")
            if st is None or st.time <= 0:
                continue
            ratio = max(0.0, min(1.0, 1.0 - st.comm_time / st.time))
            weight = float(st.bytes_sent + st.bytes_recv)
            num += ratio * weight
            den += weight
        assert den > 0
        assert ov["cannon"] == pytest.approx(num / den)

        m = snapshot_run(res)
        assert m.recoveries >= 1
        json.dumps(m.to_dict())  # gauges stay serializable on shrunk worlds
