"""Metrics registry instruments and executed-run snapshots."""

from __future__ import annotations

import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.metrics import (
    ITEM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
    snapshot_run,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.quantile(0.5) == 2.5
        assert h.quantile(0.0) == 1.0 and h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram_is_safe(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.summary()["count"] == 0.0


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", rank=0, phase="cannon")
        b = reg.counter("bytes", phase="cannon", rank=0)  # label order irrelevant
        c = reg.counter("bytes", rank=1, phase="cannon")
        assert a is b and a is not c

    def test_to_dict_and_find(self):
        reg = MetricsRegistry()
        reg.counter("msgs", rank=0).inc(3)
        reg.gauge("clock", rank=0).set(1.5)
        reg.histogram("lat").observe(0.1)
        doc = reg.to_dict()
        assert doc["counters"][0] == {"name": "msgs", "labels": {"rank": 0}, "value": 3.0}
        assert doc["gauges"][0]["value"] == 1.5
        assert doc["histograms"][0]["count"] == 1.0
        (labels, inst) = reg.find("msgs")[0]
        assert labels == {"rank": 0} and inst.value == 3.0


def _executed(m=32, n=32, k=64, P=8, record_events=True):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    return plan, run_spmd(P, f, machine=laptop(), record_events=record_events)


class TestSnapshot:
    def test_headline_numbers_match_traces(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        assert m.makespan == res.time
        assert m.q_words == max(t.bytes_sent for t in res.traces) / ITEM
        assert m.total_words == sum(t.bytes_sent for t in res.traces) / ITEM
        assert m.max_msgs == max(t.msgs_sent for t in res.traces)

    def test_per_phase_q_gauges(self):
        plan, res = _executed(m=64, n=64, k=64, P=16)  # c > 1: replication runs
        m = snapshot_run(res, plan)
        phases = {labels["phase"] for labels, _ in m.registry.find("phase_q_words")}
        assert {"replicate", "cannon", "reduce"} <= phases
        for labels, gauge in m.registry.find("phase_q_words"):
            expect = max(
                (t.phases[labels["phase"]].bytes_sent
                 for t in res.traces if labels["phase"] in t.phases),
                default=0,
            ) / ITEM
            assert gauge.value == expect

    def test_shift_latency_histogram_populated(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        hist = m.registry.histogram("cannon_shift_seconds")
        assert hist.count > 0
        assert hist.min > 0

    def test_overlap_ratio_in_unit_interval(self):
        plan, res = _executed()
        m = snapshot_run(res, plan)
        assert m.cannon_overlap_ratio is not None
        assert 0.0 <= m.cannon_overlap_ratio <= 1.0

    def test_k_group_imbalance_needs_plan_and_pk(self):
        plan, res = _executed(m=32, n=32, k=64, P=8)
        assert plan.pk > 1
        m = snapshot_run(res, plan)
        assert m.k_group_imbalance is not None
        assert 0.0 <= m.k_group_imbalance <= 1.0
        assert snapshot_run(res).k_group_imbalance is None

    def test_snapshot_without_events(self):
        plan, res = _executed(record_events=False)
        m = snapshot_run(res, plan)
        assert m.registry.histogram("cannon_shift_seconds").count == 0
        assert m.q_words > 0

    def test_result_metrics_property_cached(self):
        _, res = _executed()
        assert res.metrics is res.metrics

    def test_format_metrics_renders(self):
        plan, res = _executed()
        text = format_metrics(snapshot_run(res, plan))
        assert "makespan" in text
        assert "per-phase Q" in text
        assert "cannon" in text

    def test_to_dict_is_json_ready(self):
        import json

        plan, res = _executed()
        doc = snapshot_run(res, plan).to_dict()
        json.dumps(doc)  # must not raise
        assert doc["q_words"] > 0
        assert "registry" in doc
