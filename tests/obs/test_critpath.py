"""Critical-path analyzer: exact chains, decompositions, blame, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import MachineModel, laptop
from repro.mpi import run_spmd
from repro.obs.critpath import (
    SEG_COMPUTE,
    SEG_RECV,
    CritPathReport,
    critical_path,
    critpath_report,
    phase_blame,
    rank_decomposition,
    stragglers,
    validate_critpath_json,
    waitfor_edges,
)


def _run_ca3dmm(P, m=48, n=48, k=48):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        c = ca3dmm_matmul(a, b)
        return c.local_bytes()

    return run_spmd(P, f, machine=laptop(), record_events=True)


class TestChainExactness:
    """ISSUE acceptance: chain length == makespan, connected, complete."""

    @pytest.mark.parametrize("P", [4, 8, 16])
    def test_chain_total_equals_makespan(self, P):
        res = _run_ca3dmm(P)
        path = critical_path(res)
        assert path.complete
        assert path.total == pytest.approx(res.time, rel=1e-12, abs=0.0)

    @pytest.mark.parametrize("P", [4, 8, 16])
    def test_chain_is_connected(self, P):
        res = _run_ca3dmm(P)
        path = critical_path(res)
        assert path.connected()
        # chronological, starting at t = 0 and ending at the makespan
        assert path.segments[0].t0 == pytest.approx(0.0, abs=1e-18)
        assert path.segments[-1].t1 == pytest.approx(res.time, rel=1e-12)
        for a, b in zip(path.segments, path.segments[1:]):
            assert b.t0 >= a.t0

    def test_final_rank_owns_the_makespan(self):
        res = _run_ca3dmm(8)
        path = critical_path(res)
        clocks = {t.rank: t.time for t in res.traces}
        assert clocks[path.final_rank] == res.time

    def test_segment_durations_positive(self):
        res = _run_ca3dmm(8)
        for s in critical_path(res).segments:
            assert s.duration > 0
            assert s.kind in ("compute", "send", "recv", "wait")

    def test_without_events_path_is_empty(self, spmd):
        res = spmd(4, lambda comm: comm.allgather(comm.rank))
        path = critical_path(res)
        assert path.segments == []
        assert not path.complete  # nonzero makespan, nothing to walk


class TestCannonRingHandChecked:
    """P=4 Cannon-style ring: the chain is 3 x (compute + flight), walked
    backward around the ring — every segment predictable by hand."""

    STEPS = 3

    def _run(self):
        machine = MachineModel(alpha=1e-4, gamma=1e-9)

        def f(comm):
            right = (comm.rank + 1) % 4
            left = (comm.rank - 1) % 4
            for _ in range(self.STEPS):
                with comm.phase("cannon"):
                    comm.compute(1e5)  # 100us at 1ns/flop
                    comm.sendrecv(np.zeros(16), right, left)

        return run_spmd(4, f, machine=machine, record_events=True), machine

    def test_chain_shape(self):
        res, _ = self._run()
        path = critical_path(res)
        assert path.complete and path.connected()
        # one compute + one flight per step, nothing else
        assert len(path.segments) == 2 * self.STEPS
        kinds = [s.kind for s in path.segments]
        assert kinds == [SEG_COMPUTE, SEG_RECV] * self.STEPS
        assert all(s.phase == "cannon" for s in path.segments)

    def test_chain_walks_backward_around_the_ring(self):
        res, _ = self._run()
        path = critical_path(res)
        # the makespan lands on rank 0; each step hops to the left
        # neighbour's sender, so the chain visits 1 -> 2 -> 3 (flights
        # feeding 2 -> 3 -> 0) in chronological order
        computes = [s for s in path.segments if s.kind == SEG_COMPUTE]
        flights = [s for s in path.segments if s.kind == SEG_RECV]
        assert [s.rank for s in computes] == [1, 2, 3]
        assert [(s.rank, s.peer) for s in flights] == [(1, 2), (2, 3), (3, 0)]
        assert path.final_rank == 0

    def test_segment_durations_match_the_model(self):
        res, machine = self._run()
        path = critical_path(res)
        ct = machine.compute_time(1e5)
        for s in path.segments:
            if s.kind == SEG_COMPUTE:
                assert s.duration == pytest.approx(ct, rel=1e-12)
            else:
                assert s.duration == pytest.approx(
                    machine.msg_time(s.nbytes, s.rank, s.peer), rel=1e-12
                )
        assert res.time == pytest.approx(path.total, rel=1e-12)


class TestRankDecomposition:
    @pytest.mark.parametrize("P", [4, 8])
    def test_buckets_sum_to_makespan(self, P):
        res = _run_ca3dmm(P)
        decomp = rank_decomposition(res)
        assert set(decomp) == set(range(P))
        for r, b in decomp.items():
            assert b.total == pytest.approx(res.time, rel=1e-9)
            assert b.tail_idle_s >= -1e-15

    def test_finish_matches_trace_clock(self):
        res = _run_ca3dmm(8)
        clocks = {t.rank: t.time for t in res.traces}
        for r, b in rank_decomposition(res).items():
            assert b.finish_s == clocks[r]
            assert b.tail_idle_s == pytest.approx(
                res.time - clocks[r], abs=1e-18
            )


class TestPhaseBlame:
    def test_critical_sums_to_makespan(self):
        res = _run_ca3dmm(8)
        blame = phase_blame(res)
        total = sum(b.critical_s for b in blame.values())
        assert total == pytest.approx(res.time, rel=1e-12)
        shares = sum(b.critical_share for b in blame.values())
        assert shares == pytest.approx(1.0, rel=1e-9)

    def test_covers_the_executed_phases(self):
        res = _run_ca3dmm(8)
        blame = phase_blame(res)
        assert {"cannon", "reduce"} <= set(blame)
        for b in blame.values():
            assert b.elapsed_s >= 0 and b.critical_s >= 0


class TestWaitforEdges:
    def test_edges_reference_real_messages(self):
        res = _run_ca3dmm(8)
        edges = waitfor_edges(res)
        assert edges
        for e in edges:
            assert e.seq >= 1
            assert e.arrival >= e.t_post
            assert e.released in ("recv", "send")
        arrivals = [e.arrival for e in edges]
        assert arrivals == sorted(arrivals)


class TestStragglers:
    def test_relay_blames_the_slow_rank(self):
        machine = MachineModel(alpha=1e-5, gamma=1e-9)

        def f(comm):
            if comm.rank == 0:
                comm.compute(1e6)  # 1ms: dominates the run
                comm.send(np.zeros(8), 1)
            else:
                comm.recv(source=0)

        res = run_spmd(2, f, machine=machine, record_events=True)
        out = stragglers(res)
        assert out and out[0].rank == 0
        assert out[0].share > 0.9

    def test_balanced_ring_reports_none(self):
        machine = MachineModel(alpha=1e-4, gamma=1e-9)

        def f(comm):
            for _ in range(4):
                comm.compute(1e5)
                comm.sendrecv(np.zeros(16), (comm.rank + 1) % 4, (comm.rank - 1) % 4)

        res = run_spmd(4, f, machine=machine, record_events=True)
        # fair share is 1/4; the default threshold is 2/4 of the makespan
        assert stragglers(res) == []


class TestReport:
    def test_to_dict_is_schema_valid(self):
        res = _run_ca3dmm(8)
        doc = critpath_report(res).to_dict()
        validate_critpath_json(doc)
        assert doc["complete"] is True
        assert doc["nprocs"] == 8
        assert doc["path_total_s"] == pytest.approx(doc["makespan_s"], rel=1e-12)
        assert len(doc["rank_decomposition"]) == 8

    def test_format_is_readable(self):
        res = _run_ca3dmm(4)
        report = critpath_report(res)
        assert isinstance(report, CritPathReport)
        text = report.format(max_segments=5)
        assert "Critical path:" in text
        assert "complete" in text
        assert "phase blame" in text
        assert text.count("\n") > 5
