"""Rank-level memory tracing (`repro.obs.memtrace`) and the eq. (11) gate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Ca3dmm
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import FaultPlan, LinkFault, run_spmd
from repro.obs.export import TraceSchemaError
from repro.obs.memtrace import (
    MemAuditError,
    check_mem,
    memprof_run,
    validate_memprof_json,
)

ITEM = 8  # float64 bytes per matrix word


def _executed(m=32, n=32, k=32, P=8, record_events=False, abft=False,
              faults=None):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        eng = Ca3dmm(comm, m, n, k, abft=abft)
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        eng.multiply(a, b)

    res = run_spmd(P, f, machine=laptop(), record_events=record_events,
                   faults=faults)
    return plan, res


# ----------------------------------------------- watermark property -- #
class TestWatermarkProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(8, 48), n=st.integers(8, 48), k=st.integers(8, 48),
        P=st.sampled_from([2, 4, 6, 8, 12]),
    )
    def test_resident_peak_brackets_the_working_set(self, m, n, k, P):
        """Every active rank's measured watermark covers its own tiles and
        stays within eq. (11) of its plan (ragged-split slack aside)."""
        plan, res = _executed(m, n, k, P)
        eq11 = plan.grid.memory_words(m, n, k)
        checked = 0
        for t in res.live_traces:
            role = plan.role(t.rank)
            if role is None or not t.resident_peak_bytes:
                continue
            a_blk = plan.a_cannon_block(role)
            b_blk = plan.b_cannon_block(role)
            c_elems = a_blk.rows * b_blk.cols
            tiles = (a_blk.rows * a_blk.cols
                     + b_blk.rows * b_blk.cols + c_elems) * ITEM
            # lower bound: the operand tiles and the partial-C
            # accumulator coexist at the cannon/reduce handoff
            assert t.resident_peak_bytes >= tiles, (
                f"rank {t.rank}: watermark {t.resident_peak_bytes} under "
                f"its own tile bytes {tiles}"
            )
            # upper bound: eq. (11) plus slack for ceil-ragged blocks on
            # small problems (the bench gate pins 10% on balanced ones)
            assert t.resident_peak_bytes <= eq11 * ITEM * 1.5, (
                f"rank {t.rank}: watermark {t.resident_peak_bytes} bytes "
                f"over eq. (11) = {eq11:.0f} words x 1.5"
            )
            checked += 1
        assert checked > 0

    def test_balanced_run_matches_eq11_exactly(self):
        plan, res = _executed(64, 64, 64, 8)
        eq11 = plan.grid.memory_words(64, 64, 64)
        peak = max(t.resident_peak_bytes for t in res.live_traces) / ITEM
        assert peak == pytest.approx(eq11)


# --------------------------------------------------- event balance -- #
class TestEventBalance:
    def test_all_spans_released_at_exit(self):
        plan, res = _executed(record_events=True)
        for t in res.live_traces:
            assert t.resident_bytes == 0, (
                f"rank {t.rank} leaks {t.mem_live}"
            )
            assert not t.mem_live

    def test_killed_rank_spans_released(self):
        """Dead-letter reclamation: a rank killed mid-algorithm cannot
        reach its own frees, so the runtime must release its open spans
        — the leak table stays clean on both backends."""
        from repro.ft import resilient_multiply
        from repro.layout import BlockCol1D
        from repro.mpi import RankFault

        m, n, k, P = 24, 20, 28, 6
        plan = FaultPlan(ranks=(
            RankFault(rank=1, phase="cannon", occurrence=1, kill=True),
        ))

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((m, k), comm.size), dense_random(m, k, 7))
            b = DistMatrix.from_global(
                comm, BlockCol1D((k, n), comm.size), dense_random(k, n, 8))
            resilient_multiply(comm, a, b, max_recoveries=2)

        for backend in ("threads", "des"):
            res = run_spmd(P, f, machine=laptop(), record_events=True,
                           faults=plan, backend=backend)
            assert res.failed_ranks == [1]
            for t in res.traces:
                assert not t.mem_live, (
                    f"{backend}: rank {t.rank} leaks {t.mem_live}"
                )
                assert t.resident_bytes == 0

    def test_memlog_allocs_and_frees_balance(self):
        plan, res = _executed(record_events=True)
        per_rank: dict[int, dict[str, int]] = {}
        for ev in res.transport.memlog:
            assert ev.kind in ("alloc", "free")
            assert ev.nbytes >= 0
            assert ev.resident_bytes >= 0
            bal = per_rank.setdefault(ev.rank, {})
            sign = 1 if ev.kind == "alloc" else -1
            bal[ev.purpose] = bal.get(ev.purpose, 0) + sign * ev.nbytes
        assert per_rank, "no memtrace events recorded"
        for rank, bal in per_rank.items():
            for purpose, leftover in bal.items():
                assert leftover == 0, (
                    f"rank {rank}: {purpose} allocs/frees unbalanced "
                    f"by {leftover} bytes"
                )

    def test_memlog_replays_the_watermark(self):
        """The event stream reproduces the counter: running resident per
        rank peaks exactly at the trace's recorded watermark."""
        plan, res = _executed(record_events=True)
        running: dict[int, int] = {}
        peak: dict[int, int] = {}
        for ev in res.transport.memlog:
            cur = running.get(ev.rank, 0)
            cur += ev.nbytes if ev.kind == "alloc" else -ev.nbytes
            assert cur == ev.resident_bytes  # event carries the total
            running[ev.rank] = cur
            peak[ev.rank] = max(peak.get(ev.rank, 0), cur)
        for t in res.live_traces:
            if t.rank in peak:
                assert peak[t.rank] == t.resident_peak_bytes

    def test_overfree_raises(self):
        def f(comm):
            comm.mem_alloc("tile.a", 100)
            with pytest.raises(ValueError, match="exceeds live"):
                comm.mem_free("tile.a", 101)
            comm.mem_free("tile.a", 100)

        run_spmd(2, f, machine=laptop())


# ----------------------------------------------- fault determinism -- #
class TestFaultedReplay:
    FAULTS = FaultPlan(seed=11, links=(
        LinkFault(phase="cannon", corrupt_at=(0,)),
    ))

    def _memlog(self):
        """Per-rank event streams (the global log interleaves threads
        nondeterministically; each rank's own order is program order)."""
        plan, res = _executed(24, 20, 28, 8, record_events=True, abft=True,
                              faults=self.FAULTS)
        by_rank: dict[int, list] = {}
        for e in res.transport.memlog:
            by_rank.setdefault(e.rank, []).append(
                (e.kind, e.purpose, e.phase, e.t, e.nbytes, e.resident_bytes)
            )
        return by_rank

    def test_seeded_fault_replay_is_identical(self):
        """Two runs under the same seeded FaultPlan produce the same
        per-rank memory timeline, event for event — the ABFT recompute's
        extra allocations included."""
        first, second = self._memlog(), self._memlog()
        assert first.keys() == second.keys()
        for rank in first:
            assert first[rank] == second[rank], f"rank {rank} diverged"
        assert any(first.values())


# ----------------------------------------------------- the report -- #
class TestMemReport:
    def test_clean_run_passes(self):
        plan, res = _executed()
        report = memprof_run(res, plan)
        assert report.ok
        assert report.resident_peak_words > 0
        assert report.peak_rank >= 0
        assert report.peak_over_eq11 is not None
        assert report.peak_over_eq11 <= 1.0 + report.tol
        assert not report.leaks
        for purpose in ("tile.a", "tile.b", "tile.c", "cannon.dblbuf"):
            assert report.by_purpose_words.get(purpose, 0) > 0, purpose

    def test_check_mem_returns_passing_report(self):
        plan, res = _executed()
        assert check_mem(res, plan).ok

    def test_tolerance_is_a_sharp_boundary(self):
        plan, res = _executed()
        t = max(res.live_traces, key=lambda t: t.resident_peak_bytes)
        # push the watermark 20% over eq. (11): the 10% gate trips,
        # a 30% gate does not
        eq11_bytes = plan.grid.memory_words(plan.m, plan.n, plan.k) * ITEM
        t.resident_peak_bytes = int(eq11_bytes * 1.2)
        with pytest.raises(MemAuditError, match="exceeds eq"):
            check_mem(res, plan, tol=0.10)
        assert memprof_run(res, plan, tol=0.30).ok

    def test_doctored_watermark_trips_the_gate(self):
        plan, res = _executed()
        t = max(res.live_traces, key=lambda t: t.resident_peak_bytes)
        t.resident_peak_bytes *= 10
        with pytest.raises(MemAuditError, match="resident peak"):
            check_mem(res, plan)

    def test_leak_is_reported(self):
        plan, res = _executed()
        t = res.live_traces[0]
        t.mem_live["tile.a"] = 800
        report = memprof_run(res, plan)
        assert report.leaks[t.rank]["tile.a"] == pytest.approx(100.0)
        assert "LEAKS" in report.format()

    def test_top_offenders_sorted(self):
        plan, res = _executed()
        report = memprof_run(res, plan)
        tops = report.top_offenders(3)
        assert len(tops) <= 3
        peaks = [r.resident_peak_words for r in tops]
        assert peaks == sorted(peaks, reverse=True)
        assert peaks[0] == report.resident_peak_words

    def test_negative_tol_rejected(self):
        plan, res = _executed()
        with pytest.raises(ValueError):
            memprof_run(res, plan, tol=-0.1)

    def test_infeasible_cap_disables_the_cap_gate(self):
        m = n = k = 24
        P = 4
        plan = Ca3dmmPlan(m, n, k, P, memory_limit_words=10.0)
        assert plan.mem_limit_infeasible

        def f(comm):
            eng = Ca3dmm(comm, m, n, k, memory_limit_words=10.0)
            a = DistMatrix.from_global(
                comm, plan.a_dist, dense_random(m, k, 0))
            b = DistMatrix.from_global(
                comm, plan.b_dist, dense_random(k, n, 1))
            eng.multiply(a, b)

        with pytest.warns(UserWarning, match="excludes every candidate"):
            res = run_spmd(P, f, machine=laptop())
        report = memprof_run(res, plan)
        # the 10-word cap is hopeless, but eq. (11) still gates — and
        # the report flags the un-honoured cap rather than failing on it
        assert report.mem_limit_infeasible
        assert report.ok, report.violations


# ---------------------------------------------------------- schema -- #
class TestMemprofSchema:
    def test_to_dict_validates_and_is_json(self):
        import json

        plan, res = _executed()
        doc = memprof_run(res, plan).to_dict()
        validate_memprof_json(doc)
        json.dumps(doc)
        assert doc["ok"] is True
        assert doc["schema_version"] == 1
        assert doc["resident_peak_words"] > 0
        assert doc["ranks"]

    def test_missing_field_rejected(self):
        plan, res = _executed()
        doc = memprof_run(res, plan).to_dict()
        del doc["eq11_words"]
        with pytest.raises(TraceSchemaError):
            validate_memprof_json(doc)

    def test_format_renders(self):
        plan, res = _executed()
        text = memprof_run(res, plan).format()
        assert "eq. (11) prediction" in text
        assert "measured resident peak" in text
        assert "verdict: OK" in text
