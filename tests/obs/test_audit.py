"""Transport-truth communication audit (`repro.obs.audit`)."""

from __future__ import annotations

import math

import pytest

from repro.core import ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd
from repro.obs.audit import (
    AuditError,
    audit_run,
    check_audit,
    pebbling_lower_bound,
    validate_audit_json,
)
from repro.obs.export import TraceSchemaError


def _executed(m=64, n=64, k=64, P=16):
    plan = Ca3dmmPlan(m, n, k, P)

    def f(comm):
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        ca3dmm_matmul(a, b)

    return plan, run_spmd(P, f, machine=laptop(), record_events=False)


class TestPebblingBound:
    def test_closed_form(self):
        # 2mnk/(P·√M) with √16 = 4
        assert pebbling_lower_bound(4, 5, 6, 2, 16.0) == 2.0 * 4 * 5 * 6 / (2 * 4)

    def test_degenerate_memory_is_zero(self):
        assert pebbling_lower_bound(4, 4, 4, 2, 0.0) == 0.0
        assert pebbling_lower_bound(4, 4, 4, 2, -1.0) == 0.0

    def test_bad_p_raises(self):
        with pytest.raises(ValueError):
            pebbling_lower_bound(4, 4, 4, 0, 16.0)


class TestAuditRun:
    def test_balanced_grid_conforms(self):
        plan, res = _executed()
        report = audit_run(res, plan, machine=laptop())
        assert report.ok
        for p in report.phases:
            assert p.ok, p.to_dict()
            # within 5% or inside the 64-word pickle-framing floor
            assert p.rel_err_model <= 0.05 or abs(p.excess_words) <= 64.0
        # the α-β collcost column must agree with eq. (4) on balanced grids
        for p in report.phases:
            if p.collcost_words and p.model_words:
                assert p.collcost_words == pytest.approx(p.model_words)

    def test_bounds_and_ratios(self):
        plan, res = _executed()
        report = audit_run(res, plan)
        assert report.q_words > 0
        assert report.eq9_words > 0 and report.pebbling_words > 0
        assert report.q_over_eq9 == pytest.approx(report.q_words / report.eq9_words)
        # the bound's M is the memtrace resident watermark, not the
        # (transport in-flight) peak_live counter
        assert report.resident_peak_words > 0
        assert report.pebbling_words == pytest.approx(
            pebbling_lower_bound(
                plan.m, plan.n, plan.k, plan.nprocs, report.resident_peak_words
            )
        )
        # measured Q can never beat a lower bound
        assert report.q_over_eq9 >= 1.0
        assert report.q_over_pebbling >= 1.0

    def test_coll_breakdown_names_the_algorithms(self):
        plan, res = _executed()  # c > 1 and pk > 1: all phases run
        report = audit_run(res, plan)
        by_phase = {p.phase: p.colls for p in report.phases}
        assert "allgather.bruck" in by_phase["replicate"]
        assert "p2p" in by_phase["cannon"]
        assert "reduce_scatter.pairwise" in by_phase["reduce"]
        # breakdown words must sum (over labels) to > 0 where the phase ran
        for p in report.phases:
            if p.measured_words > 0:
                assert sum(v["words"] for v in p.colls.values()) > 0

    def test_overlap_rides_along(self):
        plan, res = _executed()
        report = audit_run(res, plan)
        assert "cannon" in report.overlap_by_phase
        cannon = next(p for p in report.phases if p.phase == "cannon")
        assert cannon.overlap == pytest.approx(report.overlap_by_phase["cannon"])

    def test_doctored_traffic_trips_the_gate(self):
        plan, res = _executed()
        check_audit(res, plan)  # clean run passes
        res.traces[0].phases["cannon"].bytes_sent += 10**9
        with pytest.raises(AuditError, match="cannon"):
            check_audit(res, plan)

    def test_nruns_must_be_positive(self):
        plan, res = _executed()
        with pytest.raises(ValueError):
            audit_run(res, plan, nruns=0)


class TestAuditSchema:
    def test_to_dict_validates(self):
        import json

        plan, res = _executed()
        doc = audit_run(res, plan, machine=laptop()).to_dict()
        validate_audit_json(doc)
        json.dumps(doc)
        assert doc["ok"] is True
        assert doc["bounds"]["q_over_eq9"] > 0

    def test_missing_field_rejected(self):
        plan, res = _executed()
        doc = audit_run(res, plan).to_dict()
        del doc["bounds"]
        with pytest.raises(TraceSchemaError):
            validate_audit_json(doc)

    def test_format_renders(self):
        plan, res = _executed()
        text = audit_run(res, plan, machine=laptop()).format()
        assert "Communication audit" in text
        assert "pebbling" in text
        assert "allgather.bruck" in text

    def test_unscheduled_phase_with_traffic_is_inf_err(self):
        plan, res = _executed(m=32, n=32, k=32, P=4)
        report = audit_run(res, plan)
        for p in report.phases:
            if p.model_words == 0 and p.measured_words > 0:
                assert p.rel_err_model == math.inf
                assert not p.ok
