"""End-to-end ABFT coverage for every CA3DMM pipeline phase.

This pins the *closure* of the former coverage gap: corruption used to
be detectable only inside the Cannon shifts, while the replicate,
reduce-scatter, and closing-redistribution traffic was unguarded.  Now
a ``corrupt_phase`` link rule targeting any of the four stages must be
detected (per-phase counters), corrected, and leave the final C
**bit-identical** to the clean run — on both backends, with
byte-identical ledger records.

The shape is chosen deliberately: 64x64x64 at P=16 plans a 2x4x2 grid
with c=2, the one small configuration whose schedule has traffic in
all four guarded phases (replicate, cannon, reduce, redist).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ca3dmm
from repro.core.plan import shared_plan
from repro.ft import CorruptionError
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import FaultPlan, LinkFault, run_spmd
from repro.mpi.parity import run_both
from repro.obs.ledger import canonical_json, ledger_record

M = N = K = 64
P = 16
PHASES = ("replicate", "cannon", "reduce", "redist")


def _mult(comm):
    a = DistMatrix.from_global(
        comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
    )
    b = DistMatrix.from_global(
        comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
    )
    eng = Ca3dmm(comm, M, N, K, abft=True)
    c = eng.multiply(a, b, c_dist=BlockCol1D((M, N), comm.size))
    return c.to_global()


def _one_shot(phase):
    return FaultPlan(
        seed=11, links=(LinkFault(corrupt_phase=phase, corrupt_at=(0,)),)
    )


@pytest.fixture(scope="module")
def clean():
    return run_spmd(P, _mult, machine=laptop(), record_events=True)


class TestPhaseCoverage:
    """One-shot corruption in each phase: detected, corrected, bit-identical."""

    @pytest.mark.parametrize("phase", PHASES)
    def test_detected_corrected_bit_identical_both_backends(self, clean, phase):
        res_t, res_d = run_both(
            P, _mult, machine=laptop(), faults=_one_shot(phase)
        )
        for res in (res_t, res_d):
            m = res.metrics
            assert m.corruptions_injected >= 1
            assert m.corruptions_detected >= 1
            # attribution lands in the targeted phase, and only there
            assert set(m.corruptions_injected_by_phase) == {phase}
            assert m.corruptions_injected_by_phase[phase] >= 1
            assert set(m.corruptions_detected_by_phase) == {phase}
            assert m.corruptions_detected_by_phase[phase] >= 1
            assert np.array_equal(res.results[0], clean.results[0])

    @pytest.mark.parametrize("phase", PHASES)
    def test_ledger_records_are_byte_identical(self, phase):
        """The faulted run's full provenance record — including the new
        by-phase corruption counters — replays byte-for-byte across
        backends (run_id is the only nondeterministic field)."""
        res_t, res_d = run_both(
            P, _mult, machine=laptop(), faults=_one_shot(phase)
        )
        plan = shared_plan(M, N, K, P)

        def rec(res):
            r = ledger_record(res, plan, f"abft.{phase}", run_id="0" * 32)
            return canonical_json(r)

        assert rec(res_t) == rec(res_d)

    def test_by_phase_counters_sum_to_totals(self, clean):
        """Per-phase counters are a partition of the scalar totals."""
        for phase in PHASES:
            res = run_spmd(
                P, _mult, machine=laptop(), record_events=True,
                faults=_one_shot(phase),
            )
            m = res.metrics
            assert sum(m.corruptions_injected_by_phase.values()) == \
                m.corruptions_injected
            assert sum(m.corruptions_detected_by_phase.values()) == \
                m.corruptions_detected

    def test_clean_run_has_empty_phase_counters(self, clean):
        m = clean.metrics
        assert m.corruptions_injected_by_phase == {}
        assert m.corruptions_detected_by_phase == {}


class TestPersistentCorruptionIsTyped:
    """A ``corrupt_prob=1`` rule poisons the correction traffic too, so
    the guard for the targeted stage must give up with a typed
    :class:`CorruptionError` naming the phase.  (A cannon-only rule is
    the exception: recomputes run under the ``reduce`` phase, so they
    escape the rule and correction *succeeds* — pinned separately in
    test_abft.py.)"""

    @pytest.mark.parametrize("phase", ("replicate", "reduce", "redist"))
    def test_exhaustion_names_the_phase(self, phase):
        plan = FaultPlan(
            seed=11, links=(LinkFault(corrupt_phase=phase, corrupt_prob=1.0),)
        )
        with pytest.raises(RuntimeError) as ei:
            run_spmd(P, _mult, machine=laptop(), faults=plan)
        cause = ei.value.__cause__
        assert isinstance(cause, CorruptionError)
        assert cause.phase == phase
        assert phase in str(cause)

    def test_persistent_cannon_rule_is_still_corrected(self, clean):
        """Recomputes run under ``reduce``, so a cannon-only
        ``corrupt_prob=1`` rule cannot poison them: every round is
        caught and repaired and the result stays bit-identical."""
        plan = FaultPlan(
            seed=11,
            links=(LinkFault(corrupt_phase="cannon", corrupt_prob=1.0),),
        )
        res = run_spmd(
            P, _mult, machine=laptop(), record_events=True, faults=plan
        )
        assert res.metrics.corruptions_detected_by_phase["cannon"] >= 1
        assert np.array_equal(res.results[0], clean.results[0])
