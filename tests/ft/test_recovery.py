"""ULFM-style rank-failure recovery, end to end.

The acceptance story (ISSUE): a seeded plan that permanently kills a
rank mid-Cannon must leave :func:`~repro.ft.resilient_multiply` with a
correct C on every survivor — the survivors agree on the failure,
shrink the communicator, re-plan the CA3DMM grid for P' ranks,
redistribute the surviving A/B panels from buddy backups, and re-run.
Exhausting the retry budget or losing a buddy pair must surface a
typed :class:`~repro.ft.UnrecoverableError` instead of hanging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ft import UnrecoverableError, resilient_multiply
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import FaultPlan, RankFault, run_spmd

M, N, K, P = 24, 20, 28, 8
REF = dense_random(M, K, seed=7) @ dense_random(K, N, seed=8)
TOL = 1e-9 * max(1.0, float(np.abs(REF).max()))


def _resilient(max_recoveries=1, abft=False):
    def f(comm):
        a = DistMatrix.from_global(
            comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
        )
        b = DistMatrix.from_global(
            comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
        )
        c = resilient_multiply(
            comm, a, b,
            c_dist=lambda cm: BlockCol1D((M, N), cm.size),
            abft=abft,
            max_recoveries=max_recoveries,
        )
        return c.to_global()

    return f


def _run(faults=None, fn=None, nprocs=P, record_events=True):
    return run_spmd(
        nprocs, fn or _resilient(), machine=laptop(),
        record_events=record_events, faults=faults,
    )


def _kill(rank, occurrence=1):
    return RankFault(rank=rank, phase="cannon", occurrence=occurrence, kill=True)


def _timeline(res):
    """The run's virtual-time event timeline, as comparable tuples.

    ``seq`` (and span ctx ids) are allocated in *real-time* arrival
    order even on clean runs, so the determinism contract covers
    everything else: per-rank interval kinds, phases, virtual times,
    sizes, and peers.
    """
    return sorted(
        (e.rank, e.kind, e.phase, e.t0, e.t1, e.nbytes, e.peer, e.injected)
        for e in res.transport.events
    )


class TestKillRecovery:
    PLAN = FaultPlan(seed=0, ranks=(_kill(3),))

    def test_survivors_recover_correct_c(self):
        res = _run(faults=self.PLAN)
        assert res.failed_ranks == [3]
        assert res.results[3] is None
        got = [r for r in res.results if r is not None]
        assert len(got) == P - 1
        for c in got:
            assert float(np.abs(c - REF).max()) <= TOL

    def test_recovery_counted_in_metrics(self):
        res = _run(faults=self.PLAN)
        assert res.metrics.recoveries == 1
        assert "recoveries" in res.metrics.to_dict()

    def test_clean_run_counts_no_recoveries(self):
        res = _run()
        assert res.failed_ranks == []
        assert res.metrics.recoveries == 0
        assert float(np.abs(res.results[0] - REF).max()) <= TOL

    def test_deterministic_replay(self):
        """Replaying a faulted run is deterministic in *time*, not just
        data: failure detection is pinned to the transport's virtual
        clock (dead-letter sends, quiescence-gated revocation), so two
        identical runs produce identical makespans and per-rank event
        timelines — not only bit-equal C (docs/RECOVERY.md)."""
        runs = [_run(faults=self.PLAN) for _ in range(2)]
        a = next(r for r in runs[0].results if r is not None)
        b = next(r for r in runs[1].results if r is not None)
        assert np.array_equal(a, b)
        assert runs[0].failed_ranks == runs[1].failed_ranks
        assert runs[0].metrics.recoveries == runs[1].metrics.recoveries
        assert runs[0].time == runs[1].time
        assert [t.time for t in runs[0].traces] == \
            [t.time for t in runs[1].traces]
        assert _timeline(runs[0]) == _timeline(runs[1])

    def test_recovery_spans_recorded(self):
        res = _run(faults=self.PLAN)
        names = {s.name for s in res.spans}
        assert "ft_backup" in names
        assert "ft_recover" in names

    def test_double_kill(self):
        """Two non-adjacent kills: both ranks race toward their first
        Cannon entry, so the deaths land in the same attempt or split
        across two (the loser may be unwound by the first revocation
        before reaching Cannon).  Either way both must end up dead and
        every survivor correct."""
        plan = FaultPlan(seed=0, ranks=(_kill(3), _kill(5)))
        res = _run(faults=plan, fn=_resilient(max_recoveries=2))
        assert res.failed_ranks == [3, 5]
        assert res.metrics.recoveries in (1, 2)
        got = [r for r in res.results if r is not None]
        assert len(got) == P - 2
        for c in got:
            assert float(np.abs(c - REF).max()) <= TOL


class TestUnrecoverable:
    def test_budget_exhaustion_is_typed(self):
        """max_recoveries=0 turns the first (otherwise recoverable)
        failure into a typed give-up on every survivor."""
        plan = FaultPlan(seed=0, ranks=(_kill(3),))
        with pytest.raises(RuntimeError) as ei:
            _run(faults=plan, fn=_resilient(max_recoveries=0))
        cause = ei.value.__cause__
        assert isinstance(cause, UnrecoverableError)
        assert cause.recoveries == 1
        assert "budget" in str(cause)

    def test_adjacent_kill_loses_buddy(self):
        """Rank r backs up to r+1; losing both in *one* attempt makes the
        backup unreachable and recovery must give up, typed.  Kills are
        keyed on ``ft_attempt``, the phase the recovery loop enters as
        its very first action, so both deaths deterministically land in
        attempt 1."""
        plan = FaultPlan(seed=0, ranks=(
            RankFault(rank=3, phase="ft_attempt", occurrence=1, kill=True),
            RankFault(rank=4, phase="ft_attempt", occurrence=1, kill=True),
        ))
        with pytest.raises(RuntimeError) as ei:
            _run(faults=plan, fn=_resilient(max_recoveries=2))
        assert isinstance(ei.value.__cause__, UnrecoverableError)
        assert "buddy" in str(ei.value.__cause__)

    def test_plain_multiply_without_recovery_fails(self):
        """The same kill without the ft wrapper aborts the run — the
        recovery loop, not luck, is what survives it."""
        from repro.core import ca3dmm_matmul

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
            )
            b = DistMatrix.from_global(
                comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
            )
            return ca3dmm_matmul(a, b).to_global()

        with pytest.raises(RuntimeError):
            _run(faults=FaultPlan(seed=0, ranks=(_kill(3),)), fn=f)


class TestPartialReuse:
    """Partial-result reuse: surviving k-group partials are kept at
    failure time and reduced into the re-planned multiplication, so the
    recovery recomputes strictly less than one full call."""

    PLAN = FaultPlan(seed=0, ranks=(_kill(3),))

    def test_reuse_metrics_pair(self):
        res = _run(faults=self.PLAN)
        fm = res.metrics
        assert fm.reused_flops > 0
        assert fm.recomputed_flops < 2.0 * M * N * K
        # every k-slice is either reused or recomputed, exactly once
        assert fm.reused_flops + fm.recomputed_flops == \
            pytest.approx(2.0 * M * N * K)
        assert "reused_flops" in fm.to_dict()

    def test_reuse_span_recorded(self):
        res = _run(faults=self.PLAN)
        spans = [s for s in res.spans if s.name == "ft_reuse"]
        assert spans
        assert spans[0].attrs["k_reused"] > 0

    def test_reused_result_still_correct(self):
        res = _run(faults=self.PLAN)
        for c in (r for r in res.results if r is not None):
            assert float(np.abs(c - REF).max()) <= TOL

    def test_pk1_grid_salvages_surviving_cells(self):
        """With pk=1 every rank is in the single k-group, so a kill
        always breaks the *group* — but per-(i,j) salvage keeps the
        surviving Cannon cells anyway: reuse is strictly positive (the
        old per-k-group baseline was 0 here), the reused/recomputed
        pair still sums to one full call, and the result is correct."""
        from repro.grid.optimizer import GridSpec

        report: list = []

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
            )
            b = DistMatrix.from_global(
                comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
            )
            c = resilient_multiply(
                comm, a, b,
                c_dist=lambda cm: BlockCol1D((M, N), cm.size),
                grid=GridSpec(pm=4, pn=2, pk=1, nprocs=P),
                max_recoveries=1,
                salvage_report=report,
            )
            return c.to_global()

        res = _run(faults=self.PLAN, fn=f)
        fm = res.metrics
        assert fm.reused_flops > 0
        assert fm.recomputed_flops > 0
        assert fm.reused_flops + fm.recomputed_flops == \
            pytest.approx(2.0 * M * N * K)
        # the per-cell table agrees with the charged flops pair
        assert len(report) == 4 * 2  # pm x pn cells, pk = 1
        reused = sum(r["flops"] for r in report if r["status"] == "reused")
        redone = sum(r["flops"] for r in report if r["status"] == "recomputed")
        assert reused == pytest.approx(fm.reused_flops)
        assert redone == pytest.approx(fm.recomputed_flops)
        for c in (r for r in res.results if r is not None):
            assert float(np.abs(c - REF).max()) <= TOL

    def test_two_kills_in_different_k_groups_salvage_cells(self):
        """The pinned multi-kill scenario: at P=16 on a 4x2x2 grid a
        kill lands in *each* k-group (column-major ik = rank // 8, so
        ranks 0 and 8 sit in ik=0 and ik=1; their buddies 1 and 9
        survive).  The old per-k-group retention would reuse **zero**
        flops here — both groups are broken — but per-(i,j) salvage
        keeps every ABFT-verifiable surviving cell: reuse is strictly
        positive, the reused/recomputed pair still partitions one full
        call, a single recovery round suffices, and both k-groups
        contribute reused cells to the report."""
        from repro.grid.optimizer import GridSpec

        P16 = 16
        report: list = []

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
            )
            b = DistMatrix.from_global(
                comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
            )
            c = resilient_multiply(
                comm, a, b,
                c_dist=lambda cm: BlockCol1D((M, N), cm.size),
                grid=GridSpec(pm=4, pn=2, pk=2, nprocs=P16),
                max_recoveries=2,
                salvage_report=report,
            )
            return c.to_global()

        plan = FaultPlan(seed=0, ranks=(_kill(0), _kill(8)))
        res = _run(faults=plan, fn=f, nprocs=P16)
        assert res.failed_ranks == [0, 8]
        fm = res.metrics
        assert fm.recoveries == 1
        assert fm.reused_flops > 0  # per-k-group baseline: 0 (both broken)
        assert fm.reused_flops + fm.recomputed_flops == \
            pytest.approx(2.0 * M * N * K)
        by_ik: dict = {}
        for row in report:
            by_ik.setdefault(row["ik"], []).append(row["status"])
        assert set(by_ik) == {0, 1}
        for statuses in by_ik.values():
            assert "reused" in statuses
            assert "recomputed" in statuses
        for c in (r for r in res.results if r is not None):
            assert float(np.abs(c - REF).max()) <= TOL

    def test_reuse_with_abft_on(self):
        """Retention must happen after ABFT verification, so reuse and
        checksum protection compose."""
        res = _run(faults=self.PLAN, fn=_resilient(abft=True))
        fm = res.metrics
        assert fm.reused_flops > 0
        for c in (r for r in res.results if r is not None):
            assert float(np.abs(c - REF).max()) <= TOL


class TestBackupValidation:
    def test_stale_backup_rects_are_rejected(self):
        """_recover_matrix must validate rect *identity*, not just the
        backup's length: a stale backup from a different layout passes a
        bare length check and silently corrupts the restored matrix."""
        from repro.ft.recovery import _recover_matrix
        from repro.layout.blocks import Rect

        def f(comm):
            mat = DistMatrix.from_global(
                comm, BlockCol1D((8, 8), 4), np.arange(64.0).reshape(8, 8)
            )
            sub = comm.create_sub([0, 1, 3])
            if sub is None:
                return "dead"  # rank 2 plays the casualty
            # Same rect count as rank 2's real slot, wrong identity.
            stale = [(Rect(0, 8, 0, 2), np.zeros((8, 2)))]
            try:
                _recover_matrix(sub, mat, stale, (0, 1, 2, 3), (0, 1, 3), 1)
            except UnrecoverableError as exc:
                return "stale" if "stale" in str(exc) else "typed"
            return "ok"

        res = run_spmd(4, f, machine=laptop())
        assert "stale" in res.results  # the buddy holder rejects it
        assert "typed" not in res.results

    def test_missing_backup_is_rejected(self):
        from repro.ft.recovery import _recover_matrix

        def f(comm):
            mat = DistMatrix.from_global(
                comm, BlockCol1D((8, 8), 4), np.arange(64.0).reshape(8, 8)
            )
            sub = comm.create_sub([0, 1, 3])
            if sub is None:
                return "dead"
            try:
                _recover_matrix(sub, mat, None, (0, 1, 2, 3), (0, 1, 3), 1)
            except UnrecoverableError as exc:
                return "missing" if "missing" in str(exc) else "typed"
            return "ok"

        res = run_spmd(4, f, machine=laptop())
        assert "missing" in res.results


class TestSingleRank:
    def test_kill_on_single_rank_comm_is_typed(self):
        """A kill with nobody left must surface a typed
        UnrecoverableError on the driver — not a hang, not an untyped
        abort."""
        plan = FaultPlan(seed=0, ranks=(
            RankFault(rank=0, phase="cannon", occurrence=1, kill=True),
        ))
        with pytest.raises(RuntimeError) as ei:
            _run(faults=plan, fn=_resilient(max_recoveries=1), nprocs=1)
        cause = ei.value.__cause__
        assert isinstance(cause, UnrecoverableError)
        assert "single-rank" in str(cause)


class TestUlfmPrimitives:
    def test_failed_ranks_and_agree_and_shrink(self):
        plan = FaultPlan(seed=0, ranks=(
            RankFault(rank=2, phase="doomed", occurrence=1, kill=True),
        ))

        def f(comm):
            if comm.rank == 2:
                with comm.phase("doomed"):  # kill fires on phase entry
                    pass
                return None  # pragma: no cover - unreachable
            # agree() rendezvouses with the other survivors, so by the
            # time it returns the kill has been observed everywhere.
            ok, survivors = comm.agree(True)
            assert not ok  # rank 2 never voted
            assert survivors == (0, 1, 3)
            assert comm.failed_ranks() == (2,)
            sub = comm.shrink(survivors)
            assert sub.size == 3
            return sub.allreduce(np.array([1.0]))[0]

        res = run_spmd(4, f, machine=laptop(), faults=plan)
        assert [r for r in res.results if r is not None] == [3.0, 3.0, 3.0]
        assert res.failed_ranks == [2]

    def test_shrink_excluding_self_raises(self):
        from repro.mpi import CommError

        def f(comm):
            if comm.rank == 0:
                with pytest.raises(CommError):
                    comm.shrink((1, 2))
            return comm.rank

        run_spmd(3, f, machine=laptop())
