"""Resilience property sweep (the ISSUE 9 acceptance criterion).

For a random (m, n, k, P), a random corruption site (replicate /
cannon / reduce / redist, or none), and a random kill schedule, the
end-to-end resilient multiplication must either

* finish with a result that matches the clean run — **bit-for-bit**
  when no rank actually died (one-shot corruption is consumed and the
  recompute replays the clean summation order), within the usual
  float tolerance when a kill forced a shrink-replan (the re-planned
  grid legitimately changes the reduction order) — or
* abort every rank with a *typed* fault-tolerance error,

and the two backends must agree observably (results, traces, metrics,
timeline) on every successful run.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ft import FtError, resilient_multiply
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import FaultPlan, LinkFault, RankFault, run_spmd
from repro.mpi.parity import assert_parity

SITES = (None, "replicate", "cannon", "reduce", "redist")


@settings(max_examples=10, deadline=None)
@given(
    m=st.integers(min_value=8, max_value=32),
    n=st.integers(min_value=8, max_value=32),
    k=st.integers(min_value=8, max_value=32),
    P=st.sampled_from([4, 8, 16]),
    site=st.sampled_from(SITES),
    kill=st.sampled_from([None, 0, 1, 2]),
)
def test_corrupt_or_kill_anywhere_is_correct_or_typed(m, n, k, P, site, kill):
    links = (
        (LinkFault(corrupt_phase=site, corrupt_at=(0,)),) if site else ()
    )
    ranks = (
        (RankFault(rank=kill, phase="cannon", occurrence=1, kill=True),)
        if kill is not None else ()
    )
    faults = (
        FaultPlan(seed=11, links=links, ranks=ranks)
        if (links or ranks) else None
    )

    def f(comm):
        a = DistMatrix.from_global(
            comm, BlockCol1D((m, k), comm.size), dense_random(m, k, seed=7)
        )
        b = DistMatrix.from_global(
            comm, BlockCol1D((k, n), comm.size), dense_random(k, n, seed=8)
        )
        c = resilient_multiply(
            comm, a, b,
            c_dist=lambda cm: BlockCol1D((m, n), cm.size),
            abft=True,
            max_recoveries=2,
        )
        return c.to_global()

    def attempt(backend):
        try:
            return run_spmd(
                P, f, machine=laptop(), record_events=True,
                backend=backend, faults=faults,
            ), None
        except RuntimeError as exc:
            return None, exc

    res_t, err_t = attempt("threads")
    res_d, err_d = attempt("des")
    assert (err_t is None) == (err_d is None)

    if err_t is not None:
        for err in (err_t, err_d):
            assert isinstance(err.__cause__, FtError)
        return

    assert_parity(res_t, res_d)
    clean = run_spmd(P, f, machine=laptop())
    got = next(r for r in res_t.results if r is not None)
    ref = clean.results[0]
    if not res_t.failed_ranks:
        # corruption only: correction replays the clean summation order
        assert np.array_equal(got, ref)
        if site is not None:
            # any injected corruption was caught, never folded into C
            m_ = res_t.metrics
            assert m_.corruptions_detected_by_phase.get(site, 0) >= \
                min(1, m_.corruptions_injected_by_phase.get(site, 0))
    else:
        # a kill forced a shrink-replan: the re-planned grid changes the
        # summation order, and corruption injected into the aborted
        # attempt may be *discarded* with it rather than detected — the
        # property is that it never reaches C.
        tol = 1e-9 * max(1.0, float(np.abs(ref).max()))
        assert float(np.abs(got - ref).max()) <= tol
