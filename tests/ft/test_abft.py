"""Huang–Abraham ABFT: detect, locate, and correct corrupted partials.

A seeded ``corrupt`` link rule flips elements inside Cannon shift
messages.  With ``abft=True`` the checksum rows/columns carried through
the multiplication must catch the mismatch in ``reduce_c`` and the
recompute must restore the *bit-identical* clean answer (the one-shot
``corrupt_at`` hits are consumed, so the re-run is clean and the
summation order is unchanged).  Without ABFT the same plan silently
produces a wrong C — that contrast is the whole point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ca3dmm
from repro.ft import (
    AbftPolicy,
    CorruptionError,
    augment_a,
    augment_b,
    block_checksum_errors,
    resilient_multiply,
)
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import FaultPlan, LinkFault, run_spmd

M, N, K, P = 24, 20, 28, 8
REF = dense_random(M, K, seed=7) @ dense_random(K, N, seed=8)

CORRUPT = FaultPlan(seed=11, links=(LinkFault(phase="cannon", corrupt_at=(0,)),))


def _mult(abft):
    def f(comm):
        a = DistMatrix.from_global(
            comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
        )
        b = DistMatrix.from_global(
            comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
        )
        eng = Ca3dmm(comm, M, N, K, abft=abft)
        c = eng.multiply(a, b, c_dist=BlockCol1D((M, N), comm.size))
        return c.to_global()

    return f


def _run(faults=None, abft=True, fn=None, record_events=True):
    return run_spmd(
        P, fn or _mult(abft), machine=laptop(),
        record_events=record_events, faults=faults,
    )


# ------------------------------------------------------ checksum math -- #
class TestChecksumPrimitives:
    def test_augmented_product_carries_checksums(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((5, 7)), rng.standard_normal((7, 4))
        c_f = augment_a(a) @ augment_b(b)
        assert c_f.shape == (6, 5)
        np.testing.assert_allclose(c_f[:-1, :-1], a @ b, rtol=1e-12)
        assert block_checksum_errors(c_f, rel_tol=1e-8) == ((), ())

    def test_errors_locate_flipped_element(self):
        rng = np.random.default_rng(1)
        c_f = augment_a(rng.standard_normal((5, 7))) @ augment_b(
            rng.standard_normal((7, 4))
        )
        c_f[2, 1] += 10.0
        bad_rows, bad_cols = block_checksum_errors(c_f, rel_tol=1e-8)
        assert bad_rows == (2,)
        assert bad_cols == (1,)

    def test_corner_only_mismatch_is_reported(self):
        rng = np.random.default_rng(2)
        c_f = augment_a(rng.standard_normal((3, 3))) @ augment_b(
            rng.standard_normal((3, 3))
        )
        c_f[-1, -1] += 1.0
        assert block_checksum_errors(c_f, rel_tol=1e-8) == ((-1,), (-1,))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AbftPolicy(rel_tol=-1.0)
        with pytest.raises(ValueError):
            AbftPolicy(max_recomputes=-1)


# ---------------------------------------------------------- end to end -- #
class TestAbftEndToEnd:
    def test_corruption_without_abft_is_wrong(self):
        res = _run(faults=CORRUPT, abft=False)
        assert res.metrics.corruptions_injected >= 1
        assert res.metrics.corruptions_detected == 0
        assert not np.allclose(res.results[0], REF)

    def test_abft_detects_and_corrects_bit_identical(self):
        clean = _run(abft=True)
        faulted = _run(faults=CORRUPT, abft=True)
        assert np.array_equal(clean.results[0], faulted.results[0])
        m = faulted.metrics
        assert m.corruptions_injected >= 1
        assert m.corruptions_detected >= 1
        assert m.recomputed_flops > 0.0
        for key in ("corruptions_injected", "corruptions_detected",
                    "recomputed_flops"):
            assert key in m.to_dict()

    def test_recompute_span_recorded(self):
        faulted = _run(faults=CORRUPT, abft=True)
        assert any(s.name == "abft_recompute" for s in faulted.spans)

    def test_clean_abft_run_detects_nothing(self):
        res = _run(abft=True)
        m = res.metrics
        assert (m.corruptions_injected, m.corruptions_detected) == (0, 0)
        assert m.recomputed_flops == 0.0
        assert float(np.abs(res.results[0] - REF).max()) <= 1e-9 * max(
            1.0, float(np.abs(REF).max())
        )

    def test_deterministic_replay(self):
        runs = [_run(faults=CORRUPT, abft=True) for _ in range(2)]
        assert np.array_equal(runs[0].results[0], runs[1].results[0])
        assert (runs[0].metrics.corruptions_detected
                == runs[1].metrics.corruptions_detected)

    def test_persistent_corruption_exhausts_recomputes(self):
        """An unfiltered corrupt_prob=1 rule poisons the recompute
        traffic too (recomputes run under the ``reduce`` phase, so a
        ``phase="cannon"`` rule would spare them), and the guard must
        give up after max_recomputes rounds, typed."""
        plan = FaultPlan(seed=11, links=(LinkFault(corrupt_prob=1.0),))
        with pytest.raises(RuntimeError) as ei:
            _run(faults=plan, abft=True)
        assert isinstance(ei.value.__cause__, CorruptionError)

    def test_resilient_multiply_abft_path(self):
        """The recovery driver's abft=True flag reaches the engine."""

        def f(comm):
            a = DistMatrix.from_global(
                comm, BlockCol1D((M, K), comm.size), dense_random(M, K, seed=7)
            )
            b = DistMatrix.from_global(
                comm, BlockCol1D((K, N), comm.size), dense_random(K, N, seed=8)
            )
            c = resilient_multiply(
                comm, a, b,
                c_dist=lambda cm: BlockCol1D((M, N), cm.size),
                abft=True,
            )
            return c.to_global()

        res = _run(faults=CORRUPT, fn=f)
        assert res.metrics.corruptions_detected >= 1
        assert float(np.abs(res.results[0] - REF).max()) <= 1e-9 * max(
            1.0, float(np.abs(REF).max())
        )
