"""End-to-end CA3DMM correctness (Algorithm 1, executed engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ca3dmm, ca3dmm_matmul
from repro.grid.optimizer import GridSpec
from repro.layout import (
    Block2D,
    BlockCol1D,
    BlockCyclic2D,
    BlockRow1D,
    DistMatrix,
    dense_random,
)


def _check(comm, m, n, k, transa=False, transb=False, c_dist_fn=None,
           grid=None, shifts_per_gemm=1, dtype=np.float64, seed=0):
    A = dense_random(*((k, m) if transa else (m, k)), seed=seed, dtype=dtype)
    B = dense_random(*((n, k) if transb else (k, n)), seed=seed + 1, dtype=dtype)
    a = DistMatrix.from_global(comm, BlockCol1D(A.shape, comm.size), A)
    b = DistMatrix.from_global(comm, BlockCol1D(B.shape, comm.size), B)
    c_dist = c_dist_fn((m, n), comm.size) if c_dist_fn else None
    c = ca3dmm_matmul(
        a, b, c_dist=c_dist, transa=transa, transb=transb,
        grid=grid, shifts_per_gemm=shifts_per_gemm,
    )
    got = c.to_global()
    ref = (A.T if transa else A) @ (B.T if transb else B)
    tol = 1e-10 if np.dtype(dtype).itemsize >= 8 else 1e-3
    np.testing.assert_allclose(got, ref, rtol=tol, atol=tol * max(1.0, np.abs(ref).max()))
    return True


class TestShapes:
    @pytest.mark.parametrize(
        "m,n,k,P",
        [
            (32, 64, 16, 8),   # Example 1 (2D fallback, A replicated)
            (32, 32, 64, 16),  # Example 2 (full 3D)
            (32, 32, 64, 17),  # Example 3 (idle rank)
            (24, 24, 24, 1),   # serial
            (24, 24, 24, 2),
            (7, 5, 3, 4),      # tiny, ragged
            (40, 8, 8, 12),    # large-M class
            (8, 40, 8, 12),    # large-N
            (13, 11, 50, 24),  # large-K class
            (48, 48, 6, 9),    # flat class
            (33, 17, 29, 11),  # prime P with idle
        ],
    )
    def test_correct(self, spmd, m, n, k, P):
        assert all(spmd(P, lambda comm: _check(comm, m, n, k)).results)

    @pytest.mark.parametrize("m,n,k,P", [(1, 1, 64, 4), (64, 1, 16, 6), (1, 64, 16, 6), (16, 16, 1, 9), (1, 1, 1, 3)])
    def test_degenerate(self, spmd, m, n, k, P):
        """Rank-1 updates, matvecs, inner products (the unified view)."""
        assert all(spmd(P, lambda comm: _check(comm, m, n, k)).results)

    def test_more_ranks_than_elements(self, spmd):
        assert all(spmd(12, lambda comm: _check(comm, 2, 3, 2)).results)


class TestTranspose:
    @pytest.mark.parametrize("ta,tb", [(True, False), (False, True), (True, True)])
    def test_op_modes(self, spmd, ta, tb):
        assert all(
            spmd(8, lambda comm: _check(comm, 24, 20, 28, transa=ta, transb=tb)).results
        )

    def test_transpose_rectangular(self, spmd):
        assert all(
            spmd(6, lambda comm: _check(comm, 40, 8, 12, transa=True)).results
        )


class TestOutputLayouts:
    @pytest.mark.parametrize(
        "mk",
        [
            lambda s, P: BlockRow1D(s, P),
            lambda s, P: BlockCol1D(s, P),
            lambda s, P: Block2D(s, P, 2, 3),
            lambda s, P: BlockCyclic2D(s, P, 2, 3, bs=4),
        ],
    )
    def test_c_dist_conversion(self, spmd, mk):
        assert all(spmd(6, lambda comm: _check(comm, 18, 24, 30, c_dist_fn=mk)).results)

    def test_native_output_layout_matches_plan(self, spmd):
        def f(comm):
            from repro.core.plan import Ca3dmmPlan

            a = DistMatrix.random(comm, BlockCol1D((16, 24), comm.size), seed=0)
            b = DistMatrix.random(comm, BlockCol1D((24, 20), comm.size), seed=1)
            c = ca3dmm_matmul(a, b)
            plan = Ca3dmmPlan(16, 20, 24, comm.size)
            return c.owned_rects == plan.c_dist.owned_rects(comm.rank)

        assert all(spmd(8, f).results)


class TestOptions:
    @pytest.mark.parametrize("g", [2, 4])
    def test_shifts_per_gemm(self, spmd, g):
        assert all(
            spmd(9, lambda comm: _check(comm, 21, 24, 27, shifts_per_gemm=g)).results
        )

    def test_forced_grid(self, spmd):
        grid = GridSpec(pm=1, pn=1, pk=8, nprocs=8)
        assert all(
            spmd(8, lambda comm: _check(comm, 12, 12, 64, grid=grid)).results
        )

    def test_forced_1d_n_grid(self, spmd):
        grid = GridSpec(pm=1, pn=8, pk=1, nprocs=8)
        assert all(
            spmd(8, lambda comm: _check(comm, 12, 64, 12, grid=grid)).results
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex128])
    def test_dtypes(self, spmd, dtype):
        assert all(spmd(6, lambda comm: _check(comm, 14, 18, 22, dtype=dtype)).results)

    def test_mixed_dtypes_promote(self, spmd):
        def f(comm):
            a = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=0, dtype=np.float32)
            b = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=1, dtype=np.float64)
            c = ca3dmm_matmul(a, b)
            return c.dtype == np.float64 if c.tiles else True

        assert all(spmd(4, f).results)

    def test_dim_mismatch_rejected(self, spmd):
        def f(comm):
            a = DistMatrix.random(comm, BlockCol1D((8, 9), comm.size), seed=0)
            b = DistMatrix.random(comm, BlockCol1D((10, 8), comm.size), seed=1)
            with pytest.raises(ValueError):
                ca3dmm_matmul(a, b)

        spmd(2, f)


class TestEngineReuse:
    def test_repeated_multiplies_share_plan(self, spmd):
        """The Ca3dmm engine is reusable — the repeated-GEMM application
        pattern (density purification) the paper targets."""

        def f(comm):
            m = n = k = 20
            eng = Ca3dmm(comm, m, n, k)
            oks = []
            for seed in range(3):
                A = dense_random(m, k, seed)
                B = dense_random(k, n, seed + 10)
                a = DistMatrix.from_global(comm, BlockRow1D((m, k), comm.size), A)
                b = DistMatrix.from_global(comm, BlockRow1D((k, n), comm.size), B)
                c = eng.multiply(a, b)
                oks.append(np.allclose(c.to_global(), A @ B, atol=1e-10))
            return all(oks)

        assert all(spmd(6, f).results)

    def test_engine_validates_input_shapes(self, spmd):
        def f(comm):
            eng = Ca3dmm(comm, 8, 8, 8)
            a = DistMatrix.random(comm, BlockRow1D((8, 9), comm.size), seed=0)
            b = DistMatrix.random(comm, BlockRow1D((8, 8), comm.size), seed=1)
            with pytest.raises(ValueError):
                eng.multiply(a, b)

        spmd(2, f)

    def test_chained_multiplication(self, spmd):
        """(A @ B) @ B reusing the native output as the next input."""

        def f(comm):
            A = dense_random(12, 12, 0)
            B = dense_random(12, 12, 1)
            a = DistMatrix.from_global(comm, BlockRow1D((12, 12), comm.size), A)
            b = DistMatrix.from_global(comm, BlockRow1D((12, 12), comm.size), B)
            ab = ca3dmm_matmul(a, b)
            abb = ca3dmm_matmul(ab, b)
            return np.allclose(abb.to_global(), A @ B @ B, atol=1e-9)

        assert all(spmd(8, f).results)
