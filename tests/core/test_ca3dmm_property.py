"""Property-based end-to-end CA3DMM (hypothesis).

Random shapes, world sizes, transposes, and output layouts — every
combination must reproduce the serial product exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ca3dmm_matmul
from repro.layout import Block2D, BlockCol1D, BlockRow1D, DistMatrix, dense_random
from repro.machine.model import laptop
from repro.mpi import run_spmd


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 40),
    n=st.integers(1, 40),
    k=st.integers(1, 40),
    p=st.integers(1, 12),
    transa=st.booleans(),
    transb=st.booleans(),
    seed=st.integers(0, 1000),
)
def test_ca3dmm_matches_numpy(m, n, k, p, transa, transb, seed):
    a_shape = (k, m) if transa else (m, k)
    b_shape = (n, k) if transb else (k, n)

    def f(comm):
        a_mat = dense_random(*a_shape, seed=seed)
        b_mat = dense_random(*b_shape, seed=seed + 1)
        a = DistMatrix.from_global(comm, BlockCol1D(a_shape, comm.size), a_mat)
        b = DistMatrix.from_global(comm, BlockRow1D(b_shape, comm.size), b_mat)
        c = ca3dmm_matmul(a, b, transa=transa, transb=transb)
        ref = (a_mat.T if transa else a_mat) @ (b_mat.T if transb else b_mat)
        return bool(np.allclose(c.to_global(), ref, atol=1e-9 * max(m, n, k)))

    res = run_spmd(p, f, machine=laptop(), deadlock_timeout=30.0)
    assert all(res.results)


@settings(max_examples=12, deadline=None)
@given(
    m=st.integers(2, 30),
    n=st.integers(2, 30),
    k=st.integers(2, 30),
    p=st.integers(2, 9),
    pr=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_output_layout_roundtrip(m, n, k, p, pr, seed):
    """Any requested C layout delivers the same global values."""
    pr = min(pr, p)
    pc = max(1, p // pr)

    def f(comm):
        a = DistMatrix.random(comm, BlockCol1D((m, k), comm.size), seed=seed)
        b = DistMatrix.random(comm, BlockCol1D((k, n), comm.size), seed=seed + 1)
        c_native = ca3dmm_matmul(a, b)
        c_2d = ca3dmm_matmul(a, b, c_dist=Block2D((m, n), comm.size, pr, pc))
        return bool(np.allclose(c_native.to_global(), c_2d.to_global(), atol=1e-10))

    res = run_spmd(p, f, machine=laptop(), deadlock_timeout=30.0)
    assert all(res.results)


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(1, 30),
    n=st.integers(1, 30),
    k=st.integers(1, 30),
    p=st.integers(1, 10),
)
def test_traffic_never_exceeds_schedule_bound(m, n, k, p):
    """Executed per-rank traffic stays within the schedule's Q plus
    collective/pickle overheads (a structural upper bound)."""
    from repro.analysis.verify import theoretical_metrics
    from repro.core import Ca3dmm
    from repro.core.plan import Ca3dmmPlan

    plan = Ca3dmmPlan(m, n, k, p)

    def f(comm):
        eng = Ca3dmm(comm, m, n, k)
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 0))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 1))
        before = comm.transport.trace(comm.world_rank).bytes_sent
        eng.multiply(a, b)
        return comm.transport.trace(comm.world_rank).bytes_sent - before

    res = run_spmd(p, f, machine=laptop(), deadlock_timeout=30.0)
    q_bound = theoretical_metrics(plan).q_words * 8
    overhead = 512 * (plan.s + plan.pk + plan.c)  # pickle headers etc.
    assert max(res.results) <= q_bound * 1.2 + overhead
