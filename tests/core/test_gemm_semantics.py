"""Full GEMM semantics: C = alpha * op(A) op(B) + beta * C_in."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ca3dmm_matmul
from repro.layout import Block2D, BlockCol1D, BlockRow1D, DistMatrix, dense_random


class TestAlphaBeta:
    def test_alpha_scales(self, spmd):
        def f(comm):
            A, B = dense_random(10, 14, 1), dense_random(14, 12, 2)
            a = DistMatrix.from_global(comm, BlockCol1D((10, 14), comm.size), A)
            b = DistMatrix.from_global(comm, BlockCol1D((14, 12), comm.size), B)
            c = ca3dmm_matmul(a, b, alpha=-2.5)
            return np.allclose(c.to_global(), -2.5 * (A @ B), atol=1e-10)

        assert all(spmd(6, f).results)

    def test_beta_accumulates(self, spmd):
        def f(comm):
            A, B = dense_random(10, 14, 1), dense_random(14, 12, 2)
            C0 = dense_random(10, 12, 3)
            a = DistMatrix.from_global(comm, BlockCol1D((10, 14), comm.size), A)
            b = DistMatrix.from_global(comm, BlockCol1D((14, 12), comm.size), B)
            c0 = DistMatrix.from_global(comm, BlockRow1D((10, 12), comm.size), C0)
            c = ca3dmm_matmul(a, b, alpha=1.0, beta=0.5, c_in=c0)
            return np.allclose(c.to_global(), A @ B + 0.5 * C0, atol=1e-10)

        assert all(spmd(6, f).results)

    def test_trailing_update(self, spmd):
        """The flat-class pattern: C <- C - A x B (LU trailing update)."""

        def f(comm):
            A, B = dense_random(16, 4, 1), dense_random(4, 16, 2)
            C0 = dense_random(16, 16, 3)
            a = DistMatrix.from_global(comm, BlockRow1D((16, 4), comm.size), A)
            b = DistMatrix.from_global(comm, BlockRow1D((4, 16), comm.size), B)
            c0 = DistMatrix.from_global(comm, Block2D((16, 16), comm.size, 2, 4), C0)
            c = ca3dmm_matmul(
                a, b, alpha=-1.0, beta=1.0, c_in=c0,
                c_dist=Block2D((16, 16), comm.size, 2, 4),
            )
            return np.allclose(c.to_global(), C0 - A @ B, atol=1e-10)

        assert all(spmd(8, f).results)

    def test_beta_with_transposes(self, spmd):
        def f(comm):
            A, B = dense_random(14, 10, 1), dense_random(12, 14, 2)
            C0 = dense_random(10, 12, 3)
            a = DistMatrix.from_global(comm, BlockCol1D((14, 10), comm.size), A)
            b = DistMatrix.from_global(comm, BlockCol1D((12, 14), comm.size), B)
            c0 = DistMatrix.from_global(comm, BlockCol1D((10, 12), comm.size), C0)
            c = ca3dmm_matmul(
                a, b, transa=True, transb=True, alpha=2.0, beta=-1.0, c_in=c0
            )
            return np.allclose(c.to_global(), 2 * (A.T @ B.T) - C0, atol=1e-10)

        assert all(spmd(5, f).results)

    def test_beta_requires_c_in(self, spmd):
        def f(comm):
            a = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=0)
            b = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=1)
            with pytest.raises(ValueError):
                ca3dmm_matmul(a, b, beta=1.0)

        spmd(2, f)

    def test_c_in_shape_validated(self, spmd):
        def f(comm):
            a = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=0)
            b = DistMatrix.random(comm, BlockCol1D((8, 8), comm.size), seed=1)
            c0 = DistMatrix.random(comm, BlockCol1D((8, 9), comm.size), seed=2)
            with pytest.raises(ValueError):
                ca3dmm_matmul(a, b, beta=1.0, c_in=c0)

        spmd(2, f)

    def test_idle_ranks_with_accumulation(self, spmd):
        """beta-folding must work when some ranks are idle (P=17-like)."""

        def f(comm):
            A, B = dense_random(12, 12, 1), dense_random(12, 12, 2)
            C0 = dense_random(12, 12, 3)
            a = DistMatrix.from_global(comm, BlockCol1D((12, 12), comm.size), A)
            b = DistMatrix.from_global(comm, BlockCol1D((12, 12), comm.size), B)
            c0 = DistMatrix.from_global(comm, BlockCol1D((12, 12), comm.size), C0)
            c = ca3dmm_matmul(a, b, beta=1.0, c_in=c0)
            return np.allclose(c.to_global(), A @ B + C0, atol=1e-10)

        assert all(spmd(7, f).results)
