"""CA3DMM-S (SUMMA inner kernel) — Sections III-E and V."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.costs import ca3dmm_cost
from repro.core.summa_variant import ca3dmm_s_matmul
from repro.grid.optimizer import GridSpec, enumerate_grids
from repro.layout import BlockCol1D, BlockRow1D, DistMatrix, dense_random
from repro.machine.model import pace_phoenix_cpu


def _check(comm, m, n, k, **kw):
    A, B = dense_random(m, k, 1), dense_random(k, n, 2)
    a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), A)
    b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), B)
    c = ca3dmm_s_matmul(a, b, c_dist=BlockRow1D((m, n), comm.size), **kw)
    return np.allclose(c.to_global(), A @ B, atol=1e-10)


class TestCorrectness:
    @pytest.mark.parametrize("P", [1, 2, 4, 6, 8, 12, 16])
    def test_various_worlds(self, spmd, P):
        assert all(spmd(P, lambda comm: _check(comm, 20, 24, 28)).results)

    def test_grid_without_constraint7(self, spmd):
        """CA3DMM-S accepts grids Cannon cannot use (no eq. (7))."""
        grid = GridSpec(pm=2, pn=3, pk=2, nprocs=12)
        assert not grid.cannon_compatible
        assert all(spmd(12, lambda comm: _check(comm, 18, 27, 16, grid=grid)).results)

    @pytest.mark.parametrize("panel", [2, 8, 10 ** 6])
    def test_panel_widths(self, spmd, panel):
        assert all(spmd(8, lambda comm: _check(comm, 16, 16, 32, panel=panel)).results)

    def test_degenerate_k_only(self, spmd):
        grid = GridSpec(pm=1, pn=1, pk=8, nprocs=8)
        assert all(spmd(8, lambda comm: _check(comm, 10, 10, 64, grid=grid)).results)


class TestSectionIIIE:
    """L(CA3DMM-S) >= L(CA3DMM-C) on every shared grid (the paper's proof)."""

    @staticmethod
    def _l_summa(pm, pn, pk):
        import math

        p_big = max(pm, pn)
        if p_big == 1:
            return pk - 1
        return pm * (math.ceil(math.log2(p_big)) + p_big - 1) + (pk - 1)

    @pytest.mark.parametrize("P", [8, 16, 24, 36, 64])
    def test_latency_inequality_all_grids(self, P):
        for g in enumerate_grids(P, 0.95, require_divisible=True):
            l_c = g.latency_ca3dmm()
            l_s = self._l_summa(g.pm, g.pn, g.pk)
            assert l_s >= l_c, (g.pm, g.pn, g.pk)

    def test_modeled_time_summa_not_faster_with_small_panels(self):
        """With per-panel broadcasts, the SUMMA variant's modeled latency
        exceeds Cannon's on a shared latency-bound grid."""
        mach = pace_phoenix_cpu("mpi")
        grid = GridSpec(pm=8, pn=8, pk=2, nprocs=128)
        c = ca3dmm_cost(2048, 2048, 2048, 128, mach, grid=grid)
        s = ca3dmm_cost(
            2048, 2048, 2048, 128, mach, grid=grid, inner="summa",
            summa_panel_frac=1.0 / 8,
        )
        assert s.l_msgs >= c.l_msgs

    def test_memory_advantage_of_summa_variant(self):
        """Section V: CA3DMM-S needs no operand replication, so its memory
        model drops the factor c on the replicated operand."""
        mach = pace_phoenix_cpu("mpi")
        grid = GridSpec(pm=2, pn=8, pk=2, nprocs=32)  # c = 4
        c = ca3dmm_cost(1024, 4096, 1024, 32, mach, grid=grid)
        s = ca3dmm_cost(1024, 4096, 1024, 32, mach, grid=grid, inner="summa")
        assert s.mem_words < c.mem_words
