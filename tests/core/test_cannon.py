"""Cannon's algorithm kernel on s x s groups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cannon import cannon_multiply
from repro.layout.blocks import block_range
from repro.mpi import Cart2D


def _run_cannon(spmd, s, m, n, k, shifts_per_gemm=1, dtype=np.float64):
    """Distribute unskewed blocks, run Cannon, reassemble C."""
    rng = np.random.default_rng(7)
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)

    def f(comm):
        cart = Cart2D(comm, s, s)
        u, v = cart.row, cart.col
        am = block_range(m, s, u)
        ak = block_range(k, s, v)
        bk = block_range(k, s, u)
        bn = block_range(n, s, v)
        a_blk = np.ascontiguousarray(A[am[0] : am[1], ak[0] : ak[1]])
        b_blk = np.ascontiguousarray(B[bk[0] : bk[1], bn[0] : bn[1]])
        c_blk = cannon_multiply(cart, a_blk, b_blk, shifts_per_gemm=shifts_per_gemm)
        return (u, v, c_blk)

    res = spmd(s * s, f)
    C = np.zeros((m, n), dtype=np.promote_types(dtype, dtype))
    for u, v, blk in res.results:
        r = block_range(m, s, u)
        c = block_range(n, s, v)
        C[r[0] : r[1], c[0] : c[1]] = blk
    np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)
    return res


class TestCorrectness:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_square_blocks(self, spmd, s):
        _run_cannon(spmd, s, 12, 12, 12)

    @pytest.mark.parametrize("m,n,k", [(7, 5, 9), (20, 4, 4), (4, 20, 4), (5, 5, 40)])
    def test_ragged_blocks(self, spmd, m, n, k):
        _run_cannon(spmd, 3, m, n, k)

    def test_more_ranks_than_k(self, spmd):
        """k < s gives empty Cannon blocks on some steps."""
        _run_cannon(spmd, 4, 8, 8, 3)

    def test_more_ranks_than_m(self, spmd):
        _run_cannon(spmd, 4, 2, 9, 8)

    @pytest.mark.parametrize("g", [2, 3, 5])
    def test_multi_shift_aggregation(self, spmd, g):
        """shifts_per_gemm > 1 changes compute granularity, not results."""
        _run_cannon(spmd, 4, 13, 11, 16, shifts_per_gemm=g)

    def test_float32(self, spmd):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((6, 6)).astype(np.float32)
        B = rng.standard_normal((6, 6)).astype(np.float32)

        def f(comm):
            cart = Cart2D(comm, 2, 2)
            u, v = cart.row, cart.col
            am, ak = block_range(6, 2, u), block_range(6, 2, v)
            bk, bn = block_range(6, 2, u), block_range(6, 2, v)
            blk = cannon_multiply(
                cart,
                np.ascontiguousarray(A[am[0]:am[1], ak[0]:ak[1]]),
                np.ascontiguousarray(B[bk[0]:bk[1], bn[0]:bn[1]]),
            )
            return blk.dtype == np.float32

        assert all(spmd(4, f).results)

    def test_non_square_grid_rejected(self, spmd):
        def f(comm):
            cart = Cart2D(comm, 2, 3)
            with pytest.raises(ValueError):
                cannon_multiply(cart, np.zeros((2, 2)), np.zeros((2, 2)))

        spmd(6, f)


class TestTraffic:
    def test_message_rounds(self, spmd):
        """Skew (<=2 msgs) + 2(s-1) shift messages per rank, max."""
        res = _run_cannon(spmd, 3, 9, 9, 9)
        s = 3
        # worst rank: 2 skew sends + 2 sends per shift step
        assert res.max_msgs_sent <= 2 + 2 * (s - 1)
        assert res.max_msgs_sent >= 2 * (s - 1)

    def test_s1_no_traffic(self, spmd):
        res = _run_cannon(spmd, 1, 5, 5, 5)
        assert res.total_bytes == 0

    def test_volume_is_s_blocks_each(self, spmd):
        """Per rank, A traffic = s block-sends (skew + s-1 shifts), same for B."""
        s, m, n, k = 3, 9, 9, 9
        res = _run_cannon(spmd, s, m, n, k)
        blk = (m // s) * (k // s) * 8
        # rank (1,1) skews A and B and shifts both every step: 2*s blocks... minus
        # rank-dependent skew skips; the max must be exactly 2*s blocks of traffic
        # minus the (u=0 / v=0) skips, so between 2(s-1) and 2s blocks.
        assert 2 * (s - 1) * blk <= res.max_bytes_sent <= 2 * s * blk
