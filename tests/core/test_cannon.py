"""Cannon's algorithm kernel on s x s groups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cannon import cannon_multiply
from repro.layout.blocks import block_range
from repro.mpi import Cart2D, run_spmd


def _run_cannon(spmd, s, m, n, k, shifts_per_gemm=1, dtype=np.float64):
    """Distribute unskewed blocks, run Cannon, reassemble C."""
    rng = np.random.default_rng(7)
    A = rng.standard_normal((m, k)).astype(dtype)
    B = rng.standard_normal((k, n)).astype(dtype)

    def f(comm):
        cart = Cart2D(comm, s, s)
        u, v = cart.row, cart.col
        am = block_range(m, s, u)
        ak = block_range(k, s, v)
        bk = block_range(k, s, u)
        bn = block_range(n, s, v)
        a_blk = np.ascontiguousarray(A[am[0] : am[1], ak[0] : ak[1]])
        b_blk = np.ascontiguousarray(B[bk[0] : bk[1], bn[0] : bn[1]])
        c_blk = cannon_multiply(cart, a_blk, b_blk, shifts_per_gemm=shifts_per_gemm)
        return (u, v, c_blk)

    res = spmd(s * s, f)
    C = np.zeros((m, n), dtype=np.promote_types(dtype, dtype))
    for u, v, blk in res.results:
        r = block_range(m, s, u)
        c = block_range(n, s, v)
        C[r[0] : r[1], c[0] : c[1]] = blk
    np.testing.assert_allclose(C, A @ B, rtol=1e-10, atol=1e-10)
    return res


class TestCorrectness:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_square_blocks(self, spmd, s):
        _run_cannon(spmd, s, 12, 12, 12)

    @pytest.mark.parametrize("m,n,k", [(7, 5, 9), (20, 4, 4), (4, 20, 4), (5, 5, 40)])
    def test_ragged_blocks(self, spmd, m, n, k):
        _run_cannon(spmd, 3, m, n, k)

    def test_more_ranks_than_k(self, spmd):
        """k < s gives empty Cannon blocks on some steps."""
        _run_cannon(spmd, 4, 8, 8, 3)

    def test_more_ranks_than_m(self, spmd):
        _run_cannon(spmd, 4, 2, 9, 8)

    @pytest.mark.parametrize("g", [2, 3, 5])
    def test_multi_shift_aggregation(self, spmd, g):
        """shifts_per_gemm > 1 changes compute granularity, not results."""
        _run_cannon(spmd, 4, 13, 11, 16, shifts_per_gemm=g)

    def test_float32(self, spmd):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((6, 6)).astype(np.float32)
        B = rng.standard_normal((6, 6)).astype(np.float32)

        def f(comm):
            cart = Cart2D(comm, 2, 2)
            u, v = cart.row, cart.col
            am, ak = block_range(6, 2, u), block_range(6, 2, v)
            bk, bn = block_range(6, 2, u), block_range(6, 2, v)
            blk = cannon_multiply(
                cart,
                np.ascontiguousarray(A[am[0]:am[1], ak[0]:ak[1]]),
                np.ascontiguousarray(B[bk[0]:bk[1], bn[0]:bn[1]]),
            )
            return blk.dtype == np.float32

        assert all(spmd(4, f).results)

    def test_non_square_grid_rejected(self, spmd):
        def f(comm):
            cart = Cart2D(comm, 2, 3)
            with pytest.raises(ValueError):
                cannon_multiply(cart, np.zeros((2, 2)), np.zeros((2, 2)))

        spmd(6, f)


class TestTraffic:
    def test_message_rounds(self, spmd):
        """Skew (<=2 msgs) + 2(s-1) shift messages per rank, max."""
        res = _run_cannon(spmd, 3, 9, 9, 9)
        s = 3
        # worst rank: 2 skew sends + 2 sends per shift step
        assert res.max_msgs_sent <= 2 + 2 * (s - 1)
        assert res.max_msgs_sent >= 2 * (s - 1)

    def test_s1_no_traffic(self, spmd):
        res = _run_cannon(spmd, 1, 5, 5, 5)
        assert res.total_bytes == 0

    def test_volume_is_s_blocks_each(self, spmd):
        """Per rank, A traffic = s block-sends (skew + s-1 shifts), same for B."""
        s, m, n, k = 3, 9, 9, 9
        res = _run_cannon(spmd, s, m, n, k)
        blk = (m // s) * (k // s) * 8
        # rank (1,1) skews A and B and shifts both every step: 2*s blocks... minus
        # rank-dependent skew skips; the max must be exactly 2*s blocks of traffic
        # minus the (u=0 / v=0) skips, so between 2(s-1) and 2s blocks.
        assert 2 * (s - 1) * blk <= res.max_bytes_sent <= 2 * s * blk


class TestEmptyStripMetrics:
    """A flushed strip with zero inner width must not tick the GEMM
    clock: in GPU mode a k == 0 tick still stages the m x n result over
    PCIe, charging phantom compute time (regression)."""

    def _compute_time(self, res):
        m = res.metrics
        total = 0.0
        for row in m.registry.to_dict()["gauges"]:
            if row["name"] == "phase_compute_time_s":
                total += row["value"]
        return total

    def test_k_smaller_than_grid_charges_one_gemm_per_rank(self, spmd):
        """k=1 on a 2x2 grid: every rank sees one real and one empty
        strip; compute time must match exactly one GEMM per rank."""
        from repro.machine.model import pace_phoenix_gpu

        s, m, n, k = 2, 8, 6, 1
        machine = pace_phoenix_gpu()
        res = _run_cannon(lambda np_, f: run_spmd(np_, f, machine=machine),
                          s, m, n, k)
        mloc, nloc = m // s, n // s
        expected = machine.gemm_time(
            mloc, nloc, 1, stage_bytes=(mloc * 1 + 1 * nloc + mloc * nloc) * 8
        )
        got = self._compute_time(res)
        assert got == pytest.approx(s * s * expected), (
            f"phantom GEMM tick charged: {got} != {s * s * expected}"
        )

    def test_zero_k_block_charges_no_compute(self, spmd):
        """s=1 with an empty inner dimension: no tick at all."""

        def f(comm):
            cart = Cart2D(comm, 1, 1)
            c = cannon_multiply(cart, np.zeros((4, 0)), np.zeros((0, 3)))
            return c.shape

        from repro.machine.model import pace_phoenix_gpu

        res = run_spmd(1, f, machine=pace_phoenix_gpu())
        assert res.results == [(4, 3)]
        assert self._compute_time(res) == 0.0


class TestShiftStepArithmetic:
    """Pin the per-capability shift-step clock claimed in the docstring.

    With ``overlap="none"`` or ``"full"`` each posted shift transfer
    progresses as its own stream: step = max(gemm, flight).  With
    ``"partial"`` the rank's single NIC stream serializes the inter-node
    A and B sends: step = max(gemm, flight_a + flight_b).  An earlier
    docstring revision claimed unconditional ``max(gemm, comm)``.
    """

    @staticmethod
    def _makespan(overlap, m=8, n=8, k=8, s=2, ranks_per_node=1,
                  gamma=1e-11):
        from repro.machine.model import MachineModel

        # ranks_per_node=1 makes every shift inter-node (NIC-priced);
        # tiny gamma keeps the GEMM negligible -> comm-bound steps.
        mach = MachineModel(ranks_per_node=ranks_per_node, gamma=gamma,
                            overlap=overlap)
        rng = np.random.default_rng(7)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))

        def f(comm):
            cart = Cart2D(comm, s, s)
            u, v = cart.row, cart.col
            am = block_range(m, s, u)
            ak = block_range(k, s, v)
            bk = block_range(k, s, u)
            bn = block_range(n, s, v)
            cannon_multiply(
                cart,
                np.ascontiguousarray(A[am[0]:am[1], ak[0]:ak[1]]),
                np.ascontiguousarray(B[bk[0]:bk[1], bn[0]:bn[1]]),
            )

        return run_spmd(s * s, f, machine=mach).time

    def test_full_equals_none_bit_for_bit(self):
        """Dual-stream p2p shifts already hide under "none"; "full" must
        not perturb a single clock tick."""
        assert self._makespan("none") == self._makespan("full")

    def test_partial_serializes_comm_bound_shifts(self):
        """Comm-bound inter-node shifts: the shared NIC stream makes the
        step flight_a + flight_b, strictly slower than the dual-stream
        max(flight_a, flight_b)."""
        assert self._makespan("partial") > self._makespan("none")

    def test_compute_bound_steps_identical_everywhere(self):
        """When the GEMM dominates, step = gemm in every mode — the NIC
        serialization is fully hidden."""
        times = {
            mode: self._makespan(mode, gamma=1e-3)
            for mode in ("none", "partial", "full")
        }
        assert times["none"] == times["partial"] == times["full"]
