"""The model-driven autotuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.autotune import tune
from repro.layout import BlockCol1D, DistMatrix, dense_random
from repro.machine.model import laptop, pace_phoenix_cpu


@pytest.fixture(scope="module")
def mach():
    return pace_phoenix_cpu("mpi")


class TestTune:
    def test_prefers_cannon_for_bandwidth_bound_problems(self, mach):
        result = tune(50000, 50000, 50000, 1536, mach)
        assert result.best.inner == "cannon"
        assert result.best.time <= result.candidates[-1].time

    def test_candidates_are_ranked(self, mach):
        result = tune(20000, 20000, 20000, 256, mach)
        times = [c.time for c in result.candidates]
        assert times == sorted(times)
        assert len(result.candidates) >= 2

    def test_memory_cap_filters(self, mach):
        dims = (20000, 20000, 20000)
        free = tune(*dims, 256, mach)
        cap = free.best.mem_words * 0.6
        capped = tune(*dims, 256, mach, memory_limit_words=cap)
        assert capped.best.mem_words <= cap or all(
            c.mem_words > cap for c in free.candidates
        )

    def test_impossible_cap_still_returns(self, mach):
        result = tune(4000, 4000, 4000, 64, mach, memory_limit_words=1.0)
        assert result.best is not None
        # the fallback is the leanest candidate
        assert result.best.mem_words == min(c.mem_words for c in result.candidates)

    def test_table2_anomaly_reproduced(self, mach):
        """Autotuning large-K at 3072 must not pick the pk=341 grid the
        paper found slow — a collective-friendlier near-optimum wins."""
        result = tune(6000, 6000, 1200000, 3072, mach, consider_summa=False)
        assert result.best.grid.pk != 341

    def test_describe(self, mach):
        result = tune(4000, 4000, 4000, 64, mach)
        text = result.best.describe()
        assert "grid" in text and "mem" in text

    def test_build_runs_correctly(self, spmd, mach):
        m = n = k = 32
        result = tune(m, n, k, 8, laptop())
        assert result.best.inner == "cannon"

        def f(comm):
            eng = result.build(comm)
            a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), dense_random(m, k, 1))
            b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), dense_random(k, n, 2))
            c = eng.multiply(a, b)
            return np.allclose(
                c.to_global(), dense_random(m, k, 1) @ dense_random(k, n, 2), atol=1e-9
            )

        assert all(spmd(8, f).results)

    def test_build_rejected_for_summa_winner(self, mach):
        from repro.core.autotune import TunedChoice, TuneResult
        from repro.analysis.costs import ca3dmm_cost
        from repro.grid.optimizer import GridSpec

        grid = GridSpec(2, 2, 2, 8)
        rep = ca3dmm_cost(32, 32, 32, 8, laptop(), grid=grid, inner="summa")
        choice = TunedChoice(inner="summa", grid=grid, report=rep)
        result = TuneResult(best=choice, candidates=[choice])
        with pytest.raises(ValueError):
            result.build(None)
