"""Idle-rank behaviour (Example 3's P=17 pattern, systematically).

When ``P > pm*pn*pk`` the surplus ranks take part only in
redistribution.  These tests sweep awkward world sizes and check the
full contract: correct results, no native ownership, no subcommunicator
membership, and only redistribution traffic on the idle ranks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ca3dmm, ca3dmm_matmul
from repro.core.plan import Ca3dmmPlan
from repro.layout import BlockCol1D, BlockRow1D, DistMatrix, dense_random


AWKWARD_P = [5, 7, 11, 13, 17, 19, 23]


@pytest.mark.parametrize("P", AWKWARD_P)
def test_results_correct_with_idle_ranks(spmd, P):
    m, n, k = 24, 20, 28

    def f(comm):
        a = DistMatrix.from_global(comm, BlockCol1D((m, k), comm.size), dense_random(m, k, 1))
        b = DistMatrix.from_global(comm, BlockCol1D((k, n), comm.size), dense_random(k, n, 2))
        c = ca3dmm_matmul(a, b, c_dist=BlockRow1D((m, n), comm.size))
        return np.allclose(
            c.to_global(), dense_random(m, k, 1) @ dense_random(k, n, 2), atol=1e-10
        )

    res = spmd(P, f)
    assert all(res.results)


@pytest.mark.parametrize("P", [7, 13, 17])
def test_idle_rank_contract(spmd, P):
    m = n = k = 24
    plan = Ca3dmmPlan(m, n, k, P)
    idle_count = plan.nprocs - plan.active
    if idle_count == 0:
        pytest.skip("grid uses every rank at this P")

    def f(comm):
        eng = Ca3dmm(comm, m, n, k)
        idle = eng.role is None
        subs_none = (
            eng.cannon_comm is None
            and eng.replica_comm is None
            and eng.kred_comm is None
            and eng.active_comm is None
        )
        a = DistMatrix.from_global(comm, plan.a_dist, dense_random(m, k, 1))
        b = DistMatrix.from_global(comm, plan.b_dist, dense_random(k, n, 2))
        before = comm.transport.trace(comm.world_rank).bytes_sent
        c = eng.multiply(a, b)  # native in, native out: no redistribution
        sent = comm.transport.trace(comm.world_rank).bytes_sent - before
        return idle, subs_none if idle else True, sent, len(c.tiles)

    res = spmd(P, f)
    idles = [r for r in res.results if r[0]]
    assert len(idles) == idle_count
    for _, subs_ok, sent, ntiles in idles:
        assert subs_ok
        assert sent == 0  # native layouts: the idle rank moves nothing
        assert ntiles == 0  # and owns nothing of C


def test_idle_ranks_still_carry_user_data(spmd):
    """Idle ranks hold input/output data in the *user* layouts and the
    redistribution must collect from / deliver to them."""
    m, n, k, P = 16, 16, 16, 17  # 2x2x4 grid, rank 16 idle

    def f(comm):
        plan = Ca3dmmPlan(m, n, k, comm.size)
        assert plan.role(16) is None
        # 1D layout over all 17 ranks: rank 16 owns real rows
        a = DistMatrix.from_global(comm, BlockRow1D((m, k), comm.size), dense_random(m, k, 1))
        b = DistMatrix.from_global(comm, BlockRow1D((k, n), comm.size), dense_random(k, n, 2))
        has_input = bool(a.tiles) if comm.rank == 16 else True
        c = ca3dmm_matmul(a, b, c_dist=BlockRow1D((m, n), comm.size))
        has_output = bool(c.tiles) if comm.rank == 16 else True
        ok = np.allclose(
            c.to_global(), dense_random(m, k, 1) @ dense_random(k, n, 2), atol=1e-10
        )
        return has_input, has_output, ok

    res = spmd(17, f)
    # 16 rows over 17 ranks: one rank has no band; rank 16's band may be
    # empty by the balanced split, so only assert global correctness and
    # that the run completes with the idle rank participating.
    assert all(ok for _, _, ok in res.results)
