"""Ca3dmmPlan against the paper's worked examples (Fig. 2) and invariants."""

from __future__ import annotations

import pytest

from repro.core.plan import Ca3dmmPlan
from repro.grid.optimizer import GridSpec
from repro.layout.blocks import Rect


class TestExample1:
    """m=32, k=16, n=64, P=8 -> grid 2x4x1, c=2, A replicated (Fig. 2a)."""

    @pytest.fixture
    def plan(self):
        return Ca3dmmPlan(32, 64, 16, 8)

    def test_grid(self, plan):
        assert (plan.pm, plan.pn, plan.pk) == (2, 4, 1)
        assert plan.c == 2 and plan.s == 2
        assert plan.replicates_a

    def test_falls_back_to_2d(self, plan):
        """pk = 1: CA3DMM reduces to 2D Cannon's algorithm."""
        assert plan.pk == 1
        for rank in range(8):
            assert plan.c_owned(rank) == plan.c_block(
                plan.role(rank).i, plan.role(rank).j
            )

    def test_replica_pair_is_p1_p5(self, plan):
        """The paper pairs P1 (rank 0) and P5 (rank 4) on the same A block."""
        colors = {r: plan.split_colors(r)["replica"] for r in range(8)}
        assert colors[0][0] == colors[4][0]  # same replica group
        assert colors[0][1] == 0 and colors[4][1] == 1  # ordered by group

    def test_p1_p5_jointly_hold_the_replicated_block(self, plan):
        a0, a4 = plan.a_owned(0), plan.a_owned(4)
        blk = plan.a_cannon_block(plan.role(0))
        assert blk == plan.a_cannon_block(plan.role(4))  # same post-replication block
        assert blk == Rect(0, 16, 0, 8)  # A(1:16, 1:8) in 1-based MATLAB notation
        # the pair's initial pieces tile the block disjointly
        assert a0.intersect(a4).is_empty()
        assert a0.area + a4.area == blk.area

    def test_cannon_groups_split_n(self, plan):
        # group 0 = P1..P4 (columns 0-1), group 1 = P5..P8 (columns 2-3)
        assert [plan.role(r).group for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


class TestExample2:
    """m=n=32, k=64, P=16 -> grid 2x2x4 (Fig. 2b)."""

    @pytest.fixture
    def plan(self):
        return Ca3dmmPlan(32, 32, 64, 16)

    def test_grid(self, plan):
        assert (plan.pm, plan.pn, plan.pk) == (2, 2, 4)
        assert plan.c == 1

    def test_k_task_groups(self, plan):
        """P1-P4 compute A(:,1:16) x B(1:16,:), P5-P8 the next slice, ..."""
        for rank in range(16):
            assert plan.role(rank).ik == rank // 4
        assert plan.k_range(0) == (0, 16)
        assert plan.k_range(1) == (16, 32)
        assert plan.k_range(3) == (48, 64)

    def test_final_c_strips_match_paper(self, plan):
        """P1 -> C(1:16,1:4), P5 -> C(1:16,5:8), P9 -> C(1:16,9:12), ..."""
        assert plan.c_owned(0) == Rect(0, 16, 0, 4)
        assert plan.c_owned(4) == Rect(0, 16, 4, 8)
        assert plan.c_owned(8) == Rect(0, 16, 8, 12)
        assert plan.c_owned(12) == Rect(0, 16, 12, 16)

    def test_kred_group_is_p1_p5_p9_p13(self, plan):
        colors = {r: plan.split_colors(r)["kred"] for r in (0, 4, 8, 12)}
        assert len({c[0] for c in colors.values()}) == 1
        assert [colors[r][1] for r in (0, 4, 8, 12)] == [0, 1, 2, 3]


class TestExample3:
    """m=n=32, k=64, P=17: rank 17 is idle outside redistribution."""

    @pytest.fixture
    def plan(self):
        return Ca3dmmPlan(32, 32, 64, 17)

    def test_idle_rank(self, plan):
        assert plan.active == 16
        assert plan.role(16) is None
        assert plan.a_owned(16) is None
        assert plan.c_owned(16) is None
        colors = plan.split_colors(16)
        assert all(color is None for color, _ in colors.values())

    def test_active_ranks_same_as_example2(self, plan):
        ref = Ca3dmmPlan(32, 32, 64, 16)
        for rank in range(16):
            assert plan.c_owned(rank) == ref.c_owned(rank)
            assert plan.a_owned(rank) == ref.a_owned(rank)
            assert plan.b_owned(rank) == ref.b_owned(rank)


class TestCoverage:
    @pytest.mark.parametrize(
        "m,n,k,P",
        [
            (32, 64, 16, 8),
            (32, 32, 64, 16),
            (32, 32, 64, 17),
            (7, 5, 3, 4),
            (40, 8, 8, 12),
            (8, 40, 8, 12),
            (1, 1, 64, 4),
            (64, 1, 16, 6),
            (16, 16, 1, 9),
            (33, 17, 29, 11),
            (13, 11, 50, 24),
        ],
    )
    def test_native_layouts_tile_exactly(self, m, n, k, P):
        plan = Ca3dmmPlan(m, n, k, P)
        plan.a_dist.validate()
        plan.b_dist.validate()
        plan.c_dist.validate()

    def test_b_replication_case(self):
        """pm > pn: B is the replicated operand, row-split pieces."""
        plan = Ca3dmmPlan(64, 16, 32, 8, grid=GridSpec(pm=4, pn=2, pk=1, nprocs=8))
        assert not plan.replicates_a and plan.c == 2
        r0 = plan.role(0)
        blk = plan.b_cannon_block(r0)
        piece = plan.b_owned(0)
        assert piece.rows * plan.c == pytest.approx(blk.rows, abs=plan.c)
        assert (piece.c0, piece.c1) == (blk.c0, blk.c1)  # full width, row piece
        plan.b_dist.validate()

    def test_row_split_c_strips(self):
        """Tall C blocks are row-split across the k-groups."""
        plan = Ca3dmmPlan(
            64, 4, 32, 8, grid=GridSpec(pm=1, pn=1, pk=8, nprocs=8)
        )
        strips = [plan.c_owned(r) for r in range(8)]
        assert all(s.cols == 4 for s in strips)  # full width
        assert sum(s.rows for s in strips) == 64
        plan.c_dist.validate()


class TestValidation:
    def test_incompatible_grid_rejected(self):
        with pytest.raises(ValueError):
            Ca3dmmPlan(8, 8, 8, 6, grid=GridSpec(pm=2, pn=3, pk=1, nprocs=6))

    def test_wrong_world_grid_rejected(self):
        with pytest.raises(ValueError):
            Ca3dmmPlan(8, 8, 8, 6, grid=GridSpec(pm=2, pn=2, pk=1, nprocs=4))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Ca3dmmPlan(0, 4, 4, 4)

    def test_rank_of_roundtrip(self):
        plan = Ca3dmmPlan(32, 32, 64, 16)
        for rank in range(plan.active):
            role = plan.role(rank)
            assert plan.rank_of(role.ik, role.i, role.j) == rank

    def test_describe_mentions_grid(self):
        text = Ca3dmmPlan(32, 64, 16, 8).describe()
        assert "2 x 4 x 1" in text
        assert "100.00 %" in text
